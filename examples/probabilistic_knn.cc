// Evaluating a KNN classifier over a block tuple-independent probabilistic
// database (paper §2.1's "Connections to Probabilistic Databases",
// generalized to non-uniform priors).
//
// Scenario: a sensor reading for one training tuple is uncertain — an
// automatic repair model proposes three values with calibrated
// probabilities. We ask for the distribution of the classifier's
// prediction over the induced world distribution and watch it respond to
// the prior.

#include <cstdio>

#include "core/probabilistic.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;

  IncompleteDataset train(/*num_labels=*/2);
  CP_CHECK(train.AddCleanExample({0.0, 0.0}, 0).ok());
  CP_CHECK(train.AddCleanExample({0.5, 0.0}, 0).ok());
  CP_CHECK(train.AddCleanExample({1.1, 1.1}, 1).ok());
  CP_CHECK(train.AddCleanExample({4.0, 4.0}, 1).ok());
  // The uncertain tuple (label 1): if its true value is the near candidate
  // it joins the test point's top-3 and flips the majority to label 1;
  // the two far candidates leave the top-3 with a label-0 majority.
  CP_CHECK(train.AddExample({{{0.6, 0.8}, {3.6, 3.4}, {4.4, 4.2}}, 1}).ok());

  NegativeEuclideanKernel kernel;
  const std::vector<double> t = {0.8, 0.8};

  std::printf("test point (0.8, 0.8), 3-NN, worlds = %s\n\n",
              train.NumPossibleWorlds().ToString().c_str());

  struct Case {
    const char* name;
    std::vector<double> prior;
  };
  const Case cases[] = {
      {"uniform prior        ", {1.0 / 3, 1.0 / 3, 1.0 / 3}},
      {"repair model: near   ", {0.90, 0.05, 0.05}},
      {"repair model: far    ", {0.05, 0.45, 0.50}},
  };
  for (const Case& c : cases) {
    auto priors = UniformPriors(train);
    priors[4] = c.prior;
    const auto probs =
        WeightedLabelProbabilities(train, priors, t, kernel, /*k=*/3).value();
    std::printf("%s -> P(label 0) = %.3f, P(label 1) = %.3f\n", c.name,
                probs[0], probs[1]);
  }
  std::printf("\nThe uniform row reproduces Q2/|worlds|; skewing the prior "
              "toward the near candidate pulls the uncertain tuple into the "
              "test point's neighborhood and shifts the prediction mass.\n");
  return 0;
}
