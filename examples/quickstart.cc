// Quickstart: certain predictions over an incomplete dataset in ~40 lines.
//
// Builds a tiny incomplete training set (one tuple has three possible
// values), then asks the two CP queries of the paper:
//   Q1 — is the KNN prediction for a test point the same in *every*
//        possible world?
//   Q2 — what fraction of the possible worlds predicts each label?

#include <cstdio>

#include "core/certain_predictor.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;

  // Two certain tuples and one incomplete tuple (3 candidate repairs).
  // Labels: 0 = "no", 1 = "yes".
  IncompleteDataset train(/*num_labels=*/2);
  CP_CHECK(train.AddCleanExample({32.0}, 0).ok());
  CP_CHECK(train.AddCleanExample({29.0}, 1).ok());
  CP_CHECK(train.AddExample({{{1.0}, {2.0}, {30.0}}, 0}).ok());

  std::printf("possible worlds: %s\n",
              train.NumPossibleWorlds().ToString().c_str());

  NegativeEuclideanKernel kernel;
  CertainPredictor predictor(&kernel, /*k=*/1);

  for (double t : {29.0, 5.0}) {
    const std::vector<double> test = {t};
    const auto certain = predictor.CertainLabel(train, test);
    const auto probs = predictor.LabelProbabilities(train, test);
    std::printf("t = %4.1f | ", t);
    if (certain.has_value()) {
      std::printf("certainly predicted label %d", *certain);
    } else {
      std::printf("NOT certain");
    }
    std::printf("  (world fractions: label0=%.3f label1=%.3f, entropy=%.3f)\n",
                probs[0], probs[1], predictor.PredictionEntropy(train, test));
  }
  return 0;
}
