// An end-to-end "data cleaning for ML" session (paper §4):
// generate a dataset, inject MNAR missing values, and watch CPClean
// prioritize the human's cleaning effort against a random strategy.

#include <cstdio>

#include "cleaning/cp_clean.h"
#include "common/rng.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;

  ExperimentConfig config;
  config.dataset = PaperDatasetByName("Supreme", /*train_rows=*/120,
                                      /*val_size=*/40, /*test_size=*/120);
  config.k = 3;
  config.seed = 7;

  NegativeEuclideanKernel kernel;
  auto prepared_or = PrepareExperiment(config, kernel);
  if (!prepared_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 prepared_or.status().ToString().c_str());
    return 1;
  }
  const PreparedExperiment& prepared = prepared_or.value();
  const CleaningTask& task = prepared.task;

  std::printf("dataset: %s  train=%d rows (%d dirty)  missing rate=%.1f%%\n",
              config.dataset.name.c_str(), task.dirty_train.num_rows(),
              prepared.dirty_rows, 100.0 * prepared.observed_missing_rate);
  std::printf("ground-truth test accuracy: %.3f\n",
              prepared.ground_truth_test_accuracy);
  std::printf("default-clean test accuracy: %.3f\n\n",
              prepared.default_test_accuracy);

  CpCleanOptions options;
  options.k = config.k;
  CleaningSession session(&task, &kernel, options);

  std::printf("--- CPClean (sequential information maximization) ---\n");
  const CleaningRunResult cp = session.RunCpClean();
  for (const CleaningStepLog& log : cp.steps) {
    if (log.step % 5 != 0 && log.step != cp.examples_cleaned) continue;
    std::printf("  cleaned %3d | val CP'ed %5.1f%% | test acc %.3f | "
                "gap closed %5.1f%%\n",
                log.step, 100.0 * log.frac_val_certain, log.test_accuracy,
                100.0 * GapClosed(log.test_accuracy,
                                  prepared.default_test_accuracy,
                                  prepared.ground_truth_test_accuracy));
  }
  std::printf("  -> all validation examples CP'ed after cleaning %d of %d "
              "dirty examples\n\n",
              cp.examples_cleaned, prepared.dirty_rows);

  std::printf("--- RandomClean baseline ---\n");
  Rng rng(1234);
  const CleaningRunResult random = session.RunRandomClean(&rng);
  for (const CleaningStepLog& log : random.steps) {
    if (log.step % 5 != 0 && log.step != random.examples_cleaned) continue;
    std::printf("  cleaned %3d | val CP'ed %5.1f%% | test acc %.3f\n",
                log.step, 100.0 * log.frac_val_certain, log.test_accuracy);
  }
  std::printf("  -> random strategy needed %d cleanings\n",
              random.examples_cleaned);
  return 0;
}
