// Using the library on external relational data: parse a CSV with missing
// cells, generate candidate repairs, and query certain predictions.
// (The CSV is inline here so the example is self-contained; ReadCsvFile
// works the same way on disk files.)

#include <cstdio>

#include "cleaning/cleaning_task.h"
#include "cleaning/imputers.h"
#include "cleaning/repair_generator.h"
#include "core/certain_predictor.h"
#include "eval/accuracy_bounds.h"
#include "data/csv.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;

  const char* csv =
      "age,income,city,label\n"
      "25,48000,paris,0\n"
      "31,,rome,1\n"       // missing income
      "47,81000,rome,1\n"
      "38,62000,,1\n"      // missing city
      "29,51000,paris,0\n"
      "52,90000,rome,1\n"
      "23,39000,paris,0\n"
      "44,,paris,0\n";     // missing income

  auto table_or = ReadCsvString(csv);
  if (!table_or.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 table_or.status().ToString().c_str());
    return 1;
  }
  const Table& dirty = table_or.value();
  std::printf("parsed %d rows x %d columns, %d missing cells (%.1f%%)\n",
              dirty.num_rows(), dirty.num_columns(), dirty.CountMissing(),
              100.0 * dirty.MissingRate());

  const int label_col = dirty.schema().FieldIndex("label").value();

  // Candidate repairs for each dirty row (numeric: column percentiles;
  // categorical: frequent categories + "other").
  for (int r : dirty.RowsWithMissing()) {
    auto repairs = RowRepairs(dirty, r, label_col);
    std::printf("row %d has %d candidate completions\n", r,
                static_cast<int>(repairs.value().size()));
  }

  // Encode everything through a CleaningTask. Here we have no ground
  // truth, so pass a default-imputed table as a stand-in "clean" version
  // (the CP queries below never look at it) and reuse the table itself as
  // val/test placeholder.
  auto default_or = DefaultCleanImpute(dirty, label_col);
  auto task_or = BuildCleaningTask(dirty, default_or.value(),
                                   default_or.value(), default_or.value(),
                                   "label");
  if (!task_or.ok()) {
    std::fprintf(stderr, "task build failed: %s\n",
                 task_or.status().ToString().c_str());
    return 1;
  }
  const CleaningTask& task = task_or.value();
  std::printf("possible worlds induced by the candidate sets: %s\n",
              task.incomplete.NumPossibleWorlds().ToString().c_str());

  NegativeEuclideanKernel kernel;
  CertainPredictor predictor(&kernel, /*k=*/3);
  int certain = 0;
  for (size_t v = 0; v < task.val_x.size(); ++v) {
    if (predictor.IsCertain(task.incomplete, task.val_x[v])) ++certain;
  }
  std::printf("%d of %d rows are certainly predicted despite the missing "
              "cells\n",
              certain, static_cast<int>(task.val_x.size()));

  // How much could the incompleteness move the accuracy? Every possible
  // world's accuracy provably lies inside this interval.
  const AccuracyBounds bounds = ComputeAccuracyBounds(
      task.incomplete, task.val_x, task.val_y, kernel, /*k=*/3);
  std::printf("accuracy over ALL possible worlds is within [%.3f, %.3f] "
              "(%d certain-correct, %d certain-incorrect, %d uncertain)\n",
              bounds.lower, bounds.upper, bounds.certain_correct,
              bounds.certain_incorrect, bounds.uncertain);
  return 0;
}
