// Walks through the paper's worked examples with every CP engine:
//  - Figure 6: the K=1 counting query over 8 possible worlds;
//  - Figure 1: the Codd-table motivating scenario;
//  - a comparison of the engines (brute force, SS, SS-DC, SS-DC-MC, MM)
//    on the same instance, demonstrating that the polynomial algorithms
//    agree with exhaustive enumeration.

#include <cstdio>

#include "core/brute_force.h"
#include "core/mm.h"
#include "core/ss.h"
#include "core/ss1.h"
#include "core/ss_dc.h"
#include "core/ss_dc_mc.h"
#include "datasets/toy.h"
#include "knn/kernel.h"

namespace {

void PrintCounts(const char* engine,
                 const cpclean::CountResult<cpclean::ExactSemiring>& counts) {
  std::printf("  %-12s label0=%s label1=%s (total %s)\n", engine,
              counts.per_label[0].ToString().c_str(),
              counts.per_label[1].ToString().c_str(),
              counts.total.ToString().c_str());
}

}  // namespace

int main() {
  using namespace cpclean;

  std::printf("=== Figure 6: counting query, K = 1 ===\n");
  const IncompleteDataset fig6 = Figure6Dataset();
  const std::vector<double> t6 = Figure6TestPoint();
  const LinearKernel linear;
  PrintCounts("brute force", BruteForceCount(fig6, t6, linear, 1));
  PrintCounts("SS (naive)", SsCount<ExactSemiring>(fig6, t6, linear, 1));
  PrintCounts("SS-DC", SsDcCount<ExactSemiring>(fig6, t6, linear, 1));
  PrintCounts("SS-DC-MC", SsDcMcCount<ExactSemiring>(fig6, t6, linear, 1));
  PrintCounts("SS1", Ss1ExactCount(fig6, t6, linear));
  std::printf("  paper says: 6 worlds predict label 0, 2 predict label 1\n");

  std::printf("\n=== Figure 1: Codd-table scenario ===\n");
  const IncompleteDataset fig1 = Figure1Dataset();
  const NegativeEuclideanKernel euclid;
  for (double age : {29.0, 5.0, 31.0}) {
    const CheckResult check = MmCheck(fig1, {age}, euclid, 1);
    const auto counts = Ss1ExactCount(fig1, {age}, euclid);
    std::printf("  test age %4.1f -> ", age);
    if (check.CertainLabel() >= 0) {
      std::printf("CERTAIN label %d", check.CertainLabel());
    } else {
      std::printf("uncertain");
    }
    std::printf("  (Q2: %s vs %s)\n", counts.per_label[0].ToString().c_str(),
                counts.per_label[1].ToString().c_str());
  }

  std::printf("\n=== Engine agreement on a larger instance, K = 3 ===\n");
  IncompleteDataset big(2);
  for (int i = 0; i < 10; ++i) {
    IncompleteExample ex;
    ex.label = i % 2;
    for (int j = 0; j <= i % 3; ++j) {
      ex.candidates.push_back(
          {0.37 * i - 1.5 + 0.21 * j, 0.11 * i * j - 0.4});
    }
    CP_CHECK(big.AddExample(std::move(ex)).ok());
  }
  const std::vector<double> t = {0.0, 0.0};
  PrintCounts("brute force", BruteForceCount(big, t, euclid, 3));
  PrintCounts("SS (naive)", SsCount<ExactSemiring>(big, t, euclid, 3));
  PrintCounts("SS-DC", SsDcCount<ExactSemiring>(big, t, euclid, 3));
  PrintCounts("SS-DC-MC", SsDcMcCount<ExactSemiring>(big, t, euclid, 3));
  const std::vector<bool> possible = MmPossibleLabels(big, t, euclid, 3);
  std::printf("  MM possible labels: {%s%s }\n", possible[0] ? " 0" : "",
              possible[1] ? " 1" : "");
  return 0;
}
