// The CP-query serving daemon: named sessions over incomplete datasets,
// batched certify / Q2 / predict / cleaning operations, per-session result
// caching, and a process-global shared thread pool.
//
//   cpclean_server --stdio                 # line protocol on stdin/stdout
//   cpclean_server --port=7071             # TCP listener on 127.0.0.1
//   cpclean_server --port=0 --threads=8    # ephemeral port, 8-thread pool
//   cpclean_server --stdio --data-dir=/var/lib/cpclean --max-sessions=64
//                                          # snapshot persistence + eviction
//
// Protocol reference: README.md "Serving" (one JSON request per line, one
// JSON response per line). `--threads=N` sizes the global pool every
// session shares (0 = hardware concurrency); `--cache=N` sets the default
// per-session result-cache capacity. `--data-dir=PATH` enables session
// snapshot persistence (save_session/load_session, eviction, lazy
// rehydration across restarts); `--max-sessions=N` bounds resident
// sessions (LRU eviction into the data dir).
//
// Storage knobs (README "Storage"): `--storage-mode=ram|mmap` picks how
// sessions hold their candidate slab (mmap backs it with an unlinked
// scratch file so cold blocks page out; results are bit-identical);
// `--log-compact-bytes=N` sets the cleaning-log size at which a delta
// save compacts into a fresh full base snapshot.
//
// TCP transport knobs: `--max-connections=N` bounds concurrent TCP
// connections (an fd-table guard; overload gets a structured error),
// `--max-inflight=N` bounds dispatched-but-unanswered requests (the real
// admission control — idle connections are nearly free),
// `--poller-threads=N` sets how many event-loop threads hold the
// connections, `--request-workers=N` sizes the request execution pool
// (0 = hardware concurrency), and `--no-coalesce` disables merging of
// identical concurrent q2 requests into one engine evaluation.
//
// Resilience knobs (README "Resilience"): `--request-timeout-ms=N`
// answers DeadlineExceeded for requests unanswered after N ms (0 = no
// deadline), `--idle-timeout-ms=N` closes connections idle for N ms
// (0 = never), `--max-request-bytes=N` bounds a request line (0 =
// unlimited), `--output-hwm-bytes=N` / `--max-output-bytes=N` bound a
// slow client's queued responses (pause reads / close). Deterministic
// fault injection arms via the CPCLEAN_FAULTS environment variable
// (see src/common/fault_injection.h for the syntax).
//
// Observability knobs (README "Observability", TCP only):
// `--metrics-port=N` serves Prometheus text on a loopback HTTP
// `GET /metrics` listener (0 = ephemeral, announced on stderr);
// `--slow-request-ms=N` logs one structured JSON line with the full span
// phase breakdown for every request slower than N ms.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "knn/kernel_simd.h"
#include "serve/server.h"

namespace {

cpclean::Server* g_server = nullptr;

void HandleSignal(int) {
  // RequestStop (not Stop): only atomics and shutdown(2), so it is safe in
  // a signal context. Connections drain gracefully.
  if (g_server != nullptr) g_server->RequestStop();
}

bool ParseIntFlag(const char* arg, const char* name, long* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  *out = std::strtol(arg + len + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpclean;

  long port = -1;
  long threads = 0;
  long cache = 1024;
  long max_sessions = 0;
  long max_connections = 0;
  long max_inflight = 0;
  long poller_threads = 1;
  long request_workers = 0;
  long request_timeout_ms = 0;
  long idle_timeout_ms = 0;
  long max_request_bytes = 1 << 20;
  long output_hwm_bytes = 4 << 20;
  long max_output_bytes = 32 << 20;
  long metrics_port = -1;
  long slow_request_ms = 0;
  bool coalesce = true;
  std::string data_dir;
  std::string storage_mode = "ram";
  long log_compact_bytes = 1 << 20;
  bool stdio = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long value = 0;
    if (std::strcmp(arg, "--stdio") == 0) {
      stdio = true;
      port = -1;
    } else if (ParseIntFlag(arg, "--port", &value)) {
      port = value;
      stdio = false;
    } else if (ParseIntFlag(arg, "--threads", &value)) {
      threads = value;
    } else if (ParseIntFlag(arg, "--cache", &value)) {
      cache = value;
    } else if (ParseIntFlag(arg, "--max-sessions", &value)) {
      max_sessions = value;
    } else if (ParseIntFlag(arg, "--max-connections", &value)) {
      max_connections = value;
    } else if (ParseIntFlag(arg, "--max-inflight", &value)) {
      max_inflight = value;
    } else if (ParseIntFlag(arg, "--poller-threads", &value)) {
      poller_threads = value;
    } else if (ParseIntFlag(arg, "--request-workers", &value)) {
      request_workers = value;
    } else if (ParseIntFlag(arg, "--request-timeout-ms", &value)) {
      request_timeout_ms = value;
    } else if (ParseIntFlag(arg, "--idle-timeout-ms", &value)) {
      idle_timeout_ms = value;
    } else if (ParseIntFlag(arg, "--max-request-bytes", &value)) {
      max_request_bytes = value;
    } else if (ParseIntFlag(arg, "--output-hwm-bytes", &value)) {
      output_hwm_bytes = value;
    } else if (ParseIntFlag(arg, "--max-output-bytes", &value)) {
      max_output_bytes = value;
    } else if (ParseIntFlag(arg, "--metrics-port", &value)) {
      metrics_port = value;
    } else if (ParseIntFlag(arg, "--slow-request-ms", &value)) {
      slow_request_ms = value;
    } else if (std::strcmp(arg, "--no-coalesce") == 0) {
      coalesce = false;
    } else if (ParseStringFlag(arg, "--data-dir", &data_dir)) {
    } else if (ParseStringFlag(arg, "--storage-mode", &storage_mode)) {
    } else if (ParseIntFlag(arg, "--log-compact-bytes", &value)) {
      log_compact_bytes = value;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: cpclean_server [--stdio | --port=N] [--threads=N] "
          "[--cache=N] [--data-dir=PATH] [--max-sessions=N] "
          "[--storage-mode=ram|mmap] [--log-compact-bytes=N] "
          "[--max-connections=N] [--max-inflight=N] [--poller-threads=N] "
          "[--request-workers=N] [--no-coalesce] "
          "[--request-timeout-ms=N] [--idle-timeout-ms=N] "
          "[--max-request-bytes=N] [--output-hwm-bytes=N] "
          "[--max-output-bytes=N] [--metrics-port=N] "
          "[--slow-request-ms=N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    }
  }
  if (max_sessions < 0 || max_connections < 0 || max_inflight < 0 ||
      request_workers < 0) {
    std::fprintf(stderr,
                 "--max-sessions/--max-connections/--max-inflight/"
                 "--request-workers must be >= 0\n");
    return 2;
  }
  if (request_timeout_ms < 0 || idle_timeout_ms < 0 ||
      max_request_bytes < 0 || output_hwm_bytes < 0 ||
      max_output_bytes < 0) {
    std::fprintf(stderr,
                 "--request-timeout-ms/--idle-timeout-ms/"
                 "--max-request-bytes/--output-hwm-bytes/"
                 "--max-output-bytes must be >= 0\n");
    return 2;
  }
  if (poller_threads < 1) {
    std::fprintf(stderr, "--poller-threads must be >= 1\n");
    return 2;
  }
  if (slow_request_ms < 0) {
    std::fprintf(stderr, "--slow-request-ms must be >= 0\n");
    return 2;
  }
  if (storage_mode != "ram" && storage_mode != "mmap") {
    std::fprintf(stderr, "--storage-mode must be ram or mmap\n");
    return 2;
  }
  if (log_compact_bytes < 1) {
    std::fprintf(stderr, "--log-compact-bytes must be >= 1\n");
    return 2;
  }
  if (metrics_port >= 0 && stdio) {
    std::fprintf(stderr,
                 "--metrics-port requires the TCP transport (--port=N)\n");
    return 2;
  }

  const Status pool_status =
      ConfigureGlobalThreadPool(static_cast<int>(threads));
  if (!pool_status.ok()) {
    std::fprintf(stderr, "%s\n", pool_status.ToString().c_str());
    return 2;
  }

  // Resolve the similarity-kernel dispatch table NOW: a bad CPCLEAN_SIMD
  // override must fail the launch, not abort a serving process at its
  // first kernel use after connections and sessions already exist.
  std::fprintf(stderr, "cpclean_server: similarity kernels at %s\n",
               SimdLevelName(simd::ActiveSimdLevel()));

  ServerOptions options;
  options.default_cache_capacity =
      cache < 0 ? 0 : static_cast<size_t>(cache);
  options.data_dir = data_dir;
  options.max_sessions = static_cast<size_t>(max_sessions);
  options.storage_mode = storage_mode;
  options.log_compact_bytes = static_cast<size_t>(log_compact_bytes);
  options.max_connections = static_cast<int>(max_connections);
  options.max_inflight = static_cast<int>(max_inflight);
  options.poller_threads = static_cast<int>(poller_threads);
  options.request_workers = static_cast<int>(request_workers);
  options.coalesce_q2 = coalesce;
  options.request_timeout_ms = static_cast<int>(request_timeout_ms);
  options.idle_timeout_ms = static_cast<int>(idle_timeout_ms);
  options.max_request_bytes = static_cast<size_t>(max_request_bytes);
  options.output_hwm_bytes = static_cast<size_t>(output_hwm_bytes);
  options.max_output_bytes = static_cast<size_t>(max_output_bytes);
  options.metrics_port = static_cast<int>(metrics_port);
  options.slow_request_ms = static_cast<int>(slow_request_ms);
  Server server(options);

  if (stdio) {
    // No signal handlers here: RequestStop cannot interrupt a getline
    // blocked on stdin (glibc restarts it), so the default terminate
    // disposition is the correct Ctrl-C behavior for the pipe transport.
    server.RunStdio(std::cin, std::cout);
    return 0;
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::fprintf(stderr, "cpclean_server: pool=%d threads, cache=%ld\n",
               GlobalThreadPoolThreads(), cache);
  // Bind happens inside ServeTcp; report the port it actually got (useful
  // with --port=0) once it is listening. port() moves off -1 on both the
  // listening and the failure path, so this thread always terminates.
  std::thread announce([&server] {
    while (server.port() == -1 && !server.stopping()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (server.port() >= 0) {
      std::fprintf(stderr, "cpclean_server: listening on 127.0.0.1:%d\n",
                   server.port());
      // Scrape scripts parse this line (the metrics port is bound before
      // the main port is published, so it is final here).
      if (server.metrics_port() >= 0) {
        std::fprintf(stderr, "cpclean_server: metrics on 127.0.0.1:%d\n",
                     server.metrics_port());
      }
    }
  });
  const Status status = server.ServeTcp(static_cast<int>(port));
  announce.join();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
