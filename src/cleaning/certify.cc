#include "cleaning/certify.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/stats.h"
#include "core/certain_predictor.h"
#include "core/fast_q2.h"

namespace cpclean {

Result<CertifyResult> CertifyTestPoint(const CleaningTask& task,
                                       const std::vector<double>& t,
                                       const SimilarityKernel& kernel,
                                       const CertifyOptions& options) {
  if (options.k < 1 || options.k > task.incomplete.num_examples()) {
    return Status::InvalidArgument("k out of range");
  }
  IncompleteDataset working = task.incomplete;
  const CertainPredictor predictor(&kernel, options.k);

  CertifyResult result;
  std::vector<int> dirty = working.DirtyExamples();
  while (true) {
    const CheckResult check = predictor.Check(working, t);
    if (check.CertainLabel() >= 0) {
      result.certified = true;
      result.certain_label = check.CertainLabel();
      return result;
    }
    if (dirty.empty()) {
      return Status::Internal(
          "dataset fully cleaned but prediction still uncertain");
    }
    if (options.max_cleaned >= 0 &&
        static_cast<int>(result.cleaned.size()) >= options.max_cleaned) {
      return result;  // budget exhausted, not certified
    }

    // Greedy step: clean the tuple minimizing the expected entropy of this
    // point's Q2 distribution. Tuples that can never enter the top-K are
    // provably irrelevant and skipped outright.
    FastQ2 q2(&working, options.k, 1e-9);
    q2.SetTestPoint(t, kernel);
    const double floor = q2.TopKFloor();
    double best = std::numeric_limits<double>::infinity();
    int chosen_pos = -1;
    for (size_t p = 0; p < dirty.size(); ++p) {
      const int i = dirty[p];
      if (q2.MaxSimilarity(i) < floor) continue;
      const int m = working.num_candidates(i);
      double sum = 0.0;
      for (int j = 0; j < m; ++j) {
        sum += Entropy(q2.FractionsPinned(i, j));
      }
      const double expected = sum / static_cast<double>(m);
      if (expected < best) {
        best = expected;
        chosen_pos = static_cast<int>(p);
      }
    }
    if (chosen_pos < 0) {
      // Every dirty tuple is provably outside this point's top-K in every
      // world, yet the prediction is uncertain — cannot happen: an
      // uncertain prediction requires at least one influential dirty tuple.
      return Status::Internal("no influential dirty tuple found");
    }
    const int chosen = dirty[static_cast<size_t>(chosen_pos)];
    dirty.erase(dirty.begin() + chosen_pos);
    working.FixExample(chosen,
                       task.true_candidate[static_cast<size_t>(chosen)]);
    result.cleaned.push_back(chosen);
  }
}

}  // namespace cpclean
