#include "cleaning/certify.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/certain_predictor.h"
#include "core/fast_q2.h"

namespace cpclean {

Result<CertifyResult> CertifyTestPoint(const CleaningTask& task,
                                       const std::vector<double>& t,
                                       const SimilarityKernel& kernel,
                                       const CertifyOptions& options) {
  return CertifyOnDataset(task.incomplete, task.true_candidate, t, kernel,
                          options);
}

Result<CertifyResult> CertifyOnDataset(const IncompleteDataset& dataset,
                                       const std::vector<int>& true_candidate,
                                       const std::vector<double>& t,
                                       const SimilarityKernel& kernel,
                                       const CertifyOptions& options) {
  if (options.k < 1 || options.k > dataset.num_examples()) {
    return Status::InvalidArgument("k out of range");
  }
  if (static_cast<int>(true_candidate.size()) < dataset.num_examples()) {
    return Status::InvalidArgument(
        "true_candidate must cover every example");
  }
  if (static_cast<int>(t.size()) != dataset.dim()) {
    return Status::InvalidArgument("test point dimension mismatch");
  }
  IncompleteDataset working = dataset;
  const CertainPredictor predictor(&kernel, options.k);
  // The pool (and its per-worker engines) is selected lazily: the common
  // case — the prediction is already certain — returns from the first
  // Check without touching a pool. num_threads == 0 shares the process
  // pool; a positive value owns a private one.
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned_pool;
  std::vector<std::unique_ptr<FastQ2>> engines;
  // Workers lazily re-bind to the current cleaning round: FixExample keeps
  // the flat slab's shape but changes candidate counts, so each engine must
  // SetTestPoint (which auto-rebinds on the dataset version bump) and
  // recompute its pruning floor once per round before scoring its slice.
  std::vector<uint64_t> engine_round;
  std::vector<double> engine_floor;

  CertifyResult result;
  std::vector<int> dirty = working.DirtyExamples();
  std::vector<double> expected;
  uint64_t round = 0;
  while (true) {
    ++round;
    const CheckResult check = predictor.Check(working, t);
    if (check.CertainLabel() >= 0) {
      result.certified = true;
      result.certain_label = check.CertainLabel();
      return result;
    }
    if (dirty.empty()) {
      return Status::Internal(
          "dataset fully cleaned but prediction still uncertain");
    }
    if (options.max_cleaned >= 0 &&
        static_cast<int>(result.cleaned.size()) >= options.max_cleaned) {
      return result;  // budget exhausted, not certified
    }

    // Greedy step: clean the tuple minimizing the expected entropy of this
    // point's Q2 distribution. Tuples that can never enter the top-K are
    // provably irrelevant and skipped outright. Dirty tuples are scored in
    // parallel, each worker with its own FastQ2 bound to the same test
    // point; the serial argmin below tie-breaks by example index, so the
    // chosen tuple does not depend on thread count or dirty's ordering.
    constexpr double kPruned = std::numeric_limits<double>::infinity();
    expected.assign(dirty.size(), kPruned);
    if (pool == nullptr) {
      if (options.num_threads == 0) {
        pool = &GlobalThreadPool();
      } else {
        owned_pool = std::make_unique<ThreadPool>(options.num_threads);
        pool = owned_pool.get();
      }
      engines.resize(static_cast<size_t>(pool->num_threads()));
      engine_round.assign(engines.size(), 0);
      engine_floor.assign(engines.size(), 0.0);
    }
    pool->ParallelFor(
        static_cast<int64_t>(dirty.size()), [&](int64_t p, int worker) {
          auto& engine = engines[static_cast<size_t>(worker)];
          if (!engine) {
            engine = std::make_unique<FastQ2>(&working, options.k, 1e-9);
          }
          if (engine_round[static_cast<size_t>(worker)] != round) {
            engine->SetTestPoint(t, kernel);
            engine_round[static_cast<size_t>(worker)] = round;
            engine_floor[static_cast<size_t>(worker)] = engine->TopKFloor();
          }
          FastQ2& q2 = *engine;
          const double floor = engine_floor[static_cast<size_t>(worker)];
          const int i = dirty[static_cast<size_t>(p)];
          if (q2.MaxSimilarity(i) < floor) return;
          const int m = working.num_candidates(i);
          // Shared-prefix sweep: bit-identical to (and cheaper than) m
          // separate EntropyPinned(i, j) calls summed in candidate order.
          const std::vector<double>& pinned = q2.EntropyPinnedSweep(i);
          double sum = 0.0;
          for (int j = 0; j < m; ++j) sum += pinned[static_cast<size_t>(j)];
          expected[static_cast<size_t>(p)] =
              sum / static_cast<double>(m);
        });
    int chosen_pos = -1;
    for (size_t p = 0; p < dirty.size(); ++p) {
      if (expected[p] == kPruned) continue;
      if (chosen_pos < 0 || expected[p] < expected[static_cast<size_t>(chosen_pos)] ||
          (expected[p] == expected[static_cast<size_t>(chosen_pos)] &&
           dirty[p] < dirty[static_cast<size_t>(chosen_pos)])) {
        chosen_pos = static_cast<int>(p);
      }
    }
    if (chosen_pos < 0) {
      // Every dirty tuple is provably outside this point's top-K in every
      // world, yet the prediction is uncertain — cannot happen: an
      // uncertain prediction requires at least one influential dirty tuple.
      return Status::Internal("no influential dirty tuple found");
    }
    const int chosen = dirty[static_cast<size_t>(chosen_pos)];
    dirty[static_cast<size_t>(chosen_pos)] = dirty.back();
    dirty.pop_back();
    working.FixExample(chosen,
                       true_candidate[static_cast<size_t>(chosen)]);
    result.cleaned.push_back(chosen);
  }
}

}  // namespace cpclean
