#ifndef CPCLEAN_CLEANING_IMPORTANCE_H_
#define CPCLEAN_CLEANING_IMPORTANCE_H_

#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "knn/kernel.h"

namespace cpclean {

/// Feature-importance assessment used to drive MNAR injection, exactly as
/// the paper describes (§5.1): "assess the relative importance of each
/// feature in a classification task (by measuring the accuracy loss after
/// removing a feature)".
///
/// Trains a KNN classifier on `train` and measures validation accuracy
/// with the full feature set, then with each feature ablated; the
/// importance of a feature is max(0, full_accuracy - ablated_accuracy),
/// with a small floor so every feature retains nonzero probability.
/// Both tables must be complete. Returns one entry per column
/// (label column gets 0).
Result<std::vector<double>> ComputeFeatureImportance(
    const Table& train, const Table& val, int label_col, int k,
    const SimilarityKernel& kernel, double floor = 0.01);

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_IMPORTANCE_H_
