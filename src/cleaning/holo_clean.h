#ifndef CPCLEAN_CLEANING_HOLO_CLEAN_H_
#define CPCLEAN_CLEANING_HOLO_CLEAN_H_

#include "common/result.h"
#include "data/table.h"

namespace cpclean {

/// HoloCleanSim — a stand-in for HoloClean [Rekatsinas et al., 2017] per
/// DESIGN.md §3: a *task-oblivious* probabilistic imputer that fills each
/// missing cell with its most likely value given correlations with the
/// observed attributes, knowing nothing about the downstream classifier.
///
/// Mechanism: for a missing cell (r, c), the donor pool is every row with
/// column c observed; rows are ranked by a normalized mixed-type distance
/// over the attributes observed in both rows (numeric: |a-b|/σ,
/// categorical: 0/1 mismatch). The `num_donors` nearest donors vote — a
/// distance-weighted mean for numeric targets, a weighted mode for
/// categorical ones. This reproduces the property Table 2 exercises:
/// statistically plausible repairs that may help or *hurt* the classifier.
struct HoloCleanOptions {
  int num_donors = 10;
};

Result<Table> HoloCleanImpute(const Table& dirty, int label_col,
                              const HoloCleanOptions& options =
                                  HoloCleanOptions());

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_HOLO_CLEAN_H_
