#ifndef CPCLEAN_CLEANING_CP_CLEAN_H_
#define CPCLEAN_CLEANING_CP_CLEAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cleaning/cleaning_task.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "knn/kernel.h"

namespace cpclean {

/// One human-cleaning step and the state after it.
struct CleaningStepLog {
  int step = 0;              // number of examples cleaned so far
  int cleaned_example = -1;  // train row cleaned at this step (-1: baseline)
  double frac_val_certain = 0.0;  // fraction of validation points CP'ed
  double test_accuracy = 0.0;     // KNN on the current best-guess world
  double mean_val_entropy = 0.0;  // mean Q2 prediction entropy over val
};

/// Full trace of a cleaning run.
struct CleaningRunResult {
  std::vector<CleaningStepLog> steps;  // steps[0] is the pre-cleaning state
  int examples_cleaned = 0;
  bool all_val_certain = false;
  double final_test_accuracy = 0.0;
};

struct CpCleanOptions {
  int k = 3;
  /// Cleaning budget: stop after this many examples (-1 = no budget).
  int max_cleaned = -1;
  /// Stop as soon as every validation example is CP'ed (Algorithm 3 line 3).
  bool stop_when_all_certain = true;
  /// Evaluate test accuracy at every step (the Figure 9 blue series);
  /// disable to speed up pure-cleaning-effort measurements.
  bool track_test_accuracy = true;
  /// Track mean validation entropy at every step (costs one Q2 sweep).
  bool track_entropy = false;
  /// Use the FastQ2 engine (precomputed scans, early termination,
  /// never-in-top-K pruning) for the greedy selection. The slow path calls
  /// the reference SS-DC engine per candidate and exists for validation.
  bool use_fast_selection = true;
  /// Mass tolerance for FastQ2's early termination.
  double fast_epsilon = 1e-9;
  /// Worker threads for the independent per-validation-point loops
  /// (selection scores, certainty refresh, entropy tracking). 0 = the
  /// process-global shared pool (`GlobalThreadPool()`, hardware concurrency
  /// by default) so concurrent sessions share cores; any positive value
  /// gives this session a private pool of exactly that size (1 = fully
  /// serial, no worker threads, the pre-pool code path). Every value
  /// produces bit-identical scores, cleaning order, and step logs: workers
  /// fill disjoint per-point slots and the floating-point reductions replay
  /// in validation order on one thread.
  int num_threads = 0;
  /// Upper bound in bytes on the streamed FastSelectionScores contribution
  /// buffer (one double per active-validation-point x dirty-example pair).
  /// Validation points are processed in ordered blocks of
  /// `max_contrib_bytes / (8 * |dirty|)` (floored at one row), so peak
  /// memory is O(block x |dirty|) instead of O(|active_val| x |dirty|).
  /// The per-example reduction is a left fold in ascending validation order
  /// regardless of the block partition, so every value — like every thread
  /// count — yields bit-identical scores.
  size_t max_contrib_bytes = size_t{2} << 20;
};

/// How a CleaningSession backs its working dataset (see
/// `IncompleteDataset`'s storage modes). Configured once by the serving
/// layer and re-applied automatically after every internal Reset (Run*
/// entry points, Restore), which rebuilds the working copy from the task.
struct WorkingStorageOptions {
  /// Record every working-dataset mutation in its journal, enabling
  /// O(delta) persistence through the append-only cleaning log.
  bool journal = false;
  /// Non-empty: back the working flat slab with an unlinked mmap scratch
  /// file under this directory; empty: plain RAM.
  std::string mmap_scratch_dir;
  /// Streaming window for file-backed candidate scans.
  size_t stream_window_bytes = size_t{1} << 20;
};

/// One cleaning decision and its certification effect: the 1-based step
/// index, the example cleaned, the working-dataset version right after the
/// fix, and the validation points that became certainly predicted as a
/// result. The trail of these records is the provenance the serving
/// layer's `why_certified` op serves.
struct CleaningAuditRecord {
  int step = 0;
  int example = -1;
  uint64_t version = 0;
  std::vector<int> newly_certain;  // val indices, ascending
};

/// Everything that distinguishes a mid-cleaning session from a freshly
/// constructed one on the same task: the examples cleaned so far, in
/// cleaning order. Replaying the order against a fresh session restores
/// bit-identical state — the working dataset (same FixExample sequence),
/// the best-guess world, the dirty set, and the validation-certainty flags
/// (certainty is monotone under cleaning, so a from-scratch refresh marks
/// exactly the points the interrupted run had marked). Serialized by the
/// serving layer's session store next to the working candidate space.
struct CleaningSnapshot {
  /// CleanExample replay sequence; excludes rows born clean in the task.
  std::vector<int> cleaned_order;
  /// Audit records for a *prefix* of `cleaned_order` (possibly all of it,
  /// possibly empty for pre-provenance snapshots). Restore trusts the
  /// stored prefix and recomputes per-step attribution for the rest.
  std::vector<CleaningAuditRecord> audit;
};

/// Driver for human-in-the-loop cleaning over a CleaningTask. Owns a
/// working copy of the incomplete dataset and the current "best guess"
/// world (cleaned rows take their oracle value, still-dirty rows their
/// mean/mode-imputed default), which is what mid-run test accuracy is
/// measured on (DESIGN.md §4.6).
class CleaningSession {
 public:
  /// `task` and `kernel` are borrowed and must outlive the session.
  CleaningSession(const CleaningTask* task, const SimilarityKernel* kernel,
                  const CpCleanOptions& options);

  /// Status-returning construction for server paths: validates the inputs
  /// (the constructor CP_CHECK-aborts on them instead) and returns
  /// InvalidArgument for a null task/kernel, k < 1, k beyond the FastQ2
  /// engine cap, or k larger than the training set.
  static Result<std::unique_ptr<CleaningSession>> Create(
      const CleaningTask* task, const SimilarityKernel* kernel,
      const CpCleanOptions& options);

  /// CPClean (paper Algorithm 3): sequential information maximization —
  /// each step cleans the example minimizing the expected conditional
  /// entropy of the validation predictions under a uniform prior over
  /// which candidate is the truth (Equation 4).
  CleaningRunResult RunCpClean();

  /// Baseline: cleans uniformly random dirty examples (paper §5.2,
  /// "RandomClean").
  CleaningRunResult RunRandomClean(Rng* rng);

  /// Expected-entropy scores for every example in `dirty`, via FastQ2,
  /// parallelized over validation points. Public for the determinism tests
  /// and benchmarks; RunCpClean is the intended entry point.
  std::vector<double> FastSelectionScores(const std::vector<int>& dirty);

  // --- Incremental stepping (the serving layer's interface) ---------------
  //
  // `RunCpClean`/`RunRandomClean` reset the session and run a whole budgeted
  // loop; a server instead advances one greedy step at a time between
  // queries against the current state. Interleaving StepGreedy with the
  // run-loop API is fine — the Run* entry points always Reset first.

  /// Performs one greedy CPClean step (select argmin expected entropy,
  /// clean it, refresh validation certainty) against the session's current
  /// state. Returns the cleaned example index, or -1 when there is nothing
  /// left to clean or (with `stop_when_all_certain`) every validation point
  /// is already CP'ed. A sequence of StepGreedy calls cleans exactly the
  /// same examples in the same order as RunCpClean.
  int StepGreedy();

  /// The session's current incomplete dataset: the task's candidate space
  /// with every cleaned example collapsed to its true candidate. CP queries
  /// served against the session evaluate on this view.
  const IncompleteDataset& working() const { return working_; }

  /// Fraction of validation points currently certainly predicted
  /// (refreshing lazily after a cleaning step).
  double FracValCertain();

  /// The fraction at the last certainty refresh, without refreshing — the
  /// non-mutating view concurrent readers (the serving layer's shared-lock
  /// `stats` op) use. Fresh after `FracValCertain`, `Restore`, and every
  /// `StepGreedy`; stale (never refreshed) right after construction/Reset
  /// until one of those runs.
  double LastFracValCertain() const {
    if (task_->val_x.empty()) return 1.0;
    return static_cast<double>(num_val_certain_) /
           static_cast<double>(task_->val_x.size());
  }

  /// True when the certainty flags reflect the current working dataset.
  bool val_certainty_fresh() const { return val_certainty_fresh_; }

  /// Per-step cleaning-decision audit trail since the last Reset: one
  /// record per explicit cleaning step (StepGreedy, the Run* loops, and
  /// Restore replay), in step order. Rows born clean and the baseline
  /// certainty refresh produce no records.
  const std::vector<CleaningAuditRecord>& audit() const { return audit_; }

  // --- Snapshot / restore (session persistence) ---------------------------

  /// Captures the cleaning state for persistence (see CleaningSnapshot).
  CleaningSnapshot Snapshot() const {
    return CleaningSnapshot{cleaned_order_, audit_};
  }

  /// Resets to the task's initial state, then replays `snapshot`'s cleaning
  /// order and refreshes validation certainty. Afterwards every observable
  /// — working dataset bits, dirty set, certainty flags, and the example
  /// sequence future StepGreedy calls clean — is identical to the session
  /// the snapshot was taken from. InvalidArgument on out-of-range,
  /// born-clean, or repeated example ids.
  Status Restore(const CleaningSnapshot& snapshot);

  /// Applies `storage` to the working dataset now and after every future
  /// Reset. Fails (leaving the session in RAM mode) when the scratch
  /// mapping cannot be created; later re-applies fall back to RAM
  /// silently — the two modes are bit-identical, only paging differs.
  Status ConfigureWorkingStorage(const WorkingStorageOptions& storage);

  /// Examples not yet cleaned.
  int NumDirtyRemaining() const { return static_cast<int>(dirty_.size()); }

  /// Cleaning steps taken since the last Reset (excludes rows that were
  /// already clean in the task).
  int NumCleaned() const { return num_cleaned_; }

  const CpCleanOptions& options() const { return options_; }

 private:
  void Reset();
  /// Re-applies storage_ to a freshly rebuilt working_ (best effort).
  void ApplyWorkingStorage();
  /// Position in `dirty_` of the greedy choice (fast or reference scoring
  /// per `use_fast_selection`, ties toward the smallest example index).
  int SelectGreedyPos();
  /// Marks newly-certain validation points; returns the certain fraction.
  /// (CP'ed points stay CP'ed: cleaning only removes possible worlds.)
  /// Side effect: `last_newly_certain_` holds the points marked this call.
  double RefreshValCertainty();
  /// Appends an audit record for the step that just cleaned `example`
  /// (call right after its RefreshValCertainty).
  void RecordAudit(int example);
  double CurrentTestAccuracy() const;
  double MeanValEntropy() const;
  /// Expected mean validation entropy after cleaning example `i`
  /// (Equation 4), averaging over its candidates as possible truths.
  /// Reference implementation (SS-DC per candidate); the fast path above
  /// computes the same scores batched.
  double ExpectedEntropyAfterCleaning(int i);
  void CleanExample(int i);
  CleaningRunResult RunLoop(bool greedy, Rng* rng);
  void LogStep(CleaningRunResult* result, int step, int cleaned_example);

  const CleaningTask* task_;
  const SimilarityKernel* kernel_;
  CpCleanOptions options_;
  WorkingStorageOptions storage_;

  // The pool the per-validation-point loops run on: the process-global
  // shared pool when options_.num_threads == 0, else a privately owned one.
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  IncompleteDataset working_;
  std::vector<std::vector<double>> world_;  // current best-guess features
  std::vector<uint8_t> cleaned_;
  std::vector<int> dirty_;  // not-yet-cleaned examples (order irrelevant)
  std::vector<int> cleaned_order_;  // CleanExample sequence since Reset
  std::vector<CleaningAuditRecord> audit_;  // one record per cleaning step
  std::vector<int> last_newly_certain_;     // RefreshValCertainty scratch
  int num_cleaned_ = 0;
  std::vector<uint8_t> val_certain_;
  int num_val_certain_ = 0;
  // False after a mutation until RefreshValCertainty runs again.
  bool val_certainty_fresh_ = false;
};

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_CP_CLEAN_H_
