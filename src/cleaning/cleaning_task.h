#ifndef CPCLEAN_CLEANING_CLEANING_TASK_H_
#define CPCLEAN_CLEANING_CLEANING_TASK_H_

#include <string>
#include <vector>

#include "cleaning/repair_generator.h"
#include "common/result.h"
#include "data/encoder.h"
#include "data/table.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// Everything a "data cleaning for ML" experiment needs, bundled: the
/// relational views (dirty training set, held-back ground truth, complete
/// validation and test sets), the fitted encoders, the incomplete dataset
/// of encoded candidate repairs, and the simulated human oracle's answers.
///
/// Ground truth (`clean_train`) is used for two things only, mirroring the
/// paper's protocol: (1) the oracle answer for a cleaned tuple — the
/// candidate repair closest to the true value; (2) the "Ground Truth"
/// upper-bound accuracy.
struct CleaningTask {
  // Relational views (shared schema).
  Table dirty_train;
  Table clean_train;
  Table val;
  Table test;
  int label_col = -1;
  RepairOptions repair_options;

  // Encoding.
  FeatureEncoder encoder;
  LabelEncoder labels;

  // Candidate space.
  IncompleteDataset incomplete;  // encoded candidate sets, one per train row
  std::vector<std::vector<std::vector<Value>>> candidate_rows;
  std::vector<int> true_candidate;  // oracle answer per train row

  // Encoded fixed sets.
  std::vector<std::vector<double>> val_x, test_x, clean_train_x, default_x;
  std::vector<int> val_y, test_y, train_y;

  /// Train rows with more than one candidate repair.
  std::vector<int> DirtyRows() const { return incomplete.DirtyExamples(); }

  /// KNN accuracy on the encoded validation / test set when training on
  /// the given encoded feature matrix (labels = train_y).
  double AccuracyWith(const std::vector<std::vector<double>>& train_features,
                      const std::vector<std::vector<double>>& eval_x,
                      const std::vector<int>& eval_y,
                      const SimilarityKernel& kernel, int k) const;

  /// Encodes a completed relational training table (e.g., the output of an
  /// imputer) into feature vectors with the task's encoder.
  Result<std::vector<std::vector<double>>> EncodeCompletedTrain(
      const Table& completed) const;
};

/// Builds a task from the four tables. `label_name` selects the class
/// column. Candidate repairs are generated from `dirty_train` per
/// `repair_options`; the feature encoder is fit on the default-imputed
/// training table plus val and test so every candidate has an encoding.
Result<CleaningTask> BuildCleaningTask(
    const Table& dirty_train, const Table& clean_train, const Table& val,
    const Table& test, const std::string& label_name,
    const RepairOptions& repair_options = RepairOptions());

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_CLEANING_TASK_H_
