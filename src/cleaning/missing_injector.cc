#include "cleaning/missing_injector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

Result<Table> InjectMissing(const Table& clean, int label_col,
                            const std::vector<double>& feature_importance,
                            const InjectionOptions& options, Rng* rng) {
  CP_CHECK(rng != nullptr);
  if (options.missing_rate < 0.0 || options.missing_rate >= 1.0) {
    return Status::InvalidArgument("missing_rate must be in [0, 1)");
  }
  if (static_cast<int>(feature_importance.size()) != clean.num_columns()) {
    return Status::InvalidArgument(
        "feature_importance size must match column count");
  }

  std::vector<int> feature_cols;
  for (int c = 0; c < clean.num_columns(); ++c) {
    if (c != label_col) feature_cols.push_back(c);
  }
  if (feature_cols.empty()) {
    return Status::InvalidArgument("no feature columns to inject into");
  }

  // Per-feature selection weights: importance under MNAR, uniform under
  // MCAR. Guard against all-zero importance.
  std::vector<double> weights;
  weights.reserve(feature_cols.size());
  double total_weight = 0.0;
  for (int c : feature_cols) {
    double w = options.mnar
                   ? std::max(feature_importance[static_cast<size_t>(c)], 0.0)
                   : 1.0;
    weights.push_back(w);
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    std::fill(weights.begin(), weights.end(), 1.0);
  }

  Table dirty = clean;
  const int total_feature_cells =
      clean.num_rows() * static_cast<int>(feature_cols.size());
  const int target_missing = static_cast<int>(
      options.missing_rate * static_cast<double>(total_feature_cells));

  std::vector<int> missing_in_row(static_cast<size_t>(clean.num_rows()), 0);
  int injected = 0;
  int attempts = 0;
  const int max_attempts = 50 * target_missing + 1000;
  while (injected < target_missing && attempts < max_attempts) {
    ++attempts;
    const int row = rng->NextInt(0, clean.num_rows() - 1);
    if (missing_in_row[static_cast<size_t>(row)] >=
        options.max_missing_per_row) {
      continue;
    }
    const int pick = rng->NextCategorical(weights);
    const int col = feature_cols[static_cast<size_t>(pick)];
    if (dirty.at(row, col).is_null()) continue;
    dirty.Set(row, col, Value::Null());
    ++missing_in_row[static_cast<size_t>(row)];
    ++injected;
  }
  if (injected < target_missing) {
    return Status::Internal(StrFormat(
        "could only inject %d of %d target missing cells (cap too tight?)",
        injected, target_missing));
  }
  return dirty;
}

}  // namespace cpclean
