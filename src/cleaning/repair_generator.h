#ifndef CPCLEAN_CLEANING_REPAIR_GENERATOR_H_
#define CPCLEAN_CLEANING_REPAIR_GENERATOR_H_

#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace cpclean {

/// Candidate-repair generation (paper §5.1, "CPClean" setup):
///  - numeric column with missing cells: {min, 25th percentile, mean,
///    75th percentile, max} of the observed values;
///  - categorical column: the top 4 most frequent categories plus a dummy
///    "other" category.
/// A row with several missing cells takes the Cartesian product of its
/// per-cell repairs, capped at `max_candidates_per_row` (the paper uses
/// the full product; the cap only guards pathological rows).
struct RepairOptions {
  int numeric_percentile_candidates = 5;  // fixed classic set when 5
  int categorical_top_k = 4;
  std::string other_category = "__other__";
  int max_candidates_per_row = 125;
};

/// Candidate repairs for a single cell of `table` at column `col`, computed
/// from the observed (non-null) values of that column.
std::vector<Value> CellRepairs(const Table& table, int col,
                               const RepairOptions& options = RepairOptions());

/// All candidate completions of row `row`: each returned row is a complete
/// copy of the original with every NULL feature cell replaced by one of its
/// cell repairs. A complete row yields exactly itself. `label_col` cells
/// are never repaired (labels are certain, paper Def. 1).
Result<std::vector<std::vector<Value>>> RowRepairs(
    const Table& table, int row, int label_col,
    const RepairOptions& options = RepairOptions());

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_REPAIR_GENERATOR_H_
