#include "cleaning/imputers.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/stats.h"

namespace cpclean {

namespace {

double NumericStatOf(const std::vector<double>& observed,
                     ImputeMethod::NumericStat stat) {
  if (observed.empty()) return 0.0;
  switch (stat) {
    case ImputeMethod::NumericStat::kMin:
      return Min(observed);
    case ImputeMethod::NumericStat::kP25:
      return Percentile(observed, 25.0);
    case ImputeMethod::NumericStat::kMean:
      return Mean(observed);
    case ImputeMethod::NumericStat::kP75:
      return Percentile(observed, 75.0);
    case ImputeMethod::NumericStat::kMax:
      return Max(observed);
  }
  return 0.0;
}

std::string CategoricalRankOf(const std::vector<std::string>& observed,
                              int rank) {
  std::map<std::string, int> freq;
  for (const auto& cat : observed) ++freq[cat];
  std::vector<std::pair<int, std::string>> ranked;
  ranked.reserve(freq.size());
  for (const auto& [cat, count] : freq) ranked.push_back({count, cat});
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (rank < 0 || rank >= static_cast<int>(ranked.size())) {
    return "__other__";
  }
  return ranked[static_cast<size_t>(rank)].second;
}

}  // namespace

Result<Table> DefaultCleanImpute(const Table& dirty, int label_col) {
  ImputeMethod mean_mode;
  mean_mode.numeric = ImputeMethod::NumericStat::kMean;
  mean_mode.categorical_rank = 0;
  mean_mode.name = "mean/mode";
  return ApplyImputeMethod(dirty, label_col, mean_mode);
}

std::vector<ImputeMethod> BoostCleanMethodSpace() {
  using Stat = ImputeMethod::NumericStat;
  return {
      {Stat::kMin, 3, "min/rank3"},
      {Stat::kP25, 2, "p25/rank2"},
      {Stat::kMean, 0, "mean/mode"},
      {Stat::kP75, 1, "p75/rank1"},
      {Stat::kMax, 4, "max/other"},
  };
}

Result<Table> ApplyImputeMethod(const Table& dirty, int label_col,
                                const ImputeMethod& method) {
  Table out = dirty;
  for (int c = 0; c < dirty.num_columns(); ++c) {
    if (c == label_col) continue;
    if (dirty.CountMissingInColumn(c) == 0) continue;
    const Field& field = dirty.schema().field(c);
    Value fill;
    if (field.type == ColumnType::kNumeric) {
      fill = Value::Numeric(NumericStatOf(dirty.NumericColumn(c),
                                          method.numeric));
    } else {
      fill = Value::Categorical(CategoricalRankOf(dirty.CategoricalColumn(c),
                                                  method.categorical_rank));
    }
    for (int r = 0; r < dirty.num_rows(); ++r) {
      if (dirty.at(r, c).is_null()) out.Set(r, c, fill);
    }
  }
  if (out.CountMissing() > 0) {
    return Status::Internal("imputation left NULL cells behind");
  }
  return out;
}

}  // namespace cpclean
