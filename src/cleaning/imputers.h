#ifndef CPCLEAN_CLEANING_IMPUTERS_H_
#define CPCLEAN_CLEANING_IMPUTERS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace cpclean {

/// "Default Cleaning" (paper §5.1): the most common missing-value handling
/// in practice — numeric NULLs take the column mean, categorical NULLs the
/// column mode. This is the lower-bound baseline of Table 2.
Result<Table> DefaultCleanImpute(const Table& dirty, int label_col);

/// One element of BoostClean's predefined repair-action space: which column
/// statistic fills numeric NULLs and which frequency rank fills
/// categorical NULLs (rank 0 = mode; ranks past the vocabulary fall back
/// to the dummy "other" category, mirroring the candidate-repair space).
struct ImputeMethod {
  enum class NumericStat { kMin, kP25, kMean, kP75, kMax };
  NumericStat numeric = NumericStat::kMean;
  int categorical_rank = 0;
  std::string name = "mean/mode";
};

/// The method space shared by BoostClean and CPClean's candidate repairs
/// (5 numeric statistics × matching categorical ranks).
std::vector<ImputeMethod> BoostCleanMethodSpace();

/// Applies one imputation method to every NULL feature cell.
Result<Table> ApplyImputeMethod(const Table& dirty, int label_col,
                                const ImputeMethod& method);

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_IMPUTERS_H_
