#ifndef CPCLEAN_CLEANING_BOOST_CLEAN_H_
#define CPCLEAN_CLEANING_BOOST_CLEAN_H_

#include <string>
#include <vector>

#include "cleaning/cleaning_task.h"
#include "cleaning/imputers.h"
#include "common/result.h"
#include "knn/kernel.h"

namespace cpclean {

/// BoostClean [Krishnan et al., 2017] as the paper's experiments configure
/// it (§5.1): from the predefined space of repair actions — the same space
/// CPClean's candidate repairs come from — select the action with the
/// highest validation accuracy, then report its test accuracy. Entirely
/// automatic; no human oracle.
struct BoostCleanResult {
  ImputeMethod best_method;
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  /// (method name, validation accuracy) for every action considered.
  std::vector<std::pair<std::string, double>> method_val_accuracy;
};

Result<BoostCleanResult> RunBoostClean(const CleaningTask& task,
                                       const SimilarityKernel& kernel, int k);

/// Greedy per-column variant (an extension the original system supports):
/// selects the best repair action independently for each dirty column,
/// re-scoring on validation accuracy after each column is committed.
Result<BoostCleanResult> RunBoostCleanPerColumn(const CleaningTask& task,
                                                const SimilarityKernel& kernel,
                                                int k);

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_BOOST_CLEAN_H_
