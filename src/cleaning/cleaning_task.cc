#include "cleaning/cleaning_task.h"

#include <cmath>
#include <limits>

#include "cleaning/imputers.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "knn/knn_classifier.h"

namespace cpclean {

double CleaningTask::AccuracyWith(
    const std::vector<std::vector<double>>& train_features,
    const std::vector<std::vector<double>>& eval_x,
    const std::vector<int>& eval_y, const SimilarityKernel& kernel,
    int k) const {
  const KnnClassifier classifier(train_features, train_y,
                                 labels.num_labels(), k, &kernel);
  return classifier.Accuracy(eval_x, eval_y);
}

Result<std::vector<std::vector<double>>> CleaningTask::EncodeCompletedTrain(
    const Table& completed) const {
  if (completed.num_rows() != dirty_train.num_rows()) {
    return Status::InvalidArgument("completed table row count mismatch");
  }
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<size_t>(completed.num_rows()));
  for (int r = 0; r < completed.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(auto x, encoder.EncodeRow(completed.row(r)));
    out.push_back(std::move(x));
  }
  return out;
}

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

Result<CleaningTask> BuildCleaningTask(const Table& dirty_train,
                                       const Table& clean_train,
                                       const Table& val, const Table& test,
                                       const std::string& label_name,
                                       const RepairOptions& repair_options) {
  if (!(dirty_train.schema() == clean_train.schema()) ||
      !(dirty_train.schema() == val.schema()) ||
      !(dirty_train.schema() == test.schema())) {
    return Status::InvalidArgument("all tables must share one schema");
  }
  if (dirty_train.num_rows() != clean_train.num_rows()) {
    return Status::InvalidArgument(
        "dirty and clean training tables must align row-by-row");
  }
  if (val.CountMissing() > 0 || test.CountMissing() > 0 ||
      clean_train.CountMissing() > 0) {
    return Status::InvalidArgument(
        "validation, test and ground-truth tables must be complete");
  }

  CleaningTask task;
  task.dirty_train = dirty_train;
  task.clean_train = clean_train;
  task.val = val;
  task.test = test;
  task.repair_options = repair_options;
  CP_ASSIGN_OR_RETURN(task.label_col,
                      dirty_train.schema().FieldIndex(label_name));

  // Labels: fit across train/val/test so ids are shared.
  std::vector<Value> all_labels = dirty_train.Column(task.label_col);
  for (const Value& v : val.Column(task.label_col)) all_labels.push_back(v);
  for (const Value& v : test.Column(task.label_col)) all_labels.push_back(v);
  CP_RETURN_NOT_OK(task.labels.Fit(all_labels));

  // Encoder: fit on the default-imputed training table plus val and test.
  CP_ASSIGN_OR_RETURN(Table default_train,
                      DefaultCleanImpute(dirty_train, task.label_col));
  Table fit_table = default_train;
  for (int r = 0; r < val.num_rows(); ++r) {
    CP_RETURN_NOT_OK(fit_table.AppendRow(val.row(r)));
  }
  for (int r = 0; r < test.num_rows(); ++r) {
    CP_RETURN_NOT_OK(fit_table.AppendRow(test.row(r)));
  }
  CP_RETURN_NOT_OK(task.encoder.Fit(fit_table, {task.label_col}));

  // Candidate space and the oracle's answers.
  task.incomplete = IncompleteDataset(task.labels.num_labels());
  task.candidate_rows.reserve(static_cast<size_t>(dirty_train.num_rows()));
  task.true_candidate.reserve(static_cast<size_t>(dirty_train.num_rows()));
  for (int r = 0; r < dirty_train.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(
        auto rows, RowRepairs(dirty_train, r, task.label_col, repair_options));
    CP_ASSIGN_OR_RETURN(int y,
                        task.labels.Encode(dirty_train.at(r, task.label_col)));
    task.train_y.push_back(y);

    IncompleteExample example;
    example.label = y;
    for (const auto& row_values : rows) {
      CP_ASSIGN_OR_RETURN(auto x, task.encoder.EncodeRow(row_values));
      example.candidates.push_back(std::move(x));
    }

    // Oracle: candidate closest to the encoded ground truth.
    CP_ASSIGN_OR_RETURN(auto truth_x,
                        task.encoder.EncodeRow(clean_train.row(r)));
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < example.candidates.size(); ++j) {
      const double d = SquaredDistance(example.candidates[j], truth_x);
      if (d < best_dist) {
        best_dist = d;
        best = static_cast<int>(j);
      }
    }
    task.true_candidate.push_back(best);
    task.clean_train_x.push_back(std::move(truth_x));
    task.candidate_rows.push_back(std::move(rows));
    CP_RETURN_NOT_OK(task.incomplete.AddExample(std::move(example)));
  }

  // Default world (mean/mode-imputed training rows, encoded).
  for (int r = 0; r < default_train.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(auto x, task.encoder.EncodeRow(default_train.row(r)));
    task.default_x.push_back(std::move(x));
  }

  // Validation and test sets, encoded.
  for (int r = 0; r < val.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(auto x, task.encoder.EncodeRow(val.row(r)));
    CP_ASSIGN_OR_RETURN(int y, task.labels.Encode(val.at(r, task.label_col)));
    task.val_x.push_back(std::move(x));
    task.val_y.push_back(y);
  }
  for (int r = 0; r < test.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(auto x, task.encoder.EncodeRow(test.row(r)));
    CP_ASSIGN_OR_RETURN(int y, task.labels.Encode(test.at(r, task.label_col)));
    task.test_x.push_back(std::move(x));
    task.test_y.push_back(y);
  }
  return task;
}

}  // namespace cpclean
