#include "cleaning/repair_generator.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace cpclean {

std::vector<Value> CellRepairs(const Table& table, int col,
                               const RepairOptions& options) {
  const Field& field = table.schema().field(col);
  std::vector<Value> repairs;
  if (field.type == ColumnType::kNumeric) {
    const std::vector<double> observed = table.NumericColumn(col);
    if (observed.empty()) {
      repairs.push_back(Value::Numeric(0.0));
      return repairs;
    }
    std::vector<double> stats;
    if (options.numeric_percentile_candidates == 5) {
      stats = {Min(observed), Percentile(observed, 25.0), Mean(observed),
               Percentile(observed, 75.0), Max(observed)};
    } else {
      const int c = std::max(options.numeric_percentile_candidates, 1);
      for (int i = 0; i < c; ++i) {
        stats.push_back(Percentile(
            observed, 100.0 * static_cast<double>(i) /
                          std::max(1, c - 1)));
      }
    }
    // Deduplicate (degenerate columns can repeat values).
    for (double s : stats) {
      const Value v = Value::Numeric(s);
      if (std::find(repairs.begin(), repairs.end(), v) == repairs.end()) {
        repairs.push_back(v);
      }
    }
  } else {
    std::map<std::string, int> freq;
    for (const std::string& cat : table.CategoricalColumn(col)) ++freq[cat];
    std::vector<std::pair<int, std::string>> ranked;
    ranked.reserve(freq.size());
    for (const auto& [cat, count] : freq) ranked.push_back({count, cat});
    // Most frequent first; ties broken alphabetically for determinism.
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const int top = std::min<int>(options.categorical_top_k,
                                  static_cast<int>(ranked.size()));
    for (int i = 0; i < top; ++i) {
      repairs.push_back(Value::Categorical(ranked[static_cast<size_t>(i)].second));
    }
    repairs.push_back(Value::Categorical(options.other_category));
  }
  return repairs;
}

Result<std::vector<std::vector<Value>>> RowRepairs(
    const Table& table, int row, int label_col, const RepairOptions& options) {
  if (row < 0 || row >= table.num_rows()) {
    return Status::OutOfRange(StrFormat("row %d out of range", row));
  }
  const std::vector<Value>& base = table.row(row);
  if (label_col >= 0 && label_col < table.num_columns() &&
      base[static_cast<size_t>(label_col)].is_null()) {
    return Status::InvalidArgument(
        "labels must not be NULL (paper assumes certain labels)");
  }
  std::vector<int> missing_cols;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == label_col) continue;
    if (base[static_cast<size_t>(c)].is_null()) missing_cols.push_back(c);
  }
  std::vector<std::vector<Value>> out;
  out.push_back(base);
  for (int c : missing_cols) {
    const std::vector<Value> repairs = CellRepairs(table, c, options);
    std::vector<std::vector<Value>> next;
    next.reserve(out.size() * repairs.size());
    for (const auto& partial : out) {
      for (const Value& r : repairs) {
        if (static_cast<int>(next.size()) >= options.max_candidates_per_row) {
          break;
        }
        std::vector<Value> completed = partial;
        completed[static_cast<size_t>(c)] = r;
        next.push_back(std::move(completed));
      }
      if (static_cast<int>(next.size()) >= options.max_candidates_per_row) {
        break;
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace cpclean
