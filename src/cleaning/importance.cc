#include "cleaning/importance.h"

#include <algorithm>

#include "common/logging.h"
#include "data/encoder.h"
#include "knn/knn_classifier.h"

namespace cpclean {

namespace {

/// Validation accuracy of KNN trained on (train minus `dropped_col`).
/// `dropped_col` == -1 keeps all features.
Result<double> AblatedAccuracy(const Table& train, const Table& val,
                               int label_col, int dropped_col, int k,
                               const SimilarityKernel& kernel) {
  std::vector<int> excluded = {label_col};
  if (dropped_col >= 0) excluded.push_back(dropped_col);

  FeatureEncoder encoder;
  CP_RETURN_NOT_OK(encoder.Fit(train, excluded));

  LabelEncoder labels;
  CP_RETURN_NOT_OK(labels.Fit(train.Column(label_col)));

  std::vector<std::vector<double>> train_x;
  std::vector<int> train_y;
  for (int r = 0; r < train.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(auto x, encoder.EncodeRow(train.row(r)));
    CP_ASSIGN_OR_RETURN(int y, labels.Encode(train.at(r, label_col)));
    train_x.push_back(std::move(x));
    train_y.push_back(y);
  }
  std::vector<std::vector<double>> val_x;
  std::vector<int> val_y;
  for (int r = 0; r < val.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(auto x, encoder.EncodeRow(val.row(r)));
    CP_ASSIGN_OR_RETURN(int y, labels.Encode(val.at(r, label_col)));
    val_x.push_back(std::move(x));
    val_y.push_back(y);
  }
  const KnnClassifier classifier(std::move(train_x), std::move(train_y),
                                 labels.num_labels(), k, &kernel);
  return classifier.Accuracy(val_x, val_y);
}

}  // namespace

Result<std::vector<double>> ComputeFeatureImportance(
    const Table& train, const Table& val, int label_col, int k,
    const SimilarityKernel& kernel, double floor) {
  if (train.CountMissing() > 0 || val.CountMissing() > 0) {
    return Status::InvalidArgument(
        "importance assessment requires complete tables");
  }
  CP_ASSIGN_OR_RETURN(const double full_acc,
                      AblatedAccuracy(train, val, label_col, -1, k, kernel));
  std::vector<double> importance(
      static_cast<size_t>(train.num_columns()), 0.0);
  for (int c = 0; c < train.num_columns(); ++c) {
    if (c == label_col) continue;
    CP_ASSIGN_OR_RETURN(const double ablated,
                        AblatedAccuracy(train, val, label_col, c, k, kernel));
    importance[static_cast<size_t>(c)] =
        std::max(full_acc - ablated, 0.0) + floor;
  }
  return importance;
}

}  // namespace cpclean
