#ifndef CPCLEAN_CLEANING_CERTIFY_H_
#define CPCLEAN_CLEANING_CERTIFY_H_

#include <vector>

#include "cleaning/cleaning_task.h"
#include "common/result.h"
#include "knn/kernel.h"

namespace cpclean {

/// Per-point cleaning certificate: the minimal-effort counterpart of
/// CPClean for a *single* prediction. Given one test point whose KNN
/// prediction is not yet certain, greedily clean the dirty tuple that
/// minimizes the expected prediction entropy for that point (uniform prior
/// over its candidates) until the prediction is certainly predicted.
///
/// Answers the practical question the paper's introduction opens with:
/// "which specific cells must a human clean before *this* prediction can
/// be trusted?" — and, dually, proves that the remaining dirty tuples are
/// irrelevant to it.
struct CertifyResult {
  /// Tuples cleaned, in order.
  std::vector<int> cleaned;
  /// True when the prediction became certain within the budget.
  bool certified = false;
  /// The certified label (-1 when not certified).
  int certain_label = -1;
};

struct CertifyOptions {
  int k = 3;
  /// Maximum tuples to clean; -1 = until certified or nothing dirty left.
  int max_cleaned = -1;
  /// Worker threads for the per-dirty-tuple expected-entropy sweep
  /// (0 = the process-global shared pool, any positive value a private
  /// pool; 1 = serial). Each worker scores a disjoint slice with its own
  /// FastQ2 engine; the argmin reduction is serial with an index
  /// tie-break, so the cleaned sequence is identical for every thread
  /// count.
  int num_threads = 0;
};

/// Certifies the prediction for `t` over a working copy of the task's
/// incomplete dataset, using the task's oracle answers.
Result<CertifyResult> CertifyTestPoint(const CleaningTask& task,
                                       const std::vector<double>& t,
                                       const SimilarityKernel& kernel,
                                       const CertifyOptions& options =
                                           CertifyOptions());

/// Same certification against an explicit dataset + oracle answer vector
/// (`true_candidate[i]` is the candidate revealed when tuple `i` is
/// cleaned). This is the serving-layer entry point: a session's current
/// working dataset — mid-cleaning — can be certified directly. The dataset
/// is copied internally; the caller's copy is never mutated.
Result<CertifyResult> CertifyOnDataset(const IncompleteDataset& dataset,
                                       const std::vector<int>& true_candidate,
                                       const std::vector<double>& t,
                                       const SimilarityKernel& kernel,
                                       const CertifyOptions& options =
                                           CertifyOptions());

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_CERTIFY_H_
