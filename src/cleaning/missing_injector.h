#ifndef CPCLEAN_CLEANING_MISSING_INJECTOR_H_
#define CPCLEAN_CLEANING_MISSING_INJECTOR_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace cpclean {

/// Synthetic missing-value injection (paper §5.1): "Missing Not At Random"
/// — the probability that a cell goes missing is proportional to the
/// relative importance of its feature, scaled so the table-wide missing
/// rate over feature cells hits `missing_rate`.
struct InjectionOptions {
  double missing_rate = 0.2;
  /// Upper bound on NULLs per row, keeping the Cartesian candidate product
  /// tractable (the paper's datasets average ~1-2 missing cells per dirty
  /// row at 20%).
  int max_missing_per_row = 2;
  /// When false, every feature is equally likely (MCAR) regardless of the
  /// importance vector.
  bool mnar = true;
};

/// Returns a copy of `clean` with NULLs injected into feature columns
/// (never into `label_col`). `feature_importance` must have one
/// non-negative entry per column; label-column importance is ignored.
Result<Table> InjectMissing(const Table& clean, int label_col,
                            const std::vector<double>& feature_importance,
                            const InjectionOptions& options, Rng* rng);

}  // namespace cpclean

#endif  // CPCLEAN_CLEANING_MISSING_INJECTOR_H_
