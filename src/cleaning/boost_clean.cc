#include "cleaning/boost_clean.h"

#include "common/logging.h"

namespace cpclean {

Result<BoostCleanResult> RunBoostClean(const CleaningTask& task,
                                       const SimilarityKernel& kernel,
                                       int k) {
  BoostCleanResult result;
  bool first = true;
  Table best_table;
  for (const ImputeMethod& method : BoostCleanMethodSpace()) {
    CP_ASSIGN_OR_RETURN(
        Table completed,
        ApplyImputeMethod(task.dirty_train, task.label_col, method));
    CP_ASSIGN_OR_RETURN(auto features, task.EncodeCompletedTrain(completed));
    const double val_acc =
        task.AccuracyWith(features, task.val_x, task.val_y, kernel, k);
    result.method_val_accuracy.push_back({method.name, val_acc});
    if (first || val_acc > result.best_val_accuracy) {
      first = false;
      result.best_val_accuracy = val_acc;
      result.best_method = method;
      best_table = std::move(completed);
    }
  }
  CP_ASSIGN_OR_RETURN(auto best_features,
                      task.EncodeCompletedTrain(best_table));
  result.test_accuracy =
      task.AccuracyWith(best_features, task.test_x, task.test_y, kernel, k);
  return result;
}

Result<BoostCleanResult> RunBoostCleanPerColumn(const CleaningTask& task,
                                                const SimilarityKernel& kernel,
                                                int k) {
  const std::vector<ImputeMethod> space = BoostCleanMethodSpace();
  // Start from mean/mode everywhere, then greedily re-fit one column at a
  // time to the action that maximizes validation accuracy.
  CP_ASSIGN_OR_RETURN(Table current,
                      DefaultCleanImpute(task.dirty_train, task.label_col));
  BoostCleanResult result;
  result.best_method = space[2];  // mean/mode

  for (int c = 0; c < task.dirty_train.num_columns(); ++c) {
    if (c == task.label_col) continue;
    if (task.dirty_train.CountMissingInColumn(c) == 0) continue;
    double best_acc = -1.0;
    Table best_table = current;
    for (const ImputeMethod& method : space) {
      // Re-impute only column c with `method` on top of `current`.
      CP_ASSIGN_OR_RETURN(
          Table candidate,
          ApplyImputeMethod(task.dirty_train, task.label_col, method));
      Table trial = current;
      for (int r = 0; r < trial.num_rows(); ++r) {
        if (task.dirty_train.at(r, c).is_null()) {
          trial.Set(r, c, candidate.at(r, c));
        }
      }
      CP_ASSIGN_OR_RETURN(auto features, task.EncodeCompletedTrain(trial));
      const double val_acc =
          task.AccuracyWith(features, task.val_x, task.val_y, kernel, k);
      if (val_acc > best_acc) {
        best_acc = val_acc;
        best_table = std::move(trial);
      }
    }
    current = std::move(best_table);
    result.best_val_accuracy = best_acc;
  }
  CP_ASSIGN_OR_RETURN(auto features, task.EncodeCompletedTrain(current));
  result.test_accuracy =
      task.AccuracyWith(features, task.test_x, task.test_y, kernel, k);
  return result;
}

}  // namespace cpclean
