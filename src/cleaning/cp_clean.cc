#include "cleaning/cp_clean.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/stats.h"
#include "core/certain_predictor.h"
#include "core/fast_q2.h"
#include "core/ss1.h"
#include "core/ss_dc.h"
#include "knn/knn_classifier.h"

namespace cpclean {

CleaningSession::CleaningSession(const CleaningTask* task,
                                 const SimilarityKernel* kernel,
                                 const CpCleanOptions& options)
    : task_(task), kernel_(kernel), options_(options) {
  CP_CHECK(task_ != nullptr);
  CP_CHECK(kernel_ != nullptr);
  CP_CHECK_GE(options_.k, 1);
  Reset();
}

void CleaningSession::Reset() {
  working_ = task_->incomplete;
  world_ = task_->default_x;
  cleaned_.assign(static_cast<size_t>(working_.num_examples()), 0);
  val_certain_.assign(task_->val_x.size(), 0);
  num_val_certain_ = 0;
  // Rows that are already clean in the dirty table count as cleaned and
  // their world value is their (single) candidate.
  for (int i = 0; i < working_.num_examples(); ++i) {
    if (working_.num_candidates(i) == 1) {
      cleaned_[static_cast<size_t>(i)] = 1;
      world_[static_cast<size_t>(i)] = working_.candidate(i, 0);
    }
  }
}

double CleaningSession::RefreshValCertainty() {
  const CertainPredictor predictor(kernel_, options_.k);
  for (size_t v = 0; v < task_->val_x.size(); ++v) {
    if (val_certain_[v]) continue;  // monotone: stays certain forever
    if (predictor.IsCertain(working_, task_->val_x[v])) {
      val_certain_[v] = 1;
      ++num_val_certain_;
    }
  }
  if (task_->val_x.empty()) return 1.0;
  return static_cast<double>(num_val_certain_) /
         static_cast<double>(task_->val_x.size());
}

double CleaningSession::CurrentTestAccuracy() const {
  return task_->AccuracyWith(world_, task_->test_x, task_->test_y, *kernel_,
                             options_.k);
}

double CleaningSession::MeanValEntropy() const {
  const CertainPredictor predictor(kernel_, options_.k);
  double total = 0.0;
  for (size_t v = 0; v < task_->val_x.size(); ++v) {
    if (val_certain_[v]) continue;
    total += predictor.PredictionEntropy(working_, task_->val_x[v]);
  }
  return task_->val_x.empty()
             ? 0.0
             : total / static_cast<double>(task_->val_x.size());
}

double CleaningSession::ExpectedEntropyAfterCleaning(int i) {
  const CertainPredictor predictor(kernel_, options_.k);
  const std::vector<std::vector<double>> saved =
      working_.example(i).candidates;
  const int m = static_cast<int>(saved.size());
  double expected = 0.0;
  for (int j = 0; j < m; ++j) {
    // Condition on candidate j being the truth (uniform prior).
    working_.ReplaceCandidates(i, {saved[static_cast<size_t>(j)]});
    double entropy_sum = 0.0;
    for (size_t v = 0; v < task_->val_x.size(); ++v) {
      // CP'ed points have zero entropy in every refinement of the dataset:
      // conditioning only removes possible worlds.
      if (val_certain_[v]) continue;
      entropy_sum += predictor.PredictionEntropy(working_, task_->val_x[v]);
    }
    expected += entropy_sum / static_cast<double>(task_->val_x.size());
  }
  working_.ReplaceCandidates(i, saved);
  return expected / static_cast<double>(m);
}

std::vector<double> CleaningSession::FastSelectionScores(
    const std::vector<int>& dirty) {
  std::vector<double> score(dirty.size(), 0.0);
  FastQ2 q2(&working_, options_.k, options_.fast_epsilon);
  for (size_t v = 0; v < task_->val_x.size(); ++v) {
    if (val_certain_[v]) continue;  // zero entropy in every refinement
    q2.SetTestPoint(task_->val_x[v], *kernel_);
    const double floor = q2.TopKFloor();
    double current_entropy = -1.0;  // computed lazily
    for (size_t p = 0; p < dirty.size(); ++p) {
      const int i = dirty[p];
      if (q2.MaxSimilarity(i) < floor) {
        // Tuple i can never enter this point's top-K in any world, so
        // pinning it leaves the label distribution unchanged.
        if (current_entropy < 0.0) current_entropy = Entropy(q2.Fractions());
        score[p] += current_entropy;
        continue;
      }
      const int m = working_.num_candidates(i);
      double sum = 0.0;
      for (int j = 0; j < m; ++j) {
        sum += Entropy(q2.FractionsPinned(i, j));
      }
      score[p] += sum / static_cast<double>(m);
    }
  }
  return score;
}

void CleaningSession::CleanExample(int i) {
  CP_CHECK(!cleaned_[static_cast<size_t>(i)]);
  const int true_j = task_->true_candidate[static_cast<size_t>(i)];
  working_.FixExample(i, true_j);
  world_[static_cast<size_t>(i)] = working_.candidate(i, 0);
  cleaned_[static_cast<size_t>(i)] = 1;
}

void CleaningSession::LogStep(CleaningRunResult* result, int step,
                              int cleaned_example) {
  CleaningStepLog log;
  log.step = step;
  log.cleaned_example = cleaned_example;
  log.frac_val_certain = RefreshValCertainty();
  log.test_accuracy =
      options_.track_test_accuracy ? CurrentTestAccuracy() : 0.0;
  log.mean_val_entropy = options_.track_entropy ? MeanValEntropy() : 0.0;
  result->steps.push_back(log);
}

CleaningRunResult CleaningSession::RunLoop(bool greedy, Rng* rng) {
  Reset();
  CleaningRunResult result;
  LogStep(&result, 0, -1);

  std::vector<int> dirty;
  for (int i = 0; i < working_.num_examples(); ++i) {
    if (!cleaned_[static_cast<size_t>(i)]) dirty.push_back(i);
  }

  int step = 0;
  while (!dirty.empty()) {
    if (options_.stop_when_all_certain &&
        num_val_certain_ == static_cast<int>(task_->val_x.size())) {
      result.all_val_certain = true;
      break;
    }
    if (options_.max_cleaned >= 0 && step >= options_.max_cleaned) break;

    int chosen_pos = 0;
    if (greedy) {
      // Algorithm 3 lines 5-9: pick the example whose cleaning minimizes
      // the expected conditional entropy of the validation predictions.
      double best = std::numeric_limits<double>::infinity();
      if (options_.use_fast_selection) {
        const std::vector<double> score = FastSelectionScores(dirty);
        for (size_t p = 0; p < score.size(); ++p) {
          if (score[p] < best) {
            best = score[p];
            chosen_pos = static_cast<int>(p);
          }
        }
      } else {
        for (size_t p = 0; p < dirty.size(); ++p) {
          const double e = ExpectedEntropyAfterCleaning(dirty[p]);
          if (e < best) {
            best = e;
            chosen_pos = static_cast<int>(p);
          }
        }
      }
    } else {
      CP_CHECK(rng != nullptr);
      chosen_pos = static_cast<int>(rng->NextUint64(dirty.size()));
    }
    const int chosen = dirty[static_cast<size_t>(chosen_pos)];
    dirty.erase(dirty.begin() + chosen_pos);
    CleanExample(chosen);
    ++step;
    LogStep(&result, step, chosen);
  }
  if (!result.all_val_certain &&
      num_val_certain_ == static_cast<int>(task_->val_x.size())) {
    result.all_val_certain = true;
  }
  result.examples_cleaned = step;
  result.final_test_accuracy =
      options_.track_test_accuracy
          ? result.steps.back().test_accuracy
          : CurrentTestAccuracy();
  return result;
}

CleaningRunResult CleaningSession::RunCpClean() {
  return RunLoop(/*greedy=*/true, /*rng=*/nullptr);
}

CleaningRunResult CleaningSession::RunRandomClean(Rng* rng) {
  return RunLoop(/*greedy=*/false, rng);
}

}  // namespace cpclean
