#include "cleaning/cp_clean.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/certain_predictor.h"
#include "core/fast_q2.h"
#include "core/ss1.h"
#include "core/ss_dc.h"
#include "knn/knn_classifier.h"

namespace cpclean {

CleaningSession::CleaningSession(const CleaningTask* task,
                                 const SimilarityKernel* kernel,
                                 const CpCleanOptions& options)
    : task_(task), kernel_(kernel), options_(options) {
  CP_CHECK(task_ != nullptr);
  CP_CHECK(kernel_ != nullptr);
  CP_CHECK_GE(options_.k, 1);
  if (options_.num_threads == 0) {
    pool_ = &GlobalThreadPool();
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  }
  Reset();
}

Result<std::unique_ptr<CleaningSession>> CleaningSession::Create(
    const CleaningTask* task, const SimilarityKernel* kernel,
    const CpCleanOptions& options) {
  if (task == nullptr) return Status::InvalidArgument("task is null");
  if (kernel == nullptr) return Status::InvalidArgument("kernel is null");
  if (options.k < 1) {
    return Status::InvalidArgument(
        StrFormat("k must be >= 1, got %d", options.k));
  }
  if (options.k > FastQ2::kMaxK) {
    return Status::InvalidArgument(
        StrFormat("k = %d exceeds the FastQ2 engine cap of %d", options.k,
                  FastQ2::kMaxK));
  }
  if (options.k > task->incomplete.num_examples()) {
    return Status::InvalidArgument(
        StrFormat("k = %d exceeds the %d training examples", options.k,
                  task->incomplete.num_examples()));
  }
  return std::make_unique<CleaningSession>(task, kernel, options);
}

void CleaningSession::Reset() {
  working_ = task_->incomplete;
  world_ = task_->default_x;
  cleaned_.assign(static_cast<size_t>(working_.num_examples()), 0);
  val_certain_.assign(task_->val_x.size(), 0);
  num_val_certain_ = 0;
  num_cleaned_ = 0;
  val_certainty_fresh_ = false;
  // Rows that are already clean in the dirty table count as cleaned and
  // their world value is their (single) candidate.
  for (int i = 0; i < working_.num_examples(); ++i) {
    if (working_.num_candidates(i) == 1) {
      cleaned_[static_cast<size_t>(i)] = 1;
      world_[static_cast<size_t>(i)] = working_.candidate(i, 0);
    }
  }
  dirty_.clear();
  for (int i = 0; i < working_.num_examples(); ++i) {
    if (!cleaned_[static_cast<size_t>(i)]) dirty_.push_back(i);
  }
  cleaned_order_.clear();
  audit_.clear();
  last_newly_certain_.clear();
  // `working_ = task copy` above wiped any journal/file backing the
  // serving layer configured; re-establish it.
  ApplyWorkingStorage();
}

void CleaningSession::ApplyWorkingStorage() {
  if (storage_.journal) working_.EnableJournal();
  if (!storage_.mmap_scratch_dir.empty()) {
    // Fallback to RAM on failure: the modes are bit-identical, and a
    // Restore mid-flight has no way to surface a scratch-dir error.
    const Status backed = working_.BackWithFile(
        storage_.mmap_scratch_dir, storage_.stream_window_bytes);
    (void)backed;
  }
}

Status CleaningSession::ConfigureWorkingStorage(
    const WorkingStorageOptions& storage) {
  storage_ = storage;
  if (storage_.journal) working_.EnableJournal();
  if (!storage_.mmap_scratch_dir.empty()) {
    CP_RETURN_NOT_OK(working_.BackWithFile(storage_.mmap_scratch_dir,
                                           storage_.stream_window_bytes));
  }
  return Status::OK();
}

Status CleaningSession::Restore(const CleaningSnapshot& snapshot) {
  Reset();
  if (snapshot.audit.size() > snapshot.cleaned_order.size()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot audit covers %d steps but only %d were cleaned",
        static_cast<int>(snapshot.audit.size()),
        static_cast<int>(snapshot.cleaned_order.size())));
  }
  for (size_t s = 0; s < snapshot.audit.size(); ++s) {
    if (snapshot.audit[s].example != snapshot.cleaned_order[s]) {
      return Status::InvalidArgument(StrFormat(
          "audit step %d cleans example %d but the cleaning order says %d",
          static_cast<int>(s) + 1, snapshot.audit[s].example,
          snapshot.cleaned_order[s]));
    }
  }
  const auto take = [this](int i) -> Status {
    if (i < 0 || i >= working_.num_examples()) {
      return Status::InvalidArgument(StrFormat(
          "snapshot cleans example %d outside [0, %d)", i,
          working_.num_examples()));
    }
    if (cleaned_[static_cast<size_t>(i)]) {
      return Status::InvalidArgument(StrFormat(
          "snapshot cleans example %d twice (or it was born clean)", i));
    }
    const auto it = std::find(dirty_.begin(), dirty_.end(), i);
    CP_CHECK(it != dirty_.end());  // implied by !cleaned_[i]
    *it = dirty_.back();
    dirty_.pop_back();
    CleanExample(i);
    return Status::OK();
  };
  // Prefix covered by stored audit: replay the fixes and adopt the stored
  // records, then refresh once at the boundary. Recomputing from scratch
  // marks exactly the points the snapshotted run had marked: certainty is
  // monotone under cleaning (a refinement only removes possible worlds),
  // and the source session refreshed after its last step.
  const size_t prefix = snapshot.audit.size();
  for (size_t s = 0; s < prefix; ++s) {
    CP_RETURN_NOT_OK(take(snapshot.cleaned_order[s]));
  }
  audit_ = snapshot.audit;
  RefreshValCertainty();
  // Suffix without stored attribution (e.g. steps a cleaning log appended
  // after the base snapshot, or a pre-provenance snapshot): recompute the
  // per-step newly-certain sets. Bit-identical to the original run's
  // records, again by monotonicity of certainty under cleaning.
  for (size_t s = prefix; s < snapshot.cleaned_order.size(); ++s) {
    const int i = snapshot.cleaned_order[s];
    CP_RETURN_NOT_OK(take(i));
    RefreshValCertainty();
    RecordAudit(i);
  }
  return Status::OK();
}

double CleaningSession::RefreshValCertainty() {
  const CertainPredictor predictor(kernel_, options_.k);
  const int64_t num_val = static_cast<int64_t>(task_->val_x.size());
  // Each validation point is an independent Q1 check; workers write only
  // their own slot, the state update below stays serial.
  std::vector<uint8_t> newly_certain(task_->val_x.size(), 0);
  pool_->ParallelFor(num_val, [&](int64_t v, int) {
    if (val_certain_[static_cast<size_t>(v)]) return;  // monotone
    newly_certain[static_cast<size_t>(v)] =
        predictor.IsCertain(working_, task_->val_x[static_cast<size_t>(v)])
            ? 1
            : 0;
  });
  last_newly_certain_.clear();
  for (size_t v = 0; v < task_->val_x.size(); ++v) {
    if (newly_certain[v]) {
      val_certain_[v] = 1;
      ++num_val_certain_;
      last_newly_certain_.push_back(static_cast<int>(v));
    }
  }
  val_certainty_fresh_ = true;
  if (task_->val_x.empty()) return 1.0;
  return static_cast<double>(num_val_certain_) /
         static_cast<double>(task_->val_x.size());
}

double CleaningSession::FracValCertain() {
  if (!val_certainty_fresh_) return RefreshValCertainty();
  if (task_->val_x.empty()) return 1.0;
  return static_cast<double>(num_val_certain_) /
         static_cast<double>(task_->val_x.size());
}

double CleaningSession::CurrentTestAccuracy() const {
  return task_->AccuracyWith(world_, task_->test_x, task_->test_y, *kernel_,
                             options_.k);
}

double CleaningSession::MeanValEntropy() const {
  const CertainPredictor predictor(kernel_, options_.k);
  const int64_t num_val = static_cast<int64_t>(task_->val_x.size());
  std::vector<double> entropy(task_->val_x.size(), 0.0);
  pool_->ParallelFor(num_val, [&](int64_t v, int) {
    if (val_certain_[static_cast<size_t>(v)]) return;
    entropy[static_cast<size_t>(v)] = predictor.PredictionEntropy(
        working_, task_->val_x[static_cast<size_t>(v)]);
  });
  // Reduce in validation order so the sum is thread-count-invariant.
  double total = 0.0;
  for (size_t v = 0; v < task_->val_x.size(); ++v) {
    if (val_certain_[v]) continue;
    total += entropy[v];
  }
  return task_->val_x.empty()
             ? 0.0
             : total / static_cast<double>(task_->val_x.size());
}

double CleaningSession::ExpectedEntropyAfterCleaning(int i) {
  const CertainPredictor predictor(kernel_, options_.k);
  const std::vector<std::vector<double>> saved =
      working_.example(i).candidates;
  const int m = static_cast<int>(saved.size());
  double expected = 0.0;
  for (int j = 0; j < m; ++j) {
    // Condition on candidate j being the truth (uniform prior).
    working_.ReplaceCandidates(i, {saved[static_cast<size_t>(j)]});
    double entropy_sum = 0.0;
    for (size_t v = 0; v < task_->val_x.size(); ++v) {
      // CP'ed points have zero entropy in every refinement of the dataset:
      // conditioning only removes possible worlds.
      if (val_certain_[v]) continue;
      entropy_sum += predictor.PredictionEntropy(working_, task_->val_x[v]);
    }
    expected += entropy_sum / static_cast<double>(task_->val_x.size());
  }
  working_.ReplaceCandidates(i, saved);
  return expected / static_cast<double>(m);
}

std::vector<double> CleaningSession::FastSelectionScores(
    const std::vector<int>& dirty) {
  // First compute-layer fault site. Unlike the I/O sites this one throws —
  // the compute path has no Status plumbing — so failure rules are for
  // library-level tests that catch; under a live server use sleep rules
  // only (like serve.exec).
  if (FaultHit("compute.selection_scores")) {
    throw std::runtime_error("injected fault: compute.selection_scores");
  }
  std::vector<double> score(dirty.size(), 0.0);
  std::vector<int> active;
  active.reserve(task_->val_x.size());
  for (size_t v = 0; v < task_->val_x.size(); ++v) {
    if (!val_certain_[v]) active.push_back(static_cast<int>(v));
  }
  if (active.empty() || dirty.empty()) return score;

  // One FastQ2 engine per worker (trees and scan are query-local state);
  // each active validation point fills its own contribution row, and the
  // reduction replays additions in ascending validation order — so score
  // is bit-identical for every num_threads, including the serial pre-pool
  // behavior at num_threads = 1. Validation points are streamed in ordered
  // blocks sized so the contribution buffer stays within
  // options_.max_contrib_bytes — O(block x |dirty|) memory instead of
  // O(|active_val| x |dirty|). Per dirty example the additions form a left
  // fold in ascending validation order whatever the block partition, so the
  // bound — like the thread count — never changes a score bit.
  const size_t row_bytes = dirty.size() * sizeof(double);
  const size_t block =
      std::min(active.size(),
               std::max<size_t>(1, options_.max_contrib_bytes / row_bytes));
  std::vector<std::unique_ptr<FastQ2>> engines(
      static_cast<size_t>(pool_->num_threads()));
  std::vector<double> contrib(block * dirty.size());
  for (size_t base = 0; base < active.size(); base += block) {
    const size_t count = std::min(block, active.size() - base);
    pool_->ParallelFor(
        static_cast<int64_t>(count), [&](int64_t b, int worker) {
          auto& engine = engines[static_cast<size_t>(worker)];
          if (!engine) {
            engine = std::make_unique<FastQ2>(&working_, options_.k,
                                              options_.fast_epsilon);
          }
          FastQ2& q2 = *engine;
          const int v = active[base + static_cast<size_t>(b)];
          double* row = contrib.data() + static_cast<size_t>(b) * dirty.size();
          q2.SetTestPoint(task_->val_x[static_cast<size_t>(v)], *kernel_);
          const double floor = q2.TopKFloor();
          double current_entropy = -1.0;  // computed lazily
          for (size_t p = 0; p < dirty.size(); ++p) {
            const int i = dirty[p];
            if (q2.MaxSimilarity(i) < floor) {
              // Tuple i can never enter this point's top-K in any world, so
              // pinning it leaves the label distribution unchanged.
              if (current_entropy < 0.0) {
                current_entropy = q2.EntropyUnpinned();
              }
              row[p] = current_entropy;
              continue;
            }
            const int m = working_.num_candidates(i);
            // One sweep shares the boundary-scan prefix across all m
            // candidates; summing its entries in candidate order keeps the
            // reduction bit-identical to m separate EntropyPinned calls.
            const std::vector<double>& pinned = q2.EntropyPinnedSweep(i);
            double sum = 0.0;
            for (int j = 0; j < m; ++j) {
              sum += pinned[static_cast<size_t>(j)];
            }
            row[p] = sum / static_cast<double>(m);
          }
        });
    for (size_t b = 0; b < count; ++b) {
      const double* row = contrib.data() + b * dirty.size();
      for (size_t p = 0; p < dirty.size(); ++p) score[p] += row[p];
    }
  }
  return score;
}

void CleaningSession::CleanExample(int i) {
  CP_CHECK(!cleaned_[static_cast<size_t>(i)]);
  const int true_j = task_->true_candidate[static_cast<size_t>(i)];
  working_.FixExample(i, true_j);
  world_[static_cast<size_t>(i)] = working_.candidate(i, 0);
  cleaned_[static_cast<size_t>(i)] = 1;
  cleaned_order_.push_back(i);
  ++num_cleaned_;
  val_certainty_fresh_ = false;
}

int CleaningSession::SelectGreedyPos() {
  // Algorithm 3 lines 5-9: pick the example whose cleaning minimizes the
  // expected conditional entropy of the validation predictions. Ties break
  // toward the smallest example index, which keeps the choice independent
  // of dirty_'s ordering (it is unsorted after swap-and-pop removals).
  int chosen_pos = 0;
  double best = std::numeric_limits<double>::infinity();
  if (options_.use_fast_selection) {
    const std::vector<double> score = FastSelectionScores(dirty_);
    for (size_t p = 0; p < score.size(); ++p) {
      if (score[p] < best ||
          (score[p] == best &&
           dirty_[p] < dirty_[static_cast<size_t>(chosen_pos)])) {
        best = score[p];
        chosen_pos = static_cast<int>(p);
      }
    }
  } else {
    for (size_t p = 0; p < dirty_.size(); ++p) {
      const double e = ExpectedEntropyAfterCleaning(dirty_[p]);
      if (e < best ||
          (e == best &&
           dirty_[p] < dirty_[static_cast<size_t>(chosen_pos)])) {
        best = e;
        chosen_pos = static_cast<int>(p);
      }
    }
  }
  return chosen_pos;
}

int CleaningSession::StepGreedy() {
  if (!val_certainty_fresh_) RefreshValCertainty();
  if (dirty_.empty()) return -1;
  if (options_.stop_when_all_certain &&
      num_val_certain_ == static_cast<int>(task_->val_x.size())) {
    return -1;
  }
  const int chosen_pos = SelectGreedyPos();
  const int chosen = dirty_[static_cast<size_t>(chosen_pos)];
  dirty_[static_cast<size_t>(chosen_pos)] = dirty_.back();
  dirty_.pop_back();
  CleanExample(chosen);
  RefreshValCertainty();
  RecordAudit(chosen);
  return chosen;
}

void CleaningSession::RecordAudit(int example) {
  CleaningAuditRecord record;
  record.step = num_cleaned_;
  record.example = example;
  record.version = working_.version();
  record.newly_certain = last_newly_certain_;
  audit_.push_back(std::move(record));
}

void CleaningSession::LogStep(CleaningRunResult* result, int step,
                              int cleaned_example) {
  CleaningStepLog log;
  log.step = step;
  log.cleaned_example = cleaned_example;
  log.frac_val_certain = RefreshValCertainty();
  if (cleaned_example >= 0) RecordAudit(cleaned_example);
  log.test_accuracy =
      options_.track_test_accuracy ? CurrentTestAccuracy() : 0.0;
  log.mean_val_entropy = options_.track_entropy ? MeanValEntropy() : 0.0;
  result->steps.push_back(log);
}

CleaningRunResult CleaningSession::RunLoop(bool greedy, Rng* rng) {
  Reset();
  CleaningRunResult result;
  LogStep(&result, 0, -1);

  int step = 0;
  while (!dirty_.empty()) {
    if (options_.stop_when_all_certain &&
        num_val_certain_ == static_cast<int>(task_->val_x.size())) {
      result.all_val_certain = true;
      break;
    }
    if (options_.max_cleaned >= 0 && step >= options_.max_cleaned) break;

    int chosen_pos = 0;
    if (greedy) {
      chosen_pos = SelectGreedyPos();
    } else {
      CP_CHECK(rng != nullptr);
      chosen_pos = static_cast<int>(rng->NextUint64(dirty_.size()));
    }
    const int chosen = dirty_[static_cast<size_t>(chosen_pos)];
    // Swap-and-pop: selection re-scores every remaining example each step,
    // so dirty_'s order is irrelevant (the greedy tie-break is by example
    // index, not position).
    dirty_[static_cast<size_t>(chosen_pos)] = dirty_.back();
    dirty_.pop_back();
    CleanExample(chosen);
    ++step;
    LogStep(&result, step, chosen);
  }
  if (!result.all_val_certain &&
      num_val_certain_ == static_cast<int>(task_->val_x.size())) {
    result.all_val_certain = true;
  }
  result.examples_cleaned = step;
  result.final_test_accuracy =
      options_.track_test_accuracy
          ? result.steps.back().test_accuracy
          : CurrentTestAccuracy();
  return result;
}

CleaningRunResult CleaningSession::RunCpClean() {
  return RunLoop(/*greedy=*/true, /*rng=*/nullptr);
}

CleaningRunResult CleaningSession::RunRandomClean(Rng* rng) {
  return RunLoop(/*greedy=*/false, rng);
}

}  // namespace cpclean
