#include "cleaning/holo_clean.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.h"
#include "common/stats.h"

namespace cpclean {

namespace {

/// Mixed-type distance between two rows over columns observed in both,
/// excluding `skip_col` and `label_col`. Returns +inf when no column is
/// comparable.
double RowDistance(const Table& table, const std::vector<double>& col_stddev,
                   int a, int b, int skip_col, int label_col) {
  double sum = 0.0;
  int compared = 0;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == skip_col || c == label_col) continue;
    const Value& va = table.at(a, c);
    const Value& vb = table.at(b, c);
    if (va.is_null() || vb.is_null()) continue;
    ++compared;
    if (va.is_numeric()) {
      const double sd = col_stddev[static_cast<size_t>(c)];
      const double d = (va.numeric() - vb.numeric()) / (sd > 0 ? sd : 1.0);
      sum += d * d;
    } else {
      sum += va.categorical() == vb.categorical() ? 0.0 : 1.0;
    }
  }
  if (compared == 0) return std::numeric_limits<double>::infinity();
  return sum / static_cast<double>(compared);
}

}  // namespace

Result<Table> HoloCleanImpute(const Table& dirty, int label_col,
                              const HoloCleanOptions& options) {
  if (options.num_donors < 1) {
    return Status::InvalidArgument("num_donors must be >= 1");
  }
  // Column standard deviations for distance normalization.
  std::vector<double> col_stddev(static_cast<size_t>(dirty.num_columns()),
                                 1.0);
  for (int c = 0; c < dirty.num_columns(); ++c) {
    if (dirty.schema().field(c).type == ColumnType::kNumeric) {
      const auto observed = dirty.NumericColumn(c);
      if (!observed.empty()) {
        col_stddev[static_cast<size_t>(c)] = StdDev(observed);
      }
    }
  }

  Table out = dirty;
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      if (c == label_col || !dirty.at(r, c).is_null()) continue;
      // Rank donor rows (those observing column c) by distance to row r.
      std::vector<std::pair<double, int>> donors;
      for (int d = 0; d < dirty.num_rows(); ++d) {
        if (d == r || dirty.at(d, c).is_null()) continue;
        const double dist =
            RowDistance(dirty, col_stddev, r, d, c, label_col);
        if (std::isfinite(dist)) donors.push_back({dist, d});
      }
      if (donors.empty()) {
        return Status::Internal("no donor rows for a missing cell");
      }
      const int take =
          std::min<int>(options.num_donors, static_cast<int>(donors.size()));
      std::partial_sort(donors.begin(), donors.begin() + take, donors.end());

      if (dirty.schema().field(c).type == ColumnType::kNumeric) {
        double weighted = 0.0, total = 0.0;
        for (int i = 0; i < take; ++i) {
          const double w = 1.0 / (1.0 + donors[static_cast<size_t>(i)].first);
          weighted +=
              w * dirty.at(donors[static_cast<size_t>(i)].second, c).numeric();
          total += w;
        }
        out.Set(r, c, Value::Numeric(weighted / total));
      } else {
        std::map<std::string, double> votes;
        for (int i = 0; i < take; ++i) {
          const double w = 1.0 / (1.0 + donors[static_cast<size_t>(i)].first);
          votes[dirty.at(donors[static_cast<size_t>(i)].second, c)
                    .categorical()] += w;
        }
        std::string best;
        double best_w = -1.0;
        for (const auto& [cat, w] : votes) {
          if (w > best_w) {
            best = cat;
            best_w = w;
          }
        }
        out.Set(r, c, Value::Categorical(best));
      }
    }
  }
  return out;
}

}  // namespace cpclean
