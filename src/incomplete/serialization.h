#ifndef CPCLEAN_INCOMPLETE_SERIALIZATION_H_
#define CPCLEAN_INCOMPLETE_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "incomplete/incomplete_dataset.h"

namespace cpclean {

/// Plain-text serialization of an incomplete dataset, so candidate spaces
/// built by one process (e.g. an expensive repair-generation job) can be
/// reloaded by another. Format (line-oriented, '#' comments allowed):
///
///   cpclean-incomplete-v1 <num_labels> <dim>
///   example <label> <num_candidates>
///   <v0> <v1> ... <v_dim-1>           # one line per candidate
///   ...
///
/// Doubles round-trip exactly (hex float encoding).
std::string SerializeIncompleteDataset(const IncompleteDataset& dataset);

/// Parses text produced by `SerializeIncompleteDataset` — or a v2 document
/// (below), whose trailing sections are ignored.
Result<IncompleteDataset> DeserializeIncompleteDataset(
    const std::string& text);

// --- v2: dataset + named sections ------------------------------------------
//
// The v2 format carries the same candidate space plus any number of named
// sections of opaque payload lines after the examples — the hook the
// serving layer uses to persist a session's cleaning state (which tuples
// were cleaned, in what order, plus the request spec that rebuilds the
// task) next to the worked-on candidate space in one recoverable file:
//
//   cpclean-incomplete-v2 <num_labels> <dim>
//   example <label> <num_candidates>
//   <candidates...>
//   section <name>
//   <payload line>
//   ...
//   end
//
// Payload lines are stored verbatim (whitespace-stripped); they must be
// non-empty, must not start with '#', and must not equal "end" — the
// line-oriented framing reserves those.

/// One named section of a v2 document.
struct SerializedSection {
  std::string name;
  std::vector<std::string> lines;
};

/// Serializes `dataset` plus `sections` as a v2 document. CP_CHECK-fails
/// on section names/lines that violate the framing rules above.
std::string SerializeIncompleteDatasetV2(
    const IncompleteDataset& dataset,
    const std::vector<SerializedSection>& sections);

// --- v3: dataset + sections + version ---------------------------------------
//
// v3 is v2 with the dataset's `version()` carried in the header:
//
//   cpclean-incomplete-v3 <num_labels> <dim> <version>
//
// The version is the sequence-number anchor for the append-only cleaning
// log: a `<name>.cplog` record with seq > the base snapshot's version is
// newer than the base and must be replayed on rehydration. Deserializing
// a v3 document restores the stored version onto the rebuilt dataset
// (`OverrideVersionForReplay`).

/// Serializes `dataset` plus `sections` as a v3 document.
std::string SerializeIncompleteDatasetV3(
    const IncompleteDataset& dataset,
    const std::vector<SerializedSection>& sections);

struct DeserializedDatasetV2 {
  IncompleteDataset dataset;
  std::vector<SerializedSection> sections;
  /// True when the input carried an explicit version (v3); the dataset's
  /// `version()` then equals the stored value.
  bool has_version = false;
};

/// Parses a v1, v2, or v3 document, surfacing the sections (always empty
/// for v1 input).
Result<DeserializedDatasetV2> DeserializeIncompleteDatasetV2(
    const std::string& text);

/// File variants.
Status SaveIncompleteDataset(const IncompleteDataset& dataset,
                             const std::string& path);
Result<IncompleteDataset> LoadIncompleteDataset(const std::string& path);

}  // namespace cpclean

#endif  // CPCLEAN_INCOMPLETE_SERIALIZATION_H_
