#ifndef CPCLEAN_INCOMPLETE_SERIALIZATION_H_
#define CPCLEAN_INCOMPLETE_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "incomplete/incomplete_dataset.h"

namespace cpclean {

/// Plain-text serialization of an incomplete dataset, so candidate spaces
/// built by one process (e.g. an expensive repair-generation job) can be
/// reloaded by another. Format (line-oriented, '#' comments allowed):
///
///   cpclean-incomplete-v1 <num_labels> <dim>
///   example <label> <num_candidates>
///   <v0> <v1> ... <v_dim-1>           # one line per candidate
///   ...
///
/// Doubles round-trip exactly (hex float encoding).
std::string SerializeIncompleteDataset(const IncompleteDataset& dataset);

/// Parses text produced by `SerializeIncompleteDataset`.
Result<IncompleteDataset> DeserializeIncompleteDataset(
    const std::string& text);

/// File variants.
Status SaveIncompleteDataset(const IncompleteDataset& dataset,
                             const std::string& path);
Result<IncompleteDataset> LoadIncompleteDataset(const std::string& path);

}  // namespace cpclean

#endif  // CPCLEAN_INCOMPLETE_SERIALIZATION_H_
