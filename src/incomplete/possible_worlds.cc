#include "incomplete/possible_worlds.h"

#include "common/logging.h"

namespace cpclean {

PossibleWorldIterator::PossibleWorldIterator(const IncompleteDataset* dataset)
    : dataset_(dataset) {
  CP_CHECK(dataset_ != nullptr);
  Reset();
}

void PossibleWorldIterator::Reset() {
  choice_.assign(static_cast<size_t>(dataset_->num_examples()), 0);
  valid_ = dataset_->num_examples() > 0;
}

void PossibleWorldIterator::Next() {
  CP_CHECK(valid_);
  for (int i = 0; i < dataset_->num_examples(); ++i) {
    if (choice_[static_cast<size_t>(i)] + 1 < dataset_->num_candidates(i)) {
      ++choice_[static_cast<size_t>(i)];
      return;
    }
    choice_[static_cast<size_t>(i)] = 0;
  }
  valid_ = false;  // odometer wrapped: enumeration finished
}

std::vector<std::vector<double>> MaterializeWorld(
    const IncompleteDataset& dataset, const WorldChoice& choice) {
  CP_CHECK_EQ(static_cast<int>(choice.size()), dataset.num_examples());
  std::vector<std::vector<double>> features;
  features.reserve(choice.size());
  for (int i = 0; i < dataset.num_examples(); ++i) {
    features.push_back(dataset.candidate(i, choice[static_cast<size_t>(i)]));
  }
  return features;
}

std::vector<int> WorldLabels(const IncompleteDataset& dataset) {
  std::vector<int> labels;
  labels.reserve(static_cast<size_t>(dataset.num_examples()));
  for (int i = 0; i < dataset.num_examples(); ++i) {
    labels.push_back(dataset.label(i));
  }
  return labels;
}

}  // namespace cpclean
