#include "incomplete/cleaning_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

namespace {

constexpr char kLogMagic[] = "cpclean-log-v1";

Result<uint64_t> ParseUint64(const std::string& text, int base) {
  if (text.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, base);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return Status::ParseError("bad integer: " + text);
  }
  return static_cast<uint64_t>(value);
}

void AppendCandidates(const std::vector<std::vector<double>>& candidates,
                      std::string* out) {
  *out += StrFormat(" %d %d", static_cast<int>(candidates.size()),
                    candidates.empty()
                        ? 0
                        : static_cast<int>(candidates.front().size()));
  for (const auto& c : candidates) {
    for (const double x : c) {
      *out += StrFormat(" %a", x);
    }
  }
}

/// Parses `m dim v...` starting at fields[at]; consumes to the end.
Status ParseCandidates(const std::vector<std::string>& fields, size_t at,
                       std::vector<std::vector<double>>* out) {
  if (fields.size() < at + 2) return Status::ParseError("truncated payload");
  CP_ASSIGN_OR_RETURN(const int m, ParseInt(fields[at]));
  CP_ASSIGN_OR_RETURN(const int dim, ParseInt(fields[at + 1]));
  if (m < 1 || dim < 0) return Status::ParseError("bad payload shape");
  const size_t need = at + 2 + static_cast<size_t>(m) * dim;
  if (fields.size() != need) {
    return Status::ParseError("payload value count mismatch");
  }
  size_t pos = at + 2;
  out->clear();
  out->reserve(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    std::vector<double> c;
    c.reserve(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      CP_ASSIGN_OR_RETURN(double v, ParseDouble(fields[pos++]));
      c.push_back(v);
    }
    out->push_back(std::move(c));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeLogRecord(const MutationRecord& record) {
  std::string body;
  switch (record.kind) {
    case MutationRecord::Kind::kFix:
      body = StrFormat("fix %llu %d %d",
                       static_cast<unsigned long long>(record.seq),
                       record.example, record.candidate);
      break;
    case MutationRecord::Kind::kReplace:
      body = StrFormat("replace %llu %d",
                       static_cast<unsigned long long>(record.seq),
                       record.example);
      AppendCandidates(record.candidates, &body);
      break;
    case MutationRecord::Kind::kAdd:
      body = StrFormat("add %llu %d",
                       static_cast<unsigned long long>(record.seq),
                       record.label);
      AppendCandidates(record.candidates, &body);
      break;
  }
  return body + StrFormat(" #%016llx",
                          static_cast<unsigned long long>(Fnv1a64(body)));
}

Result<MutationRecord> DecodeLogRecord(const std::string& line) {
  const size_t hash = line.rfind(" #");
  if (hash == std::string::npos || line.size() != hash + 18) {
    return Status::ParseError("log record missing checksum: " + line);
  }
  const std::string body = line.substr(0, hash);
  CP_ASSIGN_OR_RETURN(const uint64_t crc,
                      ParseUint64(line.substr(hash + 2), 16));
  if (crc != Fnv1a64(body)) {
    return Status::ParseError("log record checksum mismatch: " + line);
  }
  std::vector<std::string> fields = Split(body, ' ');
  if (fields.size() < 3) return Status::ParseError("short log record: " + body);
  MutationRecord record;
  CP_ASSIGN_OR_RETURN(record.seq, ParseUint64(fields[1], 10));
  if (fields[0] == "fix") {
    if (fields.size() != 4) return Status::ParseError("bad fix record");
    CP_ASSIGN_OR_RETURN(record.example, ParseInt(fields[2]));
    CP_ASSIGN_OR_RETURN(record.candidate, ParseInt(fields[3]));
    record.kind = MutationRecord::Kind::kFix;
  } else if (fields[0] == "replace") {
    CP_ASSIGN_OR_RETURN(record.example, ParseInt(fields[2]));
    CP_RETURN_NOT_OK(ParseCandidates(fields, 3, &record.candidates));
    record.kind = MutationRecord::Kind::kReplace;
  } else if (fields[0] == "add") {
    CP_ASSIGN_OR_RETURN(record.label, ParseInt(fields[2]));
    CP_RETURN_NOT_OK(ParseCandidates(fields, 3, &record.candidates));
    record.kind = MutationRecord::Kind::kAdd;
  } else {
    return Status::ParseError("unknown log record kind: " + fields[0]);
  }
  return record;
}

Result<LogScan> ScanCleaningLog(const std::string& path) {
  LogScan scan;
  std::ifstream file(path, std::ios::binary);
  if (!file) return scan;  // no log = empty log
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return scan;

  size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // No newline: this line never finished landing. Only legal at EOF.
      scan.truncated_tail = true;
      return scan;
    }
    const std::string line = text.substr(pos, nl - pos);
    const size_t line_end = nl + 1;
    if (!saw_header) {
      if (line != kLogMagic) {
        // A torn first write can leave a partial header; only the final
        // line may be damaged, and the header is final iff nothing follows.
        if (line_end >= text.size()) {
          scan.truncated_tail = true;
          return scan;
        }
        return Status::IoError("cleaning log has a bad header: " + path);
      }
      saw_header = true;
      scan.durable_bytes = line_end;
      pos = line_end;
      continue;
    }
    Result<MutationRecord> record = DecodeLogRecord(line);
    if (!record.ok()) {
      if (line_end >= text.size()) {
        scan.truncated_tail = true;  // torn final record: drop it
        return scan;
      }
      return Status::IoError(StrFormat(
          "cleaning log corrupt mid-file at byte %zu: %s", pos,
          record.status().message().c_str()));
    }
    if (record.value().seq <= scan.last_seq) {
      return Status::IoError("cleaning log sequence numbers not increasing");
    }
    scan.last_seq = record.value().seq;
    scan.records.push_back(std::move(record.value()));
    scan.durable_bytes = line_end;
    pos = line_end;
  }
  return scan;
}

Result<LogScan> ScanCleaningLogForAppend(const std::string& path) {
  CP_ASSIGN_OR_RETURN(LogScan scan, ScanCleaningLog(path));
  if (scan.truncated_tail) {
    std::error_code ec;
    std::filesystem::resize_file(path, scan.durable_bytes, ec);
    if (ec) {
      return Status::IoError("cannot truncate torn log tail: " + path);
    }
  }
  return scan;
}

Result<size_t> AppendCleaningLog(const std::string& path,
                                 const std::vector<std::string>& lines) {
  if (FaultHit("log.append")) {
    return Status::IoError("injected fault: log.append");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot open log %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  const off_t start = ::lseek(fd, 0, SEEK_END);
  std::string payload;
  if (start == 0) {
    payload += kLogMagic;
    payload += '\n';
  }
  for (const std::string& line : lines) {
    payload += line;
    payload += '\n';
  }
  auto fail = [&](const char* what) {
    // Best-effort rewind so an in-process retry appends to a clean
    // boundary (a crash instead leaves a torn tail for the scanner).
    if (start >= 0) ::ftruncate(fd, start);
    ::close(fd);
    return Status::IoError(StrFormat("log %s failed for %s: %s", what,
                                     path.c_str(), std::strerror(errno)));
  };
  size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n <= 0) return fail("append");
    written += static_cast<size_t>(n);
  }
  if (FaultHit("log.fsync") || ::fsync(fd) != 0) return fail("fsync");
  ::close(fd);
  return payload.size();
}

Status ReplayCleaningLog(const std::vector<MutationRecord>& records,
                         uint64_t from_seq, IncompleteDataset* dataset,
                         std::vector<int>* fixed_examples) {
  if (FaultHit("log.replay")) {
    return Status::IoError("injected fault: log.replay");
  }
  for (const MutationRecord& record : records) {
    if (record.seq <= from_seq) continue;
    if (record.seq != dataset->version() + 1) {
      return Status::IoError(StrFormat(
          "log replay gap: record seq %llu onto dataset version %llu",
          static_cast<unsigned long long>(record.seq),
          static_cast<unsigned long long>(dataset->version())));
    }
    switch (record.kind) {
      case MutationRecord::Kind::kFix:
        if (record.example < 0 || record.example >= dataset->num_examples() ||
            record.candidate < 0 ||
            record.candidate >= dataset->num_candidates(record.example)) {
          return Status::IoError("log fix record out of range");
        }
        dataset->FixExample(record.example, record.candidate);
        if (fixed_examples != nullptr) {
          fixed_examples->push_back(record.example);
        }
        break;
      case MutationRecord::Kind::kReplace:
        if (record.example < 0 || record.example >= dataset->num_examples() ||
            record.candidates.empty()) {
          return Status::IoError("log replace record out of range");
        }
        for (const auto& c : record.candidates) {
          if (static_cast<int>(c.size()) != dataset->dim()) {
            return Status::IoError("log replace record dimension mismatch");
          }
        }
        dataset->ReplaceCandidates(record.example, record.candidates);
        break;
      case MutationRecord::Kind::kAdd: {
        IncompleteExample example;
        example.candidates = record.candidates;
        example.label = record.label;
        CP_RETURN_NOT_OK(dataset->AddExample(std::move(example)));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace cpclean
