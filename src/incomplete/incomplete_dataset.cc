#include "incomplete/incomplete_dataset.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

namespace {
double SquaredNorm(const std::vector<double>& v) {
  double sum = 0.0;
  for (const double x : v) sum += x * x;
  return sum;
}
}  // namespace

IncompleteDataset::IncompleteDataset(const IncompleteDataset& other)
    : examples_(other.examples_),
      num_labels_(other.num_labels_),
      dim_(other.dim_),
      flat_(other.flat_data(), other.flat_data() + other.flat_doubles()),
      sq_norms_(other.sq_norms_),
      cand_start_(other.cand_start_),
      cand_capacity_(other.cand_capacity_),
      total_candidates_(other.total_candidates_),
      version_(other.version_) {}

IncompleteDataset& IncompleteDataset::operator=(
    const IncompleteDataset& other) {
  if (this == &other) return *this;
  IncompleteDataset copy(other);
  *this = std::move(copy);
  return *this;
}

void IncompleteDataset::WriteFlatRow(int row,
                                     const std::vector<double>& features) {
  CP_CHECK_EQ(static_cast<int>(features.size()), dim_);
  std::copy(features.begin(), features.end(),
            mutable_flat() + static_cast<size_t>(row) *
                                 static_cast<size_t>(dim_));
  sq_norms_[static_cast<size_t>(row)] = SquaredNorm(features);
}

Status IncompleteDataset::EnsureSlabCapacity(size_t doubles) {
  if (!mapped_) return Status::OK();  // std::vector grows on demand
  const size_t bytes = doubles * sizeof(double);
  if (bytes <= mapped_->size()) return Status::OK();
  // Grow geometrically so an AddExample stream does O(log n) remaps.
  size_t want = mapped_->size() < 4096 ? 4096 : mapped_->size();
  while (want < bytes) want *= 2;
  return mapped_->Resize(want);
}

void IncompleteDataset::AppendFlatRow(const std::vector<double>& features) {
  const size_t offset = flat_doubles();
  if (mapped_) {
    CP_CHECK(EnsureSlabCapacity(offset + features.size()).ok());
    std::copy(features.begin(), features.end(),
              static_cast<double*>(mapped_->data()) + offset);
    mapped_doubles_ = offset + features.size();
  } else {
    flat_.insert(flat_.end(), features.begin(), features.end());
  }
  sq_norms_.push_back(SquaredNorm(features));
}

void IncompleteDataset::RebuildFlat() {
  if (mapped_) {
    mapped_doubles_ = 0;
  } else {
    flat_.clear();
  }
  sq_norms_.clear();
  cand_start_.clear();
  cand_capacity_.clear();
  total_candidates_ = 0;
  int row = 0;
  for (const IncompleteExample& ex : examples_) {
    cand_start_.push_back(row);
    cand_capacity_.push_back(static_cast<int>(ex.candidates.size()));
    for (const auto& c : ex.candidates) {
      AppendFlatRow(c);
      ++row;
    }
    total_candidates_ += static_cast<int>(ex.candidates.size());
  }
}

Status IncompleteDataset::BackWithFile(const std::string& scratch_dir,
                                       size_t stream_window_bytes) {
  if (mapped_) {
    stream_window_bytes_ = stream_window_bytes;
    return Status::OK();
  }
  CP_ASSIGN_OR_RETURN(
      std::unique_ptr<MappedFile> mapped,
      MappedFile::CreateScratch(scratch_dir, flat_.size() * sizeof(double)));
  std::copy(flat_.begin(), flat_.end(),
            static_cast<double*>(mapped->data()));
  mapped_ = std::move(mapped);
  mapped_doubles_ = flat_.size();
  stream_window_bytes_ = stream_window_bytes == 0 ? 1 : stream_window_bytes;
  flat_.clear();
  flat_.shrink_to_fit();
  return Status::OK();
}

void IncompleteDataset::PrefetchFlatRows(int first_row, int count) const {
  if (!mapped_ || count <= 0) return;
  const size_t stride = static_cast<size_t>(dim_) * sizeof(double);
  mapped_->Prefetch(static_cast<size_t>(first_row) * stride,
                    static_cast<size_t>(count) * stride);
}

void IncompleteDataset::EnableJournal() {
  journal_enabled_ = true;
  journal_base_version_ = version_;
  journal_.clear();
}

std::vector<MutationRecord> IncompleteDataset::JournalSince(
    uint64_t version) const {
  CP_CHECK(JournalCovers(version));
  std::vector<MutationRecord> out;
  for (const MutationRecord& rec : journal_) {
    if (rec.seq > version) out.push_back(rec);
  }
  return out;
}

void IncompleteDataset::OverrideVersionForReplay(uint64_t version) {
  CP_CHECK(!journal_enabled_);
  version_ = version;
}

Status IncompleteDataset::AddExample(IncompleteExample example) {
  if (example.candidates.empty()) {
    return Status::InvalidArgument("candidate set must be non-empty");
  }
  if (example.label < 0 || example.label >= num_labels_) {
    return Status::InvalidArgument(
        StrFormat("label %d out of range [0, %d)", example.label, num_labels_));
  }
  const int d = static_cast<int>(example.candidates.front().size());
  for (const auto& c : example.candidates) {
    if (static_cast<int>(c.size()) != d) {
      return Status::InvalidArgument("inconsistent candidate dimensions");
    }
  }
  if (dim_ == 0 && num_examples() == 0) {
    dim_ = d;
  } else if (d != dim_) {
    return Status::InvalidArgument(StrFormat(
        "candidate dimension %d does not match dataset dimension %d", d, dim_));
  }
  // Pre-grow the file mapping so the appends below cannot fail mid-way.
  CP_RETURN_NOT_OK(EnsureSlabCapacity(
      flat_doubles() +
      example.candidates.size() * static_cast<size_t>(d)));
  cand_start_.push_back(static_cast<int>(sq_norms_.size()));
  cand_capacity_.push_back(static_cast<int>(example.candidates.size()));
  for (const auto& c : example.candidates) {
    AppendFlatRow(c);
  }
  total_candidates_ += static_cast<int>(example.candidates.size());
  examples_.push_back(std::move(example));
  ++version_;
  if (journal_enabled_) {
    MutationRecord rec;
    rec.kind = MutationRecord::Kind::kAdd;
    rec.seq = version_;
    rec.label = examples_.back().label;
    rec.candidates = examples_.back().candidates;
    journal_.push_back(std::move(rec));
  }
  return Status::OK();
}

Status IncompleteDataset::AddCleanExample(std::vector<double> features,
                                          int label) {
  IncompleteExample example;
  example.candidates.push_back(std::move(features));
  example.label = label;
  return AddExample(std::move(example));
}

const IncompleteExample& IncompleteDataset::example(int i) const {
  CP_CHECK_GE(i, 0);
  CP_CHECK_LT(i, num_examples());
  return examples_[static_cast<size_t>(i)];
}

int IncompleteDataset::num_candidates(int i) const {
  return static_cast<int>(example(i).candidates.size());
}

int IncompleteDataset::max_candidates() const {
  int m = 0;
  for (const auto& ex : examples_) {
    m = std::max(m, static_cast<int>(ex.candidates.size()));
  }
  return m;
}

const std::vector<double>& IncompleteDataset::candidate(int i, int j) const {
  const auto& ex = example(i);
  CP_CHECK_GE(j, 0);
  CP_CHECK_LT(j, static_cast<int>(ex.candidates.size()));
  return ex.candidates[static_cast<size_t>(j)];
}

bool IncompleteDataset::IsComplete() const {
  for (const auto& ex : examples_) {
    if (ex.candidates.size() != 1) return false;
  }
  return true;
}

std::vector<int> IncompleteDataset::DirtyExamples() const {
  std::vector<int> out;
  for (int i = 0; i < num_examples(); ++i) {
    if (num_candidates(i) > 1) out.push_back(i);
  }
  return out;
}

BigUint IncompleteDataset::NumPossibleWorlds() const {
  BigUint count(1);
  for (const auto& ex : examples_) {
    count *= BigUint(static_cast<uint64_t>(ex.candidates.size()));
  }
  return count;
}

double IncompleteDataset::Log2NumPossibleWorlds() const {
  double total = 0.0;
  for (const auto& ex : examples_) {
    total += std::log2(static_cast<double>(ex.candidates.size()));
  }
  return total;
}

void IncompleteDataset::FixExample(int i, int j) {
  CP_CHECK_GE(i, 0);
  CP_CHECK_LT(i, num_examples());
  auto& ex = examples_[static_cast<size_t>(i)];
  CP_CHECK_GE(j, 0);
  CP_CHECK_LT(j, static_cast<int>(ex.candidates.size()));
  std::vector<double> chosen = ex.candidates[static_cast<size_t>(j)];
  total_candidates_ -= static_cast<int>(ex.candidates.size()) - 1;
  ex.candidates.clear();
  ex.candidates.push_back(std::move(chosen));
  // In-place collapse: the example keeps its flat slot range; only row 0
  // stays active. Rows past the first are retired, not reclaimed.
  WriteFlatRow(flat_row(i, 0), ex.candidates.front());
  ++version_;
  if (journal_enabled_) {
    MutationRecord rec;
    rec.kind = MutationRecord::Kind::kFix;
    rec.seq = version_;
    rec.example = i;
    rec.candidate = j;
    journal_.push_back(std::move(rec));
  }
}

void IncompleteDataset::ReplaceCandidates(
    int i, std::vector<std::vector<double>> candidates) {
  CP_CHECK_GE(i, 0);
  CP_CHECK_LT(i, num_examples());
  CP_CHECK(!candidates.empty());
  for (const auto& c : candidates) {
    CP_CHECK_EQ(static_cast<int>(c.size()), dim_);
  }
  total_candidates_ +=
      static_cast<int>(candidates.size()) - num_candidates(i);
  examples_[static_cast<size_t>(i)].candidates = std::move(candidates);
  const auto& stored = examples_[static_cast<size_t>(i)].candidates;
  if (static_cast<int>(stored.size()) <=
      cand_capacity_[static_cast<size_t>(i)]) {
    for (int j = 0; j < static_cast<int>(stored.size()); ++j) {
      WriteFlatRow(flat_row(i, j), stored[static_cast<size_t>(j)]);
    }
  } else {
    // The replacement outgrew the example's reserved slots: re-lay the slab.
    RebuildFlat();
  }
  ++version_;
  if (journal_enabled_) {
    MutationRecord rec;
    rec.kind = MutationRecord::Kind::kReplace;
    rec.seq = version_;
    rec.example = i;
    rec.candidates = stored;
    journal_.push_back(std::move(rec));
  }
}

bool BitIdentical(const IncompleteDataset& a, const IncompleteDataset& b) {
  if (a.num_labels() != b.num_labels() || a.dim() != b.dim() ||
      a.num_examples() != b.num_examples()) {
    return false;
  }
  for (int i = 0; i < a.num_examples(); ++i) {
    if (a.label(i) != b.label(i) ||
        a.num_candidates(i) != b.num_candidates(i)) {
      return false;
    }
    for (int j = 0; j < a.num_candidates(i); ++j) {
      // Exact double comparison on purpose: the serving layer's
      // snapshot/rehydrate contract is bit-identity, not tolerance.
      if (a.candidate(i, j) != b.candidate(i, j)) return false;
    }
  }
  return true;
}

}  // namespace cpclean
