#include "incomplete/incomplete_dataset.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

namespace {
double SquaredNorm(const std::vector<double>& v) {
  double sum = 0.0;
  for (const double x : v) sum += x * x;
  return sum;
}
}  // namespace

void IncompleteDataset::WriteFlatRow(int row, const std::vector<double>& features) {
  CP_CHECK_EQ(static_cast<int>(features.size()), dim_);
  std::copy(features.begin(), features.end(),
            flat_.begin() + static_cast<size_t>(row) * static_cast<size_t>(dim_));
  sq_norms_[static_cast<size_t>(row)] = SquaredNorm(features);
}

void IncompleteDataset::RebuildFlat() {
  flat_.clear();
  sq_norms_.clear();
  cand_start_.clear();
  cand_capacity_.clear();
  total_candidates_ = 0;
  int row = 0;
  for (const IncompleteExample& ex : examples_) {
    cand_start_.push_back(row);
    cand_capacity_.push_back(static_cast<int>(ex.candidates.size()));
    for (const auto& c : ex.candidates) {
      flat_.insert(flat_.end(), c.begin(), c.end());
      sq_norms_.push_back(SquaredNorm(c));
      ++row;
    }
    total_candidates_ += static_cast<int>(ex.candidates.size());
  }
}

Status IncompleteDataset::AddExample(IncompleteExample example) {
  if (example.candidates.empty()) {
    return Status::InvalidArgument("candidate set must be non-empty");
  }
  if (example.label < 0 || example.label >= num_labels_) {
    return Status::InvalidArgument(
        StrFormat("label %d out of range [0, %d)", example.label, num_labels_));
  }
  const int d = static_cast<int>(example.candidates.front().size());
  for (const auto& c : example.candidates) {
    if (static_cast<int>(c.size()) != d) {
      return Status::InvalidArgument("inconsistent candidate dimensions");
    }
  }
  if (dim_ == 0 && num_examples() == 0) {
    dim_ = d;
  } else if (d != dim_) {
    return Status::InvalidArgument(StrFormat(
        "candidate dimension %d does not match dataset dimension %d", d, dim_));
  }
  cand_start_.push_back(static_cast<int>(sq_norms_.size()));
  cand_capacity_.push_back(static_cast<int>(example.candidates.size()));
  for (const auto& c : example.candidates) {
    flat_.insert(flat_.end(), c.begin(), c.end());
    sq_norms_.push_back(SquaredNorm(c));
  }
  total_candidates_ += static_cast<int>(example.candidates.size());
  examples_.push_back(std::move(example));
  ++version_;
  return Status::OK();
}

Status IncompleteDataset::AddCleanExample(std::vector<double> features,
                                          int label) {
  IncompleteExample example;
  example.candidates.push_back(std::move(features));
  example.label = label;
  return AddExample(std::move(example));
}

const IncompleteExample& IncompleteDataset::example(int i) const {
  CP_CHECK_GE(i, 0);
  CP_CHECK_LT(i, num_examples());
  return examples_[static_cast<size_t>(i)];
}

int IncompleteDataset::num_candidates(int i) const {
  return static_cast<int>(example(i).candidates.size());
}

int IncompleteDataset::max_candidates() const {
  int m = 0;
  for (const auto& ex : examples_) {
    m = std::max(m, static_cast<int>(ex.candidates.size()));
  }
  return m;
}

const std::vector<double>& IncompleteDataset::candidate(int i, int j) const {
  const auto& ex = example(i);
  CP_CHECK_GE(j, 0);
  CP_CHECK_LT(j, static_cast<int>(ex.candidates.size()));
  return ex.candidates[static_cast<size_t>(j)];
}

bool IncompleteDataset::IsComplete() const {
  for (const auto& ex : examples_) {
    if (ex.candidates.size() != 1) return false;
  }
  return true;
}

std::vector<int> IncompleteDataset::DirtyExamples() const {
  std::vector<int> out;
  for (int i = 0; i < num_examples(); ++i) {
    if (num_candidates(i) > 1) out.push_back(i);
  }
  return out;
}

BigUint IncompleteDataset::NumPossibleWorlds() const {
  BigUint count(1);
  for (const auto& ex : examples_) {
    count *= BigUint(static_cast<uint64_t>(ex.candidates.size()));
  }
  return count;
}

double IncompleteDataset::Log2NumPossibleWorlds() const {
  double total = 0.0;
  for (const auto& ex : examples_) {
    total += std::log2(static_cast<double>(ex.candidates.size()));
  }
  return total;
}

void IncompleteDataset::FixExample(int i, int j) {
  CP_CHECK_GE(i, 0);
  CP_CHECK_LT(i, num_examples());
  auto& ex = examples_[static_cast<size_t>(i)];
  CP_CHECK_GE(j, 0);
  CP_CHECK_LT(j, static_cast<int>(ex.candidates.size()));
  std::vector<double> chosen = ex.candidates[static_cast<size_t>(j)];
  total_candidates_ -= static_cast<int>(ex.candidates.size()) - 1;
  ex.candidates.clear();
  ex.candidates.push_back(std::move(chosen));
  // In-place collapse: the example keeps its flat slot range; only row 0
  // stays active. Rows past the first are retired, not reclaimed.
  WriteFlatRow(flat_row(i, 0), ex.candidates.front());
  ++version_;
}

void IncompleteDataset::ReplaceCandidates(
    int i, std::vector<std::vector<double>> candidates) {
  CP_CHECK_GE(i, 0);
  CP_CHECK_LT(i, num_examples());
  CP_CHECK(!candidates.empty());
  for (const auto& c : candidates) {
    CP_CHECK_EQ(static_cast<int>(c.size()), dim_);
  }
  total_candidates_ +=
      static_cast<int>(candidates.size()) - num_candidates(i);
  examples_[static_cast<size_t>(i)].candidates = std::move(candidates);
  const auto& stored = examples_[static_cast<size_t>(i)].candidates;
  if (static_cast<int>(stored.size()) <=
      cand_capacity_[static_cast<size_t>(i)]) {
    for (int j = 0; j < static_cast<int>(stored.size()); ++j) {
      WriteFlatRow(flat_row(i, j), stored[static_cast<size_t>(j)]);
    }
  } else {
    // The replacement outgrew the example's reserved slots: re-lay the slab.
    RebuildFlat();
  }
  ++version_;
}

bool BitIdentical(const IncompleteDataset& a, const IncompleteDataset& b) {
  if (a.num_labels() != b.num_labels() || a.dim() != b.dim() ||
      a.num_examples() != b.num_examples()) {
    return false;
  }
  for (int i = 0; i < a.num_examples(); ++i) {
    if (a.label(i) != b.label(i) ||
        a.num_candidates(i) != b.num_candidates(i)) {
      return false;
    }
    for (int j = 0; j < a.num_candidates(i); ++j) {
      // Exact double comparison on purpose: the serving layer's
      // snapshot/rehydrate contract is bit-identity, not tolerance.
      if (a.candidate(i, j) != b.candidate(i, j)) return false;
    }
  }
  return true;
}

}  // namespace cpclean
