#ifndef CPCLEAN_INCOMPLETE_CLEANING_LOG_H_
#define CPCLEAN_INCOMPLETE_CLEANING_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "incomplete/incomplete_dataset.h"

namespace cpclean {

/// The append-only cleaning log: the O(delta) persistence companion to a
/// base snapshot. Each line is one `MutationRecord` in a fixed text
/// format with a trailing FNV-1a checksum; doubles are hex floats, so a
/// replayed record reproduces the mutation bit-for-bit:
///
///   cpclean-log-v1
///   fix <seq> <example> <candidate> #<crc16hex>
///   replace <seq> <example> <m> <dim> <m*dim hex floats> #<crc>
///   add <seq> <label> <m> <dim> <m*dim hex floats> #<crc>
///
/// `seq` is the dataset `version()` immediately after the mutation.
/// A record is durable once its full line (newline included) is on disk;
/// a torn *final* line — the only kind of damage a killed append can
/// leave — is detected by the checksum/newline and dropped, while any
/// earlier damage is surfaced as corruption.
///
/// Fault sites: `log.append`, `log.fsync`, `log.replay`.

/// Encodes one record as a checksummed log line (no trailing newline).
std::string EncodeLogRecord(const MutationRecord& record);

/// Decodes one log line; fails on a checksum mismatch or malformed body.
Result<MutationRecord> DecodeLogRecord(const std::string& line);

struct LogScan {
  std::vector<MutationRecord> records;
  /// version() the log reaches (0 when empty).
  uint64_t last_seq = 0;
  /// Byte offset just past the last durable record — the append point.
  size_t durable_bytes = 0;
  /// True when a torn final record was dropped.
  bool truncated_tail = false;
};

/// Reads and validates a log file. A missing file scans as empty; a torn
/// final record is tolerated (`truncated_tail`); a bad record anywhere
/// before the tail is a DataLoss error.
Result<LogScan> ScanCleaningLog(const std::string& path);

/// Scans and then truncates any torn tail off the file, so subsequent
/// appends land on a record boundary.
Result<LogScan> ScanCleaningLogForAppend(const std::string& path);

/// Appends encoded record lines (creating the file, with its header, when
/// absent) and fsyncs. On any failure the file is truncated back to its
/// pre-append length (best effort) so an in-process retry stays clean.
/// Returns the number of bytes appended. Fault sites log.append/log.fsync.
Result<size_t> AppendCleaningLog(const std::string& path,
                                 const std::vector<std::string>& lines);

/// Applies every record with seq > `from_seq` to `dataset`, in order,
/// requiring strictly increasing sequence numbers that continue from the
/// dataset's own version. Appends the example index of each applied fix
/// record to `fixed_examples` when non-null. Fault site log.replay.
Status ReplayCleaningLog(const std::vector<MutationRecord>& records,
                         uint64_t from_seq, IncompleteDataset* dataset,
                         std::vector<int>* fixed_examples);

}  // namespace cpclean

#endif  // CPCLEAN_INCOMPLETE_CLEANING_LOG_H_
