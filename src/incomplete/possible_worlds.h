#ifndef CPCLEAN_INCOMPLETE_POSSIBLE_WORLDS_H_
#define CPCLEAN_INCOMPLETE_POSSIBLE_WORLDS_H_

#include <vector>

#include "incomplete/incomplete_dataset.h"

namespace cpclean {

/// A possible world (paper Def. 2) identified by the candidate choice made
/// for each example: world[i] = j means example i takes candidate x_{i,j}.
using WorldChoice = std::vector<int>;

/// Odometer-style enumeration of all possible worlds of an incomplete
/// dataset. Intended for the brute-force oracle and for tests; the number
/// of worlds is prod_i |C_i| and explodes quickly.
class PossibleWorldIterator {
 public:
  explicit PossibleWorldIterator(const IncompleteDataset* dataset);

  /// True while the current choice is valid.
  bool Valid() const { return valid_; }

  /// The current world's choice vector.
  const WorldChoice& choice() const { return choice_; }

  /// Advances to the next world (lexicographic over choices).
  void Next();

  /// Resets to the first world.
  void Reset();

 private:
  const IncompleteDataset* dataset_;
  WorldChoice choice_;
  bool valid_;
};

/// Materializes the feature matrix of a world (labels come from the
/// dataset and are world-independent).
std::vector<std::vector<double>> MaterializeWorld(
    const IncompleteDataset& dataset, const WorldChoice& choice);

/// The labels vector shared by all worlds.
std::vector<int> WorldLabels(const IncompleteDataset& dataset);

}  // namespace cpclean

#endif  // CPCLEAN_INCOMPLETE_POSSIBLE_WORLDS_H_
