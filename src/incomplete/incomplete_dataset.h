#ifndef CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_
#define CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/big_uint.h"
#include "common/mmap_file.h"
#include "common/result.h"

namespace cpclean {

/// One incomplete data example (paper Def. 1): a finite candidate set
/// C_i = {x_{i,1}, x_{i,2}, ...} of possible feature vectors plus a certain
/// class label y_i. A "clean" example has exactly one candidate.
struct IncompleteExample {
  std::vector<std::vector<double>> candidates;
  int label = 0;
};

/// One logged mutation of an incomplete dataset — the unit of the
/// append-only cleaning log. `seq` is the dataset `version()` immediately
/// after the mutation, so a log replayed in sequence order onto a base
/// snapshot at version v applies exactly the records with seq > v.
struct MutationRecord {
  enum class Kind { kFix, kReplace, kAdd };
  Kind kind = Kind::kFix;
  uint64_t seq = 0;
  int example = -1;   // FixExample / ReplaceCandidates target
  int candidate = -1; // FixExample: the chosen candidate index
  std::vector<std::vector<double>> candidates;  // Replace / Add payload
  int label = 0;      // AddExample label
};

/// An incomplete dataset D = {(C_i, y_i)} — the block tuple-independent
/// structure whose possible worlds (Def. 2) the CP queries range over.
///
/// Candidate vectors are pre-encoded dense features; candidate sets may
/// have different sizes. Labels are dense ids in [0, num_labels).
///
/// Storage: candidates live twice. The vector-of-vectors `example()` /
/// `candidate()` view is the mutation API, and a row-major contiguous
/// mirror (`flat_data()`, one dim()-stride row per candidate, all rows of
/// an example adjacent) feeds the batched similarity kernels, together
/// with a cached squared L2 norm per row. Both are kept in sync by every
/// mutator. `FixExample` collapses in place — the example keeps its flat
/// slot range (capacity) and only its first row stays active — so a
/// cleaning step never reshuffles the slab.
///
/// The flat mirror has two backing modes. By default it is an in-RAM
/// `std::vector`. `BackWithFile` moves it into an unlinked mmap'd scratch
/// file (norms and the candidate vectors stay in RAM), so large slabs can
/// be paged by the kernel instead of pinned; readers stream it through
/// `PrefetchFlatRows` windows. The two modes hold bit-identical doubles.
class IncompleteDataset {
 public:
  IncompleteDataset() = default;
  explicit IncompleteDataset(int num_labels) : num_labels_(num_labels) {}

  /// Copies materialize into RAM backing mode and do not carry the source's
  /// journal — a copy is a value snapshot of the candidate space (and its
  /// version), not of the persistence machinery.
  IncompleteDataset(const IncompleteDataset& other);
  IncompleteDataset& operator=(const IncompleteDataset& other);
  IncompleteDataset(IncompleteDataset&&) noexcept = default;
  IncompleteDataset& operator=(IncompleteDataset&&) noexcept = default;

  /// Appends an example. Fails when the candidate set is empty, a label is
  /// out of range, or feature dimensions are inconsistent.
  Status AddExample(IncompleteExample example);

  /// Convenience: appends a clean (single-candidate) example.
  Status AddCleanExample(std::vector<double> features, int label);

  int num_examples() const { return static_cast<int>(examples_.size()); }
  int num_labels() const { return num_labels_; }

  /// Feature dimensionality (0 while empty).
  int dim() const { return dim_; }

  const IncompleteExample& example(int i) const;
  int label(int i) const { return example(i).label; }

  /// Candidate-set size |C_i|.
  int num_candidates(int i) const;

  /// Largest candidate-set size M over all examples (0 while empty).
  int max_candidates() const;

  const std::vector<double>& candidate(int i, int j) const;

  // --- Flat view -----------------------------------------------------------

  /// Base of the row-major candidate slab; row r starts at
  /// `flat_data() + r * dim()`. Rows of example `i` occupy flat rows
  /// `[flat_row(i, 0), flat_row(i, 0) + num_candidates(i))`. Invalidated by
  /// `AddExample` and by a `ReplaceCandidates` that grows past capacity.
  const double* flat_data() const {
    return mapped_ ? static_cast<const double*>(mapped_->data())
                   : flat_.data();
  }

  /// Flat row index of candidate (i, j).
  int flat_row(int i, int j) const {
    return cand_start_[static_cast<size_t>(i)] + j;
  }

  /// Pointer to candidate (i, j)'s features (dim() doubles).
  const double* candidate_ptr(int i, int j) const {
    return flat_data() + static_cast<size_t>(flat_row(i, j)) *
                             static_cast<size_t>(dim_);
  }

  /// Cached squared L2 norms, one per flat row (aligned with flat_data()).
  const double* flat_sq_norms() const { return sq_norms_.data(); }

  /// Cached ||x_{i,j}||^2.
  double candidate_sq_norm(int i, int j) const {
    return sq_norms_[static_cast<size_t>(flat_row(i, j))];
  }

  /// Number of *active* candidate rows (sum of |C_i|).
  int total_candidates() const { return total_candidates_; }

  /// Monotone mutation counter: bumped by every `AddExample`, `FixExample`,
  /// and `ReplaceCandidates`. Cached derived state (serving-layer result
  /// caches, bound query engines) compares versions to detect precisely
  /// when the candidate space changed. Copies carry the source's version
  /// forward (a copy of version v holds the same worlds as the original at
  /// v), and assignment adopts the assigned dataset's version.
  uint64_t version() const { return version_; }

  /// True when the slab has no retired rows — every flat row is an active
  /// candidate — so one batched kernel call can sweep the whole slab.
  bool flat_is_compact() const {
    return static_cast<size_t>(total_candidates_) *
               static_cast<size_t>(dim_) ==
           flat_doubles();
  }

  // --- File-backed slab ----------------------------------------------------

  /// Moves the flat slab into an unlinked mmap'd scratch file under
  /// `scratch_dir` (which must exist). No-op when already file-backed.
  /// Readers should stream the slab in `stream_window_bytes`-sized blocks
  /// with `PrefetchFlatRows` — results are bit-identical to RAM mode
  /// because the doubles are. On failure the dataset stays in RAM mode.
  Status BackWithFile(const std::string& scratch_dir,
                      size_t stream_window_bytes);

  bool file_backed() const { return mapped_ != nullptr; }

  /// Preferred streaming window for file-backed scans (0 = RAM mode).
  size_t stream_window_bytes() const { return stream_window_bytes_; }

  /// Advises the kernel to page flat rows [first_row, first_row + count)
  /// in ahead of use. No-op in RAM mode; best effort.
  void PrefetchFlatRows(int first_row, int count) const;

  // --- Mutation journal ----------------------------------------------------

  /// Starts recording every subsequent mutation as a `MutationRecord`.
  /// The journal's coverage starts at the current version; `JournalSince`
  /// answers only for versions at or past it.
  void EnableJournal();

  bool journal_enabled() const { return journal_enabled_; }

  /// True when the journal can reconstruct every mutation after `version`
  /// (journal enabled and `version` within its coverage).
  bool JournalCovers(uint64_t version) const {
    return journal_enabled_ && version >= journal_base_version_;
  }

  /// The records with seq > `version`, in sequence order. Call only when
  /// `JournalCovers(version)`.
  std::vector<MutationRecord> JournalSince(uint64_t version) const;

  /// Forces the version counter — used only when rehydrating a serialized
  /// dataset whose header carries the version it had when written, so log
  /// sequence numbers line up. CP_CHECK-fails if the journal is enabled.
  void OverrideVersionForReplay(uint64_t version);

  // -------------------------------------------------------------------------

  /// True when every candidate set is a singleton (a single possible world).
  bool IsComplete() const;

  /// Indices of examples with more than one candidate ("dirty" tuples).
  std::vector<int> DirtyExamples() const;

  /// Exact number of possible worlds: prod_i |C_i| (can be astronomical).
  BigUint NumPossibleWorlds() const;

  /// log2 of the number of possible worlds.
  double Log2NumPossibleWorlds() const;

  /// Collapses example `i` to its `j`-th candidate (a cleaning step: the
  /// human revealed the true value). Afterwards |C_i| == 1.
  void FixExample(int i, int j);

  /// Replaces the candidate set of example `i` entirely.
  void ReplaceCandidates(int i, std::vector<std::vector<double>> candidates);

 private:
  /// Doubles currently stored in the flat slab (active + retired rows).
  size_t flat_doubles() const {
    return mapped_ ? mapped_doubles_ : flat_.size();
  }
  double* mutable_flat() {
    return mapped_ ? static_cast<double*>(mapped_->data()) : flat_.data();
  }
  /// Writes `features` into flat row `row` and refreshes its cached norm.
  void WriteFlatRow(int row, const std::vector<double>& features);
  /// Appends one candidate row to the end of the slab (growing the mapping
  /// in file-backed mode). CP_CHECK-fails on a grow failure; callers that
  /// can surface a Status should pre-grow via `EnsureSlabCapacity`.
  void AppendFlatRow(const std::vector<double>& features);
  /// Grows the file mapping to hold at least `doubles` (RAM mode: no-op —
  /// std::vector grows on demand).
  Status EnsureSlabCapacity(size_t doubles);
  /// Rebuilds the flat slab from `examples_` (used when a replacement
  /// outgrows an example's reserved slots).
  void RebuildFlat();

  std::vector<IncompleteExample> examples_;
  int num_labels_ = 0;
  int dim_ = 0;

  // Flat mirror. cand_start_[i] is example i's first flat row; the example
  // owns cand_capacity_[i] consecutive rows of which the first
  // num_candidates(i) are active. Exactly one of flat_ (RAM mode) and
  // mapped_ (file mode, mapped_doubles_ doubles long) backs the slab.
  std::vector<double> flat_;
  std::unique_ptr<MappedFile> mapped_;
  size_t mapped_doubles_ = 0;
  size_t stream_window_bytes_ = 0;
  std::vector<double> sq_norms_;
  std::vector<int> cand_start_;
  std::vector<int> cand_capacity_;
  int total_candidates_ = 0;
  uint64_t version_ = 0;

  bool journal_enabled_ = false;
  uint64_t journal_base_version_ = 0;
  std::vector<MutationRecord> journal_;
};

/// True when `a` and `b` describe bit-for-bit the same candidate space:
/// same shape (labels, dim, example count, candidate counts), same labels,
/// and exactly equal candidate doubles. Versions and flat-slab layout are
/// NOT compared — a rehydrated dataset that replayed the same mutations is
/// identical even if its internal capacity bookkeeping differs.
bool BitIdentical(const IncompleteDataset& a, const IncompleteDataset& b);

}  // namespace cpclean

#endif  // CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_
