#ifndef CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_
#define CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/big_uint.h"
#include "common/result.h"

namespace cpclean {

/// One incomplete data example (paper Def. 1): a finite candidate set
/// C_i = {x_{i,1}, x_{i,2}, ...} of possible feature vectors plus a certain
/// class label y_i. A "clean" example has exactly one candidate.
struct IncompleteExample {
  std::vector<std::vector<double>> candidates;
  int label = 0;
};

/// An incomplete dataset D = {(C_i, y_i)} — the block tuple-independent
/// structure whose possible worlds (Def. 2) the CP queries range over.
///
/// Candidate vectors are pre-encoded dense features; candidate sets may
/// have different sizes. Labels are dense ids in [0, num_labels).
///
/// Storage: candidates live twice. The vector-of-vectors `example()` /
/// `candidate()` view is the mutation API, and a row-major contiguous
/// mirror (`flat_data()`, one dim()-stride row per candidate, all rows of
/// an example adjacent) feeds the batched similarity kernels, together
/// with a cached squared L2 norm per row. Both are kept in sync by every
/// mutator. `FixExample` collapses in place — the example keeps its flat
/// slot range (capacity) and only its first row stays active — so a
/// cleaning step never reshuffles the slab.
class IncompleteDataset {
 public:
  IncompleteDataset() = default;
  explicit IncompleteDataset(int num_labels) : num_labels_(num_labels) {}

  /// Appends an example. Fails when the candidate set is empty, a label is
  /// out of range, or feature dimensions are inconsistent.
  Status AddExample(IncompleteExample example);

  /// Convenience: appends a clean (single-candidate) example.
  Status AddCleanExample(std::vector<double> features, int label);

  int num_examples() const { return static_cast<int>(examples_.size()); }
  int num_labels() const { return num_labels_; }

  /// Feature dimensionality (0 while empty).
  int dim() const { return dim_; }

  const IncompleteExample& example(int i) const;
  int label(int i) const { return example(i).label; }

  /// Candidate-set size |C_i|.
  int num_candidates(int i) const;

  /// Largest candidate-set size M over all examples (0 while empty).
  int max_candidates() const;

  const std::vector<double>& candidate(int i, int j) const;

  // --- Flat view -----------------------------------------------------------

  /// Base of the row-major candidate slab; row r starts at
  /// `flat_data() + r * dim()`. Rows of example `i` occupy flat rows
  /// `[flat_row(i, 0), flat_row(i, 0) + num_candidates(i))`. Invalidated by
  /// `AddExample` and by a `ReplaceCandidates` that grows past capacity.
  const double* flat_data() const { return flat_.data(); }

  /// Flat row index of candidate (i, j).
  int flat_row(int i, int j) const {
    return cand_start_[static_cast<size_t>(i)] + j;
  }

  /// Pointer to candidate (i, j)'s features (dim() doubles).
  const double* candidate_ptr(int i, int j) const {
    return flat_.data() + static_cast<size_t>(flat_row(i, j)) *
                              static_cast<size_t>(dim_);
  }

  /// Cached squared L2 norms, one per flat row (aligned with flat_data()).
  const double* flat_sq_norms() const { return sq_norms_.data(); }

  /// Cached ||x_{i,j}||^2.
  double candidate_sq_norm(int i, int j) const {
    return sq_norms_[static_cast<size_t>(flat_row(i, j))];
  }

  /// Number of *active* candidate rows (sum of |C_i|).
  int total_candidates() const { return total_candidates_; }

  /// Monotone mutation counter: bumped by every `AddExample`, `FixExample`,
  /// and `ReplaceCandidates`. Cached derived state (serving-layer result
  /// caches, bound query engines) compares versions to detect precisely
  /// when the candidate space changed. Copies carry the source's version
  /// forward (a copy of version v holds the same worlds as the original at
  /// v), and assignment adopts the assigned dataset's version.
  uint64_t version() const { return version_; }

  /// True when the slab has no retired rows — every flat row is an active
  /// candidate — so one batched kernel call can sweep the whole slab.
  bool flat_is_compact() const {
    return static_cast<size_t>(total_candidates_) *
               static_cast<size_t>(dim_) ==
           flat_.size();
  }

  // -------------------------------------------------------------------------

  /// True when every candidate set is a singleton (a single possible world).
  bool IsComplete() const;

  /// Indices of examples with more than one candidate ("dirty" tuples).
  std::vector<int> DirtyExamples() const;

  /// Exact number of possible worlds: prod_i |C_i| (can be astronomical).
  BigUint NumPossibleWorlds() const;

  /// log2 of the number of possible worlds.
  double Log2NumPossibleWorlds() const;

  /// Collapses example `i` to its `j`-th candidate (a cleaning step: the
  /// human revealed the true value). Afterwards |C_i| == 1.
  void FixExample(int i, int j);

  /// Replaces the candidate set of example `i` entirely.
  void ReplaceCandidates(int i, std::vector<std::vector<double>> candidates);

 private:
  /// Writes `features` into flat row `row` and refreshes its cached norm.
  void WriteFlatRow(int row, const std::vector<double>& features);
  /// Rebuilds the flat slab from `examples_` (used when a replacement
  /// outgrows an example's reserved slots).
  void RebuildFlat();

  std::vector<IncompleteExample> examples_;
  int num_labels_ = 0;
  int dim_ = 0;

  // Flat mirror. cand_start_[i] is example i's first flat row; the example
  // owns cand_capacity_[i] consecutive rows of which the first
  // num_candidates(i) are active.
  std::vector<double> flat_;
  std::vector<double> sq_norms_;
  std::vector<int> cand_start_;
  std::vector<int> cand_capacity_;
  int total_candidates_ = 0;
  uint64_t version_ = 0;
};

/// True when `a` and `b` describe bit-for-bit the same candidate space:
/// same shape (labels, dim, example count, candidate counts), same labels,
/// and exactly equal candidate doubles. Versions and flat-slab layout are
/// NOT compared — a rehydrated dataset that replayed the same mutations is
/// identical even if its internal capacity bookkeeping differs.
bool BitIdentical(const IncompleteDataset& a, const IncompleteDataset& b);

}  // namespace cpclean

#endif  // CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_
