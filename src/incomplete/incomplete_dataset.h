#ifndef CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_
#define CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_

#include <vector>

#include "common/big_uint.h"
#include "common/result.h"

namespace cpclean {

/// One incomplete data example (paper Def. 1): a finite candidate set
/// C_i = {x_{i,1}, x_{i,2}, ...} of possible feature vectors plus a certain
/// class label y_i. A "clean" example has exactly one candidate.
struct IncompleteExample {
  std::vector<std::vector<double>> candidates;
  int label = 0;
};

/// An incomplete dataset D = {(C_i, y_i)} — the block tuple-independent
/// structure whose possible worlds (Def. 2) the CP queries range over.
///
/// Candidate vectors are pre-encoded dense features; candidate sets may
/// have different sizes. Labels are dense ids in [0, num_labels).
class IncompleteDataset {
 public:
  IncompleteDataset() = default;
  explicit IncompleteDataset(int num_labels) : num_labels_(num_labels) {}

  /// Appends an example. Fails when the candidate set is empty, a label is
  /// out of range, or feature dimensions are inconsistent.
  Status AddExample(IncompleteExample example);

  /// Convenience: appends a clean (single-candidate) example.
  Status AddCleanExample(std::vector<double> features, int label);

  int num_examples() const { return static_cast<int>(examples_.size()); }
  int num_labels() const { return num_labels_; }

  /// Feature dimensionality (0 while empty).
  int dim() const { return dim_; }

  const IncompleteExample& example(int i) const;
  int label(int i) const { return example(i).label; }

  /// Candidate-set size |C_i|.
  int num_candidates(int i) const;

  /// Largest candidate-set size M over all examples (0 while empty).
  int max_candidates() const;

  const std::vector<double>& candidate(int i, int j) const;

  /// True when every candidate set is a singleton (a single possible world).
  bool IsComplete() const;

  /// Indices of examples with more than one candidate ("dirty" tuples).
  std::vector<int> DirtyExamples() const;

  /// Exact number of possible worlds: prod_i |C_i| (can be astronomical).
  BigUint NumPossibleWorlds() const;

  /// log2 of the number of possible worlds.
  double Log2NumPossibleWorlds() const;

  /// Collapses example `i` to its `j`-th candidate (a cleaning step: the
  /// human revealed the true value). Afterwards |C_i| == 1.
  void FixExample(int i, int j);

  /// Replaces the candidate set of example `i` entirely.
  void ReplaceCandidates(int i, std::vector<std::vector<double>> candidates);

 private:
  std::vector<IncompleteExample> examples_;
  int num_labels_ = 0;
  int dim_ = 0;
};

}  // namespace cpclean

#endif  // CPCLEAN_INCOMPLETE_INCOMPLETE_DATASET_H_
