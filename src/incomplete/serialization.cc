#include "incomplete/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

namespace {
constexpr char kMagicV1[] = "cpclean-incomplete-v1";
constexpr char kMagicV2[] = "cpclean-incomplete-v2";
constexpr char kMagicV3[] = "cpclean-incomplete-v3";

/// True for a payload line the line-oriented framing can carry verbatim.
bool ValidSectionLine(const std::string& line) {
  const std::string_view stripped = StripWhitespace(line);
  return !stripped.empty() && stripped.front() != '#' && stripped != "end" &&
         stripped.size() == line.size();
}

void AppendDataset(const IncompleteDataset& dataset, std::string* out) {
  for (int i = 0; i < dataset.num_examples(); ++i) {
    *out += StrFormat("example %d %d\n", dataset.label(i),
                      dataset.num_candidates(i));
    for (int j = 0; j < dataset.num_candidates(i); ++j) {
      const auto& x = dataset.candidate(i, j);
      for (size_t d = 0; d < x.size(); ++d) {
        if (d > 0) *out += ' ';
        *out += StrFormat("%a", x[d]);  // hex float: exact round trip
      }
      *out += '\n';
    }
  }
}

}  // namespace

std::string SerializeIncompleteDataset(const IncompleteDataset& dataset) {
  std::string out =
      StrFormat("%s %d %d\n", kMagicV1, dataset.num_labels(), dataset.dim());
  AppendDataset(dataset, &out);
  return out;
}

namespace {

void AppendSections(const std::vector<SerializedSection>& sections,
                    std::string* out) {
  for (const SerializedSection& section : sections) {
    CP_CHECK(!section.name.empty());
    CP_CHECK(section.name.find_first_of(" \t\r\n") == std::string::npos);
    *out += StrFormat("section %s\n", section.name.c_str());
    for (const std::string& line : section.lines) {
      CP_CHECK(ValidSectionLine(line));
      *out += line;
      *out += '\n';
    }
    *out += "end\n";
  }
}

}  // namespace

std::string SerializeIncompleteDatasetV3(
    const IncompleteDataset& dataset,
    const std::vector<SerializedSection>& sections) {
  std::string out = StrFormat(
      "%s %d %d %llu\n", kMagicV3, dataset.num_labels(), dataset.dim(),
      static_cast<unsigned long long>(dataset.version()));
  AppendDataset(dataset, &out);
  AppendSections(sections, &out);
  return out;
}

std::string SerializeIncompleteDatasetV2(
    const IncompleteDataset& dataset,
    const std::vector<SerializedSection>& sections) {
  std::string out =
      StrFormat("%s %d %d\n", kMagicV2, dataset.num_labels(), dataset.dim());
  AppendDataset(dataset, &out);
  for (const SerializedSection& section : sections) {
    CP_CHECK(!section.name.empty());
    CP_CHECK(section.name.find_first_of(" \t\r\n") == std::string::npos);
    out += StrFormat("section %s\n", section.name.c_str());
    for (const std::string& line : section.lines) {
      CP_CHECK(ValidSectionLine(line));
      out += line;
      out += '\n';
    }
    out += "end\n";
  }
  return out;
}

Result<DeserializedDatasetV2> DeserializeIncompleteDatasetV2(
    const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  // Read the next non-empty, non-comment line.
  auto next_line = [&](std::string* out) {
    while (std::getline(stream, *out)) {
      const std::string_view stripped = StripWhitespace(*out);
      if (stripped.empty() || stripped.front() == '#') continue;
      *out = std::string(stripped);
      return true;
    }
    return false;
  };

  if (!next_line(&line)) {
    return Status::ParseError("empty input");
  }
  std::vector<std::string> header = Split(line, ' ');
  const bool v3 = !header.empty() && header[0] == kMagicV3;
  const bool sectioned = v3 || (!header.empty() && header[0] == kMagicV2);
  const size_t want_fields = v3 ? 4 : 3;
  if (header.size() != want_fields ||
      (header[0] != kMagicV1 && header[0] != kMagicV2 &&
       header[0] != kMagicV3)) {
    return Status::ParseError("bad header: " + line);
  }
  const bool v2 = sectioned;
  CP_ASSIGN_OR_RETURN(const int num_labels, ParseInt(header[1]));
  CP_ASSIGN_OR_RETURN(const int dim, ParseInt(header[2]));
  if (num_labels < 1 || dim < 0) {
    return Status::ParseError("invalid header values");
  }
  uint64_t stored_version = 0;
  if (v3) {
    std::istringstream version_stream(header[3]);
    version_stream >> stored_version;
    if (version_stream.fail() || !version_stream.eof()) {
      return Status::ParseError("bad version in header: " + line);
    }
  }

  DeserializedDatasetV2 out;
  out.dataset = IncompleteDataset(num_labels);
  bool in_examples = true;
  while (next_line(&line)) {
    std::vector<std::string> fields = Split(line, ' ');
    if (v2 && fields.size() == 2 && fields[0] == "section") {
      in_examples = false;  // sections are a trailer: no examples after
      SerializedSection section;
      section.name = fields[1];
      bool terminated = false;
      while (std::getline(stream, line)) {
        const std::string_view stripped = StripWhitespace(line);
        if (stripped.empty() || stripped.front() == '#') continue;
        if (stripped == "end") {
          terminated = true;
          break;
        }
        section.lines.emplace_back(stripped);
      }
      if (!terminated) {
        return Status::ParseError(
            StrFormat("section \"%s\" missing its end line",
                      section.name.c_str()));
      }
      out.sections.push_back(std::move(section));
      continue;
    }
    if (!in_examples) {
      return Status::ParseError("example block after a section: " + line);
    }
    if (fields.size() != 3 || fields[0] != "example") {
      return Status::ParseError("expected 'example <label> <count>': " + line);
    }
    IncompleteExample example;
    CP_ASSIGN_OR_RETURN(example.label, ParseInt(fields[1]));
    CP_ASSIGN_OR_RETURN(const int count, ParseInt(fields[2]));
    if (count < 1) {
      return Status::ParseError("candidate count must be positive");
    }
    for (int j = 0; j < count; ++j) {
      if (!next_line(&line)) {
        return Status::ParseError("truncated candidate block");
      }
      std::vector<std::string> values = Split(line, ' ');
      if (static_cast<int>(values.size()) != dim) {
        return Status::ParseError(StrFormat(
            "candidate has %d values, expected %d",
            static_cast<int>(values.size()), dim));
      }
      std::vector<double> x;
      x.reserve(values.size());
      for (const std::string& v : values) {
        CP_ASSIGN_OR_RETURN(double parsed, ParseDouble(v));
        x.push_back(parsed);
      }
      example.candidates.push_back(std::move(x));
    }
    CP_RETURN_NOT_OK(out.dataset.AddExample(std::move(example)));
  }
  if (v3) {
    out.dataset.OverrideVersionForReplay(stored_version);
    out.has_version = true;
  }
  return out;
}

Result<IncompleteDataset> DeserializeIncompleteDataset(
    const std::string& text) {
  CP_ASSIGN_OR_RETURN(DeserializedDatasetV2 parsed,
                      DeserializeIncompleteDatasetV2(text));
  return std::move(parsed.dataset);
}

Status SaveIncompleteDataset(const IncompleteDataset& dataset,
                             const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open for writing: " + path);
  }
  file << SerializeIncompleteDataset(dataset);
  if (!file) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<IncompleteDataset> LoadIncompleteDataset(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializeIncompleteDataset(buffer.str());
}

}  // namespace cpclean
