#ifndef CPCLEAN_CORE_SS1_H_
#define CPCLEAN_CORE_SS1_H_

#include <vector>

#include "common/logging.h"
#include "core/cp_queries.h"
#include "core/similarity.h"
#include "core/support_tree.h"
#include "core/truncated_poly.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// The K = 1 SortScan specialization (paper §3.1.2): the boundary element
/// *is* the nearest neighbor, so a world supports label y_i exactly when
/// every other candidate set picks a value less similar than x_{i,j} —
/// counted by `prod_{n != i} α_{i,j}[n]` (Equation 2).
///
/// A scalar product tree replaces the running product, giving
/// O(N·M·log(N·M)) total. The paper states the binary case; the algorithm
/// is valid for any |Y| since the 1-NN prediction is simply the label of
/// the boundary tuple, which is how we implement it.
template <typename S, bool kNormalized = false>
CountResult<S> Ss1Count(const IncompleteDataset& dataset,
                        const std::vector<double>& t,
                        const SimilarityKernel& kernel) {
  using W = TallyWeight<S, kNormalized>;
  const int n = dataset.num_examples();
  CP_CHECK_GE(n, 1);

  CountResult<S> result;
  result.per_label.assign(static_cast<size_t>(dataset.num_labels()),
                          S::Zero());
  result.total = S::One();
  for (int i = 0; i < n; ++i) {
    result.total = S::Mul(result.total, W::Free(dataset.num_candidates(i)));
  }

  ProductTree<S> tree(n);
  for (int i = 0; i < n; ++i) {
    tree.SetLeaf(i, W::Below(0, dataset.num_candidates(i)));
  }

  const std::vector<ScoredCandidate> scan =
      SortedCandidateScan(dataset, t, kernel);
  std::vector<int> alpha(static_cast<size_t>(n), 0);

  for (const ScoredCandidate& entry : scan) {
    const int i = entry.tuple;
    ++alpha[static_cast<size_t>(i)];
    tree.SetLeaf(i, W::Below(alpha[static_cast<size_t>(i)],
                             dataset.num_candidates(i)));
    const typename S::Value boundary_count =
        S::Mul(tree.ProductExcept(i),
               W::Pinned(dataset.num_candidates(i)));
    auto& slot = result.per_label[static_cast<size_t>(dataset.label(i))];
    slot = S::Add(slot, boundary_count);
  }
  return result;
}

/// Q2 label fractions via the K=1 fast path, normalized doubles.
std::vector<double> Ss1Fractions(const IncompleteDataset& dataset,
                                 const std::vector<double>& t,
                                 const SimilarityKernel& kernel);

/// Exact K=1 counts.
CountResult<ExactSemiring> Ss1ExactCount(const IncompleteDataset& dataset,
                                         const std::vector<double>& t,
                                         const SimilarityKernel& kernel);

}  // namespace cpclean

#endif  // CPCLEAN_CORE_SS1_H_
