#include "core/similarity.h"

#include <algorithm>

namespace cpclean {

std::vector<std::vector<double>> SimilarityMatrix(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel) {
  std::vector<std::vector<double>> sims(
      static_cast<size_t>(dataset.num_examples()));
  for (int i = 0; i < dataset.num_examples(); ++i) {
    auto& row = sims[static_cast<size_t>(i)];
    row.reserve(static_cast<size_t>(dataset.num_candidates(i)));
    for (int j = 0; j < dataset.num_candidates(i); ++j) {
      row.push_back(kernel.Similarity(dataset.candidate(i, j), t));
    }
  }
  return sims;
}

std::vector<ScoredCandidate> SortScan(
    const std::vector<std::vector<double>>& sims) {
  std::vector<ScoredCandidate> scan;
  size_t total = 0;
  for (const auto& row : sims) total += row.size();
  scan.reserve(total);
  for (int i = 0; i < static_cast<int>(sims.size()); ++i) {
    for (int j = 0; j < static_cast<int>(sims[static_cast<size_t>(i)].size());
         ++j) {
      scan.push_back({sims[static_cast<size_t>(i)][static_cast<size_t>(j)],
                      i, j});
    }
  }
  std::sort(scan.begin(), scan.end(), LessSimilar);
  return scan;
}

std::vector<ScoredCandidate> SortedCandidateScan(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel) {
  return SortScan(SimilarityMatrix(dataset, t, kernel));
}

}  // namespace cpclean
