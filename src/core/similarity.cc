#include "core/similarity.h"

#include <algorithm>

#include "common/logging.h"

namespace cpclean {

int SimilarityScores(const IncompleteDataset& dataset,
                     const std::vector<double>& t,
                     const SimilarityKernel& kernel, double* out) {
  const int n = dataset.num_examples();
  if (n == 0) return 0;
  CP_CHECK_EQ(static_cast<int>(t.size()), dataset.dim());
  const int dim = dataset.dim();
  if (dataset.flat_is_compact()) {
    const int total = dataset.total_candidates();
    if (!dataset.file_backed()) {
      // No retired rows: the whole slab is one contiguous batch.
      kernel.SimilarityBatchNorms(dataset.flat_data(),
                                  dataset.flat_sq_norms(), total, dim,
                                  t.data(), out);
      return total;
    }
    // File-backed slab: stream it through a bounded prefetched window,
    // the way max_contrib_bytes streams the contribution matrix. Each row
    // is scored independently, so the block boundaries cannot change any
    // result bit vs. the single-batch call above.
    const size_t row_bytes = static_cast<size_t>(dim) * sizeof(double);
    const int block = std::max<int>(
        1, static_cast<int>(dataset.stream_window_bytes() /
                            std::max<size_t>(row_bytes, 1)));
    dataset.PrefetchFlatRows(0, block);
    for (int base = 0; base < total; base += block) {
      const int count = std::min(block, total - base);
      dataset.PrefetchFlatRows(base + count, block);
      kernel.SimilarityBatchNorms(
          dataset.flat_data() + static_cast<size_t>(base) * dim,
          dataset.flat_sq_norms() + base, count, dim, t.data(), out + base);
    }
    return total;
  }
  int written = 0;
  for (int i = 0; i < n; ++i) {
    const int m = dataset.num_candidates(i);
    const int row = dataset.flat_row(i, 0);
    kernel.SimilarityBatchNorms(
        dataset.flat_data() + static_cast<size_t>(row) * dim,
        dataset.flat_sq_norms() + row, m, dim, t.data(), out + written);
    written += m;
  }
  return written;
}

std::vector<std::vector<double>> SimilarityMatrix(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel) {
  std::vector<double> scores(
      static_cast<size_t>(dataset.total_candidates()));
  SimilarityScores(dataset, t, kernel, scores.data());
  std::vector<std::vector<double>> sims(
      static_cast<size_t>(dataset.num_examples()));
  size_t pos = 0;
  for (int i = 0; i < dataset.num_examples(); ++i) {
    const size_t m = static_cast<size_t>(dataset.num_candidates(i));
    sims[static_cast<size_t>(i)].assign(scores.begin() + pos,
                                        scores.begin() + pos + m);
    pos += m;
  }
  return sims;
}

std::vector<ScoredCandidate> SortScan(
    const std::vector<std::vector<double>>& sims) {
  std::vector<ScoredCandidate> scan;
  size_t total = 0;
  for (const auto& row : sims) total += row.size();
  scan.reserve(total);
  for (int i = 0; i < static_cast<int>(sims.size()); ++i) {
    for (int j = 0; j < static_cast<int>(sims[static_cast<size_t>(i)].size());
         ++j) {
      scan.push_back({sims[static_cast<size_t>(i)][static_cast<size_t>(j)],
                      i, j});
    }
  }
  std::sort(scan.begin(), scan.end(), LessSimilar);
  return scan;
}

std::vector<ScoredCandidate> SortedCandidateScan(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel) {
  return SortScan(SimilarityMatrix(dataset, t, kernel));
}

}  // namespace cpclean
