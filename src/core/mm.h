#ifndef CPCLEAN_CORE_MM_H_
#define CPCLEAN_CORE_MM_H_

#include <vector>

#include "core/cp_queries.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// MinMax (MM), paper §3.2 / Algorithm 2 / Appendix B: the dedicated Q1
/// checker for binary classification.
///
/// For each label l it greedily builds the l-extreme world E_l — candidates
/// with label l take their *most* similar value, others their *least*
/// similar — and Lemma B.2 shows E_l predicts l iff some possible world
/// predicts l. O(N·M + |Y|·(N log K + K)), with no sort over all
/// candidates. Valid only for |Y| = 2 (Lemma B.1's case analysis breaks
/// for three labels); calls with |Y| != 2 CHECK-fail — use SsCheck there.

/// possible[l] = true iff the l-extreme world predicts l, i.e., iff label l
/// is predicted in at least one possible world.
std::vector<bool> MmPossibleLabels(const IncompleteDataset& dataset,
                                   const std::vector<double>& t,
                                   const SimilarityKernel& kernel, int k);

/// Q1 for every label.
CheckResult MmCheck(const IncompleteDataset& dataset,
                    const std::vector<double>& t,
                    const SimilarityKernel& kernel, int k);

}  // namespace cpclean

#endif  // CPCLEAN_CORE_MM_H_
