#ifndef CPCLEAN_CORE_CP_QUERIES_H_
#define CPCLEAN_CORE_CP_QUERIES_H_

#include <vector>

#include "common/semiring.h"

namespace cpclean {

/// Result of the counting query Q2 (paper Def. 5) in a semiring:
/// `per_label[y]` is the (weighted) number of possible worlds whose trained
/// KNN classifier predicts label y for the test point; `total` is the
/// weight of all possible worlds. In exact semirings
/// `sum(per_label) == total`; in normalized double mode `total == 1`.
template <typename S>
struct CountResult {
  std::vector<typename S::Value> per_label;
  typename S::Value total;

  /// per_label[y] / total as doubles — the label distribution over worlds.
  std::vector<double> Fractions() const {
    std::vector<double> out;
    out.reserve(per_label.size());
    const double denom = S::ToDouble(total);
    for (const auto& v : per_label) {
      out.push_back(denom > 0 ? S::ToDouble(v) / denom : 0.0);
    }
    return out;
  }
};

/// Result of the checking query Q1 (paper Def. 4) for every label:
/// `certain[y]` is true iff *all* possible worlds predict y.
/// At most one entry can be true.
struct CheckResult {
  std::vector<bool> certain;

  /// The certain label, or -1 when the prediction is not certain.
  int CertainLabel() const {
    for (int y = 0; y < static_cast<int>(certain.size()); ++y) {
      if (certain[static_cast<size_t>(y)]) return y;
    }
    return -1;
  }
};

/// Derives Q1 from the set of labels achievable in at least one world:
/// label y is certain iff it is the only achievable label.
inline CheckResult CheckFromPossible(const std::vector<bool>& possible) {
  int count = 0;
  int only = -1;
  for (int y = 0; y < static_cast<int>(possible.size()); ++y) {
    if (possible[static_cast<size_t>(y)]) {
      ++count;
      only = y;
    }
  }
  CheckResult out;
  out.certain.assign(possible.size(), false);
  if (count == 1) out.certain[static_cast<size_t>(only)] = true;
  return out;
}

}  // namespace cpclean

#endif  // CPCLEAN_CORE_CP_QUERIES_H_
