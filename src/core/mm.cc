#include "core/mm.h"

#include "common/logging.h"
#include "core/similarity.h"
#include "knn/ordering.h"
#include "knn/top_k.h"
#include "knn/vote.h"

namespace cpclean {

std::vector<bool> MmPossibleLabels(const IncompleteDataset& dataset,
                                   const std::vector<double>& t,
                                   const SimilarityKernel& kernel, int k) {
  const int n = dataset.num_examples();
  const int num_labels = dataset.num_labels();
  CP_CHECK_EQ(num_labels, 2) << "MM is only sound for binary classification "
                                "(paper Lemma B.1); use SsCheck for |Y| > 2";
  CP_CHECK_GE(k, 1);
  CP_CHECK_LE(k, n);

  const auto sims = SimilarityMatrix(dataset, t, kernel);

  // Per tuple: candidate index of the least / most similar value under the
  // deterministic within-tuple order (similarity, then candidate index).
  std::vector<int> jmin(static_cast<size_t>(n), 0);
  std::vector<int> jmax(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const auto& row = sims[static_cast<size_t>(i)];
    for (int j = 1; j < static_cast<int>(row.size()); ++j) {
      const ScoredCandidate cur{row[static_cast<size_t>(j)], i, j};
      const ScoredCandidate lo{row[static_cast<size_t>(jmin[static_cast<size_t>(i)])],
                               i, jmin[static_cast<size_t>(i)]};
      const ScoredCandidate hi{row[static_cast<size_t>(jmax[static_cast<size_t>(i)])],
                               i, jmax[static_cast<size_t>(i)]};
      if (LessSimilar(cur, lo)) jmin[static_cast<size_t>(i)] = j;
      if (LessSimilar(hi, cur)) jmax[static_cast<size_t>(i)] = j;
    }
  }

  std::vector<bool> possible(static_cast<size_t>(num_labels), false);
  for (int l = 0; l < num_labels; ++l) {
    // The l-extreme world (Equation B.1).
    std::vector<ScoredCandidate> world;
    world.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int j = dataset.label(i) == l ? jmax[static_cast<size_t>(i)]
                                          : jmin[static_cast<size_t>(i)];
      world.push_back(
          {sims[static_cast<size_t>(i)][static_cast<size_t>(j)], i, j});
    }
    std::vector<int> top = SelectTopK(world, k);
    std::vector<int> labels;
    labels.reserve(top.size());
    for (int idx : top) labels.push_back(dataset.label(idx));
    possible[static_cast<size_t>(l)] =
        MajorityVote(labels, num_labels) == l;
  }
  return possible;
}

CheckResult MmCheck(const IncompleteDataset& dataset,
                    const std::vector<double>& t,
                    const SimilarityKernel& kernel, int k) {
  return CheckFromPossible(MmPossibleLabels(dataset, t, kernel, k));
}

}  // namespace cpclean
