#ifndef CPCLEAN_CORE_WITNESS_H_
#define CPCLEAN_CORE_WITNESS_H_

#include <vector>

#include "common/result.h"
#include "core/cp_queries.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// Provenance of one certain-prediction answer: which tuples of the
/// incomplete dataset *determine* whether a test point is certified.
///
/// Soundness argument (same pruning the selection loop uses): let
/// `floor` be the K-th largest per-tuple minimum similarity. At least K
/// tuples beat `floor` in every possible world, so a tuple whose maximum
/// similarity is strictly below it can never enter the top-K — deleting
/// it from the dataset changes no world's prediction. The tuples at or
/// above the floor are therefore a sound witness superset, and greedy
/// deletion inside that superset yields a 1-minimal witness set: the
/// restriction of the dataset to `tuples` reproduces (certain, label)
/// exactly, and removing any single member flips or un-certifies it.
struct WitnessSet {
  /// The full-dataset Q1 answer the witnesses reproduce.
  bool certain = false;
  int label = -1;  // certain label, -1 when worlds disagree

  /// Minimal witness tuple ids (original dataset ids, ascending).
  std::vector<int> tuples;

  /// Q2 boundary support: the tuples whose candidates carried world mass
  /// before the FastQ2 scan reached 1 - epsilon (ascending). A superset
  /// view of "what the counting query actually looked at".
  std::vector<int> support;

  /// True when greedy minimization reached a fixpoint (every remaining
  /// tuple was re-tried for removal against the final set and failed).
  /// False only when the candidate set exceeded the minimization budget.
  bool minimal = true;
};

struct WitnessOptions {
  /// Greedy deletion passes before giving up on a fixpoint.
  int max_passes = 8;
  /// Candidate sets larger than this skip minimization (minimal=false);
  /// each deletion attempt costs one Q1 check on the restricted dataset.
  int max_minimize_tuples = 256;
};

/// Q1 on the restriction of `dataset` to `tuples` (given in ascending
/// original-id order, which preserves KNN tie-breaking among the kept
/// tuples). Fails when fewer than k tuples remain.
Result<CheckResult> CheckOnSubset(const IncompleteDataset& dataset,
                                  const std::vector<int>& tuples,
                                  const std::vector<double>& t,
                                  const SimilarityKernel& kernel, int k);

/// Extracts the witness set for test point `t`: prunes to the top-K-floor
/// candidate superset, verifies the restriction reproduces the full
/// answer, then greedily minimizes. Deterministic: depends only on the
/// dataset bits and the kernel's (bit-identical) similarities, never on
/// thread count or SIMD level.
Result<WitnessSet> ExplainPrediction(const IncompleteDataset& dataset,
                                     const std::vector<double>& t,
                                     const SimilarityKernel& kernel, int k,
                                     const WitnessOptions& options =
                                         WitnessOptions());

/// True when restricting `dataset` to `tuples` reproduces exactly
/// (want_certain, want_label) for `t` — the bit-for-bit reproduction
/// contract a served witness set promises.
Result<bool> WitnessReproduces(const IncompleteDataset& dataset,
                               const std::vector<int>& tuples,
                               const std::vector<double>& t,
                               const SimilarityKernel& kernel, int k,
                               bool want_certain, int want_label);

}  // namespace cpclean

#endif  // CPCLEAN_CORE_WITNESS_H_
