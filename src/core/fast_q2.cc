#include "core/fast_q2.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/logging.h"
#include "core/tally_enum.h"
#include "knn/vote.h"

namespace cpclean {

FastQ2::FastQ2(const IncompleteDataset* dataset, int k, double epsilon)
    : dataset_(dataset), k_(k), epsilon_(epsilon) {
  CP_CHECK(dataset_ != nullptr);
  CP_CHECK_GE(k_, 1);
  CP_CHECK_LE(k_, kMaxK);
  width_ = k_ + 1;
  Rebind();
  // Precompute the valid label tallies and their winners once.
  EnumerateTallies(num_labels_, k_, [this](const std::vector<int>& gamma) {
    tallies_.push_back({gamma, ArgMaxLabel(gamma)});
  });
  scratch_a_.resize(static_cast<size_t>(width_));
  scratch_b_.resize(static_cast<size_t>(width_));
  result_.resize(static_cast<size_t>(num_labels_));
}

void FastQ2::Rebind() {
  num_labels_ = dataset_->num_labels();
  const int n = dataset_->num_examples();
  CP_CHECK_LE(k_, n);
  slot_of_.assign(static_cast<size_t>(n), -1);
  label_of_.assign(static_cast<size_t>(n), 0);
  std::vector<int> label_size(static_cast<size_t>(num_labels_), 0);
  for (int i = 0; i < n; ++i) {
    label_of_[static_cast<size_t>(i)] = dataset_->label(i);
    slot_of_[static_cast<size_t>(i)] =
        label_size[static_cast<size_t>(dataset_->label(i))]++;
  }
  tree_size_.assign(static_cast<size_t>(num_labels_), 1);
  nodes_.assign(static_cast<size_t>(num_labels_), {});
  for (int l = 0; l < num_labels_; ++l) {
    int size = 1;
    while (size < std::max(label_size[static_cast<size_t>(l)], 1)) size <<= 1;
    tree_size_[static_cast<size_t>(l)] = size;
    nodes_[static_cast<size_t>(l)].assign(
        static_cast<size_t>(2 * size * width_), 0.0);
  }
  InitTrees();
  above_.assign(static_cast<size_t>(n), 0);
  tuple_min_.assign(static_cast<size_t>(n), 0.0);
  tuple_max_.assign(static_cast<size_t>(n), 0.0);
}

void FastQ2::InitTrees() {
  // Every leaf (and padding slot) holds the constant polynomial 1: a tuple
  // with no candidate scanned yet is entirely "below" the boundary, which
  // contributes weight 1 at degree 0.
  for (int l = 0; l < num_labels_; ++l) {
    auto& buf = nodes_[static_cast<size_t>(l)];
    std::fill(buf.begin(), buf.end(), 0.0);
    const int size = tree_size_[static_cast<size_t>(l)];
    for (int node = 1; node < 2 * size; ++node) {
      buf[static_cast<size_t>(node * width_)] = 1.0;
    }
  }
}

void FastQ2::SetLeaf(int label, int slot, double below, double above) {
  auto& buf = nodes_[static_cast<size_t>(label)];
  const int size = tree_size_[static_cast<size_t>(label)];
  int node = size + slot;
  {
    double* leaf = &buf[static_cast<size_t>(node * width_)];
    leaf[0] = below;
    if (width_ > 1) leaf[1] = above;
    for (int c = 2; c < width_; ++c) leaf[c] = 0.0;
  }
  for (node >>= 1; node >= 1; node >>= 1) {
    const double* left = &buf[static_cast<size_t>(2 * node * width_)];
    const double* right = &buf[static_cast<size_t>((2 * node + 1) * width_)];
    double* out = scratch_a_.data();
    std::fill(out, out + width_, 0.0);
    for (int i = 0; i < width_; ++i) {
      if (left[i] == 0.0) continue;
      const int jmax = width_ - i;
      for (int j = 0; j < jmax; ++j) {
        out[i + j] += left[i] * right[j];
      }
    }
    std::memcpy(&buf[static_cast<size_t>(node * width_)], out,
                sizeof(double) * static_cast<size_t>(width_));
  }
}

void FastQ2::ProductExcept(int label, int slot, double* out) const {
  const auto& buf = nodes_[static_cast<size_t>(label)];
  const int size = tree_size_[static_cast<size_t>(label)];
  std::fill(out, out + width_, 0.0);
  out[0] = 1.0;
  double* tmp = scratch_b_.data();
  for (int node = size + slot; node > 1; node >>= 1) {
    const double* sibling = &buf[static_cast<size_t>((node ^ 1) * width_)];
    std::fill(tmp, tmp + width_, 0.0);
    for (int i = 0; i < width_; ++i) {
      if (out[i] == 0.0) continue;
      const int jmax = width_ - i;
      for (int j = 0; j < jmax; ++j) {
        tmp[i + j] += out[i] * sibling[j];
      }
    }
    std::memcpy(out, tmp, sizeof(double) * static_cast<size_t>(width_));
  }
}

void FastQ2::SetTestPoint(const std::vector<double>& t,
                          const SimilarityKernel& kernel) {
  const int n = dataset_->num_examples();
  scan_.clear();
  for (int i = 0; i < n; ++i) {
    double lo = 0.0, hi = 0.0;
    for (int j = 0; j < dataset_->num_candidates(i); ++j) {
      const double s = kernel.Similarity(dataset_->candidate(i, j), t);
      if (j == 0 || s < lo) lo = s;
      if (j == 0 || s > hi) hi = s;
      scan_.push_back({s, i, j});
    }
    tuple_min_[static_cast<size_t>(i)] = lo;
    tuple_max_[static_cast<size_t>(i)] = hi;
  }
  std::sort(scan_.begin(), scan_.end(), MoreSimilar);
}

double FastQ2::TopKFloor() const {
  std::vector<double> mins = tuple_min_;
  CP_CHECK_GE(static_cast<int>(mins.size()), k_);
  std::nth_element(mins.begin(), mins.begin() + (k_ - 1), mins.end(),
                   std::greater<double>());
  return mins[static_cast<size_t>(k_ - 1)];
}

std::vector<double> FastQ2::Run(int pin_tuple, int pin_cand) {
  CP_CHECK(!scan_.empty()) << "call SetTestPoint first";
  std::fill(result_.begin(), result_.end(), 0.0);
  touched_.clear();
  double total = 0.0;
  const double target = 1.0 - epsilon_;

  // scratch_a_ is clobbered by SetLeaf; boundary polynomials need their own
  // storage that survives the tally loop.
  double boundary[kMaxK + 1];

  for (const ScoredCandidate& entry : scan_) {
    const int i = entry.tuple;
    if (pin_tuple == i && entry.candidate != pin_cand) continue;
    const int b = label_of_[static_cast<size_t>(i)];
    const int slot = slot_of_[static_cast<size_t>(i)];
    const int m = dataset_->num_candidates(i);
    const bool pinned_here = pin_tuple == i;

    // Boundary support for this candidate: tuples scanned earlier are
    // "above" (more similar); the current tuple is pinned to this value.
    ProductExcept(b, slot, boundary);
    const double pin_weight =
        pinned_here ? 1.0 : 1.0 / static_cast<double>(m);
    for (const Tally& tally : tallies_) {
      const int gb = tally.gamma[static_cast<size_t>(b)];
      if (gb < 1) continue;
      double support = pin_weight * boundary[gb - 1];
      if (support == 0.0) continue;
      for (int l = 0; l < num_labels_ && support != 0.0; ++l) {
        if (l == b) continue;
        const auto& buf = nodes_[static_cast<size_t>(l)];
        support *= buf[static_cast<size_t>(
            width_ + tally.gamma[static_cast<size_t>(l)])];
      }
      result_[static_cast<size_t>(tally.winner)] += support;
      total += support;
    }

    // Move this candidate into the "above" region for later boundaries.
    if (above_[static_cast<size_t>(i)] == 0) touched_.push_back(i);
    const int above = ++above_[static_cast<size_t>(i)];
    const double frac_above =
        pinned_here ? 1.0
                    : static_cast<double>(above) / static_cast<double>(m);
    SetLeaf(b, slot, 1.0 - frac_above, frac_above);

    if (total >= target) break;
  }

  // Restore the touched leaves and tallies for the next query.
  for (int i : touched_) {
    SetLeaf(label_of_[static_cast<size_t>(i)], slot_of_[static_cast<size_t>(i)],
            1.0, 0.0);
    above_[static_cast<size_t>(i)] = 0;
  }

  std::vector<double> fractions(result_.begin(), result_.end());
  if (total > 0.0) {
    for (double& f : fractions) f /= total;
  }
  return fractions;
}

}  // namespace cpclean
