#include "core/fast_q2.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/logging.h"
#include "core/similarity.h"
#include "core/tally_enum.h"
#include "knn/vote.h"

namespace cpclean {

FastQ2::FastQ2(const IncompleteDataset* dataset, int k, double epsilon)
    : dataset_(dataset), k_(k), epsilon_(epsilon) {
  CP_CHECK(dataset_ != nullptr);
  CP_CHECK_GE(k_, 1);
  CP_CHECK_LE(k_, kMaxK)
      << "FastQ2 supports k <= " << kMaxK
      << " (its boundary-polynomial scratch is compile-time sized); got k="
      << k_ << ". Raise FastQ2::kMaxK in core/fast_q2.h and recompile, or "
      << "use the SS-DC reference engine for this query.";
  width_ = k_ + 1;
  Rebind();
  // Precompute the valid label tallies and their winners once.
  EnumerateTallies(num_labels_, k_, [this](const std::vector<int>& gamma) {
    tallies_.push_back({gamma, ArgMaxLabel(gamma)});
  });
  scratch_a_.resize(static_cast<size_t>(width_));
  scratch_b_.resize(static_cast<size_t>(width_));
  result_.resize(static_cast<size_t>(num_labels_));
}

void FastQ2::Rebind() {
  bound_version_ = dataset_->version();
  num_labels_ = dataset_->num_labels();
  const int n = dataset_->num_examples();
  CP_CHECK_LE(k_, n);
  slot_of_.assign(static_cast<size_t>(n), -1);
  label_of_.assign(static_cast<size_t>(n), 0);
  std::vector<int> label_size(static_cast<size_t>(num_labels_), 0);
  for (int i = 0; i < n; ++i) {
    label_of_[static_cast<size_t>(i)] = dataset_->label(i);
    slot_of_[static_cast<size_t>(i)] =
        label_size[static_cast<size_t>(dataset_->label(i))]++;
  }
  tree_size_.assign(static_cast<size_t>(num_labels_), 1);
  nodes_.assign(static_cast<size_t>(num_labels_), {});
  for (int l = 0; l < num_labels_; ++l) {
    int size = 1;
    while (size < std::max(label_size[static_cast<size_t>(l)], 1)) size <<= 1;
    tree_size_[static_cast<size_t>(l)] = size;
    nodes_[static_cast<size_t>(l)].assign(
        static_cast<size_t>(2 * size * width_), 0.0);
  }
  InitTrees();
  above_.assign(static_cast<size_t>(n), 0);
  sweep_mark_.assign(static_cast<size_t>(n), 0);
  tuple_min_.assign(static_cast<size_t>(n), 0.0);
  tuple_max_.assign(static_cast<size_t>(n), 0.0);
  scan_.clear();
  sorted_end_ = 0;
}

void FastQ2::InitTrees() {
  // Every leaf (and padding slot) holds the constant polynomial 1: a tuple
  // with no candidate scanned yet is entirely "below" the boundary, which
  // contributes weight 1 at degree 0.
  for (int l = 0; l < num_labels_; ++l) {
    auto& buf = nodes_[static_cast<size_t>(l)];
    std::fill(buf.begin(), buf.end(), 0.0);
    const int size = tree_size_[static_cast<size_t>(l)];
    for (int node = 1; node < 2 * size; ++node) {
      buf[static_cast<size_t>(node * width_)] = 1.0;
    }
  }
}

template <int W>
void FastQ2::SetLeaf(int label, int slot, double below, double above) {
  const int w = W == 0 ? width_ : W;
  auto& buf = nodes_[static_cast<size_t>(label)];
  const int size = tree_size_[static_cast<size_t>(label)];
  int node = size + slot;
  {
    double* leaf = &buf[static_cast<size_t>(node * w)];
    leaf[0] = below;
    if (w > 1) leaf[1] = above;
    for (int c = 2; c < w; ++c) leaf[c] = 0.0;
  }
  for (node >>= 1; node >= 1; node >>= 1) {
    const double* left = &buf[static_cast<size_t>(2 * node * w)];
    const double* right = &buf[static_cast<size_t>((2 * node + 1) * w)];
    double* out = scratch_a_.data();
    std::fill(out, out + w, 0.0);
    for (int i = 0; i < w; ++i) {
      if (left[i] == 0.0) continue;
      const int jmax = w - i;
      for (int j = 0; j < jmax; ++j) {
        out[i + j] += left[i] * right[j];
      }
    }
    std::memcpy(&buf[static_cast<size_t>(node * w)], out,
                sizeof(double) * static_cast<size_t>(w));
  }
}

template <int W>
void FastQ2::ProductExcept(int label, int slot, double* out) const {
  const int w = W == 0 ? width_ : W;
  const auto& buf = nodes_[static_cast<size_t>(label)];
  const int size = tree_size_[static_cast<size_t>(label)];
  std::fill(out, out + w, 0.0);
  out[0] = 1.0;
  double* tmp = scratch_b_.data();
  for (int node = size + slot; node > 1; node >>= 1) {
    const double* sibling = &buf[static_cast<size_t>((node ^ 1) * w)];
    std::fill(tmp, tmp + w, 0.0);
    for (int i = 0; i < w; ++i) {
      if (out[i] == 0.0) continue;
      const int jmax = w - i;
      for (int j = 0; j < jmax; ++j) {
        tmp[i + j] += out[i] * sibling[j];
      }
    }
    std::memcpy(out, tmp, sizeof(double) * static_cast<size_t>(w));
  }
}

void FastQ2::SetTestPoint(const std::vector<double>& t,
                          const SimilarityKernel& kernel) {
  // Long-lived engines (one per serving session or worker slot) re-bind
  // lazily: any dataset mutation since the last binding — a cleaning step's
  // FixExample, a ReplaceCandidates — bumps the version counter, and the
  // next test point picks up the new candidate shapes automatically.
  if (dataset_->version() != bound_version_) Rebind();
  const int n = dataset_->num_examples();
  // One batched sweep over the flat candidate slab; no per-candidate
  // virtual call, and no sort here — queries order the scan lazily.
  sims_.resize(static_cast<size_t>(dataset_->total_candidates()));
  SimilarityScores(*dataset_, t, kernel, sims_.data());
  scan_.clear();
  scan_.reserve(sims_.size());
  size_t pos = 0;
  for (int i = 0; i < n; ++i) {
    const int m = dataset_->num_candidates(i);
    double lo = 0.0, hi = 0.0;
    for (int j = 0; j < m; ++j) {
      const double s = sims_[pos++];
      if (j == 0 || s < lo) lo = s;
      if (j == 0 || s > hi) hi = s;
      scan_.push_back({s, i, j});
    }
    tuple_min_[static_cast<size_t>(i)] = lo;
    tuple_max_[static_cast<size_t>(i)] = hi;
  }
  sorted_end_ = 0;
}

void FastQ2::EnsureSorted(size_t idx) {
  // Geometrically growing partial sorts. The sorted prefix under the strict
  // (similarity, tuple, candidate) total order is unique, so the scan
  // order — and every downstream result — is independent of how many
  // extension steps it took to reach an index.
  while (idx >= sorted_end_) {
    size_t chunk = std::max<size_t>(64, sorted_end_);
    chunk = std::min(chunk, scan_.size() - sorted_end_);
    const auto first = scan_.begin() + static_cast<ptrdiff_t>(sorted_end_);
    std::partial_sort(first, first + static_cast<ptrdiff_t>(chunk),
                      scan_.end(), MoreSimilar);
    sorted_end_ += chunk;
  }
}

double FastQ2::TopKFloor() const {
  floor_scratch_ = tuple_min_;
  CP_CHECK_GE(static_cast<int>(floor_scratch_.size()), k_);
  std::nth_element(floor_scratch_.begin(), floor_scratch_.begin() + (k_ - 1),
                   floor_scratch_.end(), std::greater<double>());
  return floor_scratch_[static_cast<size_t>(k_ - 1)];
}

double FastQ2::RunQuery(int pin_tuple, int pin_cand) {
  // Width-specialized instantiations: the polynomial multiply loops fully
  // unroll for the common K, which matters because they run once per
  // scanned candidate. The dynamic fallback handles every other K.
  switch (width_) {
    case 2:
      return RunQueryImpl<2>(pin_tuple, pin_cand);  // k = 1
    case 3:
      return RunQueryImpl<3>(pin_tuple, pin_cand);  // k = 2
    case 4:
      return RunQueryImpl<4>(pin_tuple, pin_cand);  // k = 3
    case 6:
      return RunQueryImpl<6>(pin_tuple, pin_cand);  // k = 5
    case 8:
      return RunQueryImpl<8>(pin_tuple, pin_cand);  // k = 7
    default:
      return RunQueryImpl<0>(pin_tuple, pin_cand);
  }
}

template <int W>
void FastQ2::ProcessEntry(const ScoredCandidate& entry, bool pinned_here,
                          double* total) {
  const int w = W == 0 ? width_ : W;
  const int num_labels = num_labels_;
  const int i = entry.tuple;
  const int b = label_of_[static_cast<size_t>(i)];
  const int slot = slot_of_[static_cast<size_t>(i)];
  const int m = dataset_->num_candidates(i);

  // scratch_a_ is clobbered by SetLeaf; boundary polynomials need their own
  // storage that survives the tally loop.
  double boundary[kMaxK + 1];

  // Boundary support for this candidate: tuples scanned earlier are
  // "above" (more similar); the current tuple is pinned to this value.
  ProductExcept<W>(b, slot, boundary);
  const double pin_weight = pinned_here ? 1.0 : 1.0 / static_cast<double>(m);
  for (const Tally& tally : tallies_) {
    const int gb = tally.gamma[static_cast<size_t>(b)];
    if (gb < 1) continue;
    double support = pin_weight * boundary[gb - 1];
    if (support == 0.0) continue;
    for (int l = 0; l < num_labels && support != 0.0; ++l) {
      if (l == b) continue;
      const auto& buf = nodes_[static_cast<size_t>(l)];
      support *=
          buf[static_cast<size_t>(w + tally.gamma[static_cast<size_t>(l)])];
    }
    result_[static_cast<size_t>(tally.winner)] += support;
    *total += support;
  }

  // Move this candidate into the "above" region for later boundaries.
  if (above_[static_cast<size_t>(i)] == 0) touched_.push_back(i);
  const int above = ++above_[static_cast<size_t>(i)];
  const double frac_above =
      pinned_here ? 1.0 : static_cast<double>(above) / static_cast<double>(m);
  SetLeaf<W>(b, slot, 1.0 - frac_above, frac_above);
}

template <int W>
double FastQ2::RunQueryImpl(int pin_tuple, int pin_cand) {
  CP_CHECK(!scan_.empty()) << "call SetTestPoint first";
  std::fill(result_.begin(), result_.end(), 0.0);
  touched_.clear();
  double total = 0.0;
  const double target = 1.0 - epsilon_;
  bool done = false;

  // Two-level loop: materialize a sorted block, then scan it with a tight
  // inner loop free of the sorting machinery (EnsureSorted would otherwise
  // pin every member load inside the hot loop).
  for (size_t idx = 0; idx < scan_.size() && !done;) {
    EnsureSorted(idx);
    const size_t block_end = sorted_end_;
    for (; idx < block_end; ++idx) {
      const ScoredCandidate& entry = scan_[idx];
      if (pin_tuple == entry.tuple && entry.candidate != pin_cand) continue;
      ProcessEntry<W>(entry, /*pinned_here=*/pin_tuple == entry.tuple,
                      &total);
      if (total >= target) {
        done = true;
        break;
      }
    }
  }

  if (capture_support_) {
    last_support_.assign(touched_.begin(), touched_.end());
    std::sort(last_support_.begin(), last_support_.end());
  }

  // Restore the touched leaves and tallies for the next query.
  for (int i : touched_) {
    SetLeaf<W>(label_of_[static_cast<size_t>(i)],
               slot_of_[static_cast<size_t>(i)], 1.0, 0.0);
    above_[static_cast<size_t>(i)] = 0;
  }
  return total;
}

const std::vector<double>& FastQ2::EntropyPinnedSweep(int i) {
  switch (width_) {
    case 2:
      SweepImpl<2>(i);
      break;
    case 3:
      SweepImpl<3>(i);
      break;
    case 4:
      SweepImpl<4>(i);
      break;
    case 6:
      SweepImpl<6>(i);
      break;
    case 8:
      SweepImpl<8>(i);
      break;
    default:
      SweepImpl<0>(i);
      break;
  }
  return sweep_out_;
}

template <int W>
void FastQ2::SweepImpl(int pin_tuple) {
  CP_CHECK(!scan_.empty()) << "call SetTestPoint first";
  const int m = dataset_->num_candidates(pin_tuple);
  sweep_out_.assign(static_cast<size_t>(m), 0.0);
  if (m == 0) return;
  std::fill(result_.begin(), result_.end(), 0.0);
  touched_.clear();
  double total = 0.0;
  const double target = 1.0 - epsilon_;
  bool done = false;
  bool at_pin = false;
  size_t idx = 0;

  // Shared prefix: every entry strictly more similar than tuple i's best
  // candidate. No tuple-i entry exists here, so a pinned run processes the
  // prefix exactly as the unpinned scan does — once for all candidates.
  while (idx < scan_.size() && !done && !at_pin) {
    EnsureSorted(idx);
    const size_t block_end = sorted_end_;
    for (; idx < block_end; ++idx) {
      const ScoredCandidate& entry = scan_[idx];
      if (entry.tuple == pin_tuple) {
        at_pin = true;
        break;
      }
      ProcessEntry<W>(entry, /*pinned_here=*/false, &total);
      if (total >= target) {
        done = true;
        break;
      }
    }
  }

  if (!at_pin) {
    // The scan terminated (mass target or exhaustion) before tuple i's
    // first entry: every pinned run stops at the same point with the same
    // masses, so all candidates share one entropy.
    const double entropy = ResultEntropy(total);
    std::fill(sweep_out_.begin(), sweep_out_.end(), entropy);
  } else {
    // Checkpoint the engine at the prefix boundary, then replay only the
    // suffix per candidate and roll back in between. The rollback restores
    // every leaf to bits identical to the checkpoint (same above/m
    // division), and a segment tree node recomputed from bit-identical
    // children reproduces its coefficients exactly — the same argument
    // that makes the end-of-query restore in RunQueryImpl sound.
    sweep_result_.assign(result_.begin(), result_.end());
    const double prefix_total = total;
    const size_t prefix_touched = touched_.size();
    const size_t prefix_idx = idx;
    for (int j = 0; j < m; ++j) {
      sweep_log_.clear();
      double run_total = prefix_total;
      bool run_done = false;
      size_t run_idx = prefix_idx;
      while (run_idx < scan_.size() && !run_done) {
        EnsureSorted(run_idx);
        const size_t block_end = sorted_end_;
        for (; run_idx < block_end; ++run_idx) {
          const ScoredCandidate& entry = scan_[run_idx];
          if (entry.tuple == pin_tuple && entry.candidate != j) continue;
          sweep_log_.push_back(entry.tuple);
          ProcessEntry<W>(entry, /*pinned_here=*/entry.tuple == pin_tuple,
                          &run_total);
          if (run_total >= target) {
            run_done = true;
            break;
          }
        }
      }
      sweep_out_[static_cast<size_t>(j)] = ResultEntropy(run_total);

      // Roll back to the checkpoint: reverse the above_ increments, then
      // restore each distinct suffix-touched leaf to its checkpoint
      // fraction (above == 0 gives the pristine (1, 0) leaf, which also
      // covers the pinned tuple itself).
      for (size_t t = sweep_log_.size(); t-- > 0;) {
        --above_[static_cast<size_t>(sweep_log_[t])];
      }
      for (const int tuple : sweep_log_) {
        if (sweep_mark_[static_cast<size_t>(tuple)] != 0) continue;
        sweep_mark_[static_cast<size_t>(tuple)] = 1;
        const int above = above_[static_cast<size_t>(tuple)];
        const double frac =
            static_cast<double>(above) /
            static_cast<double>(dataset_->num_candidates(tuple));
        SetLeaf<W>(label_of_[static_cast<size_t>(tuple)],
                   slot_of_[static_cast<size_t>(tuple)], 1.0 - frac, frac);
      }
      for (const int tuple : sweep_log_) {
        sweep_mark_[static_cast<size_t>(tuple)] = 0;
      }
      touched_.resize(prefix_touched);
      std::copy(sweep_result_.begin(), sweep_result_.end(), result_.begin());
      total = prefix_total;
    }
  }

  // Standard end-of-query restore of the (prefix) touched leaves.
  for (int t : touched_) {
    SetLeaf<W>(label_of_[static_cast<size_t>(t)],
               slot_of_[static_cast<size_t>(t)], 1.0, 0.0);
    above_[static_cast<size_t>(t)] = 0;
  }
}

std::vector<double> FastQ2::Run(int pin_tuple, int pin_cand) {
  const double total = RunQuery(pin_tuple, pin_cand);
  std::vector<double> fractions(result_.begin(), result_.end());
  if (total > 0.0) {
    for (double& f : fractions) f /= total;
  }
  return fractions;
}

double FastQ2::ResultEntropy(double total) const {
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (const double mass : result_) {
    if (mass <= 0.0) continue;
    const double p = mass / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

}  // namespace cpclean
