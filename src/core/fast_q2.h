#ifndef CPCLEAN_CORE_FAST_Q2_H_
#define CPCLEAN_CORE_FAST_Q2_H_

#include <vector>

#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"
#include "knn/ordering.h"

namespace cpclean {

/// Production Q2 evaluator for CPClean's inner loop.
///
/// Same mathematics as `SsDcCount<DoubleSemiring, true>` (validated against
/// it in tests), but engineered for the access pattern of Algorithm 3 —
/// thousands of Q2 calls against one test point where a single tuple is
/// "pinned" to one candidate:
///
///  * the kernel evaluations and the sort are paid once per test point
///    (`SetTestPoint`), not once per query;
///  * the scan runs in *descending* similarity order and stops as soon as
///    the collected world mass reaches 1 - epsilon. Supports over all
///    boundary candidates partition the worlds, and nearly all mass sits
///    at the most-similar candidates, so typically only O(K * M) of the
///    N*M scan entries are touched;
///  * per-label segment trees live in flat double buffers; only leaves
///    touched by a query are reset afterwards, so a query allocates
///    nothing and costs O(touched * K^2 log N).
///
/// K is capped at kMaxK (raise and recompile if ever needed).
class FastQ2 {
 public:
  static constexpr int kMaxK = 16;

  /// Binds to `dataset` (borrowed; must outlive this object). Call
  /// `Rebind` after the dataset's candidate sets change shape.
  FastQ2(const IncompleteDataset* dataset, int k, double epsilon = 1e-9);

  /// Re-reads the dataset's structure (sizes, labels).
  void Rebind();

  /// Computes and sorts all candidate similarities against `t`.
  void SetTestPoint(const std::vector<double>& t,
                    const SimilarityKernel& kernel);

  /// Q2 as label fractions for the bound test point.
  std::vector<double> Fractions() { return Run(-1, -1); }

  /// Q2 fractions with tuple `i` collapsed to its candidate `j`
  /// (the "what if candidate j is the truth" query of Equation 4).
  std::vector<double> FractionsPinned(int i, int j) { return Run(i, j); }

  /// Least / most similar candidate of tuple `i` for the bound test point.
  double MinSimilarity(int i) const { return tuple_min_[static_cast<size_t>(i)]; }
  double MaxSimilarity(int i) const { return tuple_max_[static_cast<size_t>(i)]; }

  /// The K-th largest per-tuple *minimum* similarity: any tuple whose
  /// maximum similarity is below this floor can never enter the top-K in
  /// any possible world, so pinning it cannot change the Q2 distribution.
  double TopKFloor() const;

 private:
  std::vector<double> Run(int pin_tuple, int pin_cand);
  void InitTrees();
  void SetLeaf(int label, int slot, double below, double above);
  /// Writes prod over this label's leaves except `slot` into out[0..k_].
  void ProductExcept(int label, int slot, double* out) const;

  const IncompleteDataset* dataset_;
  int k_;
  double epsilon_;
  int num_labels_ = 0;
  int width_ = 0;  // k_ + 1 coefficients per node

  std::vector<int> slot_of_;
  std::vector<int> label_of_;
  std::vector<int> tree_size_;              // per label, power of two
  std::vector<std::vector<double>> nodes_;  // per label, 2*size*width coeffs

  std::vector<ScoredCandidate> scan_;  // descending similarity
  std::vector<double> tuple_min_, tuple_max_;
  std::vector<int> above_;

  // Valid tally vectors with their precomputed winner label.
  struct Tally {
    std::vector<int> gamma;
    int winner;
  };
  std::vector<Tally> tallies_;

  // Scratch (sized in ctor) so queries allocate nothing.
  mutable std::vector<double> scratch_a_, scratch_b_;
  std::vector<int> touched_;
  std::vector<double> result_;
};

}  // namespace cpclean

#endif  // CPCLEAN_CORE_FAST_Q2_H_
