#ifndef CPCLEAN_CORE_FAST_Q2_H_
#define CPCLEAN_CORE_FAST_Q2_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"
#include "knn/ordering.h"

namespace cpclean {

/// Production Q2 evaluator for CPClean's inner loop.
///
/// Same mathematics as `SsDcCount<DoubleSemiring, true>` (validated against
/// it in tests), but engineered for the access pattern of Algorithm 3 —
/// thousands of Q2 calls against one test point where a single tuple is
/// "pinned" to one candidate:
///
///  * the kernel evaluations are paid once per test point (`SetTestPoint`)
///    through the batched kernel API over the dataset's flat candidate
///    slab — no per-candidate virtual call or allocation;
///  * the similarity order is materialized *lazily*: `SetTestPoint` only
///    scores, and queries sort the descending scan in geometrically
///    growing prefixes on demand. Truncated queries touch only the
///    most-similar sliver of the scan, so they never pay the full
///    O(NM log NM) sort;
///  * the scan runs in *descending* similarity order and stops as soon as
///    the collected world mass reaches 1 - epsilon. Supports over all
///    boundary candidates partition the worlds, and nearly all mass sits
///    at the most-similar candidates, so typically only O(K * M) of the
///    N*M scan entries are touched;
///  * per-label segment trees live in flat double buffers; only leaves
///    touched by a query are reset afterwards, so a query allocates
///    nothing and costs O(touched * K^2 log N).
///
/// K is capped at `kMaxK`: the boundary polynomial scratch is a fixed
/// kMaxK+1 coefficients so queries stay allocation-free. Construction
/// fails fast (CP_CHECK) for larger K — raise the constant and recompile
/// if a workload ever legitimately needs K > 16.
class FastQ2 {
 public:
  static constexpr int kMaxK = 16;

  /// Binds to `dataset` (borrowed; must outlive this object). Call
  /// `Rebind` after the dataset's candidate sets change shape — or simply
  /// call `SetTestPoint`, which re-binds automatically when the dataset's
  /// mutation version has moved since the last binding (so one engine can
  /// be reused across serving requests interleaved with cleaning steps).
  FastQ2(const IncompleteDataset* dataset, int k, double epsilon = 1e-9);

  /// Re-reads the dataset's structure (sizes, labels).
  void Rebind();

  /// Computes all candidate similarities against `t` (batched; the
  /// descending order is materialized lazily by queries). Re-binds first
  /// when the dataset has been mutated since the last Rebind/SetTestPoint.
  void SetTestPoint(const std::vector<double>& t,
                    const SimilarityKernel& kernel);

  /// Q2 as label fractions for the bound test point.
  std::vector<double> Fractions() { return Run(-1, -1); }

  /// Q2 fractions with tuple `i` collapsed to its candidate `j`
  /// (the "what if candidate j is the truth" query of Equation 4).
  std::vector<double> FractionsPinned(int i, int j) { return Run(i, j); }

  /// Shannon entropy (natural log) of the Q2 label distribution — the
  /// allocation-free variants of Entropy(Fractions()) /
  /// Entropy(FractionsPinned(i, j)) that the selection loop hammers.
  double EntropyUnpinned() { return ResultEntropy(RunQuery(-1, -1)); }
  double EntropyPinned(int i, int j) { return ResultEntropy(RunQuery(i, j)); }

  /// `EntropyPinned(i, j)` for every candidate j of tuple `i` in one sweep,
  /// bit-identical to m separate calls. The scan prefix strictly above
  /// tuple i's first entry in similarity order contains no tuple-i
  /// candidates, so every pinned run processes it identically: the sweep
  /// pays it once, checkpoints the engine there, and replays only the
  /// suffix per candidate (rolling the trees back between candidates).
  /// Returns a reference to an internal buffer of `num_candidates(i)`
  /// entries, valid until the next query on this engine.
  const std::vector<double>& EntropyPinnedSweep(int i);

  /// Least / most similar candidate of tuple `i` for the bound test point.
  double MinSimilarity(int i) const { return tuple_min_[static_cast<size_t>(i)]; }
  double MaxSimilarity(int i) const { return tuple_max_[static_cast<size_t>(i)]; }

  /// The K-th largest per-tuple *minimum* similarity: any tuple whose
  /// maximum similarity is below this floor can never enter the top-K in
  /// any possible world, so pinning it cannot change the Q2 distribution.
  double TopKFloor() const;

  /// The dataset mutation version this engine is currently bound to (the
  /// engine-pool stamp: an idle engine whose bound version matches the
  /// dataset's current version can be reused without a Rebind).
  uint64_t bound_version() const { return bound_version_; }

  /// Provenance capture: when enabled, each unpinned/pinned query snapshots
  /// the tuples whose boundary supports carried world mass (the touched set
  /// the scan visits before reaching 1 - epsilon) into `last_support()`,
  /// sorted ascending. These are exactly the witnesses of the Q2 answer —
  /// every other tuple's contribution lies below the mass cutoff. Off by
  /// default so the selection hot loop never pays for the copy.
  void EnableSupportCapture(bool on) { capture_support_ = on; }
  const std::vector<int>& last_support() const { return last_support_; }

 private:
  /// Runs the scan; fills result_ with per-label world masses and returns
  /// the total collected mass. Dispatches to a width-specialized
  /// instantiation (the polynomial loops fully unroll for the common K).
  double RunQuery(int pin_tuple, int pin_cand);
  /// W is the compile-time polynomial width (k + 1), or 0 for the dynamic
  /// fallback reading width_.
  template <int W>
  double RunQueryImpl(int pin_tuple, int pin_cand);
  /// The per-entry scan body shared by RunQueryImpl and SweepImpl: tallies
  /// the boundary supports into result_ / `total` and moves the entry's
  /// candidate into the "above" region.
  template <int W>
  void ProcessEntry(const ScoredCandidate& entry, bool pinned_here,
                    double* total);
  template <int W>
  void SweepImpl(int pin_tuple);
  std::vector<double> Run(int pin_tuple, int pin_cand);
  /// Entropy of result_ masses given their total (mirrors common Entropy).
  double ResultEntropy(double total) const;
  /// Extends the sorted descending prefix of scan_ to cover `idx`.
  void EnsureSorted(size_t idx);
  void InitTrees();
  template <int W>
  void SetLeaf(int label, int slot, double below, double above);
  /// Writes prod over this label's leaves except `slot` into out[0..k_].
  template <int W>
  void ProductExcept(int label, int slot, double* out) const;

  const IncompleteDataset* dataset_;
  int k_;
  double epsilon_;
  int num_labels_ = 0;
  int width_ = 0;  // k_ + 1 coefficients per node
  uint64_t bound_version_ = 0;  // dataset_->version() at the last Rebind

  std::vector<int> slot_of_;
  std::vector<int> label_of_;
  std::vector<int> tree_size_;              // per label, power of two
  std::vector<std::vector<double>> nodes_;  // per label, 2*size*width coeffs

  std::vector<ScoredCandidate> scan_;  // [0, sorted_end_) sorted descending
  size_t sorted_end_ = 0;
  std::vector<double> tuple_min_, tuple_max_;
  std::vector<int> above_;

  // Valid tally vectors with their precomputed winner label.
  struct Tally {
    std::vector<int> gamma;
    int winner;
  };
  std::vector<Tally> tallies_;

  // Scratch (sized in ctor) so queries allocate nothing.
  mutable std::vector<double> scratch_a_, scratch_b_;
  std::vector<double> sims_;        // batched kernel output
  mutable std::vector<double> floor_scratch_;
  std::vector<int> touched_;
  std::vector<double> result_;
  bool capture_support_ = false;
  std::vector<int> last_support_;

  // EntropyPinnedSweep scratch: per-candidate entropies, the suffix replay
  // log (one tuple id per processed entry), dedup marks for the leaf
  // rollback, and the checkpointed per-label masses.
  std::vector<double> sweep_out_;
  std::vector<int> sweep_log_;
  std::vector<uint8_t> sweep_mark_;
  std::vector<double> sweep_result_;
};

}  // namespace cpclean

#endif  // CPCLEAN_CORE_FAST_Q2_H_
