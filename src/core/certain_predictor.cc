#include "core/certain_predictor.h"

#include "common/logging.h"
#include "common/stats.h"
#include "core/mm.h"
#include "core/ss1.h"
#include "core/ss_dc.h"

namespace cpclean {

CertainPredictor::CertainPredictor(const SimilarityKernel* kernel, int k)
    : kernel_(kernel), k_(k) {
  CP_CHECK(kernel_ != nullptr);
  CP_CHECK_GE(k_, 1);
}

CheckResult CertainPredictor::Check(const IncompleteDataset& dataset,
                                    const std::vector<double>& t) const {
  if (dataset.num_labels() == 2) {
    return MmCheck(dataset, t, *kernel_, k_);
  }
  return SsCheck(dataset, t, *kernel_, k_);
}

std::optional<int> CertainPredictor::CertainLabel(
    const IncompleteDataset& dataset, const std::vector<double>& t) const {
  const int label = Check(dataset, t).CertainLabel();
  if (label < 0) return std::nullopt;
  return label;
}

bool CertainPredictor::IsCertain(const IncompleteDataset& dataset,
                                 const std::vector<double>& t) const {
  return Check(dataset, t).CertainLabel() >= 0;
}

std::vector<double> CertainPredictor::LabelProbabilities(
    const IncompleteDataset& dataset, const std::vector<double>& t) const {
  if (k_ == 1) {
    return Ss1Count<DoubleSemiring, true>(dataset, t, *kernel_).per_label;
  }
  return SsDcCount<DoubleSemiring, true>(dataset, t, *kernel_, k_).per_label;
}

double CertainPredictor::PredictionEntropy(const IncompleteDataset& dataset,
                                           const std::vector<double>& t) const {
  return Entropy(LabelProbabilities(dataset, t));
}

}  // namespace cpclean
