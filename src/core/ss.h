#ifndef CPCLEAN_CORE_SS_H_
#define CPCLEAN_CORE_SS_H_

#include <vector>

#include "common/logging.h"
#include "core/cp_queries.h"
#include "core/similarity.h"
#include "core/tally_enum.h"
#include "core/truncated_poly.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"
#include "knn/vote.h"

namespace cpclean {

/// SortScan (SS), paper Algorithm 1 — the generic polynomial-time answer to
/// the counting query Q2 for KNN over exponentially many possible worlds.
///
/// Scans all candidates in increasing similarity order; each scanned
/// candidate x_{i,j} is treated as the K-th most similar element (the
/// "boundary", App. A) of a world, and the number of worlds in its boundary
/// set supporting each label tally is computed by per-label dynamic
/// programs over the similarity tally α. This is the *naive* variant that
/// rebuilds the per-label DP at every step — O(N·M·(N·K + |Γ|·|Y|)); the
/// tree-based `SsDcCount` (ss_dc.h) is the fast production engine.
///
/// Template parameters select the count semiring and, for DoubleSemiring,
/// per-tuple normalization (see truncated_poly.h).
template <typename S, bool kNormalized = false>
CountResult<S> SsCount(const IncompleteDataset& dataset,
                       const std::vector<double>& t,
                       const SimilarityKernel& kernel, int k) {
  using W = TallyWeight<S, kNormalized>;
  const int n = dataset.num_examples();
  const int num_labels = dataset.num_labels();
  CP_CHECK_GE(k, 1);
  CP_CHECK_LE(k, n);

  CountResult<S> result;
  result.per_label.assign(static_cast<size_t>(num_labels), S::Zero());
  result.total = S::One();
  for (int i = 0; i < n; ++i) {
    result.total = S::Mul(result.total, W::Free(dataset.num_candidates(i)));
  }

  const std::vector<ScoredCandidate> scan =
      SortedCandidateScan(dataset, t, kernel);
  std::vector<int> alpha(static_cast<size_t>(n), 0);

  for (const ScoredCandidate& entry : scan) {
    const int i = entry.tuple;
    const int b = dataset.label(i);
    ++alpha[static_cast<size_t>(i)];

    // Per-label generating polynomials over candidate sets of that label,
    // excluding the boundary tuple i (it is pinned inside the top-K).
    std::vector<Poly<S>> label_poly(static_cast<size_t>(num_labels));
    for (int l = 0; l < num_labels; ++l) {
      Poly<S> p = PolyOne<S>();
      for (int m = 0; m < n; ++m) {
        if (dataset.label(m) != l || m == i) continue;
        const int cm = dataset.num_candidates(m);
        const Poly<S> leaf = {W::Below(alpha[static_cast<size_t>(m)], cm),
                              W::Above(alpha[static_cast<size_t>(m)], cm)};
        p = PolyMul<S>(p, leaf, k);
      }
      label_poly[static_cast<size_t>(l)] = std::move(p);
    }

    const typename S::Value pinned = W::Pinned(dataset.num_candidates(i));
    EnumerateTallies(num_labels, k, [&](const std::vector<int>& gamma) {
      if (gamma[static_cast<size_t>(b)] < 1) return;  // boundary not in top-K
      typename S::Value support =
          S::Mul(pinned, PolyCoeff<S>(label_poly[static_cast<size_t>(b)],
                                      gamma[static_cast<size_t>(b)] - 1));
      if (S::IsZero(support)) return;
      for (int l = 0; l < num_labels; ++l) {
        if (l == b) continue;
        support = S::Mul(support,
                         PolyCoeff<S>(label_poly[static_cast<size_t>(l)],
                                      gamma[static_cast<size_t>(l)]));
        if (S::IsZero(support)) return;
      }
      const int winner = ArgMaxLabel(gamma);
      auto& slot = result.per_label[static_cast<size_t>(winner)];
      slot = S::Add(slot, support);
    });
  }
  return result;
}

}  // namespace cpclean

#endif  // CPCLEAN_CORE_SS_H_
