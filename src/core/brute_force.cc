#include "core/brute_force.h"

#include "common/logging.h"
#include "core/similarity.h"
#include "knn/ordering.h"
#include "knn/top_k.h"
#include "knn/vote.h"

namespace cpclean {

int PredictWorld(const IncompleteDataset& dataset,
                 const std::vector<std::vector<double>>& sims,
                 const WorldChoice& choice, int k) {
  CP_CHECK_EQ(static_cast<int>(choice.size()), dataset.num_examples());
  std::vector<ScoredCandidate> scored;
  scored.reserve(choice.size());
  for (int i = 0; i < dataset.num_examples(); ++i) {
    const int j = choice[static_cast<size_t>(i)];
    scored.push_back(
        {sims[static_cast<size_t>(i)][static_cast<size_t>(j)], i, j});
  }
  std::vector<int> top = SelectTopK(scored, k);
  std::vector<int> labels;
  labels.reserve(top.size());
  for (int idx : top) labels.push_back(dataset.label(idx));
  return MajorityVote(labels, dataset.num_labels());
}

CountResult<ExactSemiring> BruteForceCount(const IncompleteDataset& dataset,
                                           const std::vector<double>& t,
                                           const SimilarityKernel& kernel,
                                           int k) {
  CP_CHECK_GE(k, 1);
  CP_CHECK_LE(k, dataset.num_examples());
  const auto sims = SimilarityMatrix(dataset, t, kernel);
  CountResult<ExactSemiring> result;
  result.per_label.assign(static_cast<size_t>(dataset.num_labels()),
                          BigUint());
  for (PossibleWorldIterator it(&dataset); it.Valid(); it.Next()) {
    const int y = PredictWorld(dataset, sims, it.choice(), k);
    result.per_label[static_cast<size_t>(y)] += BigUint(1);
  }
  result.total = dataset.NumPossibleWorlds();
  return result;
}

CheckResult BruteForceCheck(const IncompleteDataset& dataset,
                            const std::vector<double>& t,
                            const SimilarityKernel& kernel, int k) {
  const CountResult<ExactSemiring> counts =
      BruteForceCount(dataset, t, kernel, k);
  std::vector<bool> possible;
  possible.reserve(counts.per_label.size());
  for (const auto& c : counts.per_label) possible.push_back(!c.IsZero());
  return CheckFromPossible(possible);
}

}  // namespace cpclean
