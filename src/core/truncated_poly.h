#ifndef CPCLEAN_CORE_TRUNCATED_POLY_H_
#define CPCLEAN_CORE_TRUNCATED_POLY_H_

#include <algorithm>
#include <vector>

#include "common/semiring.h"

namespace cpclean {

/// Generating polynomials over a count semiring, truncated at degree K.
///
/// In the SS dynamic program (paper §3.1.1 / App. A), each candidate set
/// contributes the factor `below + above*z` — coefficient of z^c in the
/// product over candidate sets counts the worlds placing exactly c of them
/// inside the top-K. Degrees above K never matter, so every operation
/// truncates.
template <typename S>
using Poly = std::vector<typename S::Value>;

/// The constant polynomial 1 (empty product).
template <typename S>
Poly<S> PolyOne() {
  return {S::One()};
}

/// The constant polynomial 0.
template <typename S>
Poly<S> PolyZero() {
  return {S::Zero()};
}

/// Coefficient of z^degree, or semiring zero past the end.
template <typename S>
typename S::Value PolyCoeff(const Poly<S>& p, int degree) {
  if (degree < 0 || degree >= static_cast<int>(p.size())) return S::Zero();
  return p[static_cast<size_t>(degree)];
}

/// a * b truncated to degree <= max_degree.
template <typename S>
Poly<S> PolyMul(const Poly<S>& a, const Poly<S>& b, int max_degree) {
  const int deg =
      std::min(max_degree,
               static_cast<int>(a.size()) + static_cast<int>(b.size()) - 2);
  Poly<S> out(static_cast<size_t>(deg < 0 ? 0 : deg) + 1, S::Zero());
  for (int i = 0; i < static_cast<int>(a.size()); ++i) {
    if (S::IsZero(a[static_cast<size_t>(i)])) continue;
    for (int j = 0; j < static_cast<int>(b.size()) && i + j <= max_degree;
         ++j) {
      auto& slot = out[static_cast<size_t>(i + j)];
      slot = S::Add(slot, S::Mul(a[static_cast<size_t>(i)],
                                 b[static_cast<size_t>(j)]));
    }
  }
  return out;
}

/// Truncates `p` in place to degree <= max_degree (caps, not rounds).
template <typename S>
void PolyTruncate(Poly<S>* p, int max_degree) {
  if (static_cast<int>(p->size()) > max_degree + 1) {
    p->resize(static_cast<size_t>(max_degree) + 1);
  }
}

/// Weight mapping from similarity tallies into a semiring.
///
/// Exact mode embeds raw counts (α, M-α): polynomial products are exact
/// world counts. Normalized mode (DoubleSemiring only) divides by |C_n| so
/// products are world *fractions* — immune to overflow for datasets with
/// thousands of dirty tuples.
template <typename S, bool kNormalized = false>
struct TallyWeight {
  static typename S::Value Below(int alpha, int m) {
    (void)m;
    return S::FromCount(static_cast<uint64_t>(alpha));
  }
  static typename S::Value Above(int alpha, int m) {
    return S::FromCount(static_cast<uint64_t>(m - alpha));
  }
  /// Weight of a fully unconstrained candidate set (used for totals).
  static typename S::Value Free(int m) {
    return S::FromCount(static_cast<uint64_t>(m));
  }
  /// Weight of the boundary tuple, pinned to one specific candidate:
  /// exactly 1 way in exact mode, probability 1/m in normalized mode.
  static typename S::Value Pinned(int m) {
    (void)m;
    return S::One();
  }
};

template <>
struct TallyWeight<DoubleSemiring, true> {
  static double Below(int alpha, int m) {
    return static_cast<double>(alpha) / static_cast<double>(m);
  }
  static double Above(int alpha, int m) {
    return static_cast<double>(m - alpha) / static_cast<double>(m);
  }
  static double Free(int m) {
    (void)m;
    return 1.0;
  }
  static double Pinned(int m) { return 1.0 / static_cast<double>(m); }
};

}  // namespace cpclean

#endif  // CPCLEAN_CORE_TRUNCATED_POLY_H_
