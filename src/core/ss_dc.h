#ifndef CPCLEAN_CORE_SS_DC_H_
#define CPCLEAN_CORE_SS_DC_H_

#include <vector>

#include "common/logging.h"
#include "core/cp_queries.h"
#include "core/similarity.h"
#include "core/support_tree.h"
#include "core/tally_enum.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"
#include "knn/vote.h"

namespace cpclean {

/// SS-DC, paper Algorithm A.1: SortScan with the divide-and-conquer
/// support trees of Appendix A.2. One per-label segment tree maintains the
/// truncated product of `below + above*z` leaf polynomials; each scan step
/// updates a single leaf in O(K^2 log N) and reads
///   - the root polynomial for every other label, and
///   - the "product except the boundary tuple" for the boundary's label,
/// then enumerates the valid label tallies.
///
/// Overall O(N·M·(log(N·M) + K^2 log N + |Γ|·|Y|)) — the production engine
/// behind CPClean.
template <typename S, bool kNormalized = false>
CountResult<S> SsDcCount(const IncompleteDataset& dataset,
                         const std::vector<double>& t,
                         const SimilarityKernel& kernel, int k) {
  using W = TallyWeight<S, kNormalized>;
  const int n = dataset.num_examples();
  const int num_labels = dataset.num_labels();
  CP_CHECK_GE(k, 1);
  CP_CHECK_LE(k, n);

  CountResult<S> result;
  result.per_label.assign(static_cast<size_t>(num_labels), S::Zero());
  result.total = S::One();
  for (int i = 0; i < n; ++i) {
    result.total = S::Mul(result.total, W::Free(dataset.num_candidates(i)));
  }

  // Map each tuple to a slot inside its label's tree.
  std::vector<int> slot_of(static_cast<size_t>(n), -1);
  std::vector<int> label_size(static_cast<size_t>(num_labels), 0);
  for (int i = 0; i < n; ++i) {
    slot_of[static_cast<size_t>(i)] =
        label_size[static_cast<size_t>(dataset.label(i))]++;
  }
  std::vector<SupportTree<S>> trees;
  trees.reserve(static_cast<size_t>(num_labels));
  for (int l = 0; l < num_labels; ++l) {
    trees.emplace_back(label_size[static_cast<size_t>(l)], k);
  }
  // Initial tallies: α = 0 everywhere, every candidate is "above".
  for (int i = 0; i < n; ++i) {
    const int m = dataset.num_candidates(i);
    trees[static_cast<size_t>(dataset.label(i))].SetLeaf(
        slot_of[static_cast<size_t>(i)], W::Below(0, m), W::Above(0, m));
  }

  const std::vector<ScoredCandidate> scan =
      SortedCandidateScan(dataset, t, kernel);
  std::vector<int> alpha(static_cast<size_t>(n), 0);

  for (const ScoredCandidate& entry : scan) {
    const int i = entry.tuple;
    const int b = dataset.label(i);
    const int m = dataset.num_candidates(i);
    ++alpha[static_cast<size_t>(i)];
    trees[static_cast<size_t>(b)].SetLeaf(
        slot_of[static_cast<size_t>(i)],
        W::Below(alpha[static_cast<size_t>(i)], m),
        W::Above(alpha[static_cast<size_t>(i)], m));

    // Boundary tuple i is pinned in the top-K: exclude it from its label's
    // polynomial and shift that label's tally by one.
    const Poly<S> boundary_poly =
        trees[static_cast<size_t>(b)].ProductExcept(
            slot_of[static_cast<size_t>(i)]);

    const typename S::Value pinned = W::Pinned(m);
    EnumerateTallies(num_labels, k, [&](const std::vector<int>& gamma) {
      if (gamma[static_cast<size_t>(b)] < 1) return;
      typename S::Value support = S::Mul(
          pinned,
          PolyCoeff<S>(boundary_poly, gamma[static_cast<size_t>(b)] - 1));
      if (S::IsZero(support)) return;
      for (int l = 0; l < num_labels; ++l) {
        if (l == b) continue;
        support = S::Mul(support,
                         PolyCoeff<S>(trees[static_cast<size_t>(l)].Root(),
                                      gamma[static_cast<size_t>(l)]));
        if (S::IsZero(support)) return;
      }
      const int winner = ArgMaxLabel(gamma);
      auto& slot = result.per_label[static_cast<size_t>(winner)];
      slot = S::Add(slot, support);
    });
  }
  return result;
}

/// Labels achievable in at least one possible world, via SS-DC in the
/// Boolean possibility semiring — an exact Q1 building block for any |Y|.
inline std::vector<bool> SsPossibleLabels(const IncompleteDataset& dataset,
                                          const std::vector<double>& t,
                                          const SimilarityKernel& kernel,
                                          int k) {
  const CountResult<BoolSemiring> counts =
      SsDcCount<BoolSemiring>(dataset, t, kernel, k);
  std::vector<bool> out;
  out.reserve(counts.per_label.size());
  for (bool v : counts.per_label) out.push_back(v);
  return out;
}

/// Q1 for every label via the Boolean-semiring SS-DC.
inline CheckResult SsCheck(const IncompleteDataset& dataset,
                           const std::vector<double>& t,
                           const SimilarityKernel& kernel, int k) {
  return CheckFromPossible(SsPossibleLabels(dataset, t, kernel, k));
}

}  // namespace cpclean

#endif  // CPCLEAN_CORE_SS_DC_H_
