#include "core/ss1.h"

namespace cpclean {

std::vector<double> Ss1Fractions(const IncompleteDataset& dataset,
                                 const std::vector<double>& t,
                                 const SimilarityKernel& kernel) {
  return Ss1Count<DoubleSemiring, true>(dataset, t, kernel).Fractions();
}

CountResult<ExactSemiring> Ss1ExactCount(const IncompleteDataset& dataset,
                                         const std::vector<double>& t,
                                         const SimilarityKernel& kernel) {
  return Ss1Count<ExactSemiring>(dataset, t, kernel);
}

}  // namespace cpclean
