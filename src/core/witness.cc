#include "core/witness.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/string_util.h"
#include "core/certain_predictor.h"
#include "core/fast_q2.h"

namespace cpclean {

namespace {

Result<IncompleteDataset> SubsetDataset(const IncompleteDataset& dataset,
                                        const std::vector<int>& tuples) {
  IncompleteDataset subset(dataset.num_labels());
  for (const int i : tuples) {
    if (i < 0 || i >= dataset.num_examples()) {
      return Status::OutOfRange(StrFormat(
          "witness tuple %d outside [0, %d)", i, dataset.num_examples()));
    }
    CP_RETURN_NOT_OK(subset.AddExample(dataset.example(i)));
  }
  return subset;
}

}  // namespace

Result<CheckResult> CheckOnSubset(const IncompleteDataset& dataset,
                                  const std::vector<int>& tuples,
                                  const std::vector<double>& t,
                                  const SimilarityKernel& kernel, int k) {
  if (static_cast<int>(tuples.size()) < k) {
    return Status::InvalidArgument(StrFormat(
        "subset of %d tuples cannot answer a %d-NN query",
        static_cast<int>(tuples.size()), k));
  }
  CP_ASSIGN_OR_RETURN(const IncompleteDataset subset,
                      SubsetDataset(dataset, tuples));
  const CertainPredictor predictor(&kernel, k);
  return predictor.Check(subset, t);
}

Result<WitnessSet> ExplainPrediction(const IncompleteDataset& dataset,
                                     const std::vector<double>& t,
                                     const SimilarityKernel& kernel, int k,
                                     const WitnessOptions& options) {
  const int n = dataset.num_examples();
  if (k < 1 || k > FastQ2::kMaxK) {
    return Status::InvalidArgument(
        StrFormat("k = %d outside [1, %d]", k, FastQ2::kMaxK));
  }
  if (n < k) {
    return Status::InvalidArgument(
        StrFormat("dataset has %d examples, need at least k = %d", n, k));
  }

  WitnessSet out;
  const CertainPredictor predictor(&kernel, k);
  const CheckResult full = predictor.Check(dataset, t);
  out.label = full.CertainLabel();
  out.certain = out.label >= 0;

  // Score once; the floor prunes to the sound candidate superset and the
  // capture flag snapshots the Q2 boundary support.
  FastQ2 engine(&dataset, k);
  engine.EnableSupportCapture(true);
  engine.SetTestPoint(t, kernel);
  (void)engine.Fractions();
  out.support = engine.last_support();
  const double floor = engine.TopKFloor();

  std::vector<int> witness;
  witness.reserve(static_cast<size_t>(k));
  for (int i = 0; i < n; ++i) {
    if (engine.MaxSimilarity(i) >= floor) witness.push_back(i);
  }

  // The pruning is provably sound; check anyway so a violated invariant
  // surfaces as an error instead of a wrong explanation.
  CP_ASSIGN_OR_RETURN(const CheckResult pruned,
                      CheckOnSubset(dataset, witness, t, kernel, k));
  if (pruned.CertainLabel() != out.label) {
    return Status::Internal(StrFormat(
        "top-K floor pruning changed the answer (%d -> %d)", out.label,
        pruned.CertainLabel()));
  }

  if (static_cast<int>(witness.size()) > options.max_minimize_tuples) {
    out.minimal = false;
    out.tuples = std::move(witness);
    return out;
  }

  // Greedy deletion to a 1-minimal set. Attempt order: least relevant
  // first (ascending max similarity, ties by id) so the keepers are the
  // most similar tuples. Passes repeat until a full pass removes nothing —
  // then every survivor was re-tried against the final set and failed,
  // which is exactly the 1-minimality contract.
  bool changed = true;
  int pass = 0;
  while (changed && pass < options.max_passes) {
    changed = false;
    ++pass;
    std::vector<int> order = witness;
    std::stable_sort(order.begin(), order.end(), [&engine](int a, int b) {
      return engine.MaxSimilarity(a) < engine.MaxSimilarity(b);
    });
    for (const int id : order) {
      if (static_cast<int>(witness.size()) <= k) break;
      std::vector<int> trial;
      trial.reserve(witness.size() - 1);
      for (const int w : witness) {
        if (w != id) trial.push_back(w);
      }
      CP_ASSIGN_OR_RETURN(const CheckResult check,
                          CheckOnSubset(dataset, trial, t, kernel, k));
      if (check.CertainLabel() == out.label) {
        witness = std::move(trial);
        changed = true;
      }
    }
  }
  out.minimal = !changed;  // false only when the pass cap cut us off
  out.tuples = std::move(witness);
  return out;
}

Result<bool> WitnessReproduces(const IncompleteDataset& dataset,
                               const std::vector<int>& tuples,
                               const std::vector<double>& t,
                               const SimilarityKernel& kernel, int k,
                               bool want_certain, int want_label) {
  CP_ASSIGN_OR_RETURN(const CheckResult check,
                      CheckOnSubset(dataset, tuples, t, kernel, k));
  const int label = check.CertainLabel();
  return (label >= 0) == want_certain && label == want_label;
}

}  // namespace cpclean
