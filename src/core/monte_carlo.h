#ifndef CPCLEAN_CORE_MONTE_CARLO_H_
#define CPCLEAN_CORE_MONTE_CARLO_H_

#include <vector>

#include "common/rng.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// Monte-Carlo estimation of the counting query Q2 — the natural baseline
/// the paper's exact algorithms replace: sample possible worlds uniformly
/// (or from given priors), train/evaluate KNN in each, and report the
/// empirical label distribution.
///
/// Unbiased with standard-error O(1/sqrt(samples)); a useful sanity
/// oracle at scales brute force cannot reach, and the comparison point for
/// the exact engines in the benchmark suite. Note it can *never* prove a
/// prediction certain (Q1): absence of a label among samples is not
/// absence among worlds — which is precisely the paper's argument for
/// exact counting.
struct MonteCarloOptions {
  int samples = 1000;
};

/// Estimated P(prediction = y) per label under the uniform world prior.
std::vector<double> MonteCarloLabelProbabilities(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel, int k, Rng* rng,
    const MonteCarloOptions& options = MonteCarloOptions());

/// The labels observed at least once across the sampled worlds — an
/// UNDER-approximation of the achievable-label set (see class comment).
std::vector<bool> MonteCarloObservedLabels(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel, int k, Rng* rng,
    const MonteCarloOptions& options = MonteCarloOptions());

}  // namespace cpclean

#endif  // CPCLEAN_CORE_MONTE_CARLO_H_
