#ifndef CPCLEAN_CORE_PROBABILISTIC_H_
#define CPCLEAN_CORE_PROBABILISTIC_H_

#include <vector>

#include "common/result.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// Block tuple-independent probabilistic-database semantics (paper §2.1,
/// "Connections to Probabilistic Databases"), generalized from the uniform
/// prior: candidate x_{i,j} carries prior probability priors[i][j], rows
/// independent, each row summing to 1. Returns P(classifier predicts y)
/// over the induced world distribution — the uniform case reduces to
/// Q2 / |worlds|.
///
/// `priors` must match the dataset's candidate-set shape; rows are
/// validated to sum to 1 (1e-6 tolerance). Runs the SS-DC scan with
/// prior-weighted tallies: O(N·M·(log NM + K² log N)).
Result<std::vector<double>> WeightedLabelProbabilities(
    const IncompleteDataset& dataset,
    const std::vector<std::vector<double>>& priors,
    const std::vector<double>& t, const SimilarityKernel& kernel, int k);

/// Exhaustive-enumeration reference for `WeightedLabelProbabilities`
/// (exponential; testing only).
Result<std::vector<double>> WeightedLabelProbabilitiesBruteForce(
    const IncompleteDataset& dataset,
    const std::vector<std::vector<double>>& priors,
    const std::vector<double>& t, const SimilarityKernel& kernel, int k);

/// The uniform prior over a dataset's candidate sets.
std::vector<std::vector<double>> UniformPriors(
    const IncompleteDataset& dataset);

}  // namespace cpclean

#endif  // CPCLEAN_CORE_PROBABILISTIC_H_
