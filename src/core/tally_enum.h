#ifndef CPCLEAN_CORE_TALLY_ENUM_H_
#define CPCLEAN_CORE_TALLY_ENUM_H_

#include <functional>
#include <vector>

namespace cpclean {

/// Enumerates every valid label tally vector γ (paper §3.1.3): all
/// non-negative integer vectors of length `num_labels` summing to `k`.
/// There are C(k + |Y| - 1, |Y| - 1) of them. The callback receives each
/// tally by const reference; it must not retain the reference.
inline void EnumerateTallies(
    int num_labels, int k,
    const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> tally(static_cast<size_t>(num_labels), 0);
  // Recursive composition generator; the last label takes the remainder.
  std::function<void(int, int)> recurse = [&](int label, int remaining) {
    if (label == num_labels - 1) {
      tally[static_cast<size_t>(label)] = remaining;
      fn(tally);
      return;
    }
    for (int c = 0; c <= remaining; ++c) {
      tally[static_cast<size_t>(label)] = c;
      recurse(label + 1, remaining - c);
    }
  };
  if (num_labels > 0) recurse(0, k);
}

/// Number of valid tally vectors, C(k + num_labels - 1, num_labels - 1).
inline long long CountTallies(int num_labels, int k) {
  long long out = 1;
  for (int i = 1; i <= num_labels - 1; ++i) {
    out = out * (k + i) / i;
  }
  return out;
}

}  // namespace cpclean

#endif  // CPCLEAN_CORE_TALLY_ENUM_H_
