#ifndef CPCLEAN_CORE_SUPPORT_TREE_H_
#define CPCLEAN_CORE_SUPPORT_TREE_H_

#include <vector>

#include "common/logging.h"
#include "core/truncated_poly.h"

namespace cpclean {

/// The divide-and-conquer structure of paper Appendix A.2: a segment tree
/// whose leaves hold per-candidate-set generating polynomials
/// `below + above*z` and whose internal nodes hold truncated products.
///
/// A leaf update (one similarity-tally increment during the SS scan)
/// recomputes only the O(log N) ancestors, each an O(K^2) truncated
/// convolution. `ProductExcept` combines sibling subtrees along the
/// leaf-to-root path, yielding the product over all other leaves without
/// mutating the tree — this is how the boundary tuple is excluded from its
/// own label's polynomial.
template <typename S>
class SupportTree {
 public:
  /// A tree over `num_leaves` candidate sets whose polynomials are
  /// truncated at `max_degree` (= K).
  SupportTree(int num_leaves, int max_degree)
      : num_leaves_(num_leaves), max_degree_(max_degree) {
    CP_CHECK_GE(num_leaves, 0);
    CP_CHECK_GE(max_degree, 0);
    size_ = 1;
    while (size_ < std::max(num_leaves, 1)) size_ <<= 1;
    nodes_.assign(static_cast<size_t>(2 * size_), PolyOne<S>());
  }

  int num_leaves() const { return num_leaves_; }

  /// Sets leaf `pos` to the polynomial `below + above*z` and refreshes
  /// ancestors. O(K^2 log N).
  void SetLeaf(int pos, typename S::Value below, typename S::Value above) {
    CP_CHECK_GE(pos, 0);
    CP_CHECK_LT(pos, num_leaves_);
    int node = size_ + pos;
    if (max_degree_ == 0) {
      nodes_[static_cast<size_t>(node)] = {below};
    } else {
      nodes_[static_cast<size_t>(node)] = {below, above};
    }
    for (node >>= 1; node >= 1; node >>= 1) {
      nodes_[static_cast<size_t>(node)] =
          PolyMul<S>(nodes_[static_cast<size_t>(2 * node)],
                     nodes_[static_cast<size_t>(2 * node + 1)], max_degree_);
    }
  }

  /// Product polynomial over all leaves.
  const Poly<S>& Root() const { return nodes_[1]; }

  /// Product polynomial over all leaves except `pos`. O(K^2 log N).
  Poly<S> ProductExcept(int pos) const {
    CP_CHECK_GE(pos, 0);
    CP_CHECK_LT(pos, num_leaves_);
    Poly<S> out = PolyOne<S>();
    for (int node = size_ + pos; node > 1; node >>= 1) {
      const int sibling = node ^ 1;
      out = PolyMul<S>(out, nodes_[static_cast<size_t>(sibling)], max_degree_);
    }
    return out;
  }

 private:
  int num_leaves_;
  int max_degree_;
  int size_ = 1;  // number of leaf slots, a power of two
  std::vector<Poly<S>> nodes_;
};

/// Scalar product tree: the K=1 specialization where only the "below"
/// weight matters (paper §3.1.2, Equation 2). `ProductExcept(i)` returns
/// `prod_{n != i} below(n)` in O(log N) multiplications.
template <typename S>
class ProductTree {
 public:
  explicit ProductTree(int num_leaves) : num_leaves_(num_leaves) {
    CP_CHECK_GE(num_leaves, 0);
    size_ = 1;
    while (size_ < std::max(num_leaves, 1)) size_ <<= 1;
    nodes_.assign(static_cast<size_t>(2 * size_), S::One());
  }

  int num_leaves() const { return num_leaves_; }

  void SetLeaf(int pos, typename S::Value value) {
    CP_CHECK_GE(pos, 0);
    CP_CHECK_LT(pos, num_leaves_);
    int node = size_ + pos;
    nodes_[static_cast<size_t>(node)] = value;
    for (node >>= 1; node >= 1; node >>= 1) {
      nodes_[static_cast<size_t>(node)] =
          S::Mul(nodes_[static_cast<size_t>(2 * node)],
                 nodes_[static_cast<size_t>(2 * node + 1)]);
    }
  }

  typename S::Value Product() const { return nodes_[1]; }

  typename S::Value ProductExcept(int pos) const {
    CP_CHECK_GE(pos, 0);
    CP_CHECK_LT(pos, num_leaves_);
    typename S::Value out = S::One();
    for (int node = size_ + pos; node > 1; node >>= 1) {
      out = S::Mul(out, nodes_[static_cast<size_t>(node ^ 1)]);
    }
    return out;
  }

 private:
  int num_leaves_;
  int size_ = 1;
  std::vector<typename S::Value> nodes_;
};

}  // namespace cpclean

#endif  // CPCLEAN_CORE_SUPPORT_TREE_H_
