#ifndef CPCLEAN_CORE_BRUTE_FORCE_H_
#define CPCLEAN_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/cp_queries.h"
#include "incomplete/incomplete_dataset.h"
#include "incomplete/possible_worlds.h"
#include "knn/kernel.h"

namespace cpclean {

/// The exact exponential-time oracle (paper §2.1, "Computational
/// Challenge"): trains a KNN classifier in *every* possible world and
/// tallies predictions. Cost O(M^N * N log N) — usable only on tiny
/// instances; it is the ground truth every polynomial engine is validated
/// against.

/// Predicts the KNN label in the single world identified by `choice`,
/// given the precomputed similarity matrix.
int PredictWorld(const IncompleteDataset& dataset,
                 const std::vector<std::vector<double>>& sims,
                 const WorldChoice& choice, int k);

/// Q2 by enumeration: exact per-label world counts.
CountResult<ExactSemiring> BruteForceCount(const IncompleteDataset& dataset,
                                           const std::vector<double>& t,
                                           const SimilarityKernel& kernel,
                                           int k);

/// Q1 by enumeration.
CheckResult BruteForceCheck(const IncompleteDataset& dataset,
                            const std::vector<double>& t,
                            const SimilarityKernel& kernel, int k);

}  // namespace cpclean

#endif  // CPCLEAN_CORE_BRUTE_FORCE_H_
