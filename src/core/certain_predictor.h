#ifndef CPCLEAN_CORE_CERTAIN_PREDICTOR_H_
#define CPCLEAN_CORE_CERTAIN_PREDICTOR_H_

#include <optional>
#include <vector>

#include "core/cp_queries.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// Facade over the CP query engines — the main entry point of the library.
///
/// Given a kernel and K, answers the paper's two primitives for a KNN
/// classifier over an incomplete dataset:
///   Q1 (checking):  `Check` / `CertainLabel` — is the prediction the same
///                   in every possible world?
///   Q2 (counting):  `LabelProbabilities` — the fraction of possible worlds
///                   predicting each label (block tuple-independent
///                   probabilistic-database semantics with uniform prior).
///
/// Engine selection: Q1 uses MM (binary) or Boolean-semiring SS-DC
/// (multi-class); Q2 uses the K=1 product-tree fast path when K == 1 and
/// SS-DC otherwise, in normalized doubles.
class CertainPredictor {
 public:
  /// `kernel` is borrowed and must outlive the predictor; `k >= 1`.
  CertainPredictor(const SimilarityKernel* kernel, int k);

  int k() const { return k_; }
  const SimilarityKernel& kernel() const { return *kernel_; }

  /// Q1 for every label.
  CheckResult Check(const IncompleteDataset& dataset,
                    const std::vector<double>& t) const;

  /// The certainly-predicted label, or nullopt when worlds disagree.
  std::optional<int> CertainLabel(const IncompleteDataset& dataset,
                                  const std::vector<double>& t) const;

  /// True iff the test point can be CP'ed.
  bool IsCertain(const IncompleteDataset& dataset,
                 const std::vector<double>& t) const;

  /// Q2 as a probability distribution over labels (sums to ~1).
  std::vector<double> LabelProbabilities(const IncompleteDataset& dataset,
                                         const std::vector<double>& t) const;

  /// Shannon entropy (natural log) of `LabelProbabilities` — the
  /// per-example term of the CPClean objective (paper Equation 3).
  double PredictionEntropy(const IncompleteDataset& dataset,
                           const std::vector<double>& t) const;

 private:
  const SimilarityKernel* kernel_;
  int k_;
};

}  // namespace cpclean

#endif  // CPCLEAN_CORE_CERTAIN_PREDICTOR_H_
