#ifndef CPCLEAN_CORE_SS_DC_MC_H_
#define CPCLEAN_CORE_SS_DC_MC_H_

#include <vector>

#include "common/logging.h"
#include "core/cp_queries.h"
#include "core/similarity.h"
#include "core/support_tree.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// SS-DC-MC, paper Appendix A.3: the many-class variant of SortScan whose
/// cost is polynomial in |Y| instead of the C(K+|Y|-1, K) tallies of
/// Algorithm A.1.
///
/// Instead of enumerating full tally vectors, it fixes the winning label l
/// and its count c, then counts assignments of the remaining K - c top-K
/// slots to the other labels with per-label caps. The paper's recurrence
/// ignores argmax ties; we make the caps exact for the deterministic
/// smaller-label-wins vote: labels below l are capped at c - 1 (they would
/// steal the win at c), labels above l at c.
///
/// O(N·M·(log(N·M) + K^2 log N + |Y|^2 K^3)).
template <typename S, bool kNormalized = false>
CountResult<S> SsDcMcCount(const IncompleteDataset& dataset,
                           const std::vector<double>& t,
                           const SimilarityKernel& kernel, int k) {
  using W = TallyWeight<S, kNormalized>;
  const int n = dataset.num_examples();
  const int num_labels = dataset.num_labels();
  CP_CHECK_GE(k, 1);
  CP_CHECK_LE(k, n);

  CountResult<S> result;
  result.per_label.assign(static_cast<size_t>(num_labels), S::Zero());
  result.total = S::One();
  for (int i = 0; i < n; ++i) {
    result.total = S::Mul(result.total, W::Free(dataset.num_candidates(i)));
  }

  std::vector<int> slot_of(static_cast<size_t>(n), -1);
  std::vector<int> label_size(static_cast<size_t>(num_labels), 0);
  for (int i = 0; i < n; ++i) {
    slot_of[static_cast<size_t>(i)] =
        label_size[static_cast<size_t>(dataset.label(i))]++;
  }
  std::vector<SupportTree<S>> trees;
  trees.reserve(static_cast<size_t>(num_labels));
  for (int l = 0; l < num_labels; ++l) {
    trees.emplace_back(label_size[static_cast<size_t>(l)], k);
  }
  for (int i = 0; i < n; ++i) {
    const int m = dataset.num_candidates(i);
    trees[static_cast<size_t>(dataset.label(i))].SetLeaf(
        slot_of[static_cast<size_t>(i)], W::Below(0, m), W::Above(0, m));
  }

  const std::vector<ScoredCandidate> scan =
      SortedCandidateScan(dataset, t, kernel);
  std::vector<int> alpha(static_cast<size_t>(n), 0);

  // Capped polynomial of one non-winner label: coefficients of γ_{l2} up to
  // min(cap, remaining). The boundary label b is pinned inside the top-K,
  // so its polynomial is the tuple-i-excluded product shifted by one slot
  // (γ_b = 0 is impossible).
  auto capped_poly = [&](int l2, int b, const Poly<S>& boundary_poly, int cap,
                         int remaining) {
    const int deg = std::min(cap, remaining);
    Poly<S> p(static_cast<size_t>(std::max(deg, 0)) + 1, S::Zero());
    if (l2 == b) {
      for (int g = 1; g <= deg; ++g) {
        p[static_cast<size_t>(g)] = PolyCoeff<S>(boundary_poly, g - 1);
      }
    } else {
      const Poly<S>& root = trees[static_cast<size_t>(l2)].Root();
      for (int g = 0; g <= deg; ++g) {
        p[static_cast<size_t>(g)] = PolyCoeff<S>(root, g);
      }
    }
    return p;
  };

  for (const ScoredCandidate& entry : scan) {
    const int i = entry.tuple;
    const int b = dataset.label(i);
    const int m = dataset.num_candidates(i);
    ++alpha[static_cast<size_t>(i)];
    trees[static_cast<size_t>(b)].SetLeaf(
        slot_of[static_cast<size_t>(i)],
        W::Below(alpha[static_cast<size_t>(i)], m),
        W::Above(alpha[static_cast<size_t>(i)], m));

    const Poly<S> boundary_poly =
        trees[static_cast<size_t>(b)].ProductExcept(
            slot_of[static_cast<size_t>(i)]);

    for (int l = 0; l < num_labels; ++l) {
      for (int c = 1; c <= k; ++c) {
        // Winner-label coefficient: γ_l = c.
        const typename S::Value w =
            l == b ? PolyCoeff<S>(boundary_poly, c - 1)
                   : PolyCoeff<S>(trees[static_cast<size_t>(l)].Root(), c);
        if (S::IsZero(w)) continue;
        const int remaining = k - c;
        Poly<S> conv = PolyOne<S>();
        bool dead = false;
        for (int l2 = 0; l2 < num_labels && !dead; ++l2) {
          if (l2 == l) continue;
          const int cap = l2 < l ? c - 1 : c;
          conv = PolyMul<S>(conv, capped_poly(l2, b, boundary_poly, cap,
                                              remaining),
                            remaining);
          dead = true;
          for (const auto& v : conv) {
            if (!S::IsZero(v)) {
              dead = false;
              break;
            }
          }
        }
        if (dead) continue;
        const typename S::Value support = S::Mul(
            W::Pinned(m), S::Mul(w, PolyCoeff<S>(conv, remaining)));
        if (S::IsZero(support)) continue;
        auto& slot = result.per_label[static_cast<size_t>(l)];
        slot = S::Add(slot, support);
      }
    }
  }
  return result;
}

}  // namespace cpclean

#endif  // CPCLEAN_CORE_SS_DC_MC_H_
