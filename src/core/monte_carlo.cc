#include "core/monte_carlo.h"

#include "common/logging.h"
#include "core/brute_force.h"
#include "core/similarity.h"

namespace cpclean {

namespace {

std::vector<int> SampleCounts(const IncompleteDataset& dataset,
                              const std::vector<double>& t,
                              const SimilarityKernel& kernel, int k, Rng* rng,
                              const MonteCarloOptions& options) {
  CP_CHECK(rng != nullptr);
  CP_CHECK_GE(options.samples, 1);
  CP_CHECK_GE(k, 1);
  CP_CHECK_LE(k, dataset.num_examples());
  const auto sims = SimilarityMatrix(dataset, t, kernel);
  std::vector<int> counts(static_cast<size_t>(dataset.num_labels()), 0);
  WorldChoice choice(static_cast<size_t>(dataset.num_examples()), 0);
  for (int s = 0; s < options.samples; ++s) {
    for (int i = 0; i < dataset.num_examples(); ++i) {
      choice[static_cast<size_t>(i)] = static_cast<int>(rng->NextUint64(
          static_cast<uint64_t>(dataset.num_candidates(i))));
    }
    ++counts[static_cast<size_t>(PredictWorld(dataset, sims, choice, k))];
  }
  return counts;
}

}  // namespace

std::vector<double> MonteCarloLabelProbabilities(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel, int k, Rng* rng,
    const MonteCarloOptions& options) {
  const std::vector<int> counts =
      SampleCounts(dataset, t, kernel, k, rng, options);
  std::vector<double> out;
  out.reserve(counts.size());
  for (int c : counts) {
    out.push_back(static_cast<double>(c) /
                  static_cast<double>(options.samples));
  }
  return out;
}

std::vector<bool> MonteCarloObservedLabels(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel, int k, Rng* rng,
    const MonteCarloOptions& options) {
  const std::vector<int> counts =
      SampleCounts(dataset, t, kernel, k, rng, options);
  std::vector<bool> out;
  out.reserve(counts.size());
  for (int c : counts) out.push_back(c > 0);
  return out;
}

}  // namespace cpclean
