#include "core/probabilistic.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/brute_force.h"
#include "core/similarity.h"
#include "core/support_tree.h"
#include "core/tally_enum.h"
#include "incomplete/possible_worlds.h"
#include "knn/vote.h"

namespace cpclean {

namespace {

Status ValidatePriors(const IncompleteDataset& dataset,
                      const std::vector<std::vector<double>>& priors) {
  if (static_cast<int>(priors.size()) != dataset.num_examples()) {
    return Status::InvalidArgument("priors row count mismatch");
  }
  for (int i = 0; i < dataset.num_examples(); ++i) {
    const auto& row = priors[static_cast<size_t>(i)];
    if (static_cast<int>(row.size()) != dataset.num_candidates(i)) {
      return Status::InvalidArgument(
          StrFormat("priors row %d size mismatch", i));
    }
    double total = 0.0;
    for (double p : row) {
      if (p < 0.0) {
        return Status::InvalidArgument("negative prior probability");
      }
      total += p;
    }
    if (std::abs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument(
          StrFormat("priors row %d sums to %f, expected 1", i, total));
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<std::vector<double>> UniformPriors(
    const IncompleteDataset& dataset) {
  std::vector<std::vector<double>> priors(
      static_cast<size_t>(dataset.num_examples()));
  for (int i = 0; i < dataset.num_examples(); ++i) {
    const int m = dataset.num_candidates(i);
    priors[static_cast<size_t>(i)].assign(static_cast<size_t>(m),
                                          1.0 / static_cast<double>(m));
  }
  return priors;
}

Result<std::vector<double>> WeightedLabelProbabilities(
    const IncompleteDataset& dataset,
    const std::vector<std::vector<double>>& priors,
    const std::vector<double>& t, const SimilarityKernel& kernel, int k) {
  CP_RETURN_NOT_OK(ValidatePriors(dataset, priors));
  const int n = dataset.num_examples();
  const int num_labels = dataset.num_labels();
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k out of range");
  }

  using S = DoubleSemiring;
  // Per-label trees; leaf weight of tuple i = (P(below), P(above)) where
  // "below" is the prior mass of candidates scanned so far.
  std::vector<int> slot_of(static_cast<size_t>(n), -1);
  std::vector<int> label_size(static_cast<size_t>(num_labels), 0);
  for (int i = 0; i < n; ++i) {
    slot_of[static_cast<size_t>(i)] =
        label_size[static_cast<size_t>(dataset.label(i))]++;
  }
  std::vector<SupportTree<S>> trees;
  trees.reserve(static_cast<size_t>(num_labels));
  for (int l = 0; l < num_labels; ++l) {
    trees.emplace_back(label_size[static_cast<size_t>(l)], k);
  }
  for (int i = 0; i < n; ++i) {
    trees[static_cast<size_t>(dataset.label(i))].SetLeaf(
        slot_of[static_cast<size_t>(i)], 0.0, 1.0);
  }

  std::vector<double> result(static_cast<size_t>(num_labels), 0.0);
  std::vector<double> below_mass(static_cast<size_t>(n), 0.0);
  const std::vector<ScoredCandidate> scan =
      SortedCandidateScan(dataset, t, kernel);

  for (const ScoredCandidate& entry : scan) {
    const int i = entry.tuple;
    const int b = dataset.label(i);
    const double prior =
        priors[static_cast<size_t>(i)][static_cast<size_t>(entry.candidate)];
    below_mass[static_cast<size_t>(i)] += prior;
    trees[static_cast<size_t>(b)].SetLeaf(
        slot_of[static_cast<size_t>(i)], below_mass[static_cast<size_t>(i)],
        1.0 - below_mass[static_cast<size_t>(i)]);

    const Poly<S> boundary =
        trees[static_cast<size_t>(b)].ProductExcept(
            slot_of[static_cast<size_t>(i)]);
    EnumerateTallies(num_labels, k, [&](const std::vector<int>& gamma) {
      if (gamma[static_cast<size_t>(b)] < 1) return;
      double support =
          prior * PolyCoeff<S>(boundary, gamma[static_cast<size_t>(b)] - 1);
      if (support == 0.0) return;
      for (int l = 0; l < num_labels; ++l) {
        if (l == b) continue;
        support *= PolyCoeff<S>(trees[static_cast<size_t>(l)].Root(),
                                gamma[static_cast<size_t>(l)]);
      }
      result[static_cast<size_t>(ArgMaxLabel(gamma))] += support;
    });
  }
  return result;
}

Result<std::vector<double>> WeightedLabelProbabilitiesBruteForce(
    const IncompleteDataset& dataset,
    const std::vector<std::vector<double>>& priors,
    const std::vector<double>& t, const SimilarityKernel& kernel, int k) {
  CP_RETURN_NOT_OK(ValidatePriors(dataset, priors));
  if (k < 1 || k > dataset.num_examples()) {
    return Status::InvalidArgument("k out of range");
  }
  const auto sims = SimilarityMatrix(dataset, t, kernel);
  std::vector<double> result(static_cast<size_t>(dataset.num_labels()), 0.0);
  for (PossibleWorldIterator it(&dataset); it.Valid(); it.Next()) {
    double weight = 1.0;
    for (int i = 0; i < dataset.num_examples(); ++i) {
      weight *= priors[static_cast<size_t>(i)]
                      [static_cast<size_t>(it.choice()[static_cast<size_t>(i)])];
    }
    result[static_cast<size_t>(PredictWorld(dataset, sims, it.choice(), k))] +=
        weight;
  }
  return result;
}

}  // namespace cpclean
