#ifndef CPCLEAN_CORE_SIMILARITY_H_
#define CPCLEAN_CORE_SIMILARITY_H_

#include <vector>

#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"
#include "knn/ordering.h"

namespace cpclean {

/// Scores every active candidate of `dataset` against `t` into `out`, in
/// example-major order (all candidates of example 0, then example 1, ...).
/// `out` must hold `dataset.total_candidates()` doubles. Runs on the
/// dataset's flat storage and cached squared norms: a single batched kernel
/// call when the slab is compact, one per example otherwise — never one
/// per candidate. Returns the number of scores written.
int SimilarityScores(const IncompleteDataset& dataset,
                     const std::vector<double>& t,
                     const SimilarityKernel& kernel, double* out);

/// Similarity matrix s[i][j] = κ(x_{i,j}, t) between every candidate of the
/// incomplete dataset and the test point (paper §3.1.1, "similarity
/// candidates").
std::vector<std::vector<double>> SimilarityMatrix(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel);

/// All candidates scored against `t` and sorted ascending under the shared
/// deterministic total order — the scan order of the SS algorithms.
std::vector<ScoredCandidate> SortedCandidateScan(
    const IncompleteDataset& dataset, const std::vector<double>& t,
    const SimilarityKernel& kernel);

/// Sorts an existing similarity matrix into scan order (used when the
/// caller already paid for the kernel evaluations).
std::vector<ScoredCandidate> SortScan(
    const std::vector<std::vector<double>>& sims);

}  // namespace cpclean

#endif  // CPCLEAN_CORE_SIMILARITY_H_
