#ifndef CPCLEAN_SERVE_REQUEST_PARAMS_H_
#define CPCLEAN_SERVE_REQUEST_PARAMS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/json.h"

namespace cpclean {

// Typed accessors for protocol request parameters, shared by the request
// router (`server.cc`) and the session store's spec rehydration. Missing
// optional fields fall back to the default; present fields of the wrong
// JSON type are an InvalidArgument, not a silent coercion.

/// Required string field.
Result<std::string> RequestString(const JsonValue& req, const char* key);

/// Optional string field.
Result<std::string> RequestStringOr(const JsonValue& req, const char* key,
                                    const std::string& fallback);

/// Optional integer field. A fractional value, or one outside the
/// double-exact integer range, is a structured error — never a silent
/// truncation or an undefined float→int conversion.
Result<int64_t> RequestIntOr(const JsonValue& req, const char* key,
                             int64_t fallback);

/// `RequestIntOr` narrowed to int, rejecting out-of-range values.
Result<int> RequestIntParam(const JsonValue& req, const char* key,
                            int fallback);

/// Optional double field.
Result<double> RequestDoubleOr(const JsonValue& req, const char* key,
                               double fallback);

/// Optional bool field.
Result<bool> RequestBoolOr(const JsonValue& req, const char* key,
                           bool fallback);

// Protocol-level accessors: one definition of each parameter's name,
// type, and default, shared by every op handler so error text uniformly
// names the offending field.

/// The required `"session"` name.
Result<std::string> RequestSessionName(const JsonValue& req);

/// `clean_step`'s optional `"steps"` count (default 1).
Result<int> RequestSteps(const JsonValue& req);

/// `clean_run`'s optional `"budget"` (default -1 = until all-certain).
Result<int> RequestBudget(const JsonValue& req);

/// The batched query points: exactly one of `"points"` (an array of
/// feature arrays, used verbatim) or `"val_indices"` (indices resolved
/// through `val_point`, the session's validation-set lookup).
Result<std::vector<std::vector<double>>> ResolveRequestPoints(
    const JsonValue& req,
    const std::function<Result<std::vector<double>>(int)>& val_point);

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_REQUEST_PARAMS_H_
