#ifndef CPCLEAN_SERVE_OP_REGISTRY_H_
#define CPCLEAN_SERVE_OP_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "serve/json.h"

namespace cpclean {

class MetricCounter;
class Server;

/// Defined in op_registry.cc; `Server` befriends it so every protocol
/// handler routes through the registry rather than ad-hoc dispatch code.
struct OpHandlers;

/// Concurrency classification of a protocol op. The registry row is the
/// one source of truth for routing, lock discipline documentation,
/// capability reporting (`list_sessions`, evicted-session `stats`), the
/// transport's coalescing decision, per-op metrics labels, and the README
/// op table.
enum class OpClass {
  /// Session shared lock: version-stamped, result-cached; N readers on one
  /// session run concurrently.
  kRead,
  /// Session exclusive lock: bumps the dataset mutation version, retiring
  /// cached answers and engine bindings.
  kWrite,
  /// Server-wide lifecycle mutex: create/drop/save/load publication and
  /// eviction (expensive work runs outside the lock).
  kLifecycle,
  /// No session state touched: registry/store/process-global reads only.
  kStateless,
};

/// Lowercase name ("read", "write", "lifecycle", "stateless") — the key
/// under which `OpCapabilities()` groups ops.
const char* OpClassName(OpClass c);

/// One protocol op. `params` and `result` are GitHub-markdown table cells
/// (pipes escaped) — the README "Serving" table is generated from them and
/// a test holds the README copy byte-identical to `OpTableMarkdown()`.
struct OpInfo {
  const char* name;
  OpClass classification;
  /// Routes through a named session (the `session` param is required).
  bool needs_session;
  /// Identical requests queued at the same instant may be merged into one
  /// evaluation by the TCP transport (today: `q2` only).
  bool coalescable;
  const char* params;
  const char* result;
  Result<JsonValue> (*handler)(Server& server, const JsonValue& req);
};

/// The full op table, in protocol-documentation order.
const std::vector<OpInfo>& OpRegistry();

/// The registry row for `name`, or nullptr for an unknown op.
const OpInfo* FindOp(const std::string& name);

/// Comma-separated op names in registry order (unknown-op error text).
std::string SupportedOpsList();

/// The process-wide `serve.op.<name>_total` request counter for a registry
/// row (all rows are registered eagerly so `metrics` reports zeros for
/// ops never dispatched).
MetricCounter& OpRequestCounter(const OpInfo& op);

/// Ops grouped by classification — the `capabilities` object reported by
/// `list_sessions` and by `stats` on an evicted session.
JsonValue OpCapabilities();

/// The README "Serving" op table (GitHub markdown, trailing newline),
/// generated from the registry so the docs cannot drift from the code.
std::string OpTableMarkdown();

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_OP_REGISTRY_H_
