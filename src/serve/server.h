#ifndef CPCLEAN_SERVE_SERVER_H_
#define CPCLEAN_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/json.h"
#include "serve/session_registry.h"

namespace cpclean {

struct ServerOptions {
  /// Result-cache capacity given to sessions that do not specify their own.
  size_t default_cache_capacity = 1024;
};

/// The CP-query serving layer's request router and transports.
///
/// Protocol: line-delimited JSON, one request object in, one response
/// object out. Requests carry an `op`, an optional `id` (echoed back), an
/// `session` for per-session operations, and op parameters inline:
///
///   {"id":1,"op":"create_session","session":"a","source":"paper",
///    "dataset":"Supreme","train_rows":120,"k":3}
///   {"id":2,"op":"certify","session":"a","val_indices":[0,1,2]}
///   {"id":3,"op":"clean_step","session":"a","steps":2}
///
/// Responses are `{"id":...,"ok":true,"result":{...}}` on success and
/// `{"id":...,"ok":false,"error":{"code":"Not found","message":"..."}}` on
/// failure, where `code` is `StatusCodeToString` of the library Status
/// ("Invalid argument", "Not found", "Out of range", "Parse error",
/// "Already exists", ...) — every malformed input (bad JSON, unknown op,
/// missing session, malformed CSV) yields a structured error response,
/// never a process abort. Blank lines and `#` comment lines are ignored,
/// so scripted query files can be annotated.
///
/// Ops: create_session, list_sessions, drop_session, certify, q2, predict,
/// clean_step, clean_run, stats, ping, shutdown. See README "Serving".
///
/// Transports: `RunStdio` (requests on stdin, responses on stdout) and
/// `ServeTcp` (loopback listener, one thread per connection running the
/// same line protocol). Requests on different sessions execute
/// concurrently and share the process-global thread pool; requests on one
/// session serialize on its mutex.
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Routes one request line to one response line (no trailing newline).
  /// Returns an empty string for blank/comment lines (no response).
  std::string HandleLine(const std::string& line);

  /// Parsed-request entry point (the testing seam under HandleLine).
  JsonValue HandleRequest(const JsonValue& request);

  /// Reads requests from `in` until EOF or a `shutdown` op; writes one
  /// response line per request to `out`, flushing after each.
  void RunStdio(std::istream& in, std::ostream& out);

  /// Listens on 127.0.0.1:`port` (0 = ephemeral; see `port()`) and blocks
  /// until `Stop()`/`RequestStop()` or a `shutdown` request. One detached
  /// thread per connection, reaped through a live-connection count; the
  /// call returns only after every connection has drained.
  Status ServeTcp(int port);

  /// The bound TCP port once `ServeTcp` is listening; -1 before, -2 once
  /// the listener has failed or terminated.
  int port() const { return bound_port_.load(); }

  /// Graceful wind-down: marks the server stopping and unblocks the
  /// listener. Connection threads finish sending the responses for lines
  /// they have already read, then close. Async-signal-safe (atomics and a
  /// `shutdown(2)` call only), so it may run from a signal handler.
  void RequestStop();

  /// `RequestStop` plus an immediate kick of every open connection
  /// (in-flight recv calls return right away). Not signal-safe.
  void Stop();

  bool stopping() const { return stopping_.load(); }

  SessionRegistry& registry() { return registry_; }

 private:
  Result<JsonValue> Dispatch(const std::string& op, const JsonValue& req);
  Result<JsonValue> CreateSession(const JsonValue& req);
  Result<JsonValue> BatchQuery(const std::string& op, const JsonValue& req);
  Result<JsonValue> CleanOp(const std::string& op, const JsonValue& req);
  Result<JsonValue> Stats(const JsonValue& req);
  Result<CleaningTask> BuildTask(const JsonValue& req);

  void HandleConnection(int fd);

  ServerOptions options_;
  SessionRegistry registry_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> bound_port_{-1};
  std::atomic<int> listen_fd_{-1};

  // Open connections: fds for the shutdown kick, a count + cv so ServeTcp
  // and the destructor can wait for the detached handler threads to drain
  // (threads reap themselves — no per-connection join handle accumulates).
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::vector<int> conn_fds_;
  int active_connections_ = 0;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_SERVER_H_
