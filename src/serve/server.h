#ifndef CPCLEAN_SERVE_SERVER_H_
#define CPCLEAN_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/json.h"
#include "serve/session_registry.h"
#include "serve/session_store.h"

namespace cpclean {

class EventLoop;
struct OpHandlers;

struct ServerOptions {
  /// Result-cache capacity given to sessions that do not specify their own.
  size_t default_cache_capacity = 1024;
  /// Directory for session snapshots (`save_session`, eviction, lazy
  /// rehydration). Empty disables persistence.
  std::string data_dir;
  /// Max resident sessions; beyond it the least-recently-used session is
  /// saved to `data_dir` and dropped from RAM. 0 = unlimited.
  size_t max_sessions = 0;
  /// Working-dataset candidate storage for every session: "ram" keeps the
  /// flat candidate slab in anonymous memory; "mmap" backs it with an
  /// unlinked scratch file (under `data_dir`, or the system temp dir when
  /// persistence is disabled) so the kernel pages cold candidate blocks
  /// out under memory pressure. Bit-identical query results either way.
  std::string storage_mode = "ram";
  /// Compaction threshold for per-session cleaning logs: a save is an
  /// O(delta) fsync'd append to `<name>.cplog` until the log would exceed
  /// this many bytes, at which point the save writes a fresh full base
  /// snapshot and drops the log.
  size_t log_compact_bytes = size_t{1} << 20;
  /// Max concurrent TCP connections; further accepts receive a structured
  /// Unavailable error and are closed. This guards the fd table only —
  /// idle connections are nearly free under the event loop, so the limit
  /// can sit orders of magnitude above `max_inflight`. 0 = unlimited.
  int max_connections = 0;
  /// Event-loop threads holding the connections (listener + framing +
  /// response flushing). One poller multiplexes thousands of mostly idle
  /// connections; add pollers only for framing/flush throughput.
  int poller_threads = 1;
  /// Threads executing dispatched requests. 0 = hardware concurrency.
  int request_workers = 0;
  /// Request-level admission: dispatched-but-unanswered requests beyond
  /// this bound answer Unavailable immediately instead of queueing. This —
  /// not `max_connections` — is what bounds work in flight. 0 = unlimited.
  int max_inflight = 0;
  /// Merge identical `q2` requests waiting at the same instant into one
  /// engine evaluation fanned back to every waiter with its own id.
  bool coalesce_q2 = true;
  /// Per-request deadline on the TCP transport: a request unanswered this
  /// long after dispatch returns DeadlineExceeded (with its id) and the
  /// worker's late result is discarded whole. The connection survives.
  /// 0 = no deadline.
  int request_timeout_ms = 0;
  /// TCP connections idle (no bytes either way, nothing pending) this long
  /// are closed. 0 = never.
  int idle_timeout_ms = 0;
  /// Largest accepted request line on the TCP transport; longer ones get a
  /// structured InvalidArgument and the connection closes. 0 = unlimited.
  size_t max_request_bytes = 1 << 20;
  /// Slow-client backpressure (TCP): pause reading a connection once this
  /// many response bytes are queued on it (soft), close it at
  /// `max_output_bytes` (hard). 0 disables either bound.
  size_t output_hwm_bytes = 4 << 20;
  size_t max_output_bytes = 32 << 20;
  /// Loopback HTTP `GET /metrics` listener (Prometheus text exposition) on
  /// this port, served by the same event loop as the main transport
  /// (0 = ephemeral, see `metrics_port()`; -1 disables). TCP only.
  int metrics_port = -1;
  /// TCP requests whose span total exceeds this emit one structured JSON
  /// log line with the full phase breakdown. 0 = disabled.
  int slow_request_ms = 0;
  /// Sink for slow-request log lines (tests capture them here); empty
  /// means stderr.
  std::function<void(const std::string&)> slow_log;
};

/// The CP-query serving layer's request router and transports.
///
/// Protocol: line-delimited JSON, one request object in, one response
/// object out. Requests carry an `op`, an optional `id` (echoed back), an
/// `session` for per-session operations, and op parameters inline:
///
///   {"id":1,"op":"create_session","session":"a","source":"paper",
///    "dataset":"Supreme","train_rows":120,"k":3}
///   {"id":2,"op":"certify","session":"a","val_indices":[0,1,2]}
///   {"id":3,"op":"clean_step","session":"a","steps":2}
///
/// Responses are `{"id":...,"ok":true,"result":{...}}` on success and
/// `{"id":...,"ok":false,"error":{"code":"Not found","message":"..."}}` on
/// failure, where `code` is `StatusCodeToString` of the library Status
/// ("Invalid argument", "Not found", "Out of range", "Parse error",
/// "Already exists", "Unavailable", ...) — every malformed input (bad
/// JSON, unknown op, missing session, malformed CSV) yields a structured
/// error response, never a process abort. Blank lines and `#` comment
/// lines are ignored, so scripted query files can be annotated.
///
/// Ops are rows in the declarative registry (`serve/op_registry.h`):
/// create_session, list_sessions, drop_session, certify, q2, predict,
/// explain, why_certified, clean_step, clean_run, save_session,
/// load_session, stats, metrics, fault_inject, ping, shutdown. The
/// registry row carries each op's classification, coalescability, and
/// handler — routing, lock choice, metrics labels, the capability info
/// served by `list_sessions`, and the README op table are all derived
/// from it. See README "Serving".
///
/// Concurrency: per-session ops are classified read (q2, predict,
/// certify, explain, why_certified, stats — and save_session's snapshot
/// serialization) vs write (clean_step, clean_run); reads on one session
/// run concurrently on its shared lock, writes serialize. Lifecycle transitions (create/publish,
/// drop, the snapshot file write of save, load/rehydration publication,
/// eviction) additionally serialize on a server-wide lifecycle mutex —
/// expensive work (task builds, snapshot loads/serialization) happens
/// outside it. Different sessions always proceed concurrently and share
/// the process-global thread pool.
///
/// Lifecycle: with a `data_dir`, sessions move live → evicted (LRU past
/// `max_sessions`, saved to disk) → rehydrated (lazily, on the next
/// request naming them, or explicitly via `load_session`). The eviction
/// sweep retires its victim (draining in-flight writers) before the
/// registry drop: a write acknowledged during the snapshot serialization
/// triggers a dirty re-save, and a write arriving on the detached
/// instance afterwards answers Unavailable("evicted; retry") — the retry
/// lands on the rehydrated incarnation, so acknowledged writes survive
/// eviction in every interleaving.
///
/// Transports: `RunStdio` (requests on stdin, responses on stdout) and
/// `ServeTcp` (loopback listener on an epoll event loop: `poller_threads`
/// event-loop threads hold the connections and frame lines, a bounded pool
/// of `request_workers` threads executes requests, and per-connection
/// ordered response slots keep every connection's responses in request
/// order and byte-identical to a blocking transport. Admission is
/// two-level: `max_connections` guards the fd table at accept time,
/// `max_inflight` bounds dispatched-but-unanswered requests).
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Routes one request line to one response line (no trailing newline).
  /// Returns an empty string for blank/comment lines (no response).
  std::string HandleLine(const std::string& line);

  /// Parsed-request entry point (the testing seam under HandleLine).
  JsonValue HandleRequest(const JsonValue& request);

  /// Reads requests from `in` until EOF or a `shutdown` op; writes one
  /// response line per request to `out`, flushing after each.
  void RunStdio(std::istream& in, std::ostream& out);

  /// Listens on 127.0.0.1:`port` (0 = ephemeral; see `port()`) and blocks
  /// until `Stop()`/`RequestStop()` or a `shutdown` request, running the
  /// epoll event loop (the caller becomes poller 0). The call returns only
  /// after every connection has drained (graceful) or been dropped
  /// (`Stop`).
  Status ServeTcp(int port);

  /// The bound TCP port once `ServeTcp` is listening; -1 before, -2 once
  /// the listener has failed or terminated.
  int port() const { return bound_port_.load(); }

  /// The bound `/metrics` HTTP port once `ServeTcp` is listening with
  /// `metrics_port >= 0`; -1 otherwise.
  int metrics_port() const { return bound_metrics_port_.load(); }

  /// Graceful wind-down: marks the server stopping and unblocks the
  /// listener. Lines already framed still receive their responses, then
  /// connections close. Async-signal-safe (atomics and a `shutdown(2)`
  /// call only), so it may run from a signal handler.
  void RequestStop();

  /// `RequestStop` plus an immediate drop of every open connection
  /// (pending responses are abandoned). Not signal-safe.
  void Stop();

  bool stopping() const { return stopping_.load(); }

  SessionRegistry& registry() { return registry_; }
  SessionStore& store() { return store_; }

  /// Live transport gauges and counters, updated by the event loop and
  /// reported by the global `stats` op.
  struct TransportCounters {
    std::atomic<int> active_connections{0};
    std::atomic<int> inflight_requests{0};
    std::atomic<uint64_t> rejected_connections{0};
    std::atomic<uint64_t> rejected_requests{0};
    std::atomic<uint64_t> coalesced_requests{0};
    std::atomic<uint64_t> deadline_expired{0};
    std::atomic<uint64_t> idle_reaped{0};
    std::atomic<uint64_t> oversized_requests{0};
    std::atomic<uint64_t> output_overflow_closed{0};
  };
  TransportCounters& transport_counters() { return transport_counters_; }

 private:
  /// The registry's handlers (op_registry.cc) are the only external code
  /// allowed at the private op implementations below.
  friend struct OpHandlers;

  Result<JsonValue> Dispatch(const std::string& op, const JsonValue& req);
  Result<JsonValue> CreateSession(const JsonValue& req);
  Result<JsonValue> ListSessions(const JsonValue& req);
  /// Resolves the session and the `points`/`val_indices` selector, then
  /// applies `one` (the op-specific per-point query) to each point.
  Result<JsonValue> BatchQuery(
      const JsonValue& req,
      const std::function<Result<JsonValue>(
          ServeSession&, const std::vector<double>&)>& one);
  Result<JsonValue> DropSession(const JsonValue& req);
  Result<JsonValue> SaveSession(const JsonValue& req);
  Result<JsonValue> LoadSession(const JsonValue& req);
  Result<JsonValue> Stats(const JsonValue& req);
  /// The telemetry snapshot: counters/gauges/histogram quantiles from the
  /// process-wide registry, recent request spans, fault-site fires.
  Result<JsonValue> Metrics(const JsonValue& req);
  /// Test-only fault-rule installer (see common/fault_injection.h);
  /// refused unless CPCLEAN_FAULTS is in the environment or a test armed
  /// the op in-process.
  Result<JsonValue> FaultInject(const JsonValue& req);

  /// Registry lookup with lazy rehydration: a session evicted (or saved by
  /// a previous server process over the same data dir) is loaded from its
  /// snapshot on the next request that names it.
  Result<std::shared_ptr<ServeSession>> FindSession(const std::string& name);

  ServerOptions options_;
  SessionRegistry registry_;
  SessionStore store_;
  /// Serializes session lifecycle *transitions* — create/insert+evict,
  /// drop (snapshot delete + registry drop), explicit save, rehydration —
  /// so no interleaving can, e.g., re-write a snapshot a concurrent drop
  /// just deleted or delete the one an eviction just wrote. Per-session
  /// query/cleaning ops never take it (they run under the session's own
  /// shared_mutex), and neither does the live-session fast path of
  /// FindSession, so the data plane is unaffected.
  std::mutex lifecycle_mu_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> bound_port_{-1};
  std::atomic<int> bound_metrics_port_{-1};
  std::atomic<int> listen_fd_{-1};
  TransportCounters transport_counters_;
  /// Construction time, for the `stats` op's uptime_ms.
  const uint64_t start_ns_;

  // The running event loop (while ServeTcp is live): `Stop` hard-stops it
  // through this pointer, and the destructor waits for ServeTcp to sign
  // off before the Server goes away under it.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  EventLoop* loop_ = nullptr;
  bool serving_ = false;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_SERVER_H_
