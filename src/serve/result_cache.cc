#include "serve/result_cache.h"

#include <cstring>

#include "common/metrics.h"
#include "common/string_util.h"

namespace cpclean {

std::optional<JsonValue> ResultCache::Lookup(const std::string& key,
                                             uint64_t version) {
  // Process-wide rollups across every cache instance; the per-instance
  // atomics below feed the `stats` op as before.
  static MetricCounter& hit_count =
      MetricsRegistry::Get().GetCounter("serve.cache_hits_total");
  static MetricCounter& miss_count =
      MetricsRegistry::Get().GetCounter("serve.cache_misses_total");
  static MetricCounter& invalidation_count =
      MetricsRegistry::Get().GetCounter("serve.cache_invalidations_total");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_count.Add(1);
    return std::nullopt;
  }
  if (it->second->second.version != version) {
    // Computed against a superseded candidate space: drop it.
    lru_.erase(it->second);
    map_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    invalidation_count.Add(1);
    miss_count.Add(1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_count.Add(1);
  // Copy under the lock: the JsonValue must not be read while another
  // reader's insert or splice touches the list node.
  return it->second->second.value;
}

void ResultCache::Insert(const std::string& key, uint64_t version,
                         JsonValue value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = Entry{version, std::move(value)};
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, Entry{version, std::move(value)});
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    static MetricCounter& eviction_count =
        MetricsRegistry::Get().GetCounter("serve.cache_evictions_total");
    map_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    eviction_count.Add(1);
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  return out;
}

uint64_t HashPointBytes(const std::vector<double>& point) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const double x : point) {
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

std::string QueryCacheKey(const char* op, const std::string& kernel_name,
                          int k, int max_cleaned,
                          const std::vector<double>& point) {
  return StrFormat("%s|%s|%d|%d|%016llx", op, kernel_name.c_str(), k,
                   max_cleaned,
                   static_cast<unsigned long long>(HashPointBytes(point)));
}

}  // namespace cpclean
