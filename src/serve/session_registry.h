#ifndef CPCLEAN_SERVE_SESSION_REGISTRY_H_
#define CPCLEAN_SERVE_SESSION_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cleaning/cleaning_task.h"
#include "cleaning/cp_clean.h"
#include "common/result.h"
#include "core/fast_q2.h"
#include "knn/kernel.h"
#include "serve/json.h"
#include "serve/result_cache.h"

namespace cpclean {

/// Per-session serving configuration.
struct ServeSessionOptions {
  int k = 3;
  KernelKind kernel = KernelKind::kNegativeEuclidean;
  double gamma = 1.0;  // RBF only
  /// 0 = the process-global shared pool (the serving default: N concurrent
  /// sessions share cores); positive = a private pool for this session.
  int num_threads = 0;
  /// Max resident entries in the per-session result cache (0 disables).
  size_t cache_capacity = 1024;
  /// FastSelectionScores streaming bound (see CpCleanOptions).
  size_t max_contrib_bytes = size_t{2} << 20;
};

/// Maps the wire kernel names ("neg_euclidean", "rbf", "linear", "cosine")
/// to KernelKind; InvalidArgument for anything else.
Result<KernelKind> KernelKindFromName(const std::string& name);

/// One named serving session: a CleaningTask (owned), its kernel, a
/// CleaningSession holding the current cleaning state, a reused FastQ2
/// engine for Q2 queries (re-bound automatically via the dataset version
/// counter), and an LRU result cache invalidated by that same counter.
///
/// Every public operation takes the session mutex, so requests against one
/// session serialize while different sessions proceed concurrently on the
/// shared global pool.
class ServeSession {
 public:
  /// Validates options, instantiates the kernel and the cleaning session.
  static Result<std::shared_ptr<ServeSession>> Make(
      std::string name, CleaningTask task, const ServeSessionOptions& options);

  const std::string& name() const { return name_; }
  const CleaningTask& task() const { return task_; }

  /// Resolves a batched request's points: either explicit feature vectors
  /// or indices into the task's validation set.
  Result<std::vector<double>> ValPoint(int index) const;

  // --- Operations (each serializes on the session mutex) -------------------

  /// Greedy per-point cleaning certificate against the *current* working
  /// dataset. Result: {certified, label, cleaned: [ids]}. Cached.
  Result<JsonValue> Certify(const std::vector<double>& point,
                            int max_cleaned);

  /// Q2 label distribution + entropy for one test point against the
  /// current working dataset: {probs: [...], entropy}. Cached; computed on
  /// the session's reused FastQ2 engine.
  Result<JsonValue> Q2(const std::vector<double>& point);

  /// Q1 checking query: {certain, label} (label -1 when worlds disagree).
  /// Cached.
  Result<JsonValue> Predict(const std::vector<double>& point);

  /// Advances up to `steps` greedy CPClean steps. Result: {cleaned: [ids],
  /// frac_val_certain, dirty_remaining, version}. Mutates the dataset, so
  /// the version bump retires every cached query answer.
  Result<JsonValue> CleanStep(int steps);

  /// Runs greedy cleaning until every validation point is CP'ed or the
  /// budget (-1 = unbounded) is exhausted.
  Result<JsonValue> CleanRun(int budget);

  /// Session snapshot: sizes, cleaning progress, cache counters.
  JsonValue Stats();

 private:
  ServeSession(std::string name, CleaningTask task,
               const ServeSessionOptions& options);

  /// Cache-through helper: returns the cached value for `key` or computes,
  /// inserts, and returns it. `compute` runs with the lock held.
  template <typename Fn>
  Result<JsonValue> Cached(const std::string& key, Fn compute);

  const std::string name_;
  CleaningTask task_;
  ServeSessionOptions options_;
  std::unique_ptr<SimilarityKernel> kernel_;
  std::unique_ptr<CleaningSession> cleaner_;
  std::unique_ptr<FastQ2> q2_engine_;  // lazy; reused across requests
  ResultCache cache_;
  uint64_t requests_ = 0;
  std::mutex mu_;
};

/// The server's directory of live sessions. Thread-safe; sessions are
/// handed out as shared_ptr so an in-flight request survives a concurrent
/// drop.
class SessionRegistry {
 public:
  /// Registers a new session; AlreadyExists if the name is taken.
  Result<std::shared_ptr<ServeSession>> Create(
      std::string name, CleaningTask task, const ServeSessionOptions& options);

  /// NotFound when no such session.
  Result<std::shared_ptr<ServeSession>> Get(const std::string& name) const;

  Status Drop(const std::string& name);

  /// Session names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::shared_ptr<ServeSession>>>
      sessions_;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_SESSION_REGISTRY_H_
