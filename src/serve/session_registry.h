#ifndef CPCLEAN_SERVE_SESSION_REGISTRY_H_
#define CPCLEAN_SERVE_SESSION_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cleaning/cleaning_task.h"
#include "cleaning/cp_clean.h"
#include "common/result.h"
#include "knn/kernel.h"
#include "serve/engine_pool.h"
#include "serve/json.h"
#include "serve/result_cache.h"

namespace cpclean {

/// Per-session serving configuration.
struct ServeSessionOptions {
  int k = 3;
  KernelKind kernel = KernelKind::kNegativeEuclidean;
  double gamma = 1.0;  // RBF only
  /// 0 = the process-global shared pool (the serving default: N concurrent
  /// sessions share cores); positive = a private pool for this session.
  int num_threads = 0;
  /// Max resident entries in the per-session result cache (0 disables).
  size_t cache_capacity = 1024;
  /// FastSelectionScores streaming bound (see CpCleanOptions).
  size_t max_contrib_bytes = size_t{2} << 20;
  /// Non-empty: back the session's working candidate slab with an unlinked
  /// mmap scratch file under this directory (the server's `--storage-mode`
  /// resolution; not a per-request knob, so not parsed from specs).
  std::string mmap_scratch_dir;
  /// Streaming window for file-backed candidate scans.
  size_t stream_window_bytes = size_t{1} << 20;
};

/// Maps the wire kernel names ("neg_euclidean", "rbf", "linear", "cosine")
/// to KernelKind; InvalidArgument for anything else.
Result<KernelKind> KernelKindFromName(const std::string& name);

/// Resolves a session's options from a `create_session` request (or a
/// persisted spec — the same resolution runs on rehydration, so a restored
/// session always carries the options it was created with).
Result<ServeSessionOptions> ServeSessionOptionsFromRequest(
    const JsonValue& req, size_t default_cache_capacity);

/// Order-sensitive FNV fingerprint over everything in a CleaningTask that
/// determines served answers but is NOT covered by the snapshot's working
/// dataset: the encoded validation/test sets, their labels, and the
/// oracle's true-candidate answers. Stored in session snapshots and
/// re-checked on rehydration, so a CSV edited on disk between save and
/// load fails loudly instead of silently shifting q2/certify bits.
uint64_t TaskFingerprint(const CleaningTask& task);

/// One named serving session: a CleaningTask (owned), its kernel, a
/// CleaningSession holding the current cleaning state, a version-stamped
/// `EnginePool` of FastQ2 engines for concurrent Q2 readers, and an
/// internally-locked LRU result cache invalidated by the dataset's
/// mutation version.
///
/// Operations are classified read vs write over the working dataset and
/// synchronized by a `std::shared_mutex`:
///
///   read  (shared lock, run concurrently):  q2, predict, certify, stats,
///                                           snapshot serialization
///   write (exclusive lock, serialize):      clean_step, clean_run
///
/// CP queries are pure reads of the working incomplete dataset, so N
/// concurrent readers each check out a private engine from the pool and
/// proceed in parallel; a cleaning step waits for in-flight readers, then
/// mutates, bumps the dataset version (retiring every cached answer and
/// engine binding), and lets readers back in. Served answers stay
/// bit-identical to direct library calls at the same dataset version.
class ServeSession {
 public:
  /// Validates options, instantiates the kernel and the cleaning session,
  /// and primes the validation-certainty flags (so `stats` stays a pure
  /// read). `spec` is the parameter object that recreates the session
  /// (`create_session` request minus transport fields); the session store
  /// persists it beside the cleaning state. The store's rehydration path
  /// passes `prime_certainty = false`: `RestoreCleaning` re-establishes
  /// freshness itself, so priming here would run the (parallel, full
  /// validation sweep) Q1 pass twice per load.
  static Result<std::shared_ptr<ServeSession>> Make(
      std::string name, CleaningTask task, const ServeSessionOptions& options,
      JsonValue spec = JsonValue(), bool prime_certainty = true);

  const std::string& name() const { return name_; }
  const CleaningTask& task() const { return task_; }
  const ServeSessionOptions& options() const { return options_; }
  const JsonValue& spec() const { return spec_; }

  /// Wall-clock time (unix ms) of the last counted request — creation time
  /// until one arrives. `stats` reads but does not bump it, so monitoring
  /// never keeps an idle session resident.
  int64_t last_request_unix_ms() const {
    return last_request_ms_.load(std::memory_order_relaxed);
  }
  /// Process-wide monotone sequence of the last counted request; the
  /// eviction policy's LRU order (wall-clock ms ties under bursts).
  uint64_t last_request_seq() const {
    return last_request_seq_.load(std::memory_order_relaxed);
  }

  /// Monotone count of completed mutations (clean_step/clean_run that
  /// cleaned at least one tuple). `SerializeSnapshot` reports the count
  /// its snapshot captured; comparing the two is the eviction sweep's
  /// dirty flag — a mismatch means an acknowledged write postdates the
  /// snapshot and a re-save must run before the session may be dropped.
  uint64_t write_seq() const {
    return write_seq_.load(std::memory_order_relaxed);
  }

  /// Resolves a batched request's points: either explicit feature vectors
  /// or indices into the task's validation set.
  Result<std::vector<double>> ValPoint(int index) const;

  // --- Read operations (shared lock) ---------------------------------------

  /// Greedy per-point cleaning certificate against the *current* working
  /// dataset. Result: {certified, label, cleaned: [ids], version}. Cached.
  Result<JsonValue> Certify(const std::vector<double>& point,
                            int max_cleaned);

  /// Q2 label distribution + entropy for one test point against the
  /// current working dataset: {probs: [...], entropy, version}. Cached;
  /// computed on an engine leased from the session's pool.
  Result<JsonValue> Q2(const std::vector<double>& point);

  /// Q1 checking query: {certain, label, version} (label -1 when worlds
  /// disagree). Cached.
  Result<JsonValue> Predict(const std::vector<double>& point);

  /// Provenance query: the minimal witness set determining the point's
  /// Q1 answer on the current working dataset. Result: {certain, label,
  /// witnesses: [tuple ids], support: [tuple ids], minimal, version} —
  /// restricting the dataset to `witnesses` reproduces (certain, label)
  /// bit-for-bit, and removing any single witness flips or un-certifies
  /// it. Cached and version-stamped like every read.
  Result<JsonValue> Explain(const std::vector<double>& point);

  /// `Explain` plus the cleaning-decision audit trail: which of the
  /// session's cleaning steps touched a witness tuple, with each step's
  /// post-fix version and the validation points it newly certified.
  /// Result: {certified, label, witnesses, minimal, trail: [{step, tuple,
  /// version, newly_certain}], version}.
  Result<JsonValue> WhyCertified(const std::vector<double>& point);

  /// Session snapshot: sizes, cleaning progress, the full resolved
  /// options, last-request timestamp, cache + engine-pool counters.
  JsonValue Stats();

  /// Serializes the session as a v3 incomplete-dataset document (working
  /// dataset + version + "spec" and "cleaning" sections) for the session
  /// store. When `write_seq_out` is non-null it receives the
  /// `write_seq()` the snapshot captured — coherent with the serialized
  /// bits because writes take the exclusive lock, so no mutation can
  /// interleave. `version_out` likewise receives the working dataset's
  /// `version()` (the cleaning log's sequence anchor).
  std::string SerializeSnapshot(uint64_t* write_seq_out = nullptr,
                                uint64_t* version_out = nullptr);

  /// Everything the session mutated since a durable version — the
  /// O(delta) alternative to SerializeSnapshot.
  struct SnapshotDelta {
    /// False when the working journal cannot reconstruct the gap (the
    /// caller must fall back to a full snapshot).
    bool available = false;
    /// Mutations with seq > since_version, in order (empty = durably
    /// current already).
    std::vector<MutationRecord> records;
    /// Working dataset version after the last record.
    uint64_t version = 0;
    /// write_seq() captured coherently with the records.
    uint64_t write_seq = 0;
  };

  /// Captures the mutation delta since `since_version` (shared lock).
  SnapshotDelta SerializeDelta(uint64_t since_version);

  // --- Write operations (exclusive lock) -----------------------------------

  /// Advances up to `steps` greedy CPClean steps. Result: {cleaned: [ids],
  /// frac_val_certain, dirty_remaining, version}. Mutates the dataset, so
  /// the version bump retires every cached query answer.
  Result<JsonValue> CleanStep(int steps);

  /// Runs greedy cleaning until every validation point is CP'ed or the
  /// budget (-1 = unbounded) is exhausted.
  Result<JsonValue> CleanRun(int budget);

  /// Replays a persisted cleaning snapshot (order + stored audit prefix;
  /// per-step attribution for any uncovered suffix is recomputed) into the
  /// (freshly created) session, then verifies the rebuilt working dataset
  /// is bit-identical to `expected` (the dataset stored in the snapshot
  /// file) — a changed CSV on disk or a drifted generator fails loudly
  /// instead of serving subtly different answers.
  Status RestoreCleaning(const CleaningSnapshot& snapshot,
                         const IncompleteDataset& expected);

  // --- Eviction handshake (exclusive lock) ----------------------------------

  /// The eviction sweep's commit point, called BEFORE the registry drop
  /// (the ordering `Unretire` rollback correctness depends on — retiring
  /// after the drop would strand a failed re-save on an unreachable
  /// instance): takes the exclusive lock (draining in-flight writers),
  /// marks the session retired — every later write op answers
  /// Unavailable("evicted; retry") instead of mutating an instance about
  /// to be dropped — and, if `write_seq()` advanced past
  /// `since_write_seq` (a write was acknowledged after the sweep's
  /// snapshot was serialized), returns a fresh snapshot for the sweep to
  /// re-save. Returns nullopt when the saved snapshot is already current.
  /// Together with the dirty check this closes the save→drop window: an
  /// acknowledged write is either in the first snapshot, in the re-save,
  /// or was never acknowledged.
  std::optional<std::string> RetireAndResnapshot(uint64_t since_write_seq);

  /// The delta-aware variant of the commit point: takes the exclusive
  /// lock, marks the session retired, and returns whether `write_seq()`
  /// advanced past `since_write_seq` — i.e. whether the save the sweep
  /// prepared is stale and must be re-prepared. Unlike
  /// `RetireAndResnapshot` it serializes nothing; once retired no writer
  /// can mutate the session, so the sweep re-prepares (delta or full) at
  /// its leisure outside the exclusive lock.
  bool Retire(uint64_t since_write_seq);

  /// Rolls back `Retire`/`RetireAndResnapshot` when the re-save could not
  /// be written (the sweep re-publishes the session instead of dropping
  /// it).
  void Unretire();

 private:
  ServeSession(std::string name, CleaningTask task,
               const ServeSessionOptions& options, JsonValue spec);

  /// Stamps this request into the LRU bookkeeping.
  void Touch();

  /// Cache-through helper: returns the cached value for `key` at
  /// `version` or computes, inserts, and returns it. Runs under the
  /// caller's (shared) lock; concurrent same-key misses recompute the
  /// same bits.
  template <typename Fn>
  Result<JsonValue> Cached(const std::string& key, uint64_t version,
                           Fn compute);

  /// `SerializeSnapshot` body; the caller holds `mu_` (either mode).
  std::string SerializeSnapshotLocked(uint64_t* write_seq_out,
                                      uint64_t* version_out = nullptr);

  const std::string name_;
  CleaningTask task_;
  ServeSessionOptions options_;
  JsonValue spec_;
  std::unique_ptr<SimilarityKernel> kernel_;
  std::unique_ptr<CleaningSession> cleaner_;
  std::unique_ptr<EnginePool> engines_;
  ResultCache cache_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<int64_t> last_request_ms_{0};
  std::atomic<uint64_t> last_request_seq_{0};
  std::atomic<uint64_t> write_seq_{0};
  /// Set (under the exclusive lock) once the eviction sweep has committed
  /// to dropping this instance; write ops refuse from then on.
  bool retired_ = false;
  std::shared_mutex mu_;
};

/// The server's directory of live sessions. Thread-safe; sessions are
/// handed out as shared_ptr so an in-flight request survives a concurrent
/// drop or eviction. Lookup is hash-based (an unordered_map — the
/// directory is on every request's path); `Names()` stays sorted for
/// stable protocol responses.
class SessionRegistry {
 public:
  /// Publishes a built session (`ServeSession::Make` output — the
  /// creation and rehydration paths alike; the server holds its lifecycle
  /// mutex around publication). AlreadyExists if the name is taken.
  Status Insert(std::shared_ptr<ServeSession> session);

  /// NotFound when no such session.
  Result<std::shared_ptr<ServeSession>> Get(const std::string& name) const;

  Status Drop(const std::string& name);

  /// Session names, sorted.
  std::vector<std::string> Names() const;

  /// Every live session (unspecified order) — the eviction sweep's input.
  std::vector<std::shared_ptr<ServeSession>> All() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ServeSession>> sessions_;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_SESSION_REGISTRY_H_
