#include "serve/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "serve/op_registry.h"
#include "serve/server.h"

namespace cpclean {

namespace {

constexpr int kPollTimeoutMs = 100;  // stop-flag backstop; wakes are prompt

/// The request without its `id` member: the coalescing key (two requests
/// that differ only in id are the same work) and the base request a
/// coalesced group executes once.
JsonValue StripId(const JsonValue& request) {
  JsonValue out = JsonValue::MakeObject();
  for (const JsonValue::Member& member : request.object()) {
    if (member.first == "id") continue;
    out.Set(member.first, member.second);
  }
  return out;
}

/// A structured error line mirroring HandleRequest's rendering exactly
/// (id first when present, then proto/ok/error) so transport-level
/// rejections are indistinguishable in shape from engine-level errors.
std::string ErrorLine(const JsonValue* id, StatusCode code,
                      const std::string& message) {
  JsonValue response = JsonValue::MakeObject();
  if (id != nullptr) response.Set("id", *id);
  response.Set("proto", JsonValue(1));
  response.Set("ok", JsonValue(false));
  JsonValue error = JsonValue::MakeObject();
  error.Set("code", JsonValue(StatusCodeToString(code)));
  error.Set("message", JsonValue(message));
  response.Set("error", std::move(error));
  std::string line = response.Dump();
  line.push_back('\n');
  return line;
}

bool BlankOrComment(const std::string& line) {
  const size_t begin = line.find_first_not_of(" \t\r");
  return begin == std::string::npos || line[begin] == '#';
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a client that already reset must not SIGPIPE the
    // server out of existence.
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      break;
    }
    sent += static_cast<size_t>(w);
  }
}

}  // namespace

EventLoop::EventLoop(Server* server, int listen_fd, EventLoopOptions options)
    : server_(server), listen_fd_(listen_fd), options_(options) {
  if (options_.poller_threads < 1) options_.poller_threads = 1;
  num_workers_ = options_.request_workers > 0 ? options_.request_workers
                                              : ThreadPool::HardwareThreads();
  overload_line_ = ErrorLine(
      nullptr, StatusCode::kUnavailable,
      StrFormat("connection limit (--max-connections=%d) reached; retry "
                "when a connection frees up",
                options_.max_connections));
  fd_exhausted_line_ = ErrorLine(
      nullptr, StatusCode::kUnavailable,
      "server file descriptors exhausted; retry shortly");
}

EventLoop::~EventLoop() {
  // The epoll/wake fds close HERE, not in Run()'s teardown: Server::Stop
  // calls Wake() through its published loop pointer under conn_mu_, and
  // ServeTcp unpublishes that pointer (same mutex) after Run returns but
  // before this destructor — so no Wake can race a close and write into a
  // recycled descriptor.
  for (const std::unique_ptr<Poller>& p : pollers_) {
    if (p->epoll_fd >= 0) ::close(p->epoll_fd);
    if (p->wake_fd >= 0) ::close(p->wake_fd);
  }
}

void EventLoop::Wake() {
  for (const std::unique_ptr<Poller>& p : pollers_) {
    if (p == nullptr || p->wake_fd < 0) continue;
    const uint64_t one = 1;
    // write(2) only: callable from a signal handler. A full eventfd
    // counter (EAGAIN) already guarantees a pending wake.
    (void)!::write(p->wake_fd, &one, sizeof(one));
  }
}

void EventLoop::HardStop() {
  hard_stop_.store(true);
  Wake();
}

Status EventLoop::Run() {
  // The listener must be non-blocking: AcceptReady drains it until EAGAIN,
  // and a blocking accept4 would wedge poller 0 once the backlog empties.
  {
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  }
  // The EMFILE reserve: one fd held in escrow so accept-at-the-limit can
  // briefly free a slot, accept the surplus connection, and turn it away
  // with a structured line instead of leaving it dangling in the backlog.
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  pollers_.reserve(static_cast<size_t>(options_.poller_threads));
  for (int i = 0; i < options_.poller_threads; ++i) {
    auto p = std::make_unique<Poller>();
    p->epoll_fd = ::epoll_create1(0);
    p->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (p->epoll_fd < 0 || p->wake_fd < 0) {
      const Status status = Status::IoError(
          StrFormat("event loop setup: %s", std::strerror(errno)));
      if (p->epoll_fd >= 0) ::close(p->epoll_fd);
      if (p->wake_fd >= 0) ::close(p->wake_fd);
      // Already-built pollers stay in pollers_; the destructor closes
      // their fds after the loop is unpublished (see ~EventLoop).
      ::close(listen_fd_);
      if (options_.metrics_listen_fd >= 0) ::close(options_.metrics_listen_fd);
      return status;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = p->wake_fd;
    ::epoll_ctl(p->epoll_fd, EPOLL_CTL_ADD, p->wake_fd, &ev);
    pollers_.push_back(std::move(p));
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(pollers_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
    listener_open_.store(true);
  }
  if (options_.metrics_listen_fd >= 0) {
    // The /metrics listener shares poller 0 with the main listener; its
    // connections are one-shot HTTP GETs and never touch the work queue.
    const int flags = ::fcntl(options_.metrics_listen_fd, F_GETFL, 0);
    ::fcntl(options_.metrics_listen_fd, F_SETFL, flags | O_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = options_.metrics_listen_fd;
    ::epoll_ctl(pollers_[0]->epoll_fd, EPOLL_CTL_ADD,
                options_.metrics_listen_fd, &ev);
    metrics_listener_open_.store(true);
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    workers.emplace_back([this] { WorkerLoop(); });
  }
  std::vector<std::thread> pollers;
  pollers.reserve(static_cast<size_t>(options_.poller_threads - 1));
  for (int i = 1; i < options_.poller_threads; ++i) {
    pollers.emplace_back([this, i] { PollerLoop(i); });
  }
  PollerLoop(0);  // the caller is poller 0
  for (std::thread& t : pollers) t.join();

  // Pollers are done, so the queue can only shrink: let the workers drain
  // whatever is left (responses to already-closed connections are simply
  // discarded) and exit.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers) t.join();

  if (listener_open_.exchange(false)) ::close(listen_fd_);
  if (metrics_listener_open_.exchange(false)) {
    ::close(options_.metrics_listen_fd);
  }
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
  // Poller epoll/wake fds intentionally stay open until ~EventLoop runs,
  // after ServeTcp unpublishes the loop: a late Server::Stop may still
  // Wake() them.
  return Status::OK();
}

void EventLoop::PollerLoop(int index) {
  Poller& p = *pollers_[static_cast<size_t>(index)];
  std::vector<epoll_event> events(256);
  bool announced_stop = false;
  while (true) {
    const bool hard = hard_stop_.load();
    const bool stopping = hard || server_->stopping();
    if (stopping) {
      if (!announced_stop) {
        announced_stop = true;
        Wake();  // every poller should notice now, not at its timeout
      }
      if (index == 0 && listener_open_.exchange(false)) {
        ::epoll_ctl(p.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
      }
      if (index == 0 && metrics_listener_open_.exchange(false)) {
        ::epoll_ctl(p.epoll_fd, EPOLL_CTL_DEL, options_.metrics_listen_fd,
                    nullptr);
        ::close(options_.metrics_listen_fd);
      }
      // Graceful: stop reading (lines already framed still get answers,
      // unread socket bytes are dropped — the thread-per-connection
      // semantics). Hard: drop everything now.
      std::vector<std::shared_ptr<Connection>> snapshot;
      snapshot.reserve(p.conns.size());
      for (const auto& entry : p.conns) snapshot.push_back(entry.second);
      for (const std::shared_ptr<Connection>& conn : snapshot) {
        if (hard) {
          CloseConnection(p, conn);
          continue;
        }
        if (conn->reading) {
          conn->reading = false;
          UpdateInterest(p, *conn);
        }
        // Drain: framed lines still get dispatched and answered; closes
        // the connection once everything has flushed.
        DispatchLines(p, conn);
      }
      bool inbox_empty;
      {
        std::lock_guard<std::mutex> lock(p.mu);
        inbox_empty = p.incoming.empty() && p.completions.empty();
      }
      if (p.conns.empty() && inbox_empty) return;
    }

    const int n = ::epoll_wait(p.epoll_fd, events.data(),
                               static_cast<int>(events.size()),
                               kPollTimeoutMs);
    for (int e = 0; e < n; ++e) {
      const int fd = events[static_cast<size_t>(e)].data.fd;
      const uint32_t mask = events[static_cast<size_t>(e)].events;
      if (fd == p.wake_fd) {
        uint64_t drain = 0;
        (void)!::read(p.wake_fd, &drain, sizeof(drain));
        continue;
      }
      if (index == 0 && fd == listen_fd_ && listener_open_.load()) {
        AcceptReady(p);
        continue;
      }
      if (index == 0 && fd == options_.metrics_listen_fd &&
          metrics_listener_open_.load()) {
        AcceptMetricsReady(p);
        continue;
      }
      const auto it = p.conns.find(fd);
      if (it == p.conns.end()) continue;  // closed earlier in this batch
      const std::shared_ptr<Connection> conn = it->second;
      // EPOLLHUP/EPOLLERR arrive with no interest bits set; route them
      // through the read path (recv observes the EOF/error) while the
      // connection is reading, otherwise through the flush path (send
      // observes the reset).
      if (conn->reading &&
          (mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        ReadReady(p, conn);
      }
      if (conn->closed) continue;
      if ((mask & EPOLLOUT) != 0 ||
          (!conn->reading && (mask & (EPOLLERR | EPOLLHUP)) != 0)) {
        FlushConnection(p, conn);
      }
    }

    // Cross-thread inboxes: adopted connections (dealt by poller 0) and
    // completed responses (signed off by workers).
    std::vector<std::shared_ptr<Connection>> incoming;
    std::vector<std::shared_ptr<Connection>> completions;
    {
      std::lock_guard<std::mutex> lock(p.mu);
      incoming.swap(p.incoming);
      completions.swap(p.completions);
    }
    for (const std::shared_ptr<Connection>& conn : incoming) {
      AdoptConnection(p, conn);
    }
    for (const std::shared_ptr<Connection>& conn : completions) {
      if (conn->closed) continue;
      conn->executing = false;
      conn->exec_slot.reset();
      conn->exec_has_id = false;
      // The head response just became ready: flush it and dispatch the
      // next pending line, if any.
      DispatchLines(p, conn);
    }

    Housekeeping(p, index);
  }
}

void EventLoop::Housekeeping(Poller& p, int index) {
  const bool timers_armed =
      options_.request_timeout_ms > 0 || options_.idle_timeout_ms > 0;
  if (!timers_armed && !(index == 0 && listener_parked_)) return;
  const auto now = std::chrono::steady_clock::now();

  if (index == 0 && listener_parked_ && listener_open_.load() &&
      now >= listener_retry_at_) {
    listener_parked_ = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(p.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  if (!timers_armed) return;

  Server::TransportCounters& counters = server_->transport_counters();
  // Collect first, act second: both actions mutate p.conns (via
  // CloseConnection) and must not run mid-iteration.
  std::vector<std::shared_ptr<Connection>> expired;
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& entry : p.conns) {
    const std::shared_ptr<Connection>& conn = entry.second;
    if (options_.request_timeout_ms > 0 && conn->executing &&
        conn->exec_slot != nullptr && now >= conn->exec_deadline) {
      expired.push_back(conn);
    }
    if (options_.idle_timeout_ms > 0 && !conn->executing &&
        conn->outgoing.empty() && conn->pending_lines.empty() &&
        now - conn->last_activity >=
            std::chrono::milliseconds(options_.idle_timeout_ms)) {
      idle.push_back(conn);
    }
  }
  for (const std::shared_ptr<Connection>& conn : expired) {
    // Claim the slot out from under the worker. Winning the CAS means the
    // worker had not yet installed its result — when it finishes, it
    // discards the rendering whole. Losing means the result just landed
    // (or a previous tick already expired this slot); either way the slot
    // is someone else's to fill.
    int unclaimed = 0;
    if (!conn->exec_slot->owner.compare_exchange_strong(
            unclaimed, 2, std::memory_order_acq_rel)) {
      continue;
    }
    conn->exec_slot->text = ErrorLine(
        conn->exec_has_id ? &conn->exec_id : nullptr,
        StatusCode::kDeadlineExceeded,
        StrFormat("request exceeded --request-timeout-ms=%d; its result "
                  "was discarded",
                  options_.request_timeout_ms));
    conn->exec_slot->ready.store(true, std::memory_order_release);
    counters.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    // `executing` stays true until the worker actually finishes: the
    // next pipelined request must not run concurrently with the
    // abandoned one (per-connection serial semantics hold even across a
    // deadline).
    FlushConnection(p, conn);
  }
  for (const std::shared_ptr<Connection>& conn : idle) {
    if (conn->closed) continue;
    counters.idle_reaped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(p, conn);
  }
}

void EventLoop::ParkListener(Poller& p) {
  if (listener_parked_ || !listener_open_.load()) return;
  // Accept keeps failing even with the spare fd freed: re-arming EPOLLIN
  // would spin the poller at 100% re-reporting the same condition.
  // Unhook the listener and retry on a doubling clock; pending clients
  // wait in the kernel backlog meanwhile.
  listener_parked_ = true;
  ::epoll_ctl(p.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  accept_backoff_ms_ =
      accept_backoff_ms_ == 0 ? 10 : std::min(accept_backoff_ms_ * 2, 2000);
  listener_retry_at_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(accept_backoff_ms_);
}

void EventLoop::AcceptReady(Poller& p) {
  while (true) {
    // el.accept simulates fd-table exhaustion: the pending connection is
    // handled by the EMFILE recovery below, exactly as a real EMFILE
    // would be.
    const bool injected_emfile = FaultHit("el.accept");
    const int client =
        injected_emfile
            ? -1
            : ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (client < 0) {
      if (!injected_emfile && errno == EINTR) continue;
      if (!injected_emfile && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      }
      if (injected_emfile || errno == EMFILE || errno == ENFILE) {
        // Out of fds. Briefly cash in the reserve fd so the surplus
        // connection can be accepted and turned away with a structured
        // line — otherwise it would sit in the backlog seeing neither
        // service nor an error.
        server_->transport_counters().rejected_connections.fetch_add(
            1, std::memory_order_relaxed);
        if (spare_fd_ >= 0) {
          ::close(spare_fd_);
          spare_fd_ = -1;
        }
        const int victim =
            ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        const bool backlog_empty =
            victim < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
        if (victim >= 0) {
          SendAll(victim, fd_exhausted_line_);
          ::close(victim);
        }
        spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        if (victim >= 0) continue;  // rejected one; keep draining
        if (backlog_empty) return;
        ParkListener(p);  // even the spare didn't help: stop busy-spinning
        return;
      }
      // Listener shut down (RequestStop) or fatal accept error: wind the
      // whole transport down, as the blocking accept loop did.
      server_->RequestStop();
      return;
    }
    accept_backoff_ms_ = 0;  // forward progress resets the EMFILE backoff
    if (server_->stopping() || hard_stop_.load()) {
      ::close(client);
      continue;
    }
    Server::TransportCounters& counters = server_->transport_counters();
    if (options_.max_connections > 0 &&
        counters.active_connections.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      // Admission control bounds *connections* here only as a fd-table
      // guard; the request-level bound below is what protects the engine.
      // Overload answers loudly: the client sees why, not a hung socket.
      counters.rejected_connections.fetch_add(1, std::memory_order_relaxed);
      SendAll(client, overload_line_);
      ::close(client);
      continue;
    }
    counters.active_connections.fetch_add(1, std::memory_order_relaxed);
    static MetricCounter& accepts =
        MetricsRegistry::Get().GetCounter("serve.accepts_total");
    static MetricGauge& active =
        MetricsRegistry::Get().GetGauge("serve.active_connections");
    accepts.Add(1);
    active.Add(1);
    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    conn->last_activity = std::chrono::steady_clock::now();
    conn->poller = static_cast<int>(next_poller_.fetch_add(1) %
                                    static_cast<uint64_t>(pollers_.size()));
    if (conn->poller == 0) {
      AdoptConnection(p, conn);
    } else {
      Poller& target = *pollers_[static_cast<size_t>(conn->poller)];
      {
        std::lock_guard<std::mutex> lock(target.mu);
        target.incoming.push_back(conn);
      }
      const uint64_t one = 1;
      (void)!::write(target.wake_fd, &one, sizeof(one));
    }
  }
}

void EventLoop::AcceptMetricsReady(Poller& p) {
  while (true) {
    const int client = ::accept4(options_.metrics_listen_fd, nullptr,
                                 nullptr, SOCK_NONBLOCK);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, EMFILE, ...: try again on the next EPOLLIN
    }
    if (server_->stopping() || hard_stop_.load()) {
      ::close(client);
      continue;
    }
    // Not admission-controlled and not counted as a transport connection:
    // the scrape path must keep working while the serve side is saturated.
    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    conn->http = true;
    conn->poller = 0;
    conn->last_activity = std::chrono::steady_clock::now();
    AdoptConnection(p, conn);
  }
}

bool EventLoop::HandleHttpRequest(Poller& p,
                                  const std::shared_ptr<Connection>& conn) {
  // Wait for the complete request head; scrapers send no body.
  size_t head_end = conn->in_buffer.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    head_end = conn->in_buffer.find("\n\n");
  }
  if (head_end == std::string::npos) {
    if (conn->in_buffer.size() > 8192) CloseConnection(p, conn);
    return false;
  }
  const bool is_metrics = conn->in_buffer.rfind("GET /metrics", 0) == 0;
  conn->in_buffer.clear();
  std::string head;
  std::string body;
  if (is_metrics) {
    static MetricCounter& scrapes =
        MetricsRegistry::Get().GetCounter("serve.http_scrapes_total");
    scrapes.Add(1);
    body = MetricsPrometheusText();
    head =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  } else {
    body = "not found (try GET /metrics)\n";
    head =
        "HTTP/1.1 404 Not Found\r\n"
        "Content-Type: text/plain; charset=utf-8\r\n";
  }
  head += StrFormat("Content-Length: %llu\r\nConnection: close\r\n\r\n",
                    static_cast<unsigned long long>(body.size()));
  auto slot = std::make_shared<Response>();
  slot->owner.store(1, std::memory_order_relaxed);
  slot->text = head + body;
  slot->ready.store(true, std::memory_order_release);
  conn->outgoing.push_back(std::move(slot));
  // One-shot: stop reading; the flush path closes once the response (and
  // nothing else — http connections never execute requests) drains.
  conn->reading = false;
  UpdateInterest(p, *conn);
  return true;
}

void EventLoop::AdoptConnection(Poller& p,
                                const std::shared_ptr<Connection>& conn) {
  p.conns.emplace(conn->fd, conn);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  ::epoll_ctl(p.epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev);
}

void EventLoop::UpdateInterest(Poller& p, Connection& conn) {
  epoll_event ev{};
  ev.events = ((conn.reading && !conn.read_paused) ? EPOLLIN : 0u) |
              (conn.want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(p.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::ReadReady(Poller& p, const std::shared_ptr<Connection>& conn) {
  if (FaultHit("el.recv")) {  // injected connection reset on read
    CloseConnection(p, conn);
    return;
  }
  // Bounded rounds per tick so one flooding connection cannot starve the
  // rest of this poller; level-triggered epoll re-arms leftovers.
  char chunk[16384];
  for (int round = 0; round < 16; ++round) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->last_activity = std::chrono::steady_clock::now();
      conn->in_buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      // EOF: the peer may have half-closed and still expect the answers
      // to everything it pipelined — keep the write side until drained.
      conn->reading = false;
      UpdateInterest(p, *conn);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(p, conn);
    return;
  }
  if (conn->http) {
    if (!conn->closed) {
      HandleHttpRequest(p, conn);
      FlushConnection(p, conn);
    }
    return;
  }
  // Incremental line framing: whatever newline-terminated lines the buffer
  // now holds become pending requests; a partial tail stays buffered.
  size_t newline;
  bool oversized = false;
  while (!oversized &&
         (newline = conn->in_buffer.find('\n')) != std::string::npos) {
    if (options_.max_request_bytes > 0 &&
        newline > options_.max_request_bytes) {
      oversized = true;
      break;
    }
    conn->pending_lines.push_back(conn->in_buffer.substr(0, newline));
    conn->in_buffer.erase(0, newline + 1);
  }
  // A newline-less tail past the limit can never become a valid request;
  // without this check it would grow the in_buffer without bound.
  if (!oversized && options_.max_request_bytes > 0 &&
      conn->in_buffer.size() > options_.max_request_bytes) {
    oversized = true;
  }
  if (oversized) {
    server_->transport_counters().oversized_requests.fetch_add(
        1, std::memory_order_relaxed);
    auto slot = std::make_shared<Response>();
    slot->owner.store(1, std::memory_order_relaxed);
    slot->text = ErrorLine(
        nullptr, StatusCode::kInvalidArgument,
        StrFormat("request line exceeds --max-request-bytes=%llu; closing "
                  "connection",
                  static_cast<unsigned long long>(
                      options_.max_request_bytes)));
    slot->ready.store(true, std::memory_order_release);
    conn->outgoing.push_back(std::move(slot));
    // The stream is mid-garbage — resynchronizing on the next newline
    // would be a guess. Drop buffered input, stop reading; the connection
    // closes once the error line (and any in-flight response) flushes.
    conn->in_buffer.clear();
    conn->pending_lines.clear();
    conn->reading = false;
    UpdateInterest(p, *conn);
  }
  DispatchLines(p, conn);
}

void EventLoop::DispatchLines(Poller& p,
                              const std::shared_ptr<Connection>& conn) {
  Server::TransportCounters& counters = server_->transport_counters();
  static MetricGauge& inflight =
      MetricsRegistry::Get().GetGauge("serve.inflight");
  static MetricCounter& coalesce_hits =
      MetricsRegistry::Get().GetCounter("serve.coalesce_hits_total");
  // Serial per connection: dispatch the head line only once the previous
  // request's response slot exists — pipelined requests on one connection
  // keep blocking-transport semantics (and response order).
  while (!conn->executing && !conn->pending_lines.empty()) {
    const std::string line = std::move(conn->pending_lines.front());
    conn->pending_lines.pop_front();
    if (BlankOrComment(line)) continue;

    auto slot = std::make_shared<Response>();
    slot->span.start_ns = MonotonicNowNs();
    slot->has_span = true;
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      slot->span.SetOp("invalid");
      // Replay the raw line through HandleLine on a worker: its parse
      // error rendering is the canonical one, byte for byte.
      auto item = std::make_shared<WorkItem>();
      item->raw = true;
      item->line = line;
      item->waiters.push_back(WorkItem::Waiter{conn, slot, false, {}, {}});
      conn->outgoing.push_back(slot);
      conn->executing = true;
      conn->exec_slot = std::move(slot);
      conn->exec_has_id = false;
      if (options_.request_timeout_ms > 0) {
        conn->exec_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.request_timeout_ms);
      }
      counters.inflight_requests.fetch_add(1, std::memory_order_relaxed);
      inflight.Add(1);
      Enqueue(std::move(item));
      break;
    }
    const JsonValue* id =
        parsed.value().is_object() ? parsed.value().Find("id") : nullptr;

    // Request-level admission: in-flight requests — not connections — are
    // the bounded resource. Overflow answers immediately (with the
    // request's own id) instead of queueing unboundedly.
    if (options_.max_inflight > 0 &&
        counters.inflight_requests.load(std::memory_order_relaxed) >=
            options_.max_inflight) {
      counters.rejected_requests.fetch_add(1, std::memory_order_relaxed);
      slot->text = ErrorLine(
          id, StatusCode::kUnavailable,
          StrFormat("request limit (--max-inflight=%d) reached; retry "
                    "when in-flight requests drain",
                    options_.max_inflight));
      slot->ready.store(true, std::memory_order_release);
      conn->outgoing.push_back(std::move(slot));
      continue;
    }
    counters.inflight_requests.fetch_add(1, std::memory_order_relaxed);
    inflight.Add(1);

    const JsonValue* op =
        parsed.value().is_object() ? parsed.value().Find("op") : nullptr;
    slot->span.SetOp(op != nullptr && op->is_string()
                         ? op->string_value().c_str()
                         : "unknown");
    // Coalescability is a registry property of the op, not a transport
    // special case — today only q2 opts in.
    const OpInfo* op_info = op != nullptr && op->is_string()
                                ? FindOp(op->string_value())
                                : nullptr;
    const bool coalescable = options_.coalesce_q2 && op_info != nullptr &&
                             op_info->coalescable;
    WorkItem::Waiter waiter{conn, slot, id != nullptr,
                            id != nullptr ? *id : JsonValue(), {}};
    conn->outgoing.push_back(slot);
    conn->executing = true;
    conn->exec_slot = std::move(slot);
    conn->exec_has_id = id != nullptr;
    if (id != nullptr) conn->exec_id = *id;
    if (options_.request_timeout_ms > 0) {
      conn->exec_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.request_timeout_ms);
    }
    if (coalescable) {
      const std::string key = StripId(parsed.value()).Dump();
      bool merged = false;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        const auto it = pending_q2_.find(key);
        if (it != pending_q2_.end()) {
          it->second->waiters.push_back(std::move(waiter));
          merged = true;
        }
      }
      if (merged) {
        counters.coalesced_requests.fetch_add(1, std::memory_order_relaxed);
        coalesce_hits.Add(1);
        break;
      }
      auto item = std::make_shared<WorkItem>();
      item->request = std::move(parsed).value();
      item->coalesce_key = key;
      item->waiters.push_back(std::move(waiter));
      Enqueue(std::move(item));
      break;
    }
    auto item = std::make_shared<WorkItem>();
    item->request = std::move(parsed).value();
    item->waiters.push_back(std::move(waiter));
    Enqueue(std::move(item));
    break;
  }
  FlushConnection(p, conn);
}

void EventLoop::FlushConnection(Poller& p,
                                const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  bool blocked = false;  // hit EAGAIN: the rest waits for EPOLLOUT
  while (!conn->outgoing.empty()) {
    Response& front = *conn->outgoing.front();
    if (!front.ready.load(std::memory_order_acquire)) break;
    while (conn->out_offset < front.text.size()) {
      if (FaultHit("el.send")) {  // injected peer reset mid-response
        CloseConnection(p, conn);
        return;
      }
      if (FaultHit("el.send_eagain")) {  // injected full socket buffer
        blocked = true;
        break;
      }
      size_t len = front.text.size() - conn->out_offset;
      if (len > 1 && FaultHit("el.send_short")) len = 1;  // partial write
      const ssize_t w = ::send(conn->fd, front.text.data() + conn->out_offset,
                               len, MSG_NOSIGNAL);
      if (w > 0) {
        conn->last_activity = std::chrono::steady_clock::now();
        conn->out_offset += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        blocked = true;
        break;
      }
      CloseConnection(p, conn);  // peer reset mid-response
      return;
    }
    if (blocked) break;
    // Flush completion finalizes the span — but only when the worker won
    // the owner handshake: after a deadline reap the worker may still be
    // writing the span fields, and a reaped request's timings are moot.
    if (front.has_span && front.owner.load(std::memory_order_acquire) == 1) {
      FinalizeSpan(front.span);
    }
    conn->outgoing.pop_front();
    conn->out_offset = 0;
  }
  if (blocked) {
    // Backpressure: park the rest of this response until EPOLLOUT.
    if (!conn->want_write) {
      conn->want_write = true;
      UpdateInterest(p, *conn);
    }
  } else if (conn->want_write) {
    conn->want_write = false;
    UpdateInterest(p, *conn);
  }

  // Slow-client bounds. Only ready slots are counted (an unready slot's
  // text belongs to the worker until the owner CAS resolves — and by
  // serial execution it is always the back slot, so the sum below sees
  // every flushable byte).
  size_t queued = 0;
  for (const std::shared_ptr<Response>& slot : conn->outgoing) {
    if (!slot->ready.load(std::memory_order_acquire)) break;
    queued += slot->text.size();
  }
  queued -= std::min(queued, conn->out_offset);
  if (queued != conn->backlog_gauge) {
    static MetricGauge& backlog =
        MetricsRegistry::Get().GetGauge("serve.output_backlog_bytes");
    backlog.Add(static_cast<int64_t>(queued) -
                static_cast<int64_t>(conn->backlog_gauge));
    conn->backlog_gauge = queued;
  }
  if (options_.max_output_bytes > 0 && queued >= options_.max_output_bytes) {
    // A reader this far behind costs memory on every queued response; the
    // cap converts "unbounded buffering" into a loud disconnect.
    server_->transport_counters().output_overflow_closed.fetch_add(
        1, std::memory_order_relaxed);
    CloseConnection(p, conn);
    return;
  }
  if (options_.output_hwm_bytes > 0) {
    if (!conn->read_paused && queued >= options_.output_hwm_bytes) {
      // Soft bound: stop reading new requests until the backlog halves —
      // the client feels the stall as TCP backpressure, not a close.
      conn->read_paused = true;
      UpdateInterest(p, *conn);
    } else if (conn->read_paused && queued <= options_.output_hwm_bytes / 2) {
      conn->read_paused = false;
      UpdateInterest(p, *conn);
    }
  }
  // Nothing further can ever flow: no reads coming (EOF or stop), nothing
  // pending, nothing executing, nothing to flush.
  if (!conn->reading && conn->outgoing.empty() &&
      conn->pending_lines.empty() && !conn->executing) {
    CloseConnection(p, conn);
  }
}

void EventLoop::CloseConnection(Poller& p,
                                const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  ::epoll_ctl(p.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  p.conns.erase(conn->fd);
  if (conn->backlog_gauge > 0) {
    static MetricGauge& backlog =
        MetricsRegistry::Get().GetGauge("serve.output_backlog_bytes");
    backlog.Sub(static_cast<int64_t>(conn->backlog_gauge));
    conn->backlog_gauge = 0;
  }
  // Metrics-listener connections were never admitted as transport
  // connections, so they must not drain the transport's count either.
  if (conn->http) return;
  server_->transport_counters().active_connections.fetch_sub(
      1, std::memory_order_relaxed);
  static MetricGauge& active =
      MetricsRegistry::Get().GetGauge("serve.active_connections");
  active.Sub(1);
}

void EventLoop::Enqueue(std::shared_ptr<WorkItem> item) {
  static MetricGauge& depth =
      MetricsRegistry::Get().GetGauge("serve.queue_depth");
  depth.Add(1);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!item->coalesce_key.empty()) {
      pending_q2_.emplace(item->coalesce_key, item);
    }
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

void EventLoop::WorkerLoop() {
  while (true) {
    std::shared_ptr<WorkItem> item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // workers_stop_ and fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
      static MetricGauge& depth =
          MetricsRegistry::Get().GetGauge("serve.queue_depth");
      depth.Sub(1);
      // Started items stop accepting coalesce joiners: a request arriving
      // now may be ordered after a write this evaluation won't see.
      if (!item->coalesce_key.empty()) {
        pending_q2_.erase(item->coalesce_key);
      }
    }
    Execute(*item);
    Complete(*item);
  }
}

void EventLoop::Execute(WorkItem& item) {
  // Deadline fast path: when every waiter's slot was already claimed by
  // the reaper (a long queueing delay ate the whole budget), the answer
  // would be discarded anyway — skip the evaluation. Racing a reaper that
  // claims mid-execute is fine: the CAS in Complete discards the result.
  bool any_unclaimed = false;
  for (const WorkItem::Waiter& waiter : item.waiters) {
    if (waiter.slot->owner.load(std::memory_order_acquire) == 0) {
      any_unclaimed = true;
      break;
    }
  }
  if (!any_unclaimed) return;
  static MetricHistogram& exec_ns =
      MetricsRegistry::Get().GetHistogram("serve.exec_ns");
  // Execution detail lands on the head waiter's span; coalesced joiners
  // share the evaluation, so their spans carry dispatch/flush times only.
  // The worker owns these span fields until the owner CAS in Complete —
  // the poller reads them only after winning slots flip ready (and skips
  // deadline-reaped slots entirely).
  RequestSpan* span = item.waiters[0].slot->has_span
                          ? &item.waiters[0].slot->span
                          : nullptr;
  const uint64_t exec_start = MonotonicNowNs();
  if (span != nullptr) {
    span->phase_ns[kSpanQueueWait] = exec_start - span->start_ns;
  }
  ScopedActiveSpan active(span);
  (void)FaultHit("serve.exec");  // sleep rules stall execution here
  if (item.raw) {
    std::string text = server_->HandleLine(item.line);
    if (!text.empty()) text.push_back('\n');
    item.waiters[0].rendered = std::move(text);
    exec_ns.Record(MonotonicNowNs() - exec_start);
    return;
  }
  if (item.waiters.size() == 1) {
    const JsonValue response = server_->HandleRequest(item.request);
    std::string text;
    {
      ScopedSpanPhase phase(kSpanSerialize);
      text = response.Dump();
    }
    text.push_back('\n');
    item.waiters[0].rendered = std::move(text);
    exec_ns.Record(MonotonicNowNs() - exec_start);
    return;
  }
  // Coalesced group: evaluate once without any id, then fan the response
  // back out with each waiter's own id in the canonical first position.
  const JsonValue base = server_->HandleRequest(StripId(item.request));
  {
    ScopedSpanPhase phase(kSpanSerialize);
    for (WorkItem::Waiter& waiter : item.waiters) {
      std::string text;
      if (!waiter.has_id) {
        text = base.Dump();
      } else {
        JsonValue response = JsonValue::MakeObject();
        response.Set("id", waiter.id);
        for (const JsonValue::Member& member : base.object()) {
          response.Set(member.first, member.second);
        }
        text = response.Dump();
      }
      text.push_back('\n');
      waiter.rendered = std::move(text);
    }
  }
  exec_ns.Record(MonotonicNowNs() - exec_start);
}

void EventLoop::Complete(WorkItem& item) {
  Server::TransportCounters& counters = server_->transport_counters();
  static MetricCounter& requests =
      MetricsRegistry::Get().GetCounter("serve.requests_total");
  static MetricGauge& inflight =
      MetricsRegistry::Get().GetGauge("serve.inflight");
  counters.inflight_requests.fetch_sub(
      static_cast<int>(item.waiters.size()), std::memory_order_relaxed);
  requests.Add(item.waiters.size());
  inflight.Sub(static_cast<int64_t>(item.waiters.size()));
  for (WorkItem::Waiter& waiter : item.waiters) {
    // The owner CAS against the deadline reaper: install the rendering
    // only if the slot is still ours. A lost race means the poller
    // already answered DeadlineExceeded — the result is discarded whole,
    // never half-written over the error line.
    int unclaimed = 0;
    if (waiter.slot->owner.compare_exchange_strong(
            unclaimed, 1, std::memory_order_acq_rel)) {
      waiter.slot->text = std::move(waiter.rendered);
      if (waiter.slot->has_span) {
        waiter.slot->span.ready_ns = MonotonicNowNs();
      }
      waiter.slot->ready.store(true, std::memory_order_release);
    }
    // The completion is handed back either way: it is what releases the
    // connection's serial-execution latch.
    Poller& p = *pollers_[static_cast<size_t>(waiter.conn->poller)];
    {
      std::lock_guard<std::mutex> lock(p.mu);
      p.completions.push_back(std::move(waiter.conn));
    }
  }
  Wake();
}

void EventLoop::FinalizeSpan(RequestSpan& span) {
  static MetricHistogram& request_ns =
      MetricsRegistry::Get().GetHistogram("serve.request_ns");
  static MetricHistogram& queue_wait_ns =
      MetricsRegistry::Get().GetHistogram("serve.queue_wait_ns");
  const uint64_t now = MonotonicNowNs();
  if (span.ready_ns != 0) {
    span.phase_ns[kSpanFlush] = now - span.ready_ns;
  }
  span.total_ns = now - span.start_ns;
  request_ns.Record(span.total_ns);
  queue_wait_ns.Record(span.phase_ns[kSpanQueueWait]);
  GlobalSpanRing().Push(span);
  if (options_.slow_request_ms <= 0 ||
      span.total_ns <
          static_cast<uint64_t>(options_.slow_request_ms) * 1000000ULL) {
    return;
  }
  static MetricCounter& slow =
      MetricsRegistry::Get().GetCounter("serve.slow_requests_total");
  slow.Add(1);
  JsonValue entry = JsonValue::MakeObject();
  entry.Set("event", JsonValue("slow_request"));
  entry.Set("op", JsonValue(std::string(span.op)));
  entry.Set("threshold_ms", JsonValue(options_.slow_request_ms));
  entry.Set("total_ms",
            JsonValue(static_cast<double>(span.total_ns) / 1e6));
  JsonValue phases = JsonValue::MakeObject();
  for (int ph = 0; ph < kSpanPhaseCount; ++ph) {
    phases.Set(SpanPhaseName(ph),
               JsonValue(static_cast<double>(span.phase_ns[ph]) / 1e6));
  }
  entry.Set("phases_ms", std::move(phases));
  const std::string line = entry.Dump();
  if (options_.slow_log) {
    options_.slow_log(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace cpclean
