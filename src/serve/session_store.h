#ifndef CPCLEAN_SERVE_SESSION_STORE_H_
#define CPCLEAN_SERVE_SESSION_STORE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cleaning/cleaning_task.h"
#include "common/result.h"
#include "serve/json.h"
#include "serve/session_registry.h"

namespace cpclean {

/// Builds a CleaningTask from a `create_session` parameter object —
/// `source` = "paper" | "synthetic" (deterministic seeded generators) or
/// "csv" (inline text or file paths). The same function serves the
/// create_session op and snapshot rehydration, so a restored session's
/// task is rebuilt by exactly the code that built the original.
Result<CleaningTask> BuildTaskFromSpec(const JsonValue& spec);

struct SessionStoreOptions {
  /// Directory session snapshots are saved to / loaded from. Empty
  /// disables persistence (and with it eviction-to-disk and rehydration).
  std::string data_dir;
  /// Max resident sessions before the eviction sweep saves + drops the
  /// least-recently-used ones. 0 = unlimited.
  size_t max_sessions = 0;
  /// Passed through to option resolution on rehydration (a spec without
  /// an explicit cache_capacity gets the server default, same as at
  /// creation).
  size_t default_cache_capacity = 1024;
  /// Degraded-mode probe backoff: after a snapshot write fails, the store
  /// fast-fails further writes and re-probes the disk after this long,
  /// doubling (up to the max) on every failed probe until a write heals.
  int degraded_backoff_initial_ms = 100;
  int degraded_backoff_max_ms = 5000;
  /// Compaction threshold for the per-session cleaning log: a save whose
  /// append would grow `<name>.cplog` past this many bytes writes a fresh
  /// full base snapshot instead (and removes the log).
  size_t log_compact_bytes = size_t{1} << 20;
  /// Working-storage options stamped onto rehydrated sessions (see
  /// WorkingStorageOptions): non-empty `mmap_scratch_dir` backs their
  /// candidate slab with an unlinked mmap scratch file there.
  std::string mmap_scratch_dir;
  size_t stream_window_bytes = size_t{1} << 20;
};

/// Snapshot persistence and lifecycle policy for serving sessions: the
/// piece that turns "sessions live forever in RAM" into
/// live → evicted (saved to disk, dropped from the registry) →
/// rehydrated (rebuilt from spec + replayed cleaning order on next
/// access).
///
/// Durable state per session is a **base snapshot plus an append-only
/// cleaning log**:
///
///   - `<data-dir>/<escaped-name>.cpsession` — the base, in the v3
///     incomplete-dataset format: the *working* candidate space (for
///     bit-identity verification) and its dataset version, plus a "spec"
///     section (the create_session parameter JSON that rebuilds the
///     task), a "cleaning" section (`cleaned <n> <ids...>`, the replay
///     order), and a "task" section (`fingerprint <hex>`, hashing the
///     validation/test/oracle data the working dataset does not cover).
///   - `<data-dir>/<escaped-name>.cplog` — checksummed mutation records
///     appended since the base was written (see cleaning_log.h).
///
/// A save is a delta: only the mutations since the last durable version
/// are fsync-appended to the log — O(changes), independent of dataset
/// size. When the log would outgrow `log_compact_bytes` (or the store
/// has no durable baseline for the session), the save writes a fresh
/// full base atomically and drops the log (compaction). Rehydration
/// loads the base, replays the log (tolerating a torn final record —
/// the one append that was never acknowledged), rebuilds the task from
/// the spec, replays the cleaning order, and fails loudly if either the
/// rebuilt working dataset is not bit-identical to the stored+replayed
/// one or the task fingerprint drifted (a CSV edited on disk since the
/// save).
class SessionStore {
 public:
  explicit SessionStore(SessionStoreOptions options);

  bool enabled() const { return !options_.data_dir.empty(); }
  size_t max_sessions() const { return options_.max_sessions; }
  const std::string& data_dir() const { return options_.data_dir; }

  /// The snapshot path for `name` (valid whether or not the file exists).
  std::string PathFor(const std::string& name) const;

  /// The cleaning-log path for `name` (exists only between a delta save
  /// and the next compaction).
  std::string LogPathFor(const std::string& name) const;

  /// InvalidArgument when `session` cannot be persisted (created without
  /// a spec — nothing could rebuild its task on load). The single source
  /// of the savability rule, shared by `Save` and the eviction sweep.
  static Status ValidateSavable(const ServeSession& session);

  /// Persists `session`: a log append of the mutations since the last
  /// durable version when the store holds a baseline for it (O(delta)),
  /// else a full atomic base-snapshot write; a no-op when nothing changed.
  /// Unavailable when persistence is disabled; see `ValidateSavable` for
  /// the spec requirement.
  ///
  /// `write_seq_out`, when non-null, receives the session `write_seq()`
  /// the save captured. The expensive half (serialization) runs before
  /// the commit; callers that must re-validate liveness against a racing
  /// drop pass their lifecycle mutex as `commit_mu` and the check as
  /// `commit_check` — the disk commit then happens with `commit_mu` held,
  /// after `commit_check` returns OK (a non-OK check aborts the save and
  /// is returned). Saves of all sessions serialize on an internal order
  /// mutex so two delta appends can never interleave on one log.
  Status Save(ServeSession& session, uint64_t* write_seq_out = nullptr,
              std::mutex* commit_mu = nullptr,
              const std::function<Status()>& commit_check = nullptr);

  /// Writes pre-serialized full snapshot `text` for `name` atomically,
  /// bypassing delta tracking: any cleaning log for `name` is removed and
  /// its delta baseline voided (the text's version is unknown), so the
  /// next `Save` writes a fresh full base. Kept for tests and tools that
  /// author snapshot bytes directly.
  Status WriteSnapshot(const std::string& name, const std::string& text);

  /// Loads `name`'s base snapshot, replays its cleaning log (truncating
  /// a torn tail), and rebuilds the session (unpublished — the caller
  /// inserts it into the registry). NotFound when no base exists.
  Result<std::shared_ptr<ServeSession>> Load(const std::string& name);

  /// Deletes `name`'s base snapshot and cleaning log. NotFound when no
  /// base exists.
  Status Delete(const std::string& name);

  /// True when a base snapshot file exists for `name`.
  bool Saved(const std::string& name) const;

  /// Names of every saved session, sorted.
  std::vector<std::string> SavedNames() const;

  /// The eviction sweep: while `registry` holds more than `max_sessions`
  /// sessions, saves the least-recently-used one (by last-request
  /// sequence) — an O(delta) log append when a durable baseline exists —
  /// retires it (in-flight writers drain; a write acknowledged during
  /// save preparation triggers a re-prepare against the final state, and
  /// any later write on the detached instance is refused with
  /// Unavailable — so an acknowledged write is never lost to eviction),
  /// and drops it. Returns the evicted names (empty when under the limit
  /// or max_sessions == 0). Fails without evicting when persistence is
  /// disabled — callers gate admission instead of silently discarding
  /// state.
  ///
  /// The caller must NOT hold `lifecycle_mu`: the expensive half
  /// (serialization, writer drain) runs outside it, and only the commit
  /// (disk write + registry drop, re-validated against a racing drop)
  /// takes it. Concurrent sweeps serialize on an internal mutex.
  Result<std::vector<std::string>> EnforceCapacity(SessionRegistry& registry,
                                                   std::mutex& lifecycle_mu);

  /// Degraded read-only mode. The store enters it when a snapshot, log
  /// append, or probe write fails with an IO error: further writes
  /// fast-fail with IoError until an exponential-backoff window elapses,
  /// then the next write — or this accessor — probes the disk with a
  /// small atomic write. Reads (Load/Saved/SavedNames) never consult it:
  /// a server with an unwritable data dir keeps serving queries, it just
  /// cannot save. `CheckDegraded` probes when the backoff window has
  /// elapsed, so a healed disk clears on the next stats poll, not only on
  /// the next save.
  bool CheckDegraded();

 private:
  /// What the store knows is on disk for one session: the base
  /// snapshot's dataset version, the version the base+log together
  /// reach, and the log's durable byte length. Established by a full
  /// save or a load; absence forces the next save to write a full base.
  struct DurableState {
    uint64_t base_version = 0;
    uint64_t durable_version = 0;
    size_t log_bytes = 0;
  };

  /// A prepared save: either a full base snapshot text or the encoded
  /// log records covering (durable_version, current version].
  struct PendingSave {
    bool noop = false;   // nothing changed since the durable version
    bool delta = false;  // append `log_lines` instead of writing `full_text`
    std::string full_text;
    std::vector<std::string> log_lines;
    size_t log_bytes_add = 0;
    uint64_t version = 0;    // dataset version this save makes durable
    uint64_t write_seq = 0;  // session write_seq the save captured
  };

  /// Serializes the cheapest sufficient save for `session` (shared-lock
  /// read; no disk IO). Caller must hold `save_order_mu_`.
  Result<PendingSave> PrepareSave(ServeSession& session);

  /// Commits a prepared save to disk and updates the durable baseline.
  /// Caller must hold `save_order_mu_`.
  Status CommitSave(const std::string& name, const PendingSave& pending);

  /// Temp-write + close-check + rename, the single full-snapshot write
  /// path (bases and degraded-mode probes alike). Carries the
  /// fault-injection sites store.open / store.write / store.flush /
  /// store.rename and feeds the degraded-mode state machine: any IO
  /// failure degrades the store, any success heals it. Fast-fails without
  /// touching the disk while degraded and inside the backoff window.
  Status WriteFileAtomic(const std::string& path, const std::string& text);

  /// Marks the store degraded (extending the backoff) or healed.
  void NoteWriteResult(bool ok);

  /// True while degraded and inside the backoff window (the log-append
  /// path's equivalent of WriteFileAtomic's fast-fail).
  bool DegradedFastFail(Status* status);

  SessionStoreOptions options_;
  /// Serializes eviction sweeps (two sweeps would retire the same victim).
  std::mutex sweep_mu_;
  /// Serializes prepare→commit of every save: two concurrent delta saves
  /// of one session would both diff against the same durable version and
  /// append duplicate records. Ordering: sweep_mu_ → save_order_mu_ →
  /// session locks → lifecycle_mu → durable_mu_.
  std::mutex save_order_mu_;
  /// Guards durable_ (leaf mutex).
  std::mutex durable_mu_;
  std::unordered_map<std::string, DurableState> durable_;
  /// Degraded-mode state (see CheckDegraded).
  std::mutex degraded_mu_;
  bool degraded_ = false;
  std::chrono::steady_clock::time_point next_probe_{};
  int backoff_ms_ = 0;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_SESSION_STORE_H_
