#ifndef CPCLEAN_SERVE_SESSION_STORE_H_
#define CPCLEAN_SERVE_SESSION_STORE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cleaning/cleaning_task.h"
#include "common/result.h"
#include "serve/json.h"
#include "serve/session_registry.h"

namespace cpclean {

/// Builds a CleaningTask from a `create_session` parameter object —
/// `source` = "paper" | "synthetic" (deterministic seeded generators) or
/// "csv" (inline text or file paths). The same function serves the
/// create_session op and snapshot rehydration, so a restored session's
/// task is rebuilt by exactly the code that built the original.
Result<CleaningTask> BuildTaskFromSpec(const JsonValue& spec);

struct SessionStoreOptions {
  /// Directory session snapshots are saved to / loaded from. Empty
  /// disables persistence (and with it eviction-to-disk and rehydration).
  std::string data_dir;
  /// Max resident sessions before the eviction sweep saves + drops the
  /// least-recently-used ones. 0 = unlimited.
  size_t max_sessions = 0;
  /// Passed through to option resolution on rehydration (a spec without
  /// an explicit cache_capacity gets the server default, same as at
  /// creation).
  size_t default_cache_capacity = 1024;
  /// Degraded-mode probe backoff: after a snapshot write fails, the store
  /// fast-fails further writes and re-probes the disk after this long,
  /// doubling (up to the max) on every failed probe until a write heals.
  int degraded_backoff_initial_ms = 100;
  int degraded_backoff_max_ms = 5000;
};

/// Snapshot persistence and lifecycle policy for serving sessions: the
/// piece that turns "sessions live forever in RAM" into
/// live → evicted (saved to disk, dropped from the registry) →
/// rehydrated (rebuilt from spec + replayed cleaning order on next
/// access).
///
/// One file per session, `<data-dir>/<escaped-name>.cpsession`, in the v2
/// incomplete-dataset format: the *working* candidate space (for
/// bit-identity verification) plus a "spec" section (the create_session
/// parameter JSON that rebuilds the task), a "cleaning" section
/// (`cleaned <n> <ids...>`, the replay order), and a "task" section
/// (`fingerprint <hex>`, hashing the validation/test/oracle data the
/// working dataset does not cover). Rehydration rebuilds the task from
/// the spec, replays the cleaning order, and fails loudly if either the
/// rebuilt working dataset is not bit-identical to the stored one or the
/// task fingerprint drifted (a CSV edited on disk since the save).
class SessionStore {
 public:
  explicit SessionStore(SessionStoreOptions options);

  bool enabled() const { return !options_.data_dir.empty(); }
  size_t max_sessions() const { return options_.max_sessions; }
  const std::string& data_dir() const { return options_.data_dir; }

  /// The snapshot path for `name` (valid whether or not the file exists).
  std::string PathFor(const std::string& name) const;

  /// InvalidArgument when `session` cannot be persisted (created without
  /// a spec — nothing could rebuild its task on load). The single source
  /// of the savability rule, shared by `Save` and the server's
  /// serialize-outside-lock save path.
  static Status ValidateSavable(const ServeSession& session);

  /// Serializes `session` to its snapshot file (atomic: temp file +
  /// rename). Unavailable when persistence is disabled; see
  /// `ValidateSavable` for the spec requirement. `write_seq_out`, when
  /// non-null, receives the session `write_seq()` the snapshot captured —
  /// the eviction sweep's dirty-flag baseline.
  Status Save(ServeSession& session, uint64_t* write_seq_out = nullptr);

  /// The write half of `Save` for callers that serialized the session
  /// earlier (e.g. outside a lock that must not block on the session):
  /// writes pre-serialized snapshot `text` for `name` atomically.
  Status WriteSnapshot(const std::string& name, const std::string& text);

  /// Loads `name`'s snapshot and rebuilds the session (unpublished — the
  /// caller inserts it into the registry). NotFound when no snapshot
  /// exists.
  Result<std::shared_ptr<ServeSession>> Load(const std::string& name);

  /// Deletes `name`'s snapshot file. NotFound when none exists.
  Status Delete(const std::string& name);

  /// True when a snapshot file exists for `name`.
  bool Saved(const std::string& name) const;

  /// Names of every saved session, sorted.
  std::vector<std::string> SavedNames() const;

  /// The eviction sweep: while `registry` holds more than `max_sessions`
  /// sessions, saves the least-recently-used one (by last-request
  /// sequence), retires it (in-flight writers drain; a write acknowledged
  /// during snapshot serialization replaces the snapshot with the final
  /// state, and any later write on the detached instance is refused with
  /// Unavailable — so an acknowledged write is never lost to eviction),
  /// and drops it. Returns the evicted names (empty when under the limit
  /// or max_sessions == 0). Fails without evicting when persistence is
  /// disabled — callers gate admission instead of silently discarding
  /// state.
  ///
  /// The caller must NOT hold `lifecycle_mu`: the expensive half
  /// (serialization, writer drain) runs outside it, and only the commit
  /// (snapshot write + registry drop, re-validated against a racing drop)
  /// takes it. Concurrent sweeps serialize on an internal mutex.
  Result<std::vector<std::string>> EnforceCapacity(SessionRegistry& registry,
                                                   std::mutex& lifecycle_mu);

  /// Degraded read-only mode. The store enters it when a snapshot (or
  /// probe) write fails with an IO error: further writes fast-fail with
  /// IoError until an exponential-backoff window elapses, then the next
  /// write — or this accessor — probes the disk with a small atomic write.
  /// Reads (Load/Saved/SavedNames) never consult it: a server with an
  /// unwritable data dir keeps serving queries, it just cannot save.
  /// `CheckDegraded` probes when the backoff window has elapsed, so a
  /// healed disk clears on the next stats poll, not only on the next save.
  bool CheckDegraded();

 private:
  /// Temp-write + close-check + rename, the single disk-write path
  /// (snapshots and degraded-mode probes alike). Carries the
  /// fault-injection sites store.open / store.write / store.flush /
  /// store.rename and feeds the degraded-mode state machine: any IO
  /// failure degrades the store, any success heals it. Fast-fails without
  /// touching the disk while degraded and inside the backoff window.
  Status WriteFileAtomic(const std::string& path, const std::string& text);

  /// Marks the store degraded (extending the backoff) or healed.
  void NoteWriteResult(bool ok);

  SessionStoreOptions options_;
  /// Serializes eviction sweeps (two sweeps would retire the same victim).
  std::mutex sweep_mu_;
  /// Degraded-mode state (see CheckDegraded).
  std::mutex degraded_mu_;
  bool degraded_ = false;
  std::chrono::steady_clock::time_point next_probe_{};
  int backoff_ms_ = 0;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_SESSION_STORE_H_
