#include "serve/op_registry.h"

#include <memory>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"
#include "serve/request_params.h"
#include "serve/server.h"
#include "serve/session_registry.h"

namespace cpclean {

/// The protocol handlers. `Server` befriends this struct, so the registry
/// table below is the only routing layer between the wire and the private
/// server methods — adding an op is adding a row, not editing dispatch
/// code.
struct OpHandlers {
  static Result<JsonValue> Ping(Server& server, const JsonValue& req) {
    (void)server;
    (void)req;
    return JsonValue::MakeObject();
  }

  static Result<JsonValue> CreateSession(Server& server,
                                         const JsonValue& req) {
    return server.CreateSession(req);
  }

  static Result<JsonValue> ListSessions(Server& server,
                                        const JsonValue& req) {
    return server.ListSessions(req);
  }

  static Result<JsonValue> DropSession(Server& server, const JsonValue& req) {
    return server.DropSession(req);
  }

  static Result<JsonValue> Certify(Server& server, const JsonValue& req) {
    CP_ASSIGN_OR_RETURN(const int max_cleaned,
                        RequestIntParam(req, "max_cleaned", -1));
    return server.BatchQuery(
        req, [max_cleaned](ServeSession& session,
                           const std::vector<double>& point) {
          return session.Certify(point, max_cleaned);
        });
  }

  static Result<JsonValue> Q2(Server& server, const JsonValue& req) {
    return server.BatchQuery(
        req, [](ServeSession& session, const std::vector<double>& point) {
          return session.Q2(point);
        });
  }

  static Result<JsonValue> Predict(Server& server, const JsonValue& req) {
    return server.BatchQuery(
        req, [](ServeSession& session, const std::vector<double>& point) {
          return session.Predict(point);
        });
  }

  static Result<JsonValue> Explain(Server& server, const JsonValue& req) {
    return server.BatchQuery(
        req, [](ServeSession& session, const std::vector<double>& point) {
          return session.Explain(point);
        });
  }

  static Result<JsonValue> WhyCertified(Server& server,
                                        const JsonValue& req) {
    return server.BatchQuery(
        req, [](ServeSession& session, const std::vector<double>& point) {
          return session.WhyCertified(point);
        });
  }

  static Result<JsonValue> CleanStep(Server& server, const JsonValue& req) {
    CP_ASSIGN_OR_RETURN(const std::string name, RequestSessionName(req));
    CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session,
                        server.FindSession(name));
    CP_ASSIGN_OR_RETURN(const int steps, RequestSteps(req));
    return session->CleanStep(steps);
  }

  static Result<JsonValue> CleanRun(Server& server, const JsonValue& req) {
    CP_ASSIGN_OR_RETURN(const std::string name, RequestSessionName(req));
    CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session,
                        server.FindSession(name));
    CP_ASSIGN_OR_RETURN(const int budget, RequestBudget(req));
    return session->CleanRun(budget);
  }

  static Result<JsonValue> SaveSession(Server& server, const JsonValue& req) {
    return server.SaveSession(req);
  }

  static Result<JsonValue> LoadSession(Server& server, const JsonValue& req) {
    return server.LoadSession(req);
  }

  static Result<JsonValue> Stats(Server& server, const JsonValue& req) {
    return server.Stats(req);
  }

  static Result<JsonValue> Metrics(Server& server, const JsonValue& req) {
    return server.Metrics(req);
  }

  static Result<JsonValue> FaultInject(Server& server, const JsonValue& req) {
    return server.FaultInject(req);
  }

  static Result<JsonValue> Shutdown(Server& server, const JsonValue& req) {
    (void)req;
    // Graceful (not Stop()): the connection that asked must still receive
    // this response before the event loop drains and closes it.
    server.RequestStop();
    JsonValue out = JsonValue::MakeObject();
    out.Set("stopping", JsonValue(true));
    return out;
  }
};

const char* OpClassName(OpClass c) {
  switch (c) {
    case OpClass::kRead:
      return "read";
    case OpClass::kWrite:
      return "write";
    case OpClass::kLifecycle:
      return "lifecycle";
    case OpClass::kStateless:
      return "stateless";
  }
  return "unknown";
}

const std::vector<OpInfo>& OpRegistry() {
  // Leaked singleton (never destroyed): handlers may run on transport
  // threads during process teardown.
  static const std::vector<OpInfo>* registry = new std::vector<OpInfo>{
      {"ping", OpClass::kStateless, false, false, "—", "`{}` (liveness probe)",
       &OpHandlers::Ping},
      {"create_session", OpClass::kLifecycle, true, false,
       "`session`, `source` (`paper`\\|`synthetic`\\|`csv`), dataset params "
       "(`dataset`, `train_rows`, `val_size`, `test_size`, `seed`, "
       "`missing_rate`, …; for CSV: `csv_text`/`csv_path`, `label`, optional "
       "`clean_*`/`val_*`/`test_*`), `k`, `kernel`, `num_threads`, "
       "`cache_capacity`, `max_contrib_bytes`",
       "session summary (sizes, dim, `log2_worlds`)",
       &OpHandlers::CreateSession},
      {"list_sessions", OpClass::kStateless, false, false, "—",
       "`{sessions, evicted, capabilities}` — live names, saved-but-not-live "
       "names, ops grouped by class",
       &OpHandlers::ListSessions},
      {"drop_session", OpClass::kLifecycle, true, false, "`session`",
       "`{dropped, deleted_snapshot}` — discards the live session AND its "
       "snapshot",
       &OpHandlers::DropSession},
      {"certify", OpClass::kRead, true, false,
       "`session`, `points` or `val_indices`, `max_cleaned`",
       "per point: `{certified, label, cleaned: [tuple ids]}`",
       &OpHandlers::Certify},
      {"q2", OpClass::kRead, true, true,
       "`session`, `points` or `val_indices`",
       "per point: `{probs, entropy}`", &OpHandlers::Q2},
      {"predict", OpClass::kRead, true, false,
       "`session`, `points` or `val_indices`",
       "per point: `{certain, label}` (Q1)", &OpHandlers::Predict},
      {"explain", OpClass::kRead, true, false,
       "`session`, `points` or `val_indices`",
       "per point: `{certain, label, witnesses, support, minimal, version}` — "
       "the dirty tuples whose candidate repairs decide the prediction",
       &OpHandlers::Explain},
      {"why_certified", OpClass::kRead, true, false,
       "`session`, `points` or `val_indices`",
       "per point: `{certified, label, witnesses, minimal, trail, version}` — "
       "witnesses plus the audited cleaning steps that fixed them",
       &OpHandlers::WhyCertified},
      {"clean_step", OpClass::kWrite, true, false, "`session`, `steps`",
       "`{cleaned: [ids], frac_val_certain, dirty_remaining, version}`",
       &OpHandlers::CleanStep},
      {"clean_run", OpClass::kWrite, true, false, "`session`, `budget`",
       "same, until all-certain or budget", &OpHandlers::CleanRun},
      {"save_session", OpClass::kLifecycle, true, false, "`session`",
       "`{saved, path, state}` — snapshot into `--data-dir` (a no-op for "
       "already-evicted sessions: the snapshot is their state)",
       &OpHandlers::SaveSession},
      {"load_session", OpClass::kLifecycle, true, false, "`session`",
       "rehydrates a saved session (stats summary)", &OpHandlers::LoadSession},
      {"stats", OpClass::kRead, false, false, "optional `session`",
       "per session: `state` (live/evicted), progress, resolved options, "
       "cache + engine-pool counters — an evicted session answers a stub "
       "(with `capabilities`) *without* rehydrating; global: live/saved "
       "sessions, pool size, transport counters",
       &OpHandlers::Stats},
      {"metrics", OpClass::kStateless, false, false, "—",
       "process-wide telemetry snapshot: counters, gauges, histogram "
       "quantiles, the recent-request span ring, fault-site hit/fire counts",
       &OpHandlers::Metrics},
      {"fault_inject", OpClass::kStateless, false, false,
       "optional `config`",
       "installs fault-injection rules; refused unless `CPCLEAN_FAULTS` "
       "armed it",
       &OpHandlers::FaultInject},
      {"shutdown", OpClass::kLifecycle, false, false, "—",
       "`{stopping: true}`, then graceful wind-down", &OpHandlers::Shutdown},
  };
  return *registry;
}

const OpInfo* FindOp(const std::string& name) {
  for (const OpInfo& op : OpRegistry()) {
    if (name == op.name) return &op;
  }
  return nullptr;
}

std::string SupportedOpsList() {
  std::string out;
  for (const OpInfo& op : OpRegistry()) {
    if (!out.empty()) out += ", ";
    out += op.name;
  }
  return out;
}

MetricCounter& OpRequestCounter(const OpInfo& op) {
  // One eager pass registers every op's counter so a `metrics` snapshot
  // reports explicit zeros for ops never dispatched — and per-request
  // lookup is an index, not a registry map probe.
  static const std::vector<MetricCounter*>* counters = [] {
    auto* v = new std::vector<MetricCounter*>();
    v->reserve(OpRegistry().size());
    for (const OpInfo& o : OpRegistry()) {
      v->push_back(&MetricsRegistry::Get().GetCounter(
          StrFormat("serve.op.%s_total", o.name)));
    }
    return v;
  }();
  return *(*counters)[&op - OpRegistry().data()];
}

JsonValue OpCapabilities() {
  JsonValue out = JsonValue::MakeObject();
  static constexpr OpClass kOrder[] = {OpClass::kRead, OpClass::kWrite,
                                       OpClass::kLifecycle,
                                       OpClass::kStateless};
  for (const OpClass c : kOrder) {
    JsonValue ops = JsonValue::MakeArray();
    for (const OpInfo& op : OpRegistry()) {
      if (op.classification == c) ops.Append(JsonValue(op.name));
    }
    out.Set(OpClassName(c), std::move(ops));
  }
  return out;
}

std::string OpTableMarkdown() {
  std::string out =
      "| op | class | parameters | result |\n|---|---|---|---|\n";
  for (const OpInfo& op : OpRegistry()) {
    out += StrFormat("| `%s` | %s | %s | %s |\n", op.name,
                     OpClassName(op.classification), op.params, op.result);
  }
  return out;
}

}  // namespace cpclean
