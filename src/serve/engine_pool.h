#ifndef CPCLEAN_SERVE_ENGINE_POOL_H_
#define CPCLEAN_SERVE_ENGINE_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/fast_q2.h"

namespace cpclean {

/// A pool of `FastQ2` engines over one (mutable) incomplete dataset, the
/// piece that lets N concurrent readers of a serving session each run Q2
/// on a private engine instead of serializing on a single reused one.
///
/// Engines are version-stamped: each idle engine remembers the dataset
/// mutation version it is bound to (`FastQ2::bound_version()`). `Acquire`
/// prefers an idle engine already bound to the dataset's *current* version
/// — its trees and scan layout are still valid, so the reader pays no
/// Rebind — and otherwise hands out a stale engine, whose first
/// `SetTestPoint` re-binds automatically. Readers must hold the session's
/// shared lock across the lease (the dataset may not be mutated while an
/// engine reads it); the leased engine itself is exclusively owned, so its
/// query-local scratch needs no further locking.
///
/// At most `max_idle` engines are retained when leases return; beyond
/// that, returned engines are destroyed — the pool's footprint is bounded
/// by the peak read concurrency actually observed, not by request count.
class EnginePool {
 public:
  /// `dataset` is borrowed and must outlive the pool.
  EnginePool(const IncompleteDataset* dataset, int k, double epsilon = 1e-9,
             size_t max_idle = 16);

  /// Exclusive RAII lease of one engine; returns it to the pool (or drops
  /// it past `max_idle`) on destruction.
  class Lease {
   public:
    Lease(EnginePool* pool, std::unique_ptr<FastQ2> engine)
        : pool_(pool), engine_(std::move(engine)) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->Release(std::move(engine_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), engine_(std::move(other.engine_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    FastQ2& operator*() { return *engine_; }
    FastQ2* operator->() { return engine_.get(); }

   private:
    EnginePool* pool_;
    std::unique_ptr<FastQ2> engine_;
  };

  /// Checks out an engine (never blocks on other leases; creates a new
  /// engine when no idle one exists). Caller must hold the dataset's
  /// reader lock for the lease's lifetime.
  Lease Acquire();

  struct Stats {
    uint64_t created = 0;   // engines constructed over the pool's lifetime
    uint64_t acquired = 0;  // total leases (acquired - created = reuses)
    uint64_t idle = 0;      // engines parked right now
  };
  Stats stats() const;

 private:
  friend class Lease;
  void Release(std::unique_ptr<FastQ2> engine);

  const IncompleteDataset* const dataset_;
  const int k_;
  const double epsilon_;
  const size_t max_idle_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<FastQ2>> idle_;
  uint64_t created_ = 0;
  uint64_t acquired_ = 0;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_ENGINE_POOL_H_
