#ifndef CPCLEAN_SERVE_JSON_H_
#define CPCLEAN_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace cpclean {

/// A parsed JSON document node — the value type of the serving protocol.
///
/// Self-contained (no external JSON dependency): objects keep insertion
/// order so responses serialize deterministically, and numbers are doubles
/// printed with enough digits to round-trip exactly — a client echoing a
/// probability back (e.g. as a cache key) sees the same bits the engine
/// produced.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}  // NOLINT
  JsonValue(int n)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(int64_t n)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(uint64_t n)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  JsonValue(std::string s)  // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue MakeArray(Array items = {});
  static JsonValue MakeObject(Object members = {});
  /// Convenience for numeric result vectors (probabilities, points).
  static JsonValue FromDoubles(const std::vector<double>& values);
  static JsonValue FromInts(const std::vector<int>& values);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  Array& array() { return array_; }
  const Object& object() const { return object_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Appends (or replaces) an object member.
  void Set(std::string key, JsonValue value);

  /// Appends an array element.
  void Append(JsonValue value);

  /// Compact single-line serialization (the protocol's wire format).
  std::string Dump() const;

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Errors are ParseError with a character offset.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_JSON_H_
