#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <thread>
#include <utility>

#include "cleaning/imputers.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/csv.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"

namespace cpclean {

namespace {

// --- Typed request-parameter accessors -------------------------------------
// Missing optional fields fall back to the default; present fields of the
// wrong JSON type are an InvalidArgument, not a silent coercion.

Result<std::string> GetString(const JsonValue& req, const char* key) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(StrFormat("missing field \"%s\"", key));
  }
  if (!v->is_string()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a string", key));
  }
  return v->string_value();
}

Result<std::string> GetStringOr(const JsonValue& req, const char* key,
                                const std::string& fallback) {
  if (req.Find(key) == nullptr) return fallback;
  return GetString(req, key);
}

Result<int64_t> GetIntOr(const JsonValue& req, const char* key,
                         int64_t fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a number", key));
  }
  // Exact-integer check before the cast: a fractional value, or one
  // outside the double-exact integer range, must be a structured error —
  // never a silent truncation or an undefined float→int conversion.
  const double n = v->number_value();
  if (std::floor(n) != n || n < -9007199254740992.0 ||
      n > 9007199254740992.0) {
    return Status::InvalidArgument(
        StrFormat("\"%s\" must be an integer", key));
  }
  return static_cast<int64_t>(n);
}

/// `GetIntOr` narrowed to int, rejecting out-of-range values.
Result<int> GetIntParam(const JsonValue& req, const char* key,
                        int fallback) {
  CP_ASSIGN_OR_RETURN(const int64_t n, GetIntOr(req, key, fallback));
  if (n < std::numeric_limits<int>::min() ||
      n > std::numeric_limits<int>::max()) {
    return Status::OutOfRange(
        StrFormat("\"%s\" = %lld does not fit in an int", key,
                  static_cast<long long>(n)));
  }
  return static_cast<int>(n);
}

Result<double> GetDoubleOr(const JsonValue& req, const char* key,
                           double fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a number", key));
  }
  return v->number_value();
}

Result<bool> GetBoolOr(const JsonValue& req, const char* key, bool fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a bool", key));
  }
  return v->bool_value();
}

/// The batched query points: explicit `points` (array of feature arrays)
/// or `val_indices` into the session's validation set.
Result<std::vector<std::vector<double>>> ResolvePoints(
    const JsonValue& req, const ServeSession& session) {
  const JsonValue* points = req.Find("points");
  const JsonValue* indices = req.Find("val_indices");
  if ((points == nullptr) == (indices == nullptr)) {
    return Status::InvalidArgument(
        "exactly one of \"points\" or \"val_indices\" is required");
  }
  std::vector<std::vector<double>> out;
  if (points != nullptr) {
    if (!points->is_array()) {
      return Status::InvalidArgument("\"points\" must be an array of arrays");
    }
    out.reserve(points->array().size());
    for (const JsonValue& p : points->array()) {
      if (!p.is_array()) {
        return Status::InvalidArgument(
            "\"points\" must be an array of arrays");
      }
      std::vector<double> features;
      features.reserve(p.array().size());
      for (const JsonValue& x : p.array()) {
        if (!x.is_number()) {
          return Status::InvalidArgument("point features must be numbers");
        }
        features.push_back(x.number_value());
      }
      out.push_back(std::move(features));
    }
  } else {
    if (!indices->is_array()) {
      return Status::InvalidArgument("\"val_indices\" must be an array");
    }
    out.reserve(indices->array().size());
    for (const JsonValue& x : indices->array()) {
      const double n = x.is_number() ? x.number_value() : -1.0;
      if (!x.is_number() || std::floor(n) != n || n < 0.0 ||
          n > static_cast<double>(std::numeric_limits<int>::max())) {
        return Status::InvalidArgument(
            "\"val_indices\" must hold non-negative integers");
      }
      CP_ASSIGN_OR_RETURN(std::vector<double> point,
                          session.ValPoint(static_cast<int>(n)));
      out.push_back(std::move(point));
    }
  }
  return out;
}

Result<Table> LoadTable(const JsonValue& req, const char* text_key,
                        const char* path_key) {
  const JsonValue* text = req.Find(text_key);
  if (text != nullptr) {
    if (!text->is_string()) {
      return Status::InvalidArgument(
          StrFormat("\"%s\" must be a string", text_key));
    }
    return ReadCsvString(text->string_value());
  }
  CP_ASSIGN_OR_RETURN(const std::string path, GetString(req, path_key));
  return ReadCsvFile(path);
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  Stop();
  // Backstop for destruction while ServeTcp is still winding down on
  // another thread: connection handlers are detached and reference this
  // object, so wait for the last one to sign off.
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
}

Result<CleaningTask> Server::BuildTask(const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string source,
                      GetStringOr(req, "source", "paper"));
  if (source == "paper" || source == "synthetic") {
    ExperimentConfig config;
    CP_ASSIGN_OR_RETURN(const int train_rows,
                        GetIntParam(req, "train_rows", 300));
    CP_ASSIGN_OR_RETURN(const int val_size,
                        GetIntParam(req, "val_size", 100));
    CP_ASSIGN_OR_RETURN(const int test_size,
                        GetIntParam(req, "test_size", 200));
    CP_ASSIGN_OR_RETURN(const int64_t seed, GetIntOr(req, "seed", 42));
    if (source == "paper") {
      CP_ASSIGN_OR_RETURN(const std::string dataset,
                          GetStringOr(req, "dataset", "Supreme"));
      bool known = false;
      for (const auto& spec : PaperDatasetSuite()) {
        if (spec.name == dataset) known = true;
      }
      if (!known) {
        return Status::InvalidArgument(StrFormat(
            "unknown paper dataset \"%s\" (expected BabyProduct, Supreme, "
            "Bank, Puma)",
            dataset.c_str()));
      }
      config.dataset =
          PaperDatasetByName(dataset, train_rows, val_size, test_size,
                             static_cast<uint64_t>(seed));
    } else {
      PaperDatasetSpec spec;
      CP_ASSIGN_OR_RETURN(spec.name, GetStringOr(req, "dataset", "synthetic"));
      spec.synthetic.name = spec.name;
      CP_ASSIGN_OR_RETURN(const int numeric, GetIntParam(req, "numeric", 6));
      CP_ASSIGN_OR_RETURN(const int categorical,
                          GetIntParam(req, "categorical", 1));
      CP_ASSIGN_OR_RETURN(const double noise,
                          GetDoubleOr(req, "noise_sigma", 0.5));
      CP_ASSIGN_OR_RETURN(const bool nonlinear,
                          GetBoolOr(req, "nonlinear", false));
      spec.synthetic.num_rows = train_rows + val_size + test_size;
      spec.synthetic.num_numeric = numeric;
      spec.synthetic.num_categorical = categorical;
      spec.synthetic.noise_sigma = noise;
      spec.synthetic.nonlinear = nonlinear;
      spec.synthetic.seed = static_cast<uint64_t>(seed);
      spec.val_size = val_size;
      spec.test_size = test_size;
      config.dataset = std::move(spec);
    }
    CP_ASSIGN_OR_RETURN(
        config.dataset.missing_rate,
        GetDoubleOr(req, "missing_rate", config.dataset.missing_rate));
    CP_ASSIGN_OR_RETURN(config.k, GetIntParam(req, "k", 3));
    config.seed = static_cast<uint64_t>(seed);
    CP_ASSIGN_OR_RETURN(config.num_threads,
                        GetIntParam(req, "num_threads", 0));
    CP_ASSIGN_OR_RETURN(const std::string kernel_name,
                        GetStringOr(req, "kernel", "neg_euclidean"));
    CP_ASSIGN_OR_RETURN(const KernelKind kind,
                        KernelKindFromName(kernel_name));
    CP_ASSIGN_OR_RETURN(const double gamma, GetDoubleOr(req, "gamma", 1.0));
    const std::unique_ptr<SimilarityKernel> kernel = MakeKernel(kind, gamma);
    CP_ASSIGN_OR_RETURN(PreparedExperiment prepared,
                        PrepareExperiment(config, *kernel));
    return std::move(prepared.task);
  }
  if (source == "csv") {
    // Dirty training CSV (inline text or a file path) plus the label
    // column; ground truth / validation / test tables are optional — a
    // default-imputed completion stands in when absent, mirroring the
    // csv_workflow example. Every parse or schema failure surfaces as a
    // structured error response.
    CP_ASSIGN_OR_RETURN(Table dirty, LoadTable(req, "csv_text", "csv_path"));
    CP_ASSIGN_OR_RETURN(const std::string label, GetString(req, "label"));
    CP_ASSIGN_OR_RETURN(const int label_col,
                        dirty.schema().FieldIndex(label));
    Table clean;
    if (req.Find("clean_text") != nullptr ||
        req.Find("clean_path") != nullptr) {
      CP_ASSIGN_OR_RETURN(clean, LoadTable(req, "clean_text", "clean_path"));
    } else {
      CP_ASSIGN_OR_RETURN(clean, DefaultCleanImpute(dirty, label_col));
    }
    Table val = clean;
    if (req.Find("val_text") != nullptr || req.Find("val_path") != nullptr) {
      CP_ASSIGN_OR_RETURN(val, LoadTable(req, "val_text", "val_path"));
    }
    Table test = val;
    if (req.Find("test_text") != nullptr ||
        req.Find("test_path") != nullptr) {
      CP_ASSIGN_OR_RETURN(test, LoadTable(req, "test_text", "test_path"));
    }
    return BuildCleaningTask(dirty, clean, val, test, label);
  }
  return Status::InvalidArgument(StrFormat(
      "unknown source \"%s\" (expected paper, synthetic, csv)",
      source.c_str()));
}

Result<JsonValue> Server::CreateSession(const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string name, GetString(req, "session"));
  ServeSessionOptions options;
  CP_ASSIGN_OR_RETURN(options.k, GetIntParam(req, "k", 3));
  CP_ASSIGN_OR_RETURN(const std::string kernel_name,
                      GetStringOr(req, "kernel", "neg_euclidean"));
  CP_ASSIGN_OR_RETURN(options.kernel, KernelKindFromName(kernel_name));
  CP_ASSIGN_OR_RETURN(options.gamma, GetDoubleOr(req, "gamma", 1.0));
  CP_ASSIGN_OR_RETURN(options.num_threads,
                      GetIntParam(req, "num_threads", 0));
  CP_ASSIGN_OR_RETURN(
      const int64_t cache_capacity,
      GetIntOr(req, "cache_capacity",
               static_cast<int64_t>(options_.default_cache_capacity)));
  if (cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must be >= 0");
  }
  options.cache_capacity = static_cast<size_t>(cache_capacity);
  CP_ASSIGN_OR_RETURN(
      const int64_t max_contrib_bytes,
      GetIntOr(req, "max_contrib_bytes",
               static_cast<int64_t>(options.max_contrib_bytes)));
  if (max_contrib_bytes < 1) {
    return Status::InvalidArgument("max_contrib_bytes must be >= 1");
  }
  options.max_contrib_bytes = static_cast<size_t>(max_contrib_bytes);

  CP_ASSIGN_OR_RETURN(CleaningTask task, BuildTask(req));
  CP_ASSIGN_OR_RETURN(
      const std::shared_ptr<ServeSession> session,
      registry_.Create(name, std::move(task), options));

  const CleaningTask& bound = session->task();
  JsonValue out = JsonValue::MakeObject();
  out.Set("session", JsonValue(session->name()));
  out.Set("train", JsonValue(bound.incomplete.num_examples()));
  out.Set("dirty", JsonValue(static_cast<int>(bound.DirtyRows().size())));
  out.Set("val", JsonValue(static_cast<int>(bound.val_x.size())));
  out.Set("test", JsonValue(static_cast<int>(bound.test_x.size())));
  out.Set("dim", JsonValue(bound.incomplete.dim()));
  out.Set("labels", JsonValue(bound.incomplete.num_labels()));
  out.Set("log2_worlds",
          JsonValue(bound.incomplete.Log2NumPossibleWorlds()));
  return out;
}

Result<JsonValue> Server::BatchQuery(const std::string& op,
                                     const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string name, GetString(req, "session"));
  CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session,
                      registry_.Get(name));
  CP_ASSIGN_OR_RETURN(const std::vector<std::vector<double>> points,
                      ResolvePoints(req, *session));
  CP_ASSIGN_OR_RETURN(const int max_cleaned,
                      GetIntParam(req, "max_cleaned", -1));
  JsonValue results = JsonValue::MakeArray();
  for (const std::vector<double>& point : points) {
    Result<JsonValue> one =
        op == "certify"
            ? session->Certify(point, max_cleaned)
            : op == "q2" ? session->Q2(point) : session->Predict(point);
    CP_ASSIGN_OR_RETURN(JsonValue value, std::move(one));
    results.Append(std::move(value));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("count", JsonValue(static_cast<int>(points.size())));
  out.Set("results", std::move(results));
  return out;
}

Result<JsonValue> Server::CleanOp(const std::string& op,
                                  const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string name, GetString(req, "session"));
  CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session,
                      registry_.Get(name));
  if (op == "clean_step") {
    CP_ASSIGN_OR_RETURN(const int steps, GetIntParam(req, "steps", 1));
    return session->CleanStep(steps);
  }
  CP_ASSIGN_OR_RETURN(const int budget, GetIntParam(req, "budget", -1));
  return session->CleanRun(budget);
}

Result<JsonValue> Server::Stats(const JsonValue& req) {
  const JsonValue* name = req.Find("session");
  if (name != nullptr) {
    CP_ASSIGN_OR_RETURN(const std::string session_name,
                        GetString(req, "session"));
    CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session,
                        registry_.Get(session_name));
    return session->Stats();
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("sessions", JsonValue(static_cast<int>(registry_.size())));
  JsonValue names = JsonValue::MakeArray();
  for (const std::string& n : registry_.Names()) names.Append(JsonValue(n));
  out.Set("names", std::move(names));
  out.Set("pool_threads", JsonValue(GlobalThreadPoolThreads()));
  return out;
}

Result<JsonValue> Server::Dispatch(const std::string& op,
                                   const JsonValue& req) {
  if (op == "ping") return JsonValue::MakeObject();
  if (op == "create_session") return CreateSession(req);
  if (op == "list_sessions") {
    JsonValue out = JsonValue::MakeObject();
    JsonValue names = JsonValue::MakeArray();
    for (const std::string& n : registry_.Names()) names.Append(JsonValue(n));
    out.Set("sessions", std::move(names));
    return out;
  }
  if (op == "drop_session") {
    CP_ASSIGN_OR_RETURN(const std::string name, GetString(req, "session"));
    CP_RETURN_NOT_OK(registry_.Drop(name));
    JsonValue out = JsonValue::MakeObject();
    out.Set("dropped", JsonValue(name));
    return out;
  }
  if (op == "certify" || op == "q2" || op == "predict") {
    return BatchQuery(op, req);
  }
  if (op == "clean_step" || op == "clean_run") return CleanOp(op, req);
  if (op == "stats") return Stats(req);
  if (op == "shutdown") {
    // Graceful (not Stop()): the connection that asked must still receive
    // this response before its handler notices stopping_ and closes.
    RequestStop();
    JsonValue out = JsonValue::MakeObject();
    out.Set("stopping", JsonValue(true));
    return out;
  }
  return Status::InvalidArgument(StrFormat("unknown op \"%s\"", op.c_str()));
}

JsonValue Server::HandleRequest(const JsonValue& request) {
  JsonValue response = JsonValue::MakeObject();
  if (request.is_object()) {
    const JsonValue* id = request.Find("id");
    if (id != nullptr) response.Set("id", *id);
  }
  Result<JsonValue> result = [&]() -> Result<JsonValue> {
    if (!request.is_object()) {
      return Status::InvalidArgument("request must be a JSON object");
    }
    CP_ASSIGN_OR_RETURN(const std::string op, GetString(request, "op"));
    return Dispatch(op, request);
  }();
  if (result.ok()) {
    response.Set("ok", JsonValue(true));
    response.Set("result", std::move(result).value());
  } else {
    response.Set("ok", JsonValue(false));
    JsonValue error = JsonValue::MakeObject();
    error.Set("code", JsonValue(StatusCodeToString(result.status().code())));
    error.Set("message", JsonValue(result.status().message()));
    response.Set("error", std::move(error));
  }
  return response;
}

std::string Server::HandleLine(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos || line[begin] == '#') return std::string();
  Result<JsonValue> request = ParseJson(line);
  if (!request.ok()) {
    JsonValue response = JsonValue::MakeObject();
    response.Set("ok", JsonValue(false));
    JsonValue error = JsonValue::MakeObject();
    error.Set("code",
              JsonValue(StatusCodeToString(request.status().code())));
    error.Set("message", JsonValue(request.status().message()));
    response.Set("error", std::move(error));
    return response.Dump();
  }
  return HandleRequest(request.value()).Dump();
}

void Server::RunStdio(std::istream& in, std::ostream& out) {
  std::string line;
  while (!stopping_.load() && std::getline(in, line)) {
    const std::string response = HandleLine(line);
    if (response.empty()) continue;
    out << response << "\n";
    out.flush();
  }
}

void Server::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  // The stopping_ check sits *after* draining buffered lines, so a
  // pipelined `shutdown` request still gets its response before the
  // handler closes the socket.
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      std::string response = HandleLine(line);
      if (response.empty()) continue;
      response.push_back('\n');
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t w =
            ::send(fd, response.data() + sent, response.size() - sent, 0);
        if (w <= 0) break;
        sent += static_cast<size_t>(w);
      }
    }
    if (stopping_.load()) break;
  }
  // Sign off entirely under the lock — erase before close (so Stop never
  // kicks a recycled descriptor), notify before unlocking (so the last
  // signal lands strictly before ~Server can tear the cv down) — and touch
  // no member afterwards: this thread is detached.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
    if (*it == fd) {
      conn_fds_.erase(it);
      break;
    }
  }
  ::close(fd);
  --active_connections_;
  conn_cv_.notify_all();
}

Status Server::ServeTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    bound_port_.store(-2);
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  // Loopback only: the protocol carries no authentication.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(StrFormat("bind: %s", std::strerror(errno)));
    ::close(fd);
    bound_port_.store(-2);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    bound_port_.store(-2);
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_.store(fd);
  bound_port_.store(static_cast<int>(ntohs(addr.sin_port)));

  while (!stopping_.load()) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (Stop) or fatal accept error
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(client);
      ++active_connections_;
    }
    // Detached: the handler signs itself off via active_connections_, so
    // a long-lived server never accumulates finished thread handles.
    std::thread([this, client] { HandleConnection(client); }).detach();
  }

  ::close(fd);
  listen_fd_.store(-1);
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    // SHUT_RD, not RDWR: blocked recv calls return 0, but the send half
    // stays open so a response in flight (e.g. the shutdown ack itself)
    // still reaches its client before the handler closes.
    for (const int client : conn_fds_) ::shutdown(client, SHUT_RD);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  bound_port_.store(-2);
  return Status::OK();
}

void Server::RequestStop() {
  stopping_.store(true);
  const int fd = listen_fd_.load();
  if (fd >= 0) {
    // Wakes the accept loop; the fd itself is closed by ServeTcp. shutdown
    // is async-signal-safe, so this whole function may run from a signal
    // handler.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Server::Stop() {
  RequestStop();
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int client : conn_fds_) {
    ::shutdown(client, SHUT_RDWR);
  }
}

}  // namespace cpclean
