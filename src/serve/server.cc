#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "knn/kernel_simd.h"
#include "serve/event_loop.h"
#include "serve/op_registry.h"
#include "serve/request_params.h"

namespace cpclean {

namespace {

/// The persisted creation spec: the request's parameters without the
/// transport fields (`id`, `op`) — exactly what `BuildTaskFromSpec` and
/// `ServeSessionOptionsFromRequest` consume again on rehydration.
JsonValue SpecFromRequest(const JsonValue& req) {
  JsonValue spec = JsonValue::MakeObject();
  for (const JsonValue::Member& member : req.object()) {
    if (member.first == "id" || member.first == "op") continue;
    spec.Set(member.first, member.second);
  }
  return spec;
}

/// Where `--storage-mode=mmap` puts its unlinked scratch files: the data
/// dir when one is configured (same filesystem the sessions persist to),
/// else the system temp dir. Empty (RAM mode) for any other mode string —
/// flag validation happens at the CLI.
std::string ResolveScratchDir(const ServerOptions& options) {
  if (options.storage_mode != "mmap") return std::string();
  if (!options.data_dir.empty()) return options.data_dir;
  std::error_code ec;
  const std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  return ec ? std::string(".") : tmp.string();
}

SessionStoreOptions StoreOptionsFrom(const ServerOptions& options) {
  SessionStoreOptions store;
  store.data_dir = options.data_dir;
  store.max_sessions = options.max_sessions;
  store.default_cache_capacity = options.default_cache_capacity;
  store.log_compact_bytes = options.log_compact_bytes;
  store.mmap_scratch_dir = ResolveScratchDir(options);
  return store;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      store_(StoreOptionsFrom(options)),
      start_ns_(MonotonicNowNs()) {
  // Faults asked for in the environment apply to every transport this
  // server runs (a no-op unless CPCLEAN_FAULTS is set).
  FaultInjection::InitFromEnv();
}

Server::~Server() {
  Stop();
  // Backstop for destruction while ServeTcp is still winding down on
  // another thread: the event loop references this object, so wait for
  // ServeTcp to sign off.
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [this] { return !serving_; });
}

Result<std::shared_ptr<ServeSession>> Server::FindSession(
    const std::string& name) {
  // Fast path, no lifecycle lock: live sessions answer queries without
  // ever contending with lifecycle transitions.
  Result<std::shared_ptr<ServeSession>> live = registry_.Get(name);
  if (live.ok() || !store_.enabled() || !store_.Saved(name)) return live;
  // Evicted (or persisted by a previous process): rehydrate lazily. The
  // expensive load (task rebuild + cleaning replay) runs OUTSIDE the
  // lifecycle lock so a slow rehydration cannot stall every other
  // lifecycle transition; publication re-validates under the lock.
  CP_ASSIGN_OR_RETURN(std::shared_ptr<ServeSession> session,
                      store_.Load(name));
  {
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
    live = registry_.Get(name);  // re-check: another request rehydrated it
    if (live.ok()) return live;
    if (!store_.Saved(name)) {
      // A drop_session raced the load: publishing our copy would resurrect
      // a session the client was told is gone.
      return Status::NotFound(StrFormat(
          "session \"%s\" was dropped while being rehydrated", name.c_str()));
    }
    CP_RETURN_NOT_OK(registry_.Insert(session));
  }
  // Rehydration can push the registry over capacity in turn; the sweep
  // runs after the lifecycle lock is released (it takes the lock itself
  // around its commit). Best effort: if the sweep's victim fails to save,
  // the registry stays briefly over capacity rather than failing this
  // (unrelated) request — the next create_session surfaces the store
  // error.
  (void)store_.EnforceCapacity(registry_, lifecycle_mu_);
  return session;
}

Result<JsonValue> Server::CreateSession(const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string name, RequestString(req, "session"));
  // Admission before the (expensive) task build: a full session table with
  // no disk to evict into must refuse loudly, not grow without bound.
  if (options_.max_sessions > 0 && !store_.enabled() &&
      registry_.size() >= options_.max_sessions) {
    return Status::Unavailable(StrFormat(
        "session table is full (--max-sessions=%d) and no --data-dir is "
        "configured to evict into",
        static_cast<int>(options_.max_sessions)));
  }
  if (registry_.Get(name).ok() || store_.Saved(name)) {
    return Status::AlreadyExists(
        StrFormat("session \"%s\" already exists", name.c_str()));
  }
  CP_ASSIGN_OR_RETURN(
      ServeSessionOptions options,
      ServeSessionOptionsFromRequest(req, options_.default_cache_capacity));
  // Working storage is server policy (the --storage-mode flag), never part
  // of the client spec — rehydration applies the same resolution.
  options.mmap_scratch_dir = ResolveScratchDir(options_);
  CP_ASSIGN_OR_RETURN(CleaningTask task, BuildTaskFromSpec(req));
  // Build AND prime the session outside the lock (task construction and
  // Make's certainty sweep are the expensive parts); only publish +
  // capacity sweep are a lifecycle transition. The unlocked admission
  // pre-check earlier only avoids wasted builds; over-capacity is decided
  // authoritatively under the lock.
  CP_ASSIGN_OR_RETURN(
      const std::shared_ptr<ServeSession> session,
      ServeSession::Make(name, std::move(task), options,
                         SpecFromRequest(req)));
  {
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
    if (store_.Saved(name)) {
      // Re-checked under the lock: the name may have been created AND
      // evicted by others while we were building the task; creating over
      // its snapshot would fork two incarnations of one name.
      return Status::AlreadyExists(
          StrFormat("session \"%s\" already exists", name.c_str()));
    }
    CP_RETURN_NOT_OK(registry_.Insert(session));
    if (options_.max_sessions > 0 && !store_.enabled() &&
        registry_.size() > options_.max_sessions) {
      // Authoritative admission, decided under the lock (the unlocked
      // pre-check earlier only avoids wasted builds): with no disk to
      // evict into, over-capacity rolls the insert back and refuses.
      (void)registry_.Drop(session->name());
      return Status::Unavailable(StrFormat(
          "session table is full (--max-sessions=%d) and no --data-dir is "
          "configured to evict into",
          static_cast<int>(options_.max_sessions)));
    }
  }
  // The capacity sweep runs outside the lifecycle lock (snapshot
  // serialization and writer drain are the expensive parts; the sweep
  // takes the lock itself around its commit).
  const Result<std::vector<std::string>> evicted =
      store_.EnforceCapacity(registry_, lifecycle_mu_);
  if (!evicted.ok()) {
    // The eviction victim's save failed (disk full, unwritable data dir):
    // roll the new session back so an error response never leaves state
    // behind, and the registry honors --max-sessions.
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
    (void)registry_.Drop(session->name());
    return evicted.status();
  }

  const CleaningTask& bound = session->task();
  JsonValue out = JsonValue::MakeObject();
  out.Set("session", JsonValue(session->name()));
  out.Set("train", JsonValue(bound.incomplete.num_examples()));
  out.Set("dirty", JsonValue(static_cast<int>(bound.DirtyRows().size())));
  out.Set("val", JsonValue(static_cast<int>(bound.val_x.size())));
  out.Set("test", JsonValue(static_cast<int>(bound.test_x.size())));
  out.Set("dim", JsonValue(bound.incomplete.dim()));
  out.Set("labels", JsonValue(bound.incomplete.num_labels()));
  out.Set("log2_worlds",
          JsonValue(bound.incomplete.Log2NumPossibleWorlds()));
  return out;
}

Result<JsonValue> Server::BatchQuery(
    const JsonValue& req,
    const std::function<Result<JsonValue>(
        ServeSession&, const std::vector<double>&)>& one) {
  CP_ASSIGN_OR_RETURN(const std::string name, RequestSessionName(req));
  CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session,
                      FindSession(name));
  CP_ASSIGN_OR_RETURN(
      const std::vector<std::vector<double>> points,
      ResolveRequestPoints(
          req, [&session](int index) { return session->ValPoint(index); }));
  JsonValue results = JsonValue::MakeArray();
  for (const std::vector<double>& point : points) {
    CP_ASSIGN_OR_RETURN(JsonValue value, one(*session, point));
    results.Append(std::move(value));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("count", JsonValue(static_cast<int>(points.size())));
  out.Set("results", std::move(results));
  return out;
}

Result<JsonValue> Server::ListSessions(const JsonValue& req) {
  (void)req;
  JsonValue out = JsonValue::MakeObject();
  const std::vector<std::string> live = registry_.Names();
  JsonValue names = JsonValue::MakeArray();
  for (const std::string& n : live) names.Append(JsonValue(n));
  out.Set("sessions", std::move(names));
  if (store_.enabled()) {
    // Evicted sessions still own their names (create_session refuses
    // them; any query rehydrates them), so the listing must show them —
    // a client seeing only the live list would conclude the name is
    // free.
    JsonValue evicted = JsonValue::MakeArray();
    for (const std::string& n : store_.SavedNames()) {
      if (std::find(live.begin(), live.end(), n) == live.end()) {
        evicted.Append(JsonValue(n));
      }
    }
    out.Set("evicted", std::move(evicted));
  }
  // What this server build answers, grouped by concurrency class — the
  // same registry-derived object an evicted session's stats stub reports.
  out.Set("capabilities", OpCapabilities());
  return out;
}

Result<JsonValue> Server::DropSession(const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string name, RequestString(req, "session"));
  // Dropping is a full discard: the snapshot goes too (eviction is the op
  // that keeps it). Snapshot first, live entry second — the reverse order
  // would let a concurrent request's lazy rehydration resurrect the
  // session from the not-yet-deleted snapshot after the registry drop —
  // and the whole discard is one lifecycle transition, so no concurrent
  // save or eviction sweep can re-write the snapshot mid-drop.
  // Either form existing counts as a successful drop.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  bool deleted_snapshot = false;
  if (store_.enabled() && store_.Saved(name)) {
    const Status deleted = store_.Delete(name);
    if (deleted.ok()) {
      deleted_snapshot = true;
    } else if (deleted.code() != StatusCode::kNotFound) {
      // An undeletable snapshot (read-only data dir) must fail the drop:
      // reporting success while a rehydratable file remains would let the
      // "discarded" session resurrect on the next request. NotFound just
      // means another drop raced us — fine.
      return deleted;
    }
  }
  const Status dropped_live = registry_.Drop(name);
  if (!dropped_live.ok() && !deleted_snapshot) return dropped_live;
  JsonValue out = JsonValue::MakeObject();
  out.Set("dropped", JsonValue(name));
  out.Set("deleted_snapshot", JsonValue(deleted_snapshot));
  return out;
}

Result<JsonValue> Server::SaveSession(const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string name, RequestString(req, "session"));
  if (!store_.enabled()) {
    return Status::Unavailable(
        "session persistence is disabled (no --data-dir)");
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("saved", JsonValue(name));
  out.Set("path", JsonValue(store_.PathFor(name)));
  const Result<std::shared_ptr<ServeSession>> live = registry_.Get(name);
  if (!live.ok() && store_.Saved(name)) {
    // Already evicted: its snapshot IS its current state — rehydrating a
    // whole session just to rewrite an identical file would be pure waste
    // (and would churn the LRU sweep).
    out.Set("state", JsonValue("evicted"));
    return out;
  }
  CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session, live);
  // The store serializes OUTSIDE the lifecycle lock (serialization blocks
  // on the session's shared_mutex — a long clean_run could hold that for
  // a while — and unrelated lifecycle ops must not queue behind it); only
  // the disk commit is a lifecycle transition, gated on the re-validation
  // callback below running under the lock.
  bool evicted_during_save = false;
  const Status saved = store_.Save(
      *session, /*write_seq_out=*/nullptr, &lifecycle_mu_,
      [&]() -> Status {
        const Result<std::shared_ptr<ServeSession>> current =
            registry_.Get(name);
        if (current.ok() && current.value().get() == session.get()) {
          return Status::OK();
        }
        if (store_.Saved(name)) {
          // Evicted while we serialized; the sweep's save is at least as
          // fresh as ours. Abort the commit and keep it.
          evicted_during_save = true;
          return Status::Unavailable("evicted during save");
        }
        // Dropped while we serialized: committing now would resurrect it.
        return Status::NotFound(StrFormat(
            "session \"%s\" was dropped while being saved", name.c_str()));
      });
  if (evicted_during_save) {
    out.Set("state", JsonValue("evicted"));
    return out;
  }
  CP_RETURN_NOT_OK(saved);
  out.Set("state", JsonValue("live"));
  return out;
}

Result<JsonValue> Server::LoadSession(const JsonValue& req) {
  CP_ASSIGN_OR_RETURN(const std::string name, RequestString(req, "session"));
  if (registry_.Get(name).ok()) {
    return Status::AlreadyExists(StrFormat(
        "session \"%s\" is already live", name.c_str()));
  }
  // As in FindSession: load outside the lifecycle lock, publish under it.
  CP_ASSIGN_OR_RETURN(const std::shared_ptr<ServeSession> session,
                      store_.Load(name));
  {
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
    if (!store_.Saved(name)) {
      return Status::NotFound(StrFormat(
          "session \"%s\" was dropped while being rehydrated", name.c_str()));
    }
    const Status inserted = registry_.Insert(session);
    if (!inserted.ok()) return inserted;
  }
  // Best effort, as in FindSession: the explicit load succeeded even if
  // the capacity sweep could not save its victim.
  (void)store_.EnforceCapacity(registry_, lifecycle_mu_);
  // The full session snapshot doubles as the load summary (progress,
  // resolved options, version).
  return session->Stats();
}

Result<JsonValue> Server::Stats(const JsonValue& req) {
  const JsonValue* name = req.Find("session");
  if (name != nullptr) {
    CP_ASSIGN_OR_RETURN(const std::string session_name,
                        RequestString(req, "session"));
    // Deliberately NOT FindSession: monitoring an evicted session must not
    // rehydrate it (a full task rebuild) or stamp it recently-used — a
    // stats poll over every known session would otherwise churn the LRU
    // sweep. Evicted sessions answer a stub instead.
    Result<std::shared_ptr<ServeSession>> live =
        registry_.Get(session_name);
    if (live.ok()) return live.value()->Stats();
    if (store_.enabled() && store_.Saved(session_name)) {
      JsonValue out = JsonValue::MakeObject();
      out.Set("name", JsonValue(session_name));
      out.Set("state", JsonValue("evicted"));
      out.Set("path", JsonValue(store_.PathFor(session_name)));
      // The stub still advertises what the session will answer once
      // rehydrated — the same registry-derived object list_sessions
      // reports, so monitoring sees one consistent capability surface.
      out.Set("capabilities", OpCapabilities());
      return out;
    }
    return live.status();
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("sessions", JsonValue(static_cast<int>(registry_.size())));
  JsonValue names = JsonValue::MakeArray();
  for (const std::string& n : registry_.Names()) names.Append(JsonValue(n));
  out.Set("names", std::move(names));
  out.Set("pool_threads", JsonValue(GlobalThreadPoolThreads()));
  // The similarity-kernel dispatch level every session on this process
  // runs at (bit-identical across levels, but operators of a forced fleet
  // need to see what resolved).
  out.Set("simd_level", JsonValue(SimdLevelName(simd::ActiveSimdLevel())));
  out.Set("max_sessions",
          JsonValue(static_cast<uint64_t>(options_.max_sessions)));
  out.Set("data_dir", JsonValue(options_.data_dir));
  if (store_.enabled()) {
    JsonValue saved = JsonValue::MakeArray();
    for (const std::string& n : store_.SavedNames()) {
      saved.Append(JsonValue(n));
    }
    out.Set("saved", std::move(saved));
  }
  // Degraded read-only mode: true while the data dir is unwritable (saves
  // and eviction fail; queries keep serving). Polling stats doubles as the
  // heal check — once the write backoff elapses, this call re-probes the
  // disk, so a healed dir clears here without waiting for the next save.
  out.Set("degraded", JsonValue(store_.CheckDegraded()));
  JsonValue connections = JsonValue::MakeObject();
  connections.Set("active",
                  JsonValue(transport_counters_.active_connections.load(
                      std::memory_order_relaxed)));
  connections.Set("max", JsonValue(options_.max_connections));
  connections.Set("rejected",
                  JsonValue(transport_counters_.rejected_connections.load(
                      std::memory_order_relaxed)));
  connections.Set("pollers", JsonValue(options_.poller_threads));
  // As configured (0 = hardware concurrency), NOT resolved: stats output
  // stays machine-independent, which the scripted smoke diffs rely on.
  connections.Set("request_workers", JsonValue(options_.request_workers));
  // The thread count actually running (configured value resolved against
  // hardware concurrency) — what capacity planning needs; the smoke
  // normalizer masks it.
  connections.Set("request_workers_actual",
                  JsonValue(options_.request_workers > 0
                                ? options_.request_workers
                                : ThreadPool::HardwareThreads()));
  connections.Set("max_inflight", JsonValue(options_.max_inflight));
  connections.Set("inflight",
                  JsonValue(transport_counters_.inflight_requests.load(
                      std::memory_order_relaxed)));
  connections.Set("rejected_requests",
                  JsonValue(transport_counters_.rejected_requests.load(
                      std::memory_order_relaxed)));
  connections.Set("coalesced_q2",
                  JsonValue(transport_counters_.coalesced_requests.load(
                      std::memory_order_relaxed)));
  connections.Set("deadline_expired",
                  JsonValue(transport_counters_.deadline_expired.load(
                      std::memory_order_relaxed)));
  connections.Set("idle_reaped",
                  JsonValue(transport_counters_.idle_reaped.load(
                      std::memory_order_relaxed)));
  connections.Set("oversized_requests",
                  JsonValue(transport_counters_.oversized_requests.load(
                      std::memory_order_relaxed)));
  connections.Set("overflow_closed",
                  JsonValue(transport_counters_.output_overflow_closed.load(
                      std::memory_order_relaxed)));
  out.Set("connections", std::move(connections));
  out.Set("uptime_ms",
          JsonValue(static_cast<uint64_t>((MonotonicNowNs() - start_ns_) /
                                          1000000ULL)));
  return out;
}

Result<JsonValue> Server::Metrics(const JsonValue& req) {
  (void)req;
  const MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  JsonValue out = JsonValue::MakeObject();
  JsonValue counters = JsonValue::MakeObject();
  for (const auto& c : snapshot.counters) {
    counters.Set(c.first, JsonValue(c.second));
  }
  out.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::MakeObject();
  for (const auto& g : snapshot.gauges) {
    gauges.Set(g.first, JsonValue(g.second));
  }
  out.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::MakeObject();
  for (const auto& h : snapshot.histograms) {
    JsonValue hist = JsonValue::MakeObject();
    hist.Set("count", JsonValue(h.second.count));
    hist.Set("sum_ns", JsonValue(h.second.sum));
    hist.Set("min_ns", JsonValue(h.second.count > 0 ? h.second.min : 0));
    hist.Set("max_ns", JsonValue(h.second.count > 0 ? h.second.max : 0));
    hist.Set("p50_ns",
             JsonValue(static_cast<uint64_t>(h.second.Quantile(0.5))));
    hist.Set("p90_ns",
             JsonValue(static_cast<uint64_t>(h.second.Quantile(0.9))));
    hist.Set("p99_ns",
             JsonValue(static_cast<uint64_t>(h.second.Quantile(0.99))));
    hist.Set("p999_ns",
             JsonValue(static_cast<uint64_t>(h.second.Quantile(0.999))));
    histograms.Set(h.first, std::move(hist));
  }
  out.Set("histograms", std::move(histograms));
  // Newest-last ring of completed request spans (TCP transport only — the
  // stdio transport has no flush phase to time).
  JsonValue spans = JsonValue::MakeArray();
  for (const RequestSpan& s : GlobalSpanRing().Snapshot()) {
    JsonValue span = JsonValue::MakeObject();
    span.Set("op", JsonValue(std::string(s.op)));
    span.Set("total_ns", JsonValue(s.total_ns));
    JsonValue phases = JsonValue::MakeObject();
    for (int p = 0; p < kSpanPhaseCount; ++p) {
      phases.Set(SpanPhaseName(static_cast<SpanPhase>(p)),
                 JsonValue(s.phase_ns[p]));
    }
    span.Set("phases", std::move(phases));
    spans.Append(std::move(span));
  }
  out.Set("spans", std::move(spans));
  // Per-site fault-injection hit/fire counts, mirrored from fault_inject
  // so monitoring never has to arm the (gated) fault op just to read them.
  JsonValue sites = JsonValue::MakeArray();
  for (const FaultInjection::SiteStats& stats : FaultInjection::Stats()) {
    JsonValue site = JsonValue::MakeObject();
    site.Set("site", JsonValue(stats.site));
    site.Set("hits", JsonValue(stats.hits));
    site.Set("fires", JsonValue(stats.fires));
    sites.Append(std::move(site));
  }
  out.Set("fault_sites", std::move(sites));
  out.Set("slow_request_ms", JsonValue(options_.slow_request_ms));
  return out;
}

Result<JsonValue> Server::FaultInject(const JsonValue& req) {
  // Test-only: refused unless the operator opted in (CPCLEAN_FAULTS in the
  // environment, even empty) or a test armed it in-process — a production
  // client must not be able to start injecting faults over the wire.
  if (!FaultInjection::OpsArmed()) {
    return Status::Unavailable(
        "fault_inject is disabled (start the server with CPCLEAN_FAULTS "
        "set to arm it)");
  }
  const JsonValue* config = req.Find("config");
  if (config != nullptr) {
    if (!config->is_string()) {
      return Status::InvalidArgument("\"config\" must be a string");
    }
    // Replaces all rules; "" clears them. Syntax: see fault_injection.h
    // (e.g. "seed=7;store.rename=once;el.send=p:0.25").
    CP_RETURN_NOT_OK(FaultInjection::Configure(config->string_value()));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("active", JsonValue(FaultInjection::Active()));
  JsonValue sites = JsonValue::MakeArray();
  for (const FaultInjection::SiteStats& stats : FaultInjection::Stats()) {
    JsonValue site = JsonValue::MakeObject();
    site.Set("site", JsonValue(stats.site));
    site.Set("hits", JsonValue(stats.hits));
    site.Set("fires", JsonValue(stats.fires));
    sites.Append(std::move(site));
  }
  out.Set("sites", std::move(sites));
  return out;
}

Result<JsonValue> Server::Dispatch(const std::string& op,
                                   const JsonValue& req) {
  // Registry-driven routing: the op's registry row carries its handler,
  // classification, and metrics label — there is no per-op dispatch code
  // to keep in sync here.
  const OpInfo* info = FindOp(op);
  if (info == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown op \"%s\" (supported: %s)", op.c_str(),
                  SupportedOpsList().c_str()));
  }
  // Counted against the registered name (a bounded label set), never the
  // raw client string.
  OpRequestCounter(*info).Add(1);
  return info->handler(*this, req);
}

JsonValue Server::HandleRequest(const JsonValue& request) {
  JsonValue response = JsonValue::MakeObject();
  if (request.is_object()) {
    const JsonValue* id = request.Find("id");
    if (id != nullptr) response.Set("id", *id);
  }
  // Protocol version, stamped on every response (success, error, and the
  // parse-error path in HandleLine alike) so clients can gate on it.
  response.Set("proto", JsonValue(1));
  Result<JsonValue> result = [&]() -> Result<JsonValue> {
    if (!request.is_object()) {
      return Status::InvalidArgument("request must be a JSON object");
    }
    CP_ASSIGN_OR_RETURN(const std::string op, RequestString(request, "op"));
    return Dispatch(op, request);
  }();
  if (result.ok()) {
    response.Set("ok", JsonValue(true));
    response.Set("result", std::move(result).value());
  } else {
    response.Set("ok", JsonValue(false));
    JsonValue error = JsonValue::MakeObject();
    error.Set("code", JsonValue(StatusCodeToString(result.status().code())));
    error.Set("message", JsonValue(result.status().message()));
    response.Set("error", std::move(error));
  }
  return response;
}

std::string Server::HandleLine(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos || line[begin] == '#') return std::string();
  Result<JsonValue> request = ParseJson(line);
  if (!request.ok()) {
    JsonValue response = JsonValue::MakeObject();
    response.Set("proto", JsonValue(1));
    response.Set("ok", JsonValue(false));
    JsonValue error = JsonValue::MakeObject();
    error.Set("code",
              JsonValue(StatusCodeToString(request.status().code())));
    error.Set("message", JsonValue(request.status().message()));
    response.Set("error", std::move(error));
    return response.Dump();
  }
  return HandleRequest(request.value()).Dump();
}

void Server::RunStdio(std::istream& in, std::ostream& out) {
  std::string line;
  while (!stopping_.load() && std::getline(in, line)) {
    const std::string response = HandleLine(line);
    if (response.empty()) continue;
    out << response << "\n";
    out.flush();
  }
}

Status Server::ServeTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    bound_port_.store(-2);
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  // Loopback only: the protocol carries no authentication.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(StrFormat("bind: %s", std::strerror(errno)));
    ::close(fd);
    bound_port_.store(-2);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    bound_port_.store(-2);
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  // The /metrics HTTP listener (loopback, same event loop). Bound before
  // the main port is published so a client that saw both ports can scrape
  // immediately.
  int metrics_fd = -1;
  if (options_.metrics_port >= 0) {
    metrics_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (metrics_fd < 0) {
      ::close(fd);
      bound_port_.store(-2);
      return Status::IoError(
          StrFormat("metrics socket: %s", std::strerror(errno)));
    }
    ::setsockopt(metrics_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in maddr;
    std::memset(&maddr, 0, sizeof(maddr));
    maddr.sin_family = AF_INET;
    maddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    maddr.sin_port = htons(static_cast<uint16_t>(options_.metrics_port));
    if (::bind(metrics_fd, reinterpret_cast<sockaddr*>(&maddr),
               sizeof(maddr)) != 0 ||
        ::listen(metrics_fd, SOMAXCONN) != 0) {
      const Status status = Status::IoError(
          StrFormat("metrics bind/listen: %s", std::strerror(errno)));
      ::close(metrics_fd);
      ::close(fd);
      bound_port_.store(-2);
      return status;
    }
    socklen_t mlen = sizeof(maddr);
    ::getsockname(metrics_fd, reinterpret_cast<sockaddr*>(&maddr), &mlen);
    bound_metrics_port_.store(static_cast<int>(ntohs(maddr.sin_port)));
  }

  listen_fd_.store(fd);
  bound_port_.store(static_cast<int>(ntohs(addr.sin_port)));

  EventLoopOptions loop_options;
  loop_options.poller_threads = options_.poller_threads;
  loop_options.request_workers = options_.request_workers;
  loop_options.max_connections = options_.max_connections;
  loop_options.max_inflight = options_.max_inflight;
  loop_options.coalesce_q2 = options_.coalesce_q2;
  loop_options.request_timeout_ms = options_.request_timeout_ms;
  loop_options.idle_timeout_ms = options_.idle_timeout_ms;
  loop_options.max_request_bytes = options_.max_request_bytes;
  loop_options.output_hwm_bytes = options_.output_hwm_bytes;
  loop_options.max_output_bytes = options_.max_output_bytes;
  loop_options.metrics_listen_fd = metrics_fd;  // loop owns it from here
  loop_options.slow_request_ms = options_.slow_request_ms;
  loop_options.slow_log = options_.slow_log;
  EventLoop loop(this, fd, loop_options);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    loop_ = &loop;
    serving_ = true;
  }
  // The event loop owns the listener fd from here (it closes it); this
  // thread becomes poller 0 until the transport winds down.
  const Status status = loop.Run();
  listen_fd_.store(-1);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    loop_ = nullptr;
    serving_ = false;
  }
  conn_cv_.notify_all();
  bound_port_.store(-2);
  bound_metrics_port_.store(-1);
  return status;
}

void Server::RequestStop() {
  stopping_.store(true);
  const int fd = listen_fd_.load();
  if (fd >= 0) {
    // Wakes the accept loop; the fd itself is closed by ServeTcp. shutdown
    // is async-signal-safe, so this whole function may run from a signal
    // handler.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Server::Stop() {
  RequestStop();
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (loop_ != nullptr) loop_->HardStop();
}

}  // namespace cpclean
