#include "serve/request_params.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/string_util.h"

namespace cpclean {

Result<std::string> RequestString(const JsonValue& req, const char* key) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(StrFormat("missing field \"%s\"", key));
  }
  if (!v->is_string()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a string", key));
  }
  return v->string_value();
}

Result<std::string> RequestStringOr(const JsonValue& req, const char* key,
                                    const std::string& fallback) {
  if (req.Find(key) == nullptr) return fallback;
  return RequestString(req, key);
}

Result<int64_t> RequestIntOr(const JsonValue& req, const char* key,
                             int64_t fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a number", key));
  }
  const double n = v->number_value();
  if (std::floor(n) != n || n < -9007199254740992.0 ||
      n > 9007199254740992.0) {
    return Status::InvalidArgument(
        StrFormat("\"%s\" must be an integer", key));
  }
  return static_cast<int64_t>(n);
}

Result<int> RequestIntParam(const JsonValue& req, const char* key,
                            int fallback) {
  CP_ASSIGN_OR_RETURN(const int64_t n, RequestIntOr(req, key, fallback));
  if (n < std::numeric_limits<int>::min() ||
      n > std::numeric_limits<int>::max()) {
    return Status::OutOfRange(
        StrFormat("\"%s\" = %lld does not fit in an int", key,
                  static_cast<long long>(n)));
  }
  return static_cast<int>(n);
}

Result<double> RequestDoubleOr(const JsonValue& req, const char* key,
                               double fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a number", key));
  }
  return v->number_value();
}

Result<bool> RequestBoolOr(const JsonValue& req, const char* key,
                           bool fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a bool", key));
  }
  return v->bool_value();
}

Result<std::string> RequestSessionName(const JsonValue& req) {
  return RequestString(req, "session");
}

Result<int> RequestSteps(const JsonValue& req) {
  return RequestIntParam(req, "steps", 1);
}

Result<int> RequestBudget(const JsonValue& req) {
  return RequestIntParam(req, "budget", -1);
}

Result<std::vector<std::vector<double>>> ResolveRequestPoints(
    const JsonValue& req,
    const std::function<Result<std::vector<double>>(int)>& val_point) {
  const JsonValue* points = req.Find("points");
  const JsonValue* indices = req.Find("val_indices");
  if ((points == nullptr) == (indices == nullptr)) {
    return Status::InvalidArgument(
        "exactly one of \"points\" or \"val_indices\" is required");
  }
  std::vector<std::vector<double>> out;
  if (points != nullptr) {
    if (!points->is_array()) {
      return Status::InvalidArgument("\"points\" must be an array of arrays");
    }
    out.reserve(points->array().size());
    for (const JsonValue& p : points->array()) {
      if (!p.is_array()) {
        return Status::InvalidArgument(
            "\"points\" must be an array of arrays");
      }
      std::vector<double> features;
      features.reserve(p.array().size());
      for (const JsonValue& x : p.array()) {
        if (!x.is_number()) {
          return Status::InvalidArgument(
              "\"points\" features must be numbers");
        }
        features.push_back(x.number_value());
      }
      out.push_back(std::move(features));
    }
  } else {
    if (!indices->is_array()) {
      return Status::InvalidArgument("\"val_indices\" must be an array");
    }
    out.reserve(indices->array().size());
    for (const JsonValue& x : indices->array()) {
      const double n = x.is_number() ? x.number_value() : -1.0;
      if (!x.is_number() || std::floor(n) != n || n < 0.0 ||
          n > static_cast<double>(std::numeric_limits<int>::max())) {
        return Status::InvalidArgument(
            "\"val_indices\" must hold non-negative integers");
      }
      CP_ASSIGN_OR_RETURN(std::vector<double> point,
                          val_point(static_cast<int>(n)));
      out.push_back(std::move(point));
    }
  }
  return out;
}

}  // namespace cpclean
