#include "serve/request_params.h"

#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace cpclean {

Result<std::string> RequestString(const JsonValue& req, const char* key) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(StrFormat("missing field \"%s\"", key));
  }
  if (!v->is_string()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a string", key));
  }
  return v->string_value();
}

Result<std::string> RequestStringOr(const JsonValue& req, const char* key,
                                    const std::string& fallback) {
  if (req.Find(key) == nullptr) return fallback;
  return RequestString(req, key);
}

Result<int64_t> RequestIntOr(const JsonValue& req, const char* key,
                             int64_t fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a number", key));
  }
  const double n = v->number_value();
  if (std::floor(n) != n || n < -9007199254740992.0 ||
      n > 9007199254740992.0) {
    return Status::InvalidArgument(
        StrFormat("\"%s\" must be an integer", key));
  }
  return static_cast<int64_t>(n);
}

Result<int> RequestIntParam(const JsonValue& req, const char* key,
                            int fallback) {
  CP_ASSIGN_OR_RETURN(const int64_t n, RequestIntOr(req, key, fallback));
  if (n < std::numeric_limits<int>::min() ||
      n > std::numeric_limits<int>::max()) {
    return Status::OutOfRange(
        StrFormat("\"%s\" = %lld does not fit in an int", key,
                  static_cast<long long>(n)));
  }
  return static_cast<int>(n);
}

Result<double> RequestDoubleOr(const JsonValue& req, const char* key,
                               double fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a number", key));
  }
  return v->number_value();
}

Result<bool> RequestBoolOr(const JsonValue& req, const char* key,
                           bool fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument(StrFormat("\"%s\" must be a bool", key));
  }
  return v->bool_value();
}

}  // namespace cpclean
