#ifndef CPCLEAN_SERVE_RESULT_CACHE_H_
#define CPCLEAN_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/json.h"

namespace cpclean {

/// LRU cache for per-session CP query results.
///
/// Keys are built by `QueryCacheKey` from everything that determines a
/// query's answer — the operation, a 64-bit hash of the test point's raw
/// double bytes, k, and the kernel name. Each entry additionally records
/// the `IncompleteDataset::version()` it was computed against; a lookup
/// whose version differs evicts the entry and reports an invalidation, so
/// a cleaning step (FixExample bumps the version) precisely invalidates
/// every answer computed over the superseded possible-world space while
/// answers for the untouched version keep hitting.
///
/// Internally synchronized: the session lock is only *shared* for read
/// ops, so concurrent readers race on the map and the LRU list. A single
/// mutex guards the structures (lookups still mutate recency order) and
/// the counters are atomics, readable lock-free by the `stats` op. Two
/// readers that miss the same key concurrently both compute and both
/// insert; the results are deterministic, so the second insert is a
/// same-bits refresh.
class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;      // capacity pressure
    uint64_t invalidations = 0;  // version mismatch
  };

  /// `capacity` = max resident entries; 0 disables caching entirely.
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result for `key` computed at `version`, or nullopt
  /// (counting a miss, and an invalidation if a stale entry was dropped).
  std::optional<JsonValue> Lookup(const std::string& key, uint64_t version);

  /// Inserts (or refreshes) `key` -> `value` computed at `version`,
  /// evicting the least-recently-used entry beyond capacity.
  void Insert(const std::string& key, uint64_t version, JsonValue value);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Counter snapshot (atomic loads; no lock).
  Stats stats() const;

 private:
  struct Entry {
    uint64_t version;
    JsonValue value;
  };
  // Most-recently-used at the front.
  using LruList = std::list<std::pair<std::string, Entry>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> map_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

/// FNV-1a over the point's raw double bytes — collisions are astronomically
/// unlikely within one session's working set, and a collision only costs a
/// wrong cache answer for a query the caller can re-issue uncached.
uint64_t HashPointBytes(const std::vector<double>& point);

/// Canonical cache key: op | kernel | k | max_cleaned | point hash.
std::string QueryCacheKey(const char* op, const std::string& kernel_name,
                          int k, int max_cleaned,
                          const std::vector<double>& point);

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_RESULT_CACHE_H_
