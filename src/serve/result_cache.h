#ifndef CPCLEAN_SERVE_RESULT_CACHE_H_
#define CPCLEAN_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/json.h"

namespace cpclean {

/// LRU cache for per-session CP query results.
///
/// Keys are built by `QueryCacheKey` from everything that determines a
/// query's answer — the operation, a 64-bit hash of the test point's raw
/// double bytes, k, and the kernel name. Each entry additionally records
/// the `IncompleteDataset::version()` it was computed against; a lookup
/// whose version differs evicts the entry and reports an invalidation, so
/// a cleaning step (FixExample bumps the version) precisely invalidates
/// every answer computed over the superseded possible-world space while
/// answers for the untouched version keep hitting.
///
/// Not internally synchronized: the owning session serializes access.
class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;      // capacity pressure
    uint64_t invalidations = 0;  // version mismatch
  };

  /// `capacity` = max resident entries; 0 disables caching entirely.
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result for `key` computed at `version`, or nullopt
  /// (counting a miss, and an invalidation if a stale entry was dropped).
  std::optional<JsonValue> Lookup(const std::string& key, uint64_t version);

  /// Inserts (or refreshes) `key` -> `value` computed at `version`,
  /// evicting the least-recently-used entry beyond capacity.
  void Insert(const std::string& key, uint64_t version, JsonValue value);

  void Clear();

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t version;
    JsonValue value;
  };
  // Most-recently-used at the front.
  using LruList = std::list<std::pair<std::string, Entry>>;

  size_t capacity_;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> map_;
  Stats stats_;
};

/// FNV-1a over the point's raw double bytes — collisions are astronomically
/// unlikely within one session's working set, and a collision only costs a
/// wrong cache answer for a query the caller can re-issue uncached.
uint64_t HashPointBytes(const std::vector<double>& point);

/// Canonical cache key: op | kernel | k | max_cleaned | point hash.
std::string QueryCacheKey(const char* op, const std::string& kernel_name,
                          int k, int max_cleaned,
                          const std::vector<double>& point);

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_RESULT_CACHE_H_
