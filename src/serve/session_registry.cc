#include "serve/session_registry.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cleaning/certify.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/certain_predictor.h"
#include "core/witness.h"
#include "incomplete/serialization.h"
#include "serve/request_params.h"

namespace cpclean {

namespace {

/// Process-wide request sequence: every counted request on any session
/// draws a unique, monotone stamp — the eviction policy's LRU order
/// (wall-clock ms alone ties under bursts).
std::atomic<uint64_t> g_request_seq{0};

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<KernelKind> KernelKindFromName(const std::string& name) {
  if (name == "neg_euclidean") return KernelKind::kNegativeEuclidean;
  if (name == "rbf") return KernelKind::kRbf;
  if (name == "linear") return KernelKind::kLinear;
  if (name == "cosine") return KernelKind::kCosine;
  return Status::InvalidArgument(StrFormat(
      "unknown kernel \"%s\" (expected neg_euclidean, rbf, linear, cosine)",
      name.c_str()));
}

Result<ServeSessionOptions> ServeSessionOptionsFromRequest(
    const JsonValue& req, size_t default_cache_capacity) {
  ServeSessionOptions options;
  CP_ASSIGN_OR_RETURN(options.k, RequestIntParam(req, "k", 3));
  CP_ASSIGN_OR_RETURN(const std::string kernel_name,
                      RequestStringOr(req, "kernel", "neg_euclidean"));
  CP_ASSIGN_OR_RETURN(options.kernel, KernelKindFromName(kernel_name));
  CP_ASSIGN_OR_RETURN(options.gamma, RequestDoubleOr(req, "gamma", 1.0));
  CP_ASSIGN_OR_RETURN(options.num_threads,
                      RequestIntParam(req, "num_threads", 0));
  CP_ASSIGN_OR_RETURN(
      const int64_t cache_capacity,
      RequestIntOr(req, "cache_capacity",
                   static_cast<int64_t>(default_cache_capacity)));
  if (cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must be >= 0");
  }
  options.cache_capacity = static_cast<size_t>(cache_capacity);
  CP_ASSIGN_OR_RETURN(
      const int64_t max_contrib_bytes,
      RequestIntOr(req, "max_contrib_bytes",
                   static_cast<int64_t>(options.max_contrib_bytes)));
  if (max_contrib_bytes < 1) {
    return Status::InvalidArgument("max_contrib_bytes must be >= 1");
  }
  options.max_contrib_bytes = static_cast<size_t>(max_contrib_bytes);
  return options;
}

uint64_t TaskFingerprint(const CleaningTask& task) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const uint64_t prime = 1099511628211ULL;
  const auto mix = [&h, prime](uint64_t v) { h = (h ^ v) * prime; };
  const auto mix_rows = [&](const std::vector<std::vector<double>>& rows) {
    mix(static_cast<uint64_t>(rows.size()));
    for (const std::vector<double>& row : rows) mix(HashPointBytes(row));
  };
  const auto mix_ints = [&](const std::vector<int>& values) {
    mix(static_cast<uint64_t>(values.size()));
    for (const int v : values) mix(static_cast<uint64_t>(v) + 1);
  };
  mix_rows(task.val_x);
  mix_rows(task.test_x);
  mix_ints(task.val_y);
  mix_ints(task.test_y);
  mix_ints(task.train_y);
  mix_ints(task.true_candidate);
  return h;
}

ServeSession::ServeSession(std::string name, CleaningTask task,
                           const ServeSessionOptions& options,
                           JsonValue spec)
    : name_(std::move(name)),
      task_(std::move(task)),
      options_(options),
      spec_(std::move(spec)),
      cache_(options.cache_capacity) {}

Result<std::shared_ptr<ServeSession>> ServeSession::Make(
    std::string name, CleaningTask task, const ServeSessionOptions& options,
    JsonValue spec, bool prime_certainty) {
  if (name.empty()) return Status::InvalidArgument("session name is empty");
  // shared_ptr rather than make_shared: the constructor is private.
  std::shared_ptr<ServeSession> session(new ServeSession(
      std::move(name), std::move(task), options, std::move(spec)));
  session->kernel_ = MakeKernel(options.kernel, options.gamma);
  CpCleanOptions clean_options;
  clean_options.k = options.k;
  clean_options.num_threads = options.num_threads;
  clean_options.max_contrib_bytes = options.max_contrib_bytes;
  // Serving sessions step incrementally; the run-loop bookkeeping knobs
  // (per-step accuracy / entropy traces) stay off.
  clean_options.track_test_accuracy = false;
  clean_options.track_entropy = false;
  CP_ASSIGN_OR_RETURN(
      session->cleaner_,
      CleaningSession::Create(&session->task_, session->kernel_.get(),
                              clean_options));
  // Serving sessions always journal their working-dataset mutations: the
  // session store's delta saves append exactly this journal to the
  // cleaning log. An mmap scratch dir additionally moves the flat slab
  // out of anonymous memory (bit-identical; only paging differs).
  WorkingStorageOptions storage;
  storage.journal = true;
  storage.mmap_scratch_dir = options.mmap_scratch_dir;
  storage.stream_window_bytes = options.stream_window_bytes;
  CP_RETURN_NOT_OK(session->cleaner_->ConfigureWorkingStorage(storage));
  session->engines_ = std::make_unique<EnginePool>(
      &session->cleaner_->working(), options.k);
  // Prime the validation-certainty flags before publishing: they refresh
  // lazily, and every later refresh happens on the write path (StepGreedy /
  // Restore), so read ops — stats included — never mutate cleaning state.
  // Skipped when a RestoreCleaning immediately follows (it refreshes).
  if (prime_certainty) session->cleaner_->FracValCertain();
  session->Touch();
  return session;
}

void ServeSession::Touch() {
  last_request_ms_.store(NowUnixMs(), std::memory_order_relaxed);
  last_request_seq_.store(
      g_request_seq.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
}

Result<std::vector<double>> ServeSession::ValPoint(int index) const {
  if (index < 0 || index >= static_cast<int>(task_.val_x.size())) {
    return Status::OutOfRange(
        StrFormat("val_index %d outside [0, %d)", index,
                  static_cast<int>(task_.val_x.size())));
  }
  return task_.val_x[static_cast<size_t>(index)];
}

template <typename Fn>
Result<JsonValue> ServeSession::Cached(const std::string& key,
                                       uint64_t version, Fn compute) {
  {
    ScopedSpanPhase phase(kSpanCacheLookup);
    if (std::optional<JsonValue> hit = cache_.Lookup(key, version)) {
      return *std::move(hit);
    }
  }
  Result<JsonValue> computed = compute();
  if (computed.ok()) cache_.Insert(key, version, computed.value());
  return computed;
}

Result<JsonValue> ServeSession::Certify(const std::vector<double>& point,
                                        int max_cleaned) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Touch();
  const uint64_t version = cleaner_->working().version();
  const std::string key = QueryCacheKey("certify", kernel_->name(),
                                        options_.k, max_cleaned, point);
  return Cached(key, version, [&]() -> Result<JsonValue> {
    CertifyOptions certify_options;
    certify_options.k = options_.k;
    certify_options.max_cleaned = max_cleaned;
    certify_options.num_threads = options_.num_threads;
    ScopedSpanPhase compute_phase(kSpanKernelCompute);
    CP_ASSIGN_OR_RETURN(
        const CertifyResult certified,
        CertifyOnDataset(cleaner_->working(), task_.true_candidate, point,
                         *kernel_, certify_options));
    JsonValue out = JsonValue::MakeObject();
    out.Set("certified", JsonValue(certified.certified));
    out.Set("label", JsonValue(certified.certain_label));
    out.Set("cleaned", JsonValue::FromInts(certified.cleaned));
    out.Set("version", JsonValue(version));
    return out;
  });
}

Result<JsonValue> ServeSession::Q2(const std::vector<double>& point) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Touch();
  const IncompleteDataset& working = cleaner_->working();
  if (static_cast<int>(point.size()) != working.dim()) {
    return Status::InvalidArgument(
        StrFormat("point has %d features, dataset has %d",
                  static_cast<int>(point.size()), working.dim()));
  }
  const uint64_t version = working.version();
  const std::string key =
      QueryCacheKey("q2", kernel_->name(), options_.k, -1, point);
  return Cached(key, version, [&]() -> Result<JsonValue> {
    // A private engine per concurrent reader; SetTestPoint re-binds when
    // the lease is stamped with a superseded dataset version.
    std::optional<EnginePool::Lease> engine;
    {
      ScopedSpanPhase phase(kSpanEngineAcquire);
      engine.emplace(engines_->Acquire());
    }
    ScopedSpanPhase compute_phase(kSpanKernelCompute);
    (*engine)->SetTestPoint(point, *kernel_);
    const std::vector<double> probs = (*engine)->Fractions();
    JsonValue out = JsonValue::MakeObject();
    out.Set("probs", JsonValue::FromDoubles(probs));
    out.Set("entropy", JsonValue(Entropy(probs)));
    out.Set("version", JsonValue(version));
    return out;
  });
}

Result<JsonValue> ServeSession::Predict(const std::vector<double>& point) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Touch();
  const IncompleteDataset& working = cleaner_->working();
  if (static_cast<int>(point.size()) != working.dim()) {
    return Status::InvalidArgument(
        StrFormat("point has %d features, dataset has %d",
                  static_cast<int>(point.size()), working.dim()));
  }
  const uint64_t version = working.version();
  const std::string key =
      QueryCacheKey("predict", kernel_->name(), options_.k, -1, point);
  return Cached(key, version, [&]() -> Result<JsonValue> {
    const CertainPredictor predictor(kernel_.get(), options_.k);
    ScopedSpanPhase compute_phase(kSpanKernelCompute);
    const CheckResult check = predictor.Check(working, point);
    const int label = check.CertainLabel();
    JsonValue out = JsonValue::MakeObject();
    out.Set("certain", JsonValue(label >= 0));
    out.Set("label", JsonValue(label));
    out.Set("version", JsonValue(version));
    return out;
  });
}

Result<JsonValue> ServeSession::Explain(const std::vector<double>& point) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Touch();
  const IncompleteDataset& working = cleaner_->working();
  if (static_cast<int>(point.size()) != working.dim()) {
    return Status::InvalidArgument(
        StrFormat("point has %d features, dataset has %d",
                  static_cast<int>(point.size()), working.dim()));
  }
  const uint64_t version = working.version();
  const std::string key =
      QueryCacheKey("explain", kernel_->name(), options_.k, -1, point);
  return Cached(key, version, [&]() -> Result<JsonValue> {
    ScopedSpanPhase compute_phase(kSpanKernelCompute);
    CP_ASSIGN_OR_RETURN(
        const WitnessSet witness,
        ExplainPrediction(working, point, *kernel_, options_.k));
    JsonValue out = JsonValue::MakeObject();
    out.Set("certain", JsonValue(witness.certain));
    out.Set("label", JsonValue(witness.label));
    out.Set("witnesses", JsonValue::FromInts(witness.tuples));
    out.Set("support", JsonValue::FromInts(witness.support));
    out.Set("minimal", JsonValue(witness.minimal));
    out.Set("version", JsonValue(version));
    return out;
  });
}

Result<JsonValue> ServeSession::WhyCertified(
    const std::vector<double>& point) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Touch();
  const IncompleteDataset& working = cleaner_->working();
  if (static_cast<int>(point.size()) != working.dim()) {
    return Status::InvalidArgument(
        StrFormat("point has %d features, dataset has %d",
                  static_cast<int>(point.size()), working.dim()));
  }
  const uint64_t version = working.version();
  const std::string key = QueryCacheKey("why_certified", kernel_->name(),
                                        options_.k, -1, point);
  return Cached(key, version, [&]() -> Result<JsonValue> {
    ScopedSpanPhase compute_phase(kSpanKernelCompute);
    CP_ASSIGN_OR_RETURN(
        const WitnessSet witness,
        ExplainPrediction(working, point, *kernel_, options_.k));
    // The decision trail: cleaning steps whose fixed tuple the
    // certification rests on (witness tuples stay ascending, so a binary
    // search per record suffices). The audit only moves under the
    // exclusive lock, so reading it here under the shared lock is
    // coherent with `version`.
    JsonValue trail = JsonValue::MakeArray();
    for (const CleaningAuditRecord& record : cleaner_->audit()) {
      if (!std::binary_search(witness.tuples.begin(), witness.tuples.end(),
                              record.example)) {
        continue;
      }
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("step", JsonValue(record.step));
      entry.Set("tuple", JsonValue(record.example));
      entry.Set("version", JsonValue(record.version));
      entry.Set("newly_certain", JsonValue::FromInts(record.newly_certain));
      trail.Append(std::move(entry));
    }
    JsonValue out = JsonValue::MakeObject();
    out.Set("certified", JsonValue(witness.certain));
    out.Set("label", JsonValue(witness.label));
    out.Set("witnesses", JsonValue::FromInts(witness.tuples));
    out.Set("minimal", JsonValue(witness.minimal));
    out.Set("trail", std::move(trail));
    out.Set("version", JsonValue(version));
    return out;
  });
}

Result<JsonValue> ServeSession::CleanStep(int steps) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Touch();
  if (retired_) {
    return Status::Unavailable(StrFormat(
        "session \"%s\" was evicted; retry the request", name_.c_str()));
  }
  if (steps < 1) return Status::InvalidArgument("steps must be >= 1");
  std::vector<int> cleaned;
  for (int s = 0; s < steps; ++s) {
    const int example = cleaner_->StepGreedy();
    if (example < 0) break;
    cleaned.push_back(example);
  }
  if (!cleaned.empty()) {
    write_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("cleaned", JsonValue::FromInts(cleaned));
  out.Set("frac_val_certain", JsonValue(cleaner_->FracValCertain()));
  out.Set("dirty_remaining", JsonValue(cleaner_->NumDirtyRemaining()));
  out.Set("version", JsonValue(cleaner_->working().version()));
  return out;
}

Result<JsonValue> ServeSession::CleanRun(int budget) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Touch();
  if (retired_) {
    return Status::Unavailable(StrFormat(
        "session \"%s\" was evicted; retry the request", name_.c_str()));
  }
  std::vector<int> cleaned;
  while (budget < 0 || static_cast<int>(cleaned.size()) < budget) {
    const int example = cleaner_->StepGreedy();
    if (example < 0) break;
    cleaned.push_back(example);
  }
  if (!cleaned.empty()) {
    write_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("cleaned", JsonValue::FromInts(cleaned));
  out.Set("steps", JsonValue(static_cast<int>(cleaned.size())));
  out.Set("frac_val_certain", JsonValue(cleaner_->FracValCertain()));
  out.Set("dirty_remaining", JsonValue(cleaner_->NumDirtyRemaining()));
  out.Set("version", JsonValue(cleaner_->working().version()));
  return out;
}

JsonValue ServeSession::Stats() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Counted as a request but deliberately not Touch()ed: operators polling
  // stats must not keep an idle session out of the eviction sweep.
  requests_.fetch_add(1, std::memory_order_relaxed);
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue(name_));
  out.Set("state", JsonValue("live"));
  out.Set("k", JsonValue(options_.k));
  out.Set("kernel", JsonValue(kernel_->name()));
  out.Set("train", JsonValue(task_.incomplete.num_examples()));
  out.Set("val", JsonValue(static_cast<int>(task_.val_x.size())));
  out.Set("test", JsonValue(static_cast<int>(task_.test_x.size())));
  out.Set("dim", JsonValue(task_.incomplete.dim()));
  out.Set("num_cleaned", JsonValue(cleaner_->NumCleaned()));
  out.Set("dirty_remaining", JsonValue(cleaner_->NumDirtyRemaining()));
  out.Set("frac_val_certain", JsonValue(cleaner_->LastFracValCertain()));
  out.Set("version", JsonValue(cleaner_->working().version()));
  out.Set("requests",
          JsonValue(requests_.load(std::memory_order_relaxed)));
  out.Set("last_request_unix_ms", JsonValue(last_request_unix_ms()));
  // The full resolved options, so operators can audit a live session
  // without replaying its create_session request.
  JsonValue resolved = JsonValue::MakeObject();
  resolved.Set("k", JsonValue(options_.k));
  resolved.Set("kernel", JsonValue(kernel_->name()));
  resolved.Set("gamma", JsonValue(options_.gamma));
  resolved.Set("num_threads", JsonValue(options_.num_threads));
  resolved.Set("cache_capacity",
               JsonValue(static_cast<uint64_t>(options_.cache_capacity)));
  resolved.Set(
      "max_contrib_bytes",
      JsonValue(static_cast<uint64_t>(options_.max_contrib_bytes)));
  out.Set("options", std::move(resolved));
  const ResultCache::Stats cache_stats = cache_.stats();
  JsonValue cache = JsonValue::MakeObject();
  cache.Set("size", JsonValue(static_cast<uint64_t>(cache_.size())));
  cache.Set("capacity", JsonValue(static_cast<uint64_t>(cache_.capacity())));
  cache.Set("hits", JsonValue(cache_stats.hits));
  cache.Set("misses", JsonValue(cache_stats.misses));
  cache.Set("evictions", JsonValue(cache_stats.evictions));
  cache.Set("invalidations", JsonValue(cache_stats.invalidations));
  out.Set("cache", std::move(cache));
  const EnginePool::Stats engine_stats = engines_->stats();
  JsonValue engines = JsonValue::MakeObject();
  engines.Set("created", JsonValue(engine_stats.created));
  engines.Set("reused",
              JsonValue(engine_stats.acquired - engine_stats.created));
  engines.Set("idle", JsonValue(engine_stats.idle));
  out.Set("engines", std::move(engines));
  return out;
}

std::string ServeSession::SerializeSnapshot(uint64_t* write_seq_out,
                                            uint64_t* version_out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SerializeSnapshotLocked(write_seq_out, version_out);
}

ServeSession::SnapshotDelta ServeSession::SerializeDelta(
    uint64_t since_version) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SnapshotDelta delta;
  const IncompleteDataset& working = cleaner_->working();
  delta.version = working.version();
  delta.write_seq = write_seq_.load(std::memory_order_relaxed);
  delta.available = working.JournalCovers(since_version);
  if (delta.available) delta.records = working.JournalSince(since_version);
  return delta;
}

std::string ServeSession::SerializeSnapshotLocked(uint64_t* write_seq_out,
                                                  uint64_t* version_out) {
  // Coherent with the bits below: mutations need the exclusive lock, so
  // under either lock mode the counter cannot move mid-serialization.
  if (write_seq_out != nullptr) {
    *write_seq_out = write_seq_.load(std::memory_order_relaxed);
  }
  if (version_out != nullptr) {
    *version_out = cleaner_->working().version();
  }
  std::vector<SerializedSection> sections;
  if (spec_.is_object()) {
    sections.push_back(SerializedSection{"spec", {spec_.Dump()}});
  }
  const CleaningSnapshot snapshot = cleaner_->Snapshot();
  std::string cleaned = StrFormat(
      "cleaned %d", static_cast<int>(snapshot.cleaned_order.size()));
  for (const int i : snapshot.cleaned_order) {
    cleaned += StrFormat(" %d", i);
  }
  sections.push_back(SerializedSection{"cleaning", {std::move(cleaned)}});
  // Per-step provenance: the cleaning-decision audit trail, one line per
  // step (`<step> <example> <version> <count> <val ids...>`). Restore
  // adopts these records verbatim; log-replayed steps appended after this
  // snapshot recompute theirs.
  std::vector<std::string> audit_lines;
  audit_lines.push_back(
      StrFormat("audit %d", static_cast<int>(snapshot.audit.size())));
  for (const CleaningAuditRecord& record : snapshot.audit) {
    std::string line = StrFormat(
        "%d %d %llu %d", record.step, record.example,
        static_cast<unsigned long long>(record.version),
        static_cast<int>(record.newly_certain.size()));
    for (const int v : record.newly_certain) line += StrFormat(" %d", v);
    audit_lines.push_back(std::move(line));
  }
  sections.push_back(SerializedSection{"audit", std::move(audit_lines)});
  // Everything the working dataset does NOT cover but answers depend on
  // (validation/test sets, oracle); re-checked on rehydration.
  sections.push_back(SerializedSection{
      "task",
      {StrFormat("fingerprint %016llx",
                 static_cast<unsigned long long>(TaskFingerprint(task_)))}});
  return SerializeIncompleteDatasetV3(cleaner_->working(), sections);
}

std::optional<std::string> ServeSession::RetireAndResnapshot(
    uint64_t since_write_seq) {
  // The exclusive lock drains in-flight writers before the retired flag
  // flips, so every acknowledged mutation is visible to the dirty check —
  // and any writer queued behind us observes retired_ and refuses.
  std::unique_lock<std::shared_mutex> lock(mu_);
  retired_ = true;
  if (write_seq_.load(std::memory_order_relaxed) == since_write_seq) {
    return std::nullopt;
  }
  return SerializeSnapshotLocked(nullptr);
}

bool ServeSession::Retire(uint64_t since_write_seq) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  retired_ = true;
  return write_seq_.load(std::memory_order_relaxed) != since_write_seq;
}

void ServeSession::Unretire() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  retired_ = false;
}

Status ServeSession::RestoreCleaning(const CleaningSnapshot& snapshot,
                                     const IncompleteDataset& expected) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CP_RETURN_NOT_OK(cleaner_->Restore(snapshot));
  if (!BitIdentical(cleaner_->working(), expected)) {
    return Status::Internal(StrFormat(
        "session \"%s\": replaying the snapshot's cleaning order against "
        "the rebuilt task does not reproduce the stored working dataset "
        "(the task's source data changed since the snapshot was saved?)",
        name_.c_str()));
  }
  return Status::OK();
}

Status SessionRegistry::Insert(std::shared_ptr<ServeSession> session) {
  // Copy the name up front: if emplace rejects a duplicate it may still
  // have moved from its arguments.
  const std::string name = session->name();
  std::lock_guard<std::mutex> lock(mu_);
  if (!sessions_.emplace(name, std::move(session)).second) {
    return Status::AlreadyExists(
        StrFormat("session \"%s\" already exists", name.c_str()));
  }
  return Status::OK();
}

Result<std::shared_ptr<ServeSession>> SessionRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(name);
  if (it != sessions_.end()) return it->second;
  return Status::NotFound(
      StrFormat("no session named \"%s\"", name.c_str()));
}

Status SessionRegistry::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(name) == 0) {
    return Status::NotFound(
        StrFormat("no session named \"%s\"", name.c_str()));
  }
  return Status::OK();
}

std::vector<std::string> SessionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& entry : sessions_) names.push_back(entry.first);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::shared_ptr<ServeSession>> SessionRegistry::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<ServeSession>> out;
  out.reserve(sessions_.size());
  for (const auto& entry : sessions_) out.push_back(entry.second);
  return out;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace cpclean
