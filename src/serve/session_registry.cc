#include "serve/session_registry.h"

#include <algorithm>

#include "cleaning/certify.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/certain_predictor.h"

namespace cpclean {

Result<KernelKind> KernelKindFromName(const std::string& name) {
  if (name == "neg_euclidean") return KernelKind::kNegativeEuclidean;
  if (name == "rbf") return KernelKind::kRbf;
  if (name == "linear") return KernelKind::kLinear;
  if (name == "cosine") return KernelKind::kCosine;
  return Status::InvalidArgument(StrFormat(
      "unknown kernel \"%s\" (expected neg_euclidean, rbf, linear, cosine)",
      name.c_str()));
}

ServeSession::ServeSession(std::string name, CleaningTask task,
                           const ServeSessionOptions& options)
    : name_(std::move(name)),
      task_(std::move(task)),
      options_(options),
      cache_(options.cache_capacity) {}

Result<std::shared_ptr<ServeSession>> ServeSession::Make(
    std::string name, CleaningTask task, const ServeSessionOptions& options) {
  if (name.empty()) return Status::InvalidArgument("session name is empty");
  // shared_ptr rather than make_shared: the constructor is private.
  std::shared_ptr<ServeSession> session(
      new ServeSession(std::move(name), std::move(task), options));
  session->kernel_ = MakeKernel(options.kernel, options.gamma);
  CpCleanOptions clean_options;
  clean_options.k = options.k;
  clean_options.num_threads = options.num_threads;
  clean_options.max_contrib_bytes = options.max_contrib_bytes;
  // Serving sessions step incrementally; the run-loop bookkeeping knobs
  // (per-step accuracy / entropy traces) stay off.
  clean_options.track_test_accuracy = false;
  clean_options.track_entropy = false;
  CP_ASSIGN_OR_RETURN(
      session->cleaner_,
      CleaningSession::Create(&session->task_, session->kernel_.get(),
                              clean_options));
  return session;
}

Result<std::vector<double>> ServeSession::ValPoint(int index) const {
  if (index < 0 || index >= static_cast<int>(task_.val_x.size())) {
    return Status::OutOfRange(
        StrFormat("val_index %d outside [0, %d)", index,
                  static_cast<int>(task_.val_x.size())));
  }
  return task_.val_x[static_cast<size_t>(index)];
}

template <typename Fn>
Result<JsonValue> ServeSession::Cached(const std::string& key, Fn compute) {
  const uint64_t version = cleaner_->working().version();
  if (std::optional<JsonValue> hit = cache_.Lookup(key, version)) {
    return *std::move(hit);
  }
  Result<JsonValue> computed = compute();
  if (computed.ok()) cache_.Insert(key, version, computed.value());
  return computed;
}

Result<JsonValue> ServeSession::Certify(const std::vector<double>& point,
                                        int max_cleaned) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  const std::string key = QueryCacheKey("certify", kernel_->name(),
                                        options_.k, max_cleaned, point);
  return Cached(key, [&]() -> Result<JsonValue> {
    CertifyOptions certify_options;
    certify_options.k = options_.k;
    certify_options.max_cleaned = max_cleaned;
    certify_options.num_threads = options_.num_threads;
    CP_ASSIGN_OR_RETURN(
        const CertifyResult certified,
        CertifyOnDataset(cleaner_->working(), task_.true_candidate, point,
                         *kernel_, certify_options));
    JsonValue out = JsonValue::MakeObject();
    out.Set("certified", JsonValue(certified.certified));
    out.Set("label", JsonValue(certified.certain_label));
    out.Set("cleaned", JsonValue::FromInts(certified.cleaned));
    return out;
  });
}

Result<JsonValue> ServeSession::Q2(const std::vector<double>& point) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  const IncompleteDataset& working = cleaner_->working();
  if (static_cast<int>(point.size()) != working.dim()) {
    return Status::InvalidArgument(
        StrFormat("point has %d features, dataset has %d",
                  static_cast<int>(point.size()), working.dim()));
  }
  const std::string key =
      QueryCacheKey("q2", kernel_->name(), options_.k, -1, point);
  return Cached(key, [&]() -> Result<JsonValue> {
    if (!q2_engine_) {
      q2_engine_ = std::make_unique<FastQ2>(&working, options_.k);
    }
    // SetTestPoint re-binds automatically when a cleaning step has bumped
    // the dataset version since the engine last ran.
    q2_engine_->SetTestPoint(point, *kernel_);
    const std::vector<double> probs = q2_engine_->Fractions();
    JsonValue out = JsonValue::MakeObject();
    out.Set("probs", JsonValue::FromDoubles(probs));
    out.Set("entropy", JsonValue(Entropy(probs)));
    return out;
  });
}

Result<JsonValue> ServeSession::Predict(const std::vector<double>& point) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  const IncompleteDataset& working = cleaner_->working();
  if (static_cast<int>(point.size()) != working.dim()) {
    return Status::InvalidArgument(
        StrFormat("point has %d features, dataset has %d",
                  static_cast<int>(point.size()), working.dim()));
  }
  const std::string key =
      QueryCacheKey("predict", kernel_->name(), options_.k, -1, point);
  return Cached(key, [&]() -> Result<JsonValue> {
    const CertainPredictor predictor(kernel_.get(), options_.k);
    const CheckResult check = predictor.Check(working, point);
    const int label = check.CertainLabel();
    JsonValue out = JsonValue::MakeObject();
    out.Set("certain", JsonValue(label >= 0));
    out.Set("label", JsonValue(label));
    return out;
  });
}

Result<JsonValue> ServeSession::CleanStep(int steps) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  if (steps < 1) return Status::InvalidArgument("steps must be >= 1");
  std::vector<int> cleaned;
  for (int s = 0; s < steps; ++s) {
    const int example = cleaner_->StepGreedy();
    if (example < 0) break;
    cleaned.push_back(example);
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("cleaned", JsonValue::FromInts(cleaned));
  out.Set("frac_val_certain", JsonValue(cleaner_->FracValCertain()));
  out.Set("dirty_remaining", JsonValue(cleaner_->NumDirtyRemaining()));
  out.Set("version", JsonValue(cleaner_->working().version()));
  return out;
}

Result<JsonValue> ServeSession::CleanRun(int budget) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  std::vector<int> cleaned;
  while (budget < 0 || static_cast<int>(cleaned.size()) < budget) {
    const int example = cleaner_->StepGreedy();
    if (example < 0) break;
    cleaned.push_back(example);
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("cleaned", JsonValue::FromInts(cleaned));
  out.Set("steps", JsonValue(static_cast<int>(cleaned.size())));
  out.Set("frac_val_certain", JsonValue(cleaner_->FracValCertain()));
  out.Set("dirty_remaining", JsonValue(cleaner_->NumDirtyRemaining()));
  out.Set("version", JsonValue(cleaner_->working().version()));
  return out;
}

JsonValue ServeSession::Stats() {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue(name_));
  out.Set("k", JsonValue(options_.k));
  out.Set("kernel", JsonValue(kernel_->name()));
  out.Set("train", JsonValue(task_.incomplete.num_examples()));
  out.Set("val", JsonValue(static_cast<int>(task_.val_x.size())));
  out.Set("test", JsonValue(static_cast<int>(task_.test_x.size())));
  out.Set("dim", JsonValue(task_.incomplete.dim()));
  out.Set("num_cleaned", JsonValue(cleaner_->NumCleaned()));
  out.Set("dirty_remaining", JsonValue(cleaner_->NumDirtyRemaining()));
  out.Set("frac_val_certain", JsonValue(cleaner_->FracValCertain()));
  out.Set("version", JsonValue(cleaner_->working().version()));
  out.Set("requests", JsonValue(requests_));
  JsonValue cache = JsonValue::MakeObject();
  cache.Set("size", JsonValue(static_cast<uint64_t>(cache_.size())));
  cache.Set("capacity", JsonValue(static_cast<uint64_t>(cache_.capacity())));
  cache.Set("hits", JsonValue(cache_.stats().hits));
  cache.Set("misses", JsonValue(cache_.stats().misses));
  cache.Set("evictions", JsonValue(cache_.stats().evictions));
  cache.Set("invalidations", JsonValue(cache_.stats().invalidations));
  out.Set("cache", std::move(cache));
  return out;
}

Result<std::shared_ptr<ServeSession>> SessionRegistry::Create(
    std::string name, CleaningTask task, const ServeSessionOptions& options) {
  // Build outside the registry lock (task construction can be expensive),
  // then publish under it.
  CP_ASSIGN_OR_RETURN(
      std::shared_ptr<ServeSession> session,
      ServeSession::Make(std::move(name), std::move(task), options));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : sessions_) {
    if (entry.first == session->name()) {
      return Status::AlreadyExists(
          StrFormat("session \"%s\" already exists", entry.first.c_str()));
    }
  }
  sessions_.emplace_back(session->name(), session);
  return session;
}

Result<std::shared_ptr<ServeSession>> SessionRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : sessions_) {
    if (entry.first == name) return entry.second;
  }
  return Status::NotFound(
      StrFormat("no session named \"%s\"", name.c_str()));
}

Status SessionRegistry::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->first == name) {
      sessions_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound(
      StrFormat("no session named \"%s\"", name.c_str()));
}

std::vector<std::string> SessionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& entry : sessions_) names.push_back(entry.first);
  std::sort(names.begin(), names.end());
  return names;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace cpclean
