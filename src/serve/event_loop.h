#ifndef CPCLEAN_SERVE_EVENT_LOOP_H_
#define CPCLEAN_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/json.h"

namespace cpclean {

class Server;

/// Transport knobs, filled from `ServerOptions` by `Server::ServeTcp`.
struct EventLoopOptions {
  /// Event-loop threads holding the connections. One poller comfortably
  /// multiplexes thousands of mostly idle connections; more pollers only
  /// spread the read/write/framing work.
  int poller_threads = 1;
  /// Threads executing dispatched requests. 0 = hardware concurrency.
  int request_workers = 0;
  /// Accept-time admission: connections beyond this receive a structured
  /// Unavailable line and are closed. 0 = unlimited.
  int max_connections = 0;
  /// Request-level admission: dispatched-but-unanswered requests beyond
  /// this bound are answered Unavailable immediately instead of queueing.
  /// 0 = unlimited. This — not the connection count — is what bounds the
  /// work in flight: thousands of idle connections cost only their fds.
  int max_inflight = 0;
  /// Merge identical `q2` requests that are waiting at the same time into
  /// one engine evaluation, fanned back to every waiter with its own id.
  bool coalesce_q2 = true;
};

/// The epoll transport behind `Server::ServeTcp`.
///
/// Architecture: `poller_threads` event-loop threads own the connections
/// (non-blocking sockets, per-connection read/write buffers, incremental
/// newline framing); poller 0 also owns the listener and deals accepted
/// connections round-robin. Completed request lines are dispatched to a
/// bounded pool of `request_workers` threads through one shared work
/// queue; responses travel back through per-connection ordered slots, so
/// each connection sees its responses in request order even though
/// different connections' requests execute concurrently.
///
/// Per-connection execution is serial — at most one request of a
/// connection is in flight at a time, exactly like the thread-per-
/// connection transport it replaces — so pipelined requests on one
/// connection observe each other's effects and every response line is
/// byte-identical to the blocking transport's.
///
/// While an identical `q2` request (same request object, ids aside) is
/// still waiting in the work queue, later arrivals merge into it: the
/// engine evaluates once and the response fans back to every waiter with
/// its own id. The coalescing window is therefore the head request's
/// queueing delay — under no load requests are never merged, under
/// overload identical points collapse into one evaluation.
class EventLoop {
 public:
  /// Borrows `server` for dispatch and counters; takes ownership of
  /// `listen_fd` (already bound and listening, closed by `Run`).
  EventLoop(Server* server, int listen_fd, EventLoopOptions options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs the transport until the server is stopping and every connection
  /// has drained (graceful), or until `HardStop`. Blocks the caller (it
  /// becomes poller 0).
  Status Run();

  /// Kicks every poller so a stop flag set elsewhere is noticed now
  /// instead of at the next poll timeout. Async-signal-safe (write(2)).
  void Wake();

  /// Close every connection without waiting for pending responses, then
  /// unwind `Run`. (Graceful stop is `Server::RequestStop` + `Wake`.)
  void HardStop();

 private:
  /// One response slot in a connection's ordered outgoing queue. Workers
  /// fill `text` then flip `ready`; the owning poller flushes slots
  /// strictly front to back, so responses keep request order.
  struct Response {
    std::string text;  // includes the trailing '\n'
    std::atomic<bool> ready{false};
  };

  /// Connection state, owned by exactly one poller thread; workers touch
  /// only the Response slots.
  struct Connection {
    int fd = -1;
    int poller = 0;
    bool closed = false;
    bool reading = true;     // cleared on EOF or graceful stop
    bool want_write = false; // EPOLLOUT armed (partial write pending)
    bool executing = false;  // head request dispatched, response pending
    std::string in_buffer;
    std::deque<std::string> pending_lines;
    std::deque<std::shared_ptr<Response>> outgoing;
    size_t out_offset = 0;   // bytes of outgoing.front() already sent
  };

  struct WorkItem {
    struct Waiter {
      std::shared_ptr<Connection> conn;
      std::shared_ptr<Response> slot;
      bool has_id = false;
      JsonValue id;
    };
    bool raw = false;          // unparseable line: replay via HandleLine
    std::string line;          // raw == true
    JsonValue request;         // raw == false
    std::string coalesce_key;  // non-empty: mergeable while queued
    std::vector<Waiter> waiters;
  };

  struct Poller {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd
    std::unordered_map<int, std::shared_ptr<Connection>> conns;
    // Cross-thread inboxes, drained after every poll round.
    std::mutex mu;
    std::vector<std::shared_ptr<Connection>> incoming;
    std::vector<std::shared_ptr<Connection>> completions;
  };

  void PollerLoop(int index);
  void WorkerLoop();
  void AcceptReady(Poller& p);
  void AdoptConnection(Poller& p, const std::shared_ptr<Connection>& conn);
  void ReadReady(Poller& p, const std::shared_ptr<Connection>& conn);
  /// Dispatches the connection's head pending line (serial per connection)
  /// and flushes whatever is ready.
  void DispatchLines(Poller& p, const std::shared_ptr<Connection>& conn);
  void FlushConnection(Poller& p, const std::shared_ptr<Connection>& conn);
  void CloseConnection(Poller& p, const std::shared_ptr<Connection>& conn);
  void UpdateInterest(Poller& p, Connection& conn);
  void Enqueue(std::shared_ptr<WorkItem> item);
  void Execute(WorkItem& item);
  /// Hands the completed response back to each waiter's poller.
  void Complete(WorkItem& item);

  Server* server_;
  int listen_fd_;
  EventLoopOptions options_;
  int num_workers_ = 1;
  std::string overload_line_;  // pre-rendered accept-time rejection

  std::vector<std::unique_ptr<Poller>> pollers_;
  std::atomic<bool> hard_stop_{false};
  std::atomic<bool> listener_open_{false};
  std::atomic<uint64_t> next_poller_{0};  // round-robin connection deal

  // The shared request-work queue (all pollers feed it, all workers drain
  // it) plus the pending-coalesce index over queued-but-unstarted q2 items.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<WorkItem>> queue_;
  std::unordered_map<std::string, std::shared_ptr<WorkItem>> pending_q2_;
  bool workers_stop_ = false;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_EVENT_LOOP_H_
