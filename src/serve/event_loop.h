#ifndef CPCLEAN_SERVE_EVENT_LOOP_H_
#define CPCLEAN_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "serve/json.h"

namespace cpclean {

class Server;

/// Transport knobs, filled from `ServerOptions` by `Server::ServeTcp`.
struct EventLoopOptions {
  /// Event-loop threads holding the connections. One poller comfortably
  /// multiplexes thousands of mostly idle connections; more pollers only
  /// spread the read/write/framing work.
  int poller_threads = 1;
  /// Threads executing dispatched requests. 0 = hardware concurrency.
  int request_workers = 0;
  /// Accept-time admission: connections beyond this receive a structured
  /// Unavailable line and are closed. 0 = unlimited.
  int max_connections = 0;
  /// Request-level admission: dispatched-but-unanswered requests beyond
  /// this bound are answered Unavailable immediately instead of queueing.
  /// 0 = unlimited. This — not the connection count — is what bounds the
  /// work in flight: thousands of idle connections cost only their fds.
  int max_inflight = 0;
  /// Merge identical `q2` requests that are waiting at the same time into
  /// one engine evaluation, fanned back to every waiter with its own id.
  bool coalesce_q2 = true;
  /// Per-request deadline: a request still unanswered this long after
  /// dispatch is answered DeadlineExceeded (with its own id) and the
  /// worker's eventual result is discarded whole — never half-written.
  /// The connection survives. 0 = no deadline. Granularity is the poll
  /// tick (~100 ms).
  int request_timeout_ms = 0;
  /// Connections with no traffic in either direction for this long (and
  /// nothing pending) are closed. 0 = never.
  int idle_timeout_ms = 0;
  /// Largest accepted request line; longer ones are answered with a
  /// structured InvalidArgument and the connection is closed (it is
  /// mid-garbage — resynchronizing on the next newline would be a guess).
  /// Bounds per-connection input memory. 0 = unlimited.
  size_t max_request_bytes = 1 << 20;
  /// Slow-client backpressure, soft bound: once this many response bytes
  /// are queued on a connection, its reads pause (EPOLLIN off) until the
  /// backlog halves. 0 = never pause.
  size_t output_hwm_bytes = 4 << 20;
  /// Slow-client backpressure, hard cap: a connection whose queued
  /// response bytes reach this is closed — a stalled reader bounds its
  /// cost at this number, never at "all of RAM". 0 = unlimited.
  size_t max_output_bytes = 32 << 20;
  /// An already-listening loopback fd serving HTTP `GET /metrics`
  /// (Prometheus text) on poller 0, or -1 for none. Owned by the loop
  /// (closed by `Run`). Metrics connections bypass `max_connections`:
  /// observability must keep working under overload.
  int metrics_listen_fd = -1;
  /// Requests whose span total exceeds this emit one structured JSON log
  /// line with the full phase breakdown. 0 = disabled.
  int slow_request_ms = 0;
  /// Sink for slow-request lines; defaults to stderr when empty.
  std::function<void(const std::string&)> slow_log;
};

/// The epoll transport behind `Server::ServeTcp`.
///
/// Architecture: `poller_threads` event-loop threads own the connections
/// (non-blocking sockets, per-connection read/write buffers, incremental
/// newline framing); poller 0 also owns the listener and deals accepted
/// connections round-robin. Completed request lines are dispatched to a
/// bounded pool of `request_workers` threads through one shared work
/// queue; responses travel back through per-connection ordered slots, so
/// each connection sees its responses in request order even though
/// different connections' requests execute concurrently.
///
/// Per-connection execution is serial — at most one request of a
/// connection is in flight at a time, exactly like the thread-per-
/// connection transport it replaces — so pipelined requests on one
/// connection observe each other's effects and every response line is
/// byte-identical to the blocking transport's.
///
/// While an identical `q2` request (same request object, ids aside) is
/// still waiting in the work queue, later arrivals merge into it: the
/// engine evaluates once and the response fans back to every waiter with
/// its own id. The coalescing window is therefore the head request's
/// queueing delay — under no load requests are never merged, under
/// overload identical points collapse into one evaluation.
class EventLoop {
 public:
  /// Borrows `server` for dispatch and counters; takes ownership of
  /// `listen_fd` (already bound and listening, closed by `Run`).
  EventLoop(Server* server, int listen_fd, EventLoopOptions options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs the transport until the server is stopping and every connection
  /// has drained (graceful), or until `HardStop`. Blocks the caller (it
  /// becomes poller 0).
  Status Run();

  /// Kicks every poller so a stop flag set elsewhere is noticed now
  /// instead of at the next poll timeout. Async-signal-safe (write(2)).
  void Wake();

  /// Close every connection without waiting for pending responses, then
  /// unwind `Run`. (Graceful stop is `Server::RequestStop` + `Wake`.)
  void HardStop();

 private:
  /// One response slot in a connection's ordered outgoing queue. Workers
  /// fill `text` then flip `ready`; the owning poller flushes slots
  /// strictly front to back, so responses keep request order.
  ///
  /// `owner` is the deadline handshake: 0 = unclaimed, 1 = the worker won
  /// (its rendered result is installed), 2 = the deadline reaper won (the
  /// slot holds a DeadlineExceeded line; the worker's result is discarded
  /// whole). Whoever wins the CAS writes `text` and flips `ready` — a slot
  /// is never half-written.
  struct Response {
    std::string text;  // includes the trailing '\n'
    std::atomic<bool> ready{false};
    std::atomic<int> owner{0};
    /// Per-request span, recorded by the worker while it owns the slot and
    /// finalized by the poller at flush completion — but only when the
    /// worker won the owner CAS (`owner == 1`): after a deadline reap the
    /// worker may still be writing these fields. Embedded by value so
    /// tracing allocates nothing.
    RequestSpan span;
    bool has_span = false;
  };

  /// Connection state, owned by exactly one poller thread; workers touch
  /// only the Response slots.
  struct Connection {
    int fd = -1;
    int poller = 0;
    bool closed = false;
    bool http = false;       // metrics-listener connection (GET /metrics)
    /// Output bytes this connection has contributed to the process-wide
    /// backlog gauge (kept so close can subtract exactly what was added).
    size_t backlog_gauge = 0;
    bool reading = true;     // cleared on EOF or graceful stop
    bool read_paused = false;  // EPOLLIN off: output backlog over the hwm
    bool want_write = false; // EPOLLOUT armed (partial write pending)
    bool executing = false;  // head request dispatched, response pending
    std::string in_buffer;
    std::deque<std::string> pending_lines;
    std::deque<std::shared_ptr<Response>> outgoing;
    size_t out_offset = 0;   // bytes of outgoing.front() already sent
    /// Idle-reap clock: last time a byte moved in either direction.
    std::chrono::steady_clock::time_point last_activity{};
    /// Deadline bookkeeping for the executing request (valid while
    /// `executing`): its slot, its expiry, and its id for the
    /// DeadlineExceeded line.
    std::shared_ptr<Response> exec_slot;
    std::chrono::steady_clock::time_point exec_deadline{};
    bool exec_has_id = false;
    JsonValue exec_id;
  };

  struct WorkItem {
    struct Waiter {
      std::shared_ptr<Connection> conn;
      std::shared_ptr<Response> slot;
      bool has_id = false;
      JsonValue id;
      /// The worker renders here, then installs into `slot` only after
      /// winning the owner CAS — a deadline-reaped slot never sees a
      /// partial (or late) result.
      std::string rendered;
    };
    bool raw = false;          // unparseable line: replay via HandleLine
    std::string line;          // raw == true
    JsonValue request;         // raw == false
    std::string coalesce_key;  // non-empty: mergeable while queued
    std::vector<Waiter> waiters;
  };

  struct Poller {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd
    std::unordered_map<int, std::shared_ptr<Connection>> conns;
    // Cross-thread inboxes, drained after every poll round.
    std::mutex mu;
    std::vector<std::shared_ptr<Connection>> incoming;
    std::vector<std::shared_ptr<Connection>> completions;
  };

  void PollerLoop(int index);
  void WorkerLoop();
  void AcceptReady(Poller& p);
  /// Accepts connections on the metrics listener (poller 0 only).
  void AcceptMetricsReady(Poller& p);
  /// Parses a complete HTTP request head and queues the response; returns
  /// false when more bytes are needed.
  bool HandleHttpRequest(Poller& p, const std::shared_ptr<Connection>& conn);
  /// Deadline expiry, idle reaping, parked-listener retry — runs once per
  /// poll tick, and only when one of those features is armed.
  void Housekeeping(Poller& p, int index);
  /// Takes the listener out of epoll after persistent accept failure and
  /// schedules a doubling-backoff retry (no busy-spin on EMFILE).
  void ParkListener(Poller& p);
  void AdoptConnection(Poller& p, const std::shared_ptr<Connection>& conn);
  void ReadReady(Poller& p, const std::shared_ptr<Connection>& conn);
  /// Dispatches the connection's head pending line (serial per connection)
  /// and flushes whatever is ready.
  void DispatchLines(Poller& p, const std::shared_ptr<Connection>& conn);
  void FlushConnection(Poller& p, const std::shared_ptr<Connection>& conn);
  void CloseConnection(Poller& p, const std::shared_ptr<Connection>& conn);
  void UpdateInterest(Poller& p, Connection& conn);
  void Enqueue(std::shared_ptr<WorkItem> item);
  void Execute(WorkItem& item);
  /// Completes `span` at last-byte-flushed time: flush/total durations,
  /// the request histograms, the global span ring, and (over threshold)
  /// the slow-request log line.
  void FinalizeSpan(RequestSpan& span);
  /// Hands the completed response back to each waiter's poller.
  void Complete(WorkItem& item);

  Server* server_;
  int listen_fd_;
  EventLoopOptions options_;
  int num_workers_ = 1;
  std::string overload_line_;      // pre-rendered accept-time rejection
  std::string fd_exhausted_line_;  // pre-rendered EMFILE rejection

  std::vector<std::unique_ptr<Poller>> pollers_;
  std::atomic<bool> hard_stop_{false};
  std::atomic<bool> listener_open_{false};
  std::atomic<bool> metrics_listener_open_{false};
  std::atomic<uint64_t> next_poller_{0};  // round-robin connection deal

  // Poller-0 state: the EMFILE reserve fd (closed to free a slot so the
  // victim can be accepted and told why it is being turned away) and the
  // parked-listener backoff.
  int spare_fd_ = -1;
  bool listener_parked_ = false;
  std::chrono::steady_clock::time_point listener_retry_at_{};
  int accept_backoff_ms_ = 0;

  // The shared request-work queue (all pollers feed it, all workers drain
  // it) plus the pending-coalesce index over queued-but-unstarted q2 items.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<WorkItem>> queue_;
  std::unordered_map<std::string, std::shared_ptr<WorkItem>> pending_q2_;
  bool workers_stop_ = false;
};

}  // namespace cpclean

#endif  // CPCLEAN_SERVE_EVENT_LOOP_H_
