#include "serve/engine_pool.h"

#include <utility>

#include "common/metrics.h"

namespace cpclean {

EnginePool::EnginePool(const IncompleteDataset* dataset, int k,
                       double epsilon, size_t max_idle)
    : dataset_(dataset), k_(k), epsilon_(epsilon), max_idle_(max_idle) {}

EnginePool::Lease EnginePool::Acquire() {
  static MetricCounter& hits =
      MetricsRegistry::Get().GetCounter("engine_pool.hits_total");
  static MetricCounter& rebinds =
      MetricsRegistry::Get().GetCounter("engine_pool.rebinds_total");
  static MetricCounter& misses =
      MetricsRegistry::Get().GetCounter("engine_pool.misses_total");
  // Safe to read under the caller's shared dataset lock: writers hold it
  // exclusively while mutating.
  const uint64_t current = dataset_->version();
  std::unique_ptr<FastQ2> engine;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquired_;
    // Prefer an engine already bound to the current version (no Rebind on
    // first SetTestPoint); otherwise take any idle engine.
    for (size_t i = 0; i < idle_.size(); ++i) {
      if (idle_[i]->bound_version() == current) {
        engine = std::move(idle_[i]);
        idle_[i] = std::move(idle_.back());
        idle_.pop_back();
        hits.Add(1);
        break;
      }
    }
    if (!engine && !idle_.empty()) {
      engine = std::move(idle_.back());
      idle_.pop_back();
      // A stale engine: the next SetTestPoint rebinds it to `current`.
      rebinds.Add(1);
    }
    if (!engine) {
      ++created_;
      misses.Add(1);
    }
  }
  if (!engine) {
    // Construction reads the dataset's structure; done outside the pool
    // mutex so concurrent acquires don't serialize on it.
    engine = std::make_unique<FastQ2>(dataset_, k_, epsilon_);
  }
  return Lease(this, std::move(engine));
}

void EnginePool::Release(std::unique_ptr<FastQ2> engine) {
  if (!engine) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < max_idle_) idle_.push_back(std::move(engine));
  // else: drop — the pool never grows past the observed concurrency.
}

EnginePool::Stats EnginePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.created = created_;
  out.acquired = acquired_;
  out.idle = static_cast<uint64_t>(idle_.size());
  return out;
}

}  // namespace cpclean
