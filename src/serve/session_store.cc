#include "serve/session_store.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "cleaning/imputers.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"
#include "incomplete/cleaning_log.h"
#include "incomplete/serialization.h"
#include "serve/request_params.h"

namespace cpclean {

namespace {

constexpr char kSnapshotSuffix[] = ".cpsession";
constexpr char kLogSuffix[] = ".cplog";
/// Degraded-mode probe file (written + removed inside the data dir; never
/// matches the snapshot suffix, so listings ignore it).
constexpr char kProbeName[] = ".cpclean_probe";

Result<Table> LoadTable(const JsonValue& req, const char* text_key,
                        const char* path_key) {
  const JsonValue* text = req.Find(text_key);
  if (text != nullptr) {
    if (!text->is_string()) {
      return Status::InvalidArgument(
          StrFormat("\"%s\" must be a string", text_key));
    }
    return ReadCsvString(text->string_value());
  }
  CP_ASSIGN_OR_RETURN(const std::string path, RequestString(req, path_key));
  return ReadCsvFile(path);
}

/// Session names are arbitrary protocol strings; filenames are not.
/// Alnum, '-', and '_' pass through, everything else becomes %XX — a
/// bijection, so `SavedNames` can decode listings.
std::string EscapeName(const std::string& name) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u) != 0 || c == '-' || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

Result<std::string> UnescapeName(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) {
      return Status::ParseError("truncated %-escape in: " + escaped);
    }
    const auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = nibble(escaped[i + 1]);
    const int lo = nibble(escaped[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("bad %-escape in: " + escaped);
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

}  // namespace

Result<CleaningTask> BuildTaskFromSpec(const JsonValue& spec) {
  CP_ASSIGN_OR_RETURN(const std::string source,
                      RequestStringOr(spec, "source", "paper"));
  if (source == "paper" || source == "synthetic") {
    ExperimentConfig config;
    CP_ASSIGN_OR_RETURN(const int train_rows,
                        RequestIntParam(spec, "train_rows", 300));
    CP_ASSIGN_OR_RETURN(const int val_size,
                        RequestIntParam(spec, "val_size", 100));
    CP_ASSIGN_OR_RETURN(const int test_size,
                        RequestIntParam(spec, "test_size", 200));
    CP_ASSIGN_OR_RETURN(const int64_t seed, RequestIntOr(spec, "seed", 42));
    if (source == "paper") {
      CP_ASSIGN_OR_RETURN(const std::string dataset,
                          RequestStringOr(spec, "dataset", "Supreme"));
      bool known = false;
      for (const auto& paper_spec : PaperDatasetSuite()) {
        if (paper_spec.name == dataset) known = true;
      }
      if (!known) {
        return Status::InvalidArgument(StrFormat(
            "unknown paper dataset \"%s\" (expected BabyProduct, Supreme, "
            "Bank, Puma)",
            dataset.c_str()));
      }
      config.dataset =
          PaperDatasetByName(dataset, train_rows, val_size, test_size,
                             static_cast<uint64_t>(seed));
    } else {
      PaperDatasetSpec synthetic;
      CP_ASSIGN_OR_RETURN(synthetic.name,
                          RequestStringOr(spec, "dataset", "synthetic"));
      synthetic.synthetic.name = synthetic.name;
      CP_ASSIGN_OR_RETURN(const int numeric,
                          RequestIntParam(spec, "numeric", 6));
      CP_ASSIGN_OR_RETURN(const int categorical,
                          RequestIntParam(spec, "categorical", 1));
      CP_ASSIGN_OR_RETURN(const double noise,
                          RequestDoubleOr(spec, "noise_sigma", 0.5));
      CP_ASSIGN_OR_RETURN(const bool nonlinear,
                          RequestBoolOr(spec, "nonlinear", false));
      synthetic.synthetic.num_rows = train_rows + val_size + test_size;
      synthetic.synthetic.num_numeric = numeric;
      synthetic.synthetic.num_categorical = categorical;
      synthetic.synthetic.noise_sigma = noise;
      synthetic.synthetic.nonlinear = nonlinear;
      synthetic.synthetic.seed = static_cast<uint64_t>(seed);
      synthetic.val_size = val_size;
      synthetic.test_size = test_size;
      config.dataset = std::move(synthetic);
    }
    CP_ASSIGN_OR_RETURN(
        config.dataset.missing_rate,
        RequestDoubleOr(spec, "missing_rate", config.dataset.missing_rate));
    CP_ASSIGN_OR_RETURN(config.k, RequestIntParam(spec, "k", 3));
    config.seed = static_cast<uint64_t>(seed);
    CP_ASSIGN_OR_RETURN(config.num_threads,
                        RequestIntParam(spec, "num_threads", 0));
    CP_ASSIGN_OR_RETURN(const std::string kernel_name,
                        RequestStringOr(spec, "kernel", "neg_euclidean"));
    CP_ASSIGN_OR_RETURN(const KernelKind kind,
                        KernelKindFromName(kernel_name));
    CP_ASSIGN_OR_RETURN(const double gamma,
                        RequestDoubleOr(spec, "gamma", 1.0));
    const std::unique_ptr<SimilarityKernel> kernel = MakeKernel(kind, gamma);
    CP_ASSIGN_OR_RETURN(PreparedExperiment prepared,
                        PrepareExperiment(config, *kernel));
    return std::move(prepared.task);
  }
  if (source == "csv") {
    // Dirty training CSV (inline text or a file path) plus the label
    // column; ground truth / validation / test tables are optional — a
    // default-imputed completion stands in when absent, mirroring the
    // csv_workflow example. Every parse or schema failure surfaces as a
    // structured error response.
    CP_ASSIGN_OR_RETURN(Table dirty, LoadTable(spec, "csv_text", "csv_path"));
    CP_ASSIGN_OR_RETURN(const std::string label, RequestString(spec, "label"));
    CP_ASSIGN_OR_RETURN(const int label_col,
                        dirty.schema().FieldIndex(label));
    Table clean;
    if (spec.Find("clean_text") != nullptr ||
        spec.Find("clean_path") != nullptr) {
      CP_ASSIGN_OR_RETURN(clean, LoadTable(spec, "clean_text", "clean_path"));
    } else {
      CP_ASSIGN_OR_RETURN(clean, DefaultCleanImpute(dirty, label_col));
    }
    Table val = clean;
    if (spec.Find("val_text") != nullptr || spec.Find("val_path") != nullptr) {
      CP_ASSIGN_OR_RETURN(val, LoadTable(spec, "val_text", "val_path"));
    }
    Table test = val;
    if (spec.Find("test_text") != nullptr ||
        spec.Find("test_path") != nullptr) {
      CP_ASSIGN_OR_RETURN(test, LoadTable(spec, "test_text", "test_path"));
    }
    return BuildCleaningTask(dirty, clean, val, test, label);
  }
  return Status::InvalidArgument(StrFormat(
      "unknown source \"%s\" (expected paper, synthetic, csv)",
      source.c_str()));
}

SessionStore::SessionStore(SessionStoreOptions options)
    : options_(std::move(options)) {
  // Crash hygiene: a process that died mid-save (or hit a disk error the
  // unlink also lost to) leaves uniquely-named temp files behind; nothing
  // else ever reclaims them, so sweep on startup.
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.data_dir, ec);
  if (ec) return;
  std::unordered_set<std::string> base_stems;
  std::vector<std::filesystem::path> log_files;
  for (const auto& entry : it) {
    const std::string filename = entry.path().filename().string();
    const bool snapshot_tmp =
        filename.find(kSnapshotSuffix) != std::string::npos &&
        filename.size() > 4 &&
        filename.compare(filename.size() - 4, 4, ".tmp") == 0;
    // Probe files (and their temps) are transient by construction; one
    // left behind means the process died mid-probe.
    const bool probe_leftover =
        filename.compare(0, sizeof(kProbeName) - 1, kProbeName) == 0;
    if (snapshot_tmp || probe_leftover) {
      std::filesystem::remove(entry.path(), ec);
      continue;
    }
    const size_t snap_len = sizeof(kSnapshotSuffix) - 1;
    if (filename.size() > snap_len &&
        filename.compare(filename.size() - snap_len, snap_len,
                         kSnapshotSuffix) == 0) {
      base_stems.insert(filename.substr(0, filename.size() - snap_len));
    }
    const size_t log_len = sizeof(kLogSuffix) - 1;
    if (filename.size() > log_len &&
        filename.compare(filename.size() - log_len, log_len, kLogSuffix) ==
            0) {
      log_files.push_back(entry.path());
    }
  }
  // A cleaning log without its base snapshot is unreplayable litter: the
  // only way to get one is a crash between Delete's two removals (base
  // first, then log — that order is what makes this sweep sound).
  for (const std::filesystem::path& log_path : log_files) {
    const std::string filename = log_path.filename().string();
    const std::string stem =
        filename.substr(0, filename.size() - (sizeof(kLogSuffix) - 1));
    if (base_stems.count(stem) == 0) {
      std::filesystem::remove(log_path, ec);
    }
  }
}

std::string SessionStore::PathFor(const std::string& name) const {
  return options_.data_dir + "/" + EscapeName(name) + kSnapshotSuffix;
}

std::string SessionStore::LogPathFor(const std::string& name) const {
  return options_.data_dir + "/" + EscapeName(name) + kLogSuffix;
}

Status SessionStore::ValidateSavable(const ServeSession& session) {
  if (!session.spec().is_object()) {
    return Status::InvalidArgument(StrFormat(
        "session \"%s\" carries no creation spec; nothing could rebuild "
        "its task on load",
        session.name().c_str()));
  }
  return Status::OK();
}

Status SessionStore::Save(ServeSession& session, uint64_t* write_seq_out,
                          std::mutex* commit_mu,
                          const std::function<Status()>& commit_check) {
  if (!enabled()) {
    return Status::Unavailable(
        "session persistence is disabled (no --data-dir)");
  }
  std::lock_guard<std::mutex> order(save_order_mu_);
  CP_ASSIGN_OR_RETURN(PendingSave pending, PrepareSave(session));
  std::unique_lock<std::mutex> commit_lock;
  if (commit_mu != nullptr) {
    commit_lock = std::unique_lock<std::mutex>(*commit_mu);
  }
  if (commit_check) {
    CP_RETURN_NOT_OK(commit_check());
  }
  CP_RETURN_NOT_OK(CommitSave(session.name(), pending));
  if (write_seq_out != nullptr) *write_seq_out = pending.write_seq;
  return Status::OK();
}

Result<SessionStore::PendingSave> SessionStore::PrepareSave(
    ServeSession& session) {
  CP_RETURN_NOT_OK(ValidateSavable(session));
  PendingSave pending;
  std::optional<DurableState> durable;
  {
    std::lock_guard<std::mutex> lock(durable_mu_);
    const auto it = durable_.find(session.name());
    if (it != durable_.end()) durable = it->second;
  }
  if (durable.has_value()) {
    const ServeSession::SnapshotDelta delta =
        session.SerializeDelta(durable->durable_version);
    if (delta.available) {
      pending.version = delta.version;
      pending.write_seq = delta.write_seq;
      if (delta.records.empty()) {
        pending.noop = true;
        return pending;
      }
      size_t bytes = 0;
      std::vector<std::string> lines;
      lines.reserve(delta.records.size());
      for (const MutationRecord& record : delta.records) {
        lines.push_back(EncodeLogRecord(record));
        bytes += lines.back().size() + 1;  // trailing newline
      }
      if (durable->log_bytes + bytes <= options_.log_compact_bytes) {
        pending.delta = true;
        pending.log_lines = std::move(lines);
        pending.log_bytes_add = bytes;
        return pending;
      }
      // The append would outgrow the compaction threshold: fall through
      // to a full base write, which folds the log away.
    }
  }
  pending.full_text =
      session.SerializeSnapshot(&pending.write_seq, &pending.version);
  return pending;
}

Status SessionStore::CommitSave(const std::string& name,
                                const PendingSave& pending) {
  if (pending.noop) return Status::OK();
  if (!pending.delta) {
    CP_RETURN_NOT_OK(WriteFileAtomic(PathFor(name), pending.full_text));
    // The fresh base supersedes any log on disk. Remove-after-rename is
    // crash-safe: a log that survives next to the newer base only holds
    // records at or below the base's version, which replay skips.
    bool compacted = false;
    {
      std::lock_guard<std::mutex> lock(durable_mu_);
      const auto it = durable_.find(name);
      compacted = it != durable_.end() && it->second.log_bytes > 0;
      durable_[name] = DurableState{pending.version, pending.version, 0};
    }
    std::error_code ec;
    std::filesystem::remove(LogPathFor(name), ec);
    if (compacted) {
      static MetricCounter& compactions =
          MetricsRegistry::Get().GetCounter("store.compactions");
      compactions.Add(1);
    }
    return Status::OK();
  }
  // Delta append. Same degraded fast-fail and metrics as the full path;
  // AppendCleaningLog carries its own fault sites (log.append, log.fsync)
  // and truncates back on failure so the log never keeps a torn tail it
  // acknowledged.
  Status degraded;
  if (DegradedFastFail(&degraded)) return degraded;
  const uint64_t start_ns = MonotonicNowNs();
  const Result<size_t> appended =
      AppendCleaningLog(LogPathFor(name), pending.log_lines);
  NoteWriteResult(appended.ok());
  if (!appended.ok()) {
    // Conservative: void the baseline so the next save writes a full
    // base instead of extending a log whose tail just failed.
    {
      std::lock_guard<std::mutex> lock(durable_mu_);
      durable_.erase(name);
    }
    static MetricCounter& failures =
        MetricsRegistry::Get().GetCounter("store.save_failures_total");
    failures.Add(1);
    return appended.status();
  }
  {
    std::lock_guard<std::mutex> lock(durable_mu_);
    const auto it = durable_.find(name);
    if (it != durable_.end()) {
      it->second.durable_version = pending.version;
      it->second.log_bytes += appended.value();
    }
  }
  static MetricCounter& saves =
      MetricsRegistry::Get().GetCounter("store.saves_total");
  static MetricHistogram& save_ns =
      MetricsRegistry::Get().GetHistogram("store.save_ns");
  static MetricCounter& log_bytes =
      MetricsRegistry::Get().GetCounter("store.log_appended_bytes");
  saves.Add(1);
  save_ns.Record(MonotonicNowNs() - start_ns);
  log_bytes.Add(appended.value());
  return Status::OK();
}

Status SessionStore::WriteSnapshot(const std::string& name,
                                   const std::string& text) {
  if (!enabled()) {
    return Status::Unavailable(
        "session persistence is disabled (no --data-dir)");
  }
  CP_RETURN_NOT_OK(WriteFileAtomic(PathFor(name), text));
  // Raw full-state write at an unknown version: any cleaning log on disk
  // no longer extends this base, and the delta baseline is void until
  // the next full Save re-establishes one.
  {
    std::lock_guard<std::mutex> lock(durable_mu_);
    durable_.erase(name);
  }
  std::error_code ec;
  std::filesystem::remove(LogPathFor(name), ec);
  return Status::OK();
}

bool SessionStore::DegradedFastFail(Status* status) {
  // Degraded fast-fail: a disk that just failed will almost certainly
  // fail again; don't pay (or retry-storm) the IO until the backoff
  // window elapses. The first write after the window probes for real.
  std::lock_guard<std::mutex> lock(degraded_mu_);
  if (degraded_ && std::chrono::steady_clock::now() < next_probe_) {
    *status = Status::IoError(StrFormat(
        "data dir %s is degraded (a recent write failed); retrying in "
        "<= %d ms",
        options_.data_dir.c_str(), backoff_ms_));
    return true;
  }
  return false;
}

Status SessionStore::WriteFileAtomic(const std::string& path,
                                     const std::string& text) {
  {
    Status degraded;
    if (DegradedFastFail(&degraded)) return degraded;
  }
  // Timed from first IO to rename; the degraded fast-fail above is a
  // deliberate non-write and never counts as a save failure.
  const uint64_t start_ns = MonotonicNowNs();
  const Status written = [&]() -> Status {
    std::error_code ec;
    std::filesystem::create_directories(options_.data_dir, ec);
    if (ec) {
      return Status::IoError(StrFormat("cannot create data dir %s: %s",
                                       options_.data_dir.c_str(),
                                       ec.message().c_str()));
    }
    // Temp-write + rename so a crash mid-save never leaves a torn snapshot
    // where a loadable one used to be. The temp name is unique per save:
    // save_session is a shared-lock read op, so two saves of one session
    // (or a save racing the eviction sweep) may run concurrently, and a
    // shared temp path would let one writer truncate the file another is
    // about to rename into place.
    static std::atomic<uint64_t> save_seq{0};
    const std::string tmp = StrFormat(
        "%s.%llu.tmp", path.c_str(),
        static_cast<unsigned long long>(
            save_seq.fetch_add(1, std::memory_order_relaxed)));
    if (FaultHit("store.open")) {
      return Status::IoError("cannot open for writing (injected): " + tmp);
    }
    {
      std::ofstream file(tmp, std::ios::trunc);
      if (!file) {
        return Status::IoError("cannot open for writing: " + tmp);
      }
      if (FaultHit("store.write")) {
        // Injected short write: half the bytes land, then the device
        // fails. The torn temp must be reclaimed and the error surfaced.
        file << std::string_view(text).substr(0, text.size() / 2);
        file.close();
        std::filesystem::remove(tmp, ec);
        return Status::IoError("short write (injected): " + tmp);
      }
      file << text;
      // Close explicitly and re-check: the final buffered flush can be the
      // write that hits ENOSPC, and installing a silently truncated
      // snapshot would destroy the session's only copy at eviction time.
      file.close();
      if (!file || FaultHit("store.flush")) {
        std::filesystem::remove(tmp, ec);  // don't leak the partial temp
        return Status::IoError("write failed: " + tmp);
      }
    }
    if (FaultHit("store.rename")) {
      std::filesystem::remove(tmp, ec);
      return Status::IoError(StrFormat("rename %s -> %s: injected failure",
                                       tmp.c_str(), path.c_str()));
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      const Status status =
          Status::IoError(StrFormat("rename %s -> %s: %s", tmp.c_str(),
                                    path.c_str(), ec.message().c_str()));
      std::filesystem::remove(tmp, ec);
      return status;
    }
    return Status::OK();
  }();
  if (written.ok()) {
    static MetricCounter& saves =
        MetricsRegistry::Get().GetCounter("store.saves_total");
    static MetricHistogram& save_ns =
        MetricsRegistry::Get().GetHistogram("store.save_ns");
    saves.Add(1);
    save_ns.Record(MonotonicNowNs() - start_ns);
  } else {
    static MetricCounter& failures =
        MetricsRegistry::Get().GetCounter("store.save_failures_total");
    failures.Add(1);
  }
  NoteWriteResult(written.ok());
  return written;
}

void SessionStore::NoteWriteResult(bool ok) {
  std::lock_guard<std::mutex> lock(degraded_mu_);
  if (ok) {
    degraded_ = false;
    backoff_ms_ = 0;
    return;
  }
  if (!degraded_) {
    // Healthy -> degraded edge only; repeat failures extend the backoff
    // but are not new transitions.
    static MetricCounter& transitions = MetricsRegistry::Get().GetCounter(
        "store.degraded_transitions_total");
    transitions.Add(1);
  }
  degraded_ = true;
  backoff_ms_ = backoff_ms_ == 0
                    ? options_.degraded_backoff_initial_ms
                    : std::min(backoff_ms_ * 2, options_.degraded_backoff_max_ms);
  next_probe_ =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(backoff_ms_);
}

bool SessionStore::CheckDegraded() {
  if (!enabled()) return false;
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    if (!degraded_) return false;
    if (std::chrono::steady_clock::now() < next_probe_) return true;
  }
  // Backoff elapsed: probe through the real write path (same fault sites,
  // same state machine) so a healed disk clears degraded on the next
  // stats poll instead of waiting for the next save to come along.
  const std::string probe_path = options_.data_dir + "/" + kProbeName;
  if (WriteFileAtomic(probe_path, "ok\n").ok()) {
    std::error_code ec;
    std::filesystem::remove(probe_path, ec);
  }
  std::lock_guard<std::mutex> lock(degraded_mu_);
  return degraded_;
}

Result<std::shared_ptr<ServeSession>> SessionStore::Load(
    const std::string& name) {
  if (!enabled()) {
    return Status::Unavailable(
        "session persistence is disabled (no --data-dir)");
  }
  const uint64_t start_ns = MonotonicNowNs();
  Result<std::shared_ptr<ServeSession>> result =
      [&]() -> Result<std::shared_ptr<ServeSession>> {
  const std::string path = PathFor(name);
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound(StrFormat(
        "no snapshot for session \"%s\" (%s)", name.c_str(), path.c_str()));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  CP_ASSIGN_OR_RETURN(DeserializedDatasetV2 parsed,
                      DeserializeIncompleteDatasetV2(buffer.str()));

  // Replay the cleaning log (if any) onto the base before anything else:
  // the replayed dataset is the durable truth the rebuilt session must be
  // bit-identical to. ScanCleaningLogForAppend drops a torn final record
  // — the one append that was never acknowledged to a client.
  const std::string log_path = LogPathFor(name);
  const uint64_t base_version = parsed.dataset.version();
  CP_ASSIGN_OR_RETURN(const LogScan scan, ScanCleaningLogForAppend(log_path));
  std::vector<int> log_fix_ids;
  if (!scan.records.empty()) {
    if (!parsed.has_version) {
      return Status::Internal(StrFormat(
          "%s: a cleaning log exists but the base snapshot is pre-v3 and "
          "carries no version to anchor replay",
          path.c_str()));
    }
    for (const MutationRecord& record : scan.records) {
      if (record.kind != MutationRecord::Kind::kFix) {
        // Serving sessions only ever fix examples; replaying anything
        // else could not be folded into the cleaning replay order below.
        return Status::Internal(StrFormat(
            "%s: unexpected non-fix record (seq %llu) in a serve cleaning "
            "log",
            log_path.c_str(),
            static_cast<unsigned long long>(record.seq)));
      }
    }
    CP_RETURN_NOT_OK(ReplayCleaningLog(scan.records, base_version,
                                       &parsed.dataset, &log_fix_ids));
    static MetricCounter& replayed =
        MetricsRegistry::Get().GetCounter("store.log_replayed_records");
    replayed.Add(scan.records.size());
  }

  const SerializedSection* spec_section = nullptr;
  const SerializedSection* cleaning_section = nullptr;
  const SerializedSection* task_section = nullptr;
  const SerializedSection* audit_section = nullptr;
  for (const SerializedSection& section : parsed.sections) {
    if (section.name == "spec") spec_section = &section;
    if (section.name == "cleaning") cleaning_section = &section;
    if (section.name == "task") task_section = &section;
    if (section.name == "audit") audit_section = &section;
  }
  if (spec_section == nullptr || spec_section->lines.size() != 1) {
    return Status::ParseError(path + ": missing one-line \"spec\" section");
  }
  if (cleaning_section == nullptr || cleaning_section->lines.size() != 1) {
    return Status::ParseError(path +
                              ": missing one-line \"cleaning\" section");
  }
  CP_ASSIGN_OR_RETURN(const JsonValue spec,
                      ParseJson(spec_section->lines[0]));

  const std::vector<std::string> fields =
      Split(cleaning_section->lines[0], ' ');
  if (fields.size() < 2 || fields[0] != "cleaned") {
    return Status::ParseError(path + ": expected 'cleaned <n> <ids...>'");
  }
  CP_ASSIGN_OR_RETURN(const int count, ParseInt(fields[1]));
  if (count < 0 || static_cast<size_t>(count) != fields.size() - 2) {
    return Status::ParseError(StrFormat(
        "%s: cleaning order announces %d ids, carries %d", path.c_str(),
        count, static_cast<int>(fields.size()) - 2));
  }
  std::vector<int> cleaned_order;
  cleaned_order.reserve(static_cast<size_t>(count));
  for (size_t f = 2; f < fields.size(); ++f) {
    CP_ASSIGN_OR_RETURN(const int id, ParseInt(fields[f]));
    cleaned_order.push_back(id);
  }

  // Optional provenance: the per-step audit trail for the base snapshot's
  // cleaning order. Pre-provenance snapshots simply lack the section;
  // Restore then recomputes every step's attribution.
  std::vector<CleaningAuditRecord> audit;
  if (audit_section != nullptr) {
    if (audit_section->lines.empty()) {
      return Status::ParseError(path + ": empty \"audit\" section");
    }
    const std::vector<std::string> header =
        Split(audit_section->lines[0], ' ');
    if (header.size() != 2 || header[0] != "audit") {
      return Status::ParseError(path + ": expected 'audit <n>'");
    }
    CP_ASSIGN_OR_RETURN(const int audit_count, ParseInt(header[1]));
    if (audit_count < 0 ||
        static_cast<size_t>(audit_count) != audit_section->lines.size() - 1) {
      return Status::ParseError(StrFormat(
          "%s: audit announces %d records, carries %d", path.c_str(),
          audit_count, static_cast<int>(audit_section->lines.size()) - 1));
    }
    audit.reserve(static_cast<size_t>(audit_count));
    for (size_t l = 1; l < audit_section->lines.size(); ++l) {
      const std::vector<std::string> rec =
          Split(audit_section->lines[l], ' ');
      if (rec.size() < 4) {
        return Status::ParseError(StrFormat(
            "%s: audit record %d: expected "
            "'<step> <example> <version> <count> <ids...>'",
            path.c_str(), static_cast<int>(l)));
      }
      CleaningAuditRecord record;
      CP_ASSIGN_OR_RETURN(record.step, ParseInt(rec[0]));
      CP_ASSIGN_OR_RETURN(record.example, ParseInt(rec[1]));
      {
        std::istringstream version_stream(rec[2]);
        version_stream >> record.version;
        if (version_stream.fail()) {
          return Status::ParseError(StrFormat(
              "%s: audit record %d: unparseable version", path.c_str(),
              static_cast<int>(l)));
        }
      }
      CP_ASSIGN_OR_RETURN(const int num_certain, ParseInt(rec[3]));
      if (num_certain < 0 ||
          static_cast<size_t>(num_certain) != rec.size() - 4) {
        return Status::ParseError(StrFormat(
            "%s: audit record %d announces %d val ids, carries %d",
            path.c_str(), static_cast<int>(l), num_certain,
            static_cast<int>(rec.size()) - 4));
      }
      record.newly_certain.reserve(static_cast<size_t>(num_certain));
      for (size_t f = 4; f < rec.size(); ++f) {
        CP_ASSIGN_OR_RETURN(const int v, ParseInt(rec[f]));
        record.newly_certain.push_back(v);
      }
      audit.push_back(std::move(record));
    }
    if (audit.size() > cleaned_order.size()) {
      return Status::ParseError(StrFormat(
          "%s: audit covers %d steps but the cleaning order has %d",
          path.c_str(), static_cast<int>(audit.size()),
          static_cast<int>(cleaned_order.size())));
    }
  }

  if (task_section == nullptr || task_section->lines.size() != 1) {
    return Status::ParseError(path + ": missing one-line \"task\" section");
  }
  const std::vector<std::string> task_fields =
      Split(task_section->lines[0], ' ');
  if (task_fields.size() != 2 || task_fields[0] != "fingerprint") {
    return Status::ParseError(path + ": expected 'fingerprint <hex>'");
  }
  uint64_t want_fingerprint = 0;
  {
    std::istringstream hex_stream(task_fields[1]);
    hex_stream >> std::hex >> want_fingerprint;
    if (hex_stream.fail()) {
      return Status::ParseError(path + ": unparseable task fingerprint");
    }
  }

  CP_ASSIGN_OR_RETURN(
      ServeSessionOptions options,
      ServeSessionOptionsFromRequest(spec, options_.default_cache_capacity));
  // Working-storage knobs are server policy, not part of the spec: a
  // snapshot saved under --storage-mode=ram rehydrates into mmap mode
  // (or back) without any format change — the two are bit-identical.
  options.mmap_scratch_dir = options_.mmap_scratch_dir;
  options.stream_window_bytes = options_.stream_window_bytes;
  CP_ASSIGN_OR_RETURN(CleaningTask task, BuildTaskFromSpec(spec));
  if (TaskFingerprint(task) != want_fingerprint) {
    // The working dataset is bit-verified separately (RestoreCleaning);
    // this catches drift in what that check cannot see — validation/test
    // CSVs or the oracle changed on disk since the snapshot was saved.
    return Status::Internal(StrFormat(
        "session \"%s\": the rebuilt task's validation/test/oracle data "
        "does not match the snapshot (source files changed since it was "
        "saved?)",
        name.c_str()));
  }
  // The replay order is the base's cleaning section plus the fixes the
  // log appended, in log order.
  cleaned_order.insert(cleaned_order.end(), log_fix_ids.begin(),
                       log_fix_ids.end());
  CP_ASSIGN_OR_RETURN(
      std::shared_ptr<ServeSession> session,
      ServeSession::Make(name, std::move(task), options, spec,
                         /*prime_certainty=*/false));
  CleaningSnapshot cleaning_snapshot;
  cleaning_snapshot.cleaned_order = std::move(cleaned_order);
  cleaning_snapshot.audit = std::move(audit);
  CP_RETURN_NOT_OK(
      session->RestoreCleaning(cleaning_snapshot, parsed.dataset));
  // The on-disk state is now known-good: future saves of this session can
  // extend the log from the replayed version instead of rewriting the
  // base. Pre-v3 bases carry no version, so their first save compacts.
  if (parsed.has_version) {
    // Version-determinism check: the rebuilt session must sit at exactly
    // the version the base+log reached, or the next delta's sequence
    // numbers would not line up with the log on disk.
    const ServeSession::SnapshotDelta check =
        session->SerializeDelta(parsed.dataset.version());
    if (!check.available || check.version != parsed.dataset.version() ||
        !check.records.empty()) {
      return Status::Internal(StrFormat(
          "session \"%s\": rebuilt working version %llu does not match the "
          "durable version %llu",
          name.c_str(), static_cast<unsigned long long>(check.version),
          static_cast<unsigned long long>(parsed.dataset.version())));
    }
    std::lock_guard<std::mutex> lock(durable_mu_);
    durable_[name] =
        DurableState{base_version, parsed.dataset.version(),
                     scan.durable_bytes};
  }
  return session;
  }();
  if (result.ok()) {
    static MetricCounter& loads =
        MetricsRegistry::Get().GetCounter("store.loads_total");
    static MetricHistogram& load_ns =
        MetricsRegistry::Get().GetHistogram("store.load_ns");
    loads.Add(1);
    load_ns.Record(MonotonicNowNs() - start_ns);
  } else {
    static MetricCounter& failures =
        MetricsRegistry::Get().GetCounter("store.load_failures_total");
    failures.Add(1);
  }
  return result;
}

Status SessionStore::Delete(const std::string& name) {
  if (!enabled()) {
    return Status::Unavailable(
        "session persistence is disabled (no --data-dir)");
  }
  {
    std::lock_guard<std::mutex> lock(durable_mu_);
    durable_.erase(name);
  }
  std::error_code ec;
  const bool removed = std::filesystem::remove(PathFor(name), ec);
  if (ec) {
    // A snapshot that exists but cannot be deleted (permissions, IO) is a
    // different failure than one that never existed — the session is
    // still rehydratable and the operator needs the real error.
    return Status::IoError(StrFormat("cannot delete snapshot for \"%s\": %s",
                                     name.c_str(), ec.message().c_str()));
  }
  // Base first, then log: a crash in between leaves an orphan log, which
  // Load never sees (no base -> NotFound) and the startup sweep reclaims.
  // The other order could leave base-without-log looking like a complete,
  // older session.
  std::error_code log_ec;
  std::filesystem::remove(LogPathFor(name), log_ec);
  if (!removed) {
    return Status::NotFound(StrFormat(
        "no snapshot for session \"%s\"", name.c_str()));
  }
  return Status::OK();
}

bool SessionStore::Saved(const std::string& name) const {
  if (!enabled()) return false;
  std::error_code ec;
  return std::filesystem::exists(PathFor(name), ec);
}

std::vector<std::string> SessionStore::SavedNames() const {
  std::vector<std::string> names;
  if (!enabled()) return names;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.data_dir, ec);
  if (ec) return names;
  for (const auto& entry : it) {
    const std::string filename = entry.path().filename().string();
    const size_t suffix_len = sizeof(kSnapshotSuffix) - 1;
    if (filename.size() <= suffix_len ||
        filename.compare(filename.size() - suffix_len, suffix_len,
                         kSnapshotSuffix) != 0) {
      continue;
    }
    Result<std::string> name =
        UnescapeName(filename.substr(0, filename.size() - suffix_len));
    if (name.ok()) names.push_back(std::move(name).value());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<std::string>> SessionStore::EnforceCapacity(
    SessionRegistry& registry, std::mutex& lifecycle_mu) {
  std::vector<std::string> evicted;
  if (options_.max_sessions == 0) return evicted;
  // One sweep at a time: concurrent sweeps would race to retire the same
  // LRU victim. Callers must NOT hold `lifecycle_mu` — the sweep takes it
  // only around its commit below.
  std::lock_guard<std::mutex> sweep(sweep_mu_);
  // Bounds the retry paths below: under sustained load on every session
  // the sweep must still terminate. Exhaustion only costs LRU accuracy
  // (a recently-touched victim gets evicted anyway) — never a write: the
  // retire handshake below protects those in every interleaving.
  size_t retries_left = 2 * registry.size() + 4;
  while (registry.size() > options_.max_sessions) {
    if (!enabled()) {
      return Status::Unavailable(StrFormat(
          "%d sessions exceed --max-sessions=%d and no --data-dir is "
          "configured to evict into",
          static_cast<int>(registry.size()),
          static_cast<int>(options_.max_sessions)));
    }
    // LRU by last-request sequence (monotone process-wide, so bursts
    // within one wall-clock millisecond still order correctly).
    std::shared_ptr<ServeSession> victim;
    for (const std::shared_ptr<ServeSession>& session : registry.All()) {
      if (!victim ||
          session->last_request_seq() < victim->last_request_seq()) {
        victim = session;
      }
    }
    if (!victim) break;  // raced to empty
    // The expensive half runs OUTSIDE the lifecycle mutex (the same split
    // save_session uses): snapshot serialization blocks on the victim's
    // shared lock (a long clean_run could hold that for a while) and
    // retirement drains its in-flight writers — neither may stall every
    // unrelated lifecycle transition.
    CP_RETURN_NOT_OK(ValidateSavable(*victim));
    const uint64_t seq_before_save = victim->last_request_seq();
    // Saves order on save_order_mu_ (see Save): held across the prepare /
    // retire / commit so no client save interleaves its own delta append
    // with the eviction's on this session's log.
    std::unique_lock<std::mutex> order(save_order_mu_);
    Result<PendingSave> prepared = PrepareSave(*victim);
    if (!prepared.ok()) return prepared.status();
    PendingSave pending = std::move(prepared).value();
    if (victim->last_request_seq() != seq_before_save && retries_left > 0) {
      --retries_left;
      // A request landed while the save was being prepared — the session
      // is no longer LRU; re-pick.
      continue;
    }
    // Retire BEFORE the registry drop so failure can roll back to a fully
    // live session: the exclusive lock drains in-flight writers; later
    // writes on this instance answer Unavailable and are never
    // acknowledged. A write that slipped in between the preparation above
    // and retirement — acknowledged to its client, so it must not be lost
    // — triggers a re-prepare against the now-final state.
    if (victim->Retire(pending.write_seq)) {
      prepared = PrepareSave(*victim);
      if (!prepared.ok()) {
        victim->Unretire();
        return prepared.status();
      }
      pending = std::move(prepared).value();
    }
    // Commit under the lifecycle mutex: re-validate that the registry
    // still holds this exact instance (a drop_session racing the
    // serialization deleted the name — writing our snapshot back would
    // resurrect it), commit the save, drop the live entry.
    {
      std::lock_guard<std::mutex> lifecycle(lifecycle_mu);
      const Result<std::shared_ptr<ServeSession>> live =
          registry.Get(victim->name());
      if (!live.ok() || live.value().get() != victim.get()) {
        victim->Unretire();  // detached instance; the registry moved on
        if (retries_left == 0) break;
        --retries_left;
        continue;
      }
      const Status written = CommitSave(victim->name(), pending);
      if (!written.ok()) {
        victim->Unretire();
        return written;
      }
      (void)registry.Drop(victim->name());
    }
    evicted.push_back(victim->name());
  }
  return evicted;
}

}  // namespace cpclean
