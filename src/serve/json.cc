#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace cpclean {

JsonValue JsonValue::MakeArray(Array items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(Object members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue JsonValue::FromDoubles(const std::vector<double>& values) {
  JsonValue v = MakeArray();
  v.array_.reserve(values.size());
  for (const double x : values) v.array_.emplace_back(x);
  return v;
}

JsonValue JsonValue::FromInts(const std::vector<int>& values) {
  JsonValue v = MakeArray();
  v.array_.reserve(values.size());
  for (const int x : values) v.array_.emplace_back(x);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double n, std::string* out) {
  if (!std::isfinite(n)) {
    // JSON has no Infinity/NaN literal; null is the conventional stand-in.
    *out += "null";
    return;
  }
  // Integers print without an exponent or decimal point (ids, counts);
  // everything else uses %.17g, which round-trips any double exactly.
  if (n == std::floor(n) && std::fabs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  *out += buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      EscapeString(string_, out);
      break;
    case Type::kArray:
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    case Type::kObject:
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        EscapeString(object_[i].first, out);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over the input buffer. Depth-limited so a
/// hostile request ("[[[[[...") cannot overflow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    CP_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrFormat("%s at offset %d", what.c_str(), static_cast<int>(pos_)));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        CP_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* word, JsonValue value, JsonValue* out) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Error("invalid literal");
    }
    pos_ += len;
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double n = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Error("invalid number");
    }
    *out = JsonValue(n);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          CP_RETURN_NOT_OK(ParseHex4(&code));
          // Surrogate pair: combine into one code point.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.compare(pos_, 2, "\\u") == 0) {
            pos_ += 2;
            unsigned low = 0;
            CP_RETURN_NOT_OK(ParseHex4(&low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("invalid surrogate pair");
            }
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    *out = code;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      CP_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      CP_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      CP_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace cpclean
