#ifndef CPCLEAN_EVAL_METRICS_H_
#define CPCLEAN_EVAL_METRICS_H_

#include <vector>

namespace cpclean {

/// Fraction of matching predictions; 0 for empty input.
double AccuracyScore(const std::vector<int>& predicted,
                     const std::vector<int>& expected);

/// The paper's headline metric (§5.1):
///   gap closed by X = (acc(X) - acc(Default)) / (acc(GT) - acc(Default)).
/// Can be negative (X is worse than default cleaning, as HoloClean is on
/// two datasets in Table 2) or above 1. Returns 0 when the gap denominator
/// is degenerate (|gt - default| < 1e-12).
double GapClosed(double accuracy, double default_accuracy,
                 double ground_truth_accuracy);

/// num_labels x num_labels confusion counts, rows = expected.
std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& expected,
    int num_labels);

}  // namespace cpclean

#endif  // CPCLEAN_EVAL_METRICS_H_
