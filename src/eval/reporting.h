#ifndef CPCLEAN_EVAL_REPORTING_H_
#define CPCLEAN_EVAL_REPORTING_H_

#include <string>
#include <vector>

namespace cpclean {

/// Minimal fixed-width ASCII table printer for the experiment harnesses:
/// the bench binaries print the same rows/series the paper's tables and
/// figures report.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with column-aligned padding and a header separator.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals ("0.968").
std::string FormatDouble(double value, int decimals = 3);

/// Formats a fraction as a percent string ("64%").
std::string FormatPercent(double fraction, int decimals = 0);

}  // namespace cpclean

#endif  // CPCLEAN_EVAL_REPORTING_H_
