#include "eval/experiment.h"

#include <algorithm>

#include "cleaning/boost_clean.h"
#include "cleaning/holo_clean.h"
#include "cleaning/importance.h"
#include "cleaning/imputers.h"
#include "cleaning/missing_injector.h"
#include "common/logging.h"
#include "common/rng.h"
#include "data/split.h"
#include "datasets/synthetic.h"
#include "eval/metrics.h"

namespace cpclean {

Result<PreparedExperiment> PrepareExperiment(const ExperimentConfig& config,
                                             const SimilarityKernel& kernel) {
  Rng rng(config.seed ^ config.dataset.synthetic.seed);

  CP_ASSIGN_OR_RETURN(Table full, GenerateSynthetic(config.dataset.synthetic));
  CP_ASSIGN_OR_RETURN(DataSplit split,
                      TrainValTestSplit(full, config.dataset.val_size,
                                        config.dataset.test_size, &rng));
  CP_ASSIGN_OR_RETURN(const int label_col,
                      full.schema().FieldIndex(SyntheticLabelColumn()));

  // Feature importance measured on clean data (paper §5.1), then MNAR
  // injection into the training partition only.
  CP_ASSIGN_OR_RETURN(
      const std::vector<double> importance,
      ComputeFeatureImportance(split.train, split.val, label_col, config.k,
                               kernel));
  InjectionOptions injection;
  injection.missing_rate = config.dataset.missing_rate;
  CP_ASSIGN_OR_RETURN(
      Table dirty_train,
      InjectMissing(split.train, label_col, importance, injection, &rng));

  PreparedExperiment prepared;
  prepared.observed_missing_rate =
      static_cast<double>(dirty_train.CountMissing()) /
      static_cast<double>(dirty_train.num_rows() *
                          (dirty_train.num_columns() - 1));
  CP_ASSIGN_OR_RETURN(
      prepared.task,
      BuildCleaningTask(dirty_train, split.train, split.val, split.test,
                        SyntheticLabelColumn(), config.repair_options));
  prepared.dirty_rows = static_cast<int>(prepared.task.DirtyRows().size());

  const CleaningTask& task = prepared.task;
  prepared.ground_truth_test_accuracy = task.AccuracyWith(
      task.clean_train_x, task.test_x, task.test_y, kernel, config.k);
  prepared.default_test_accuracy = task.AccuracyWith(
      task.default_x, task.test_x, task.test_y, kernel, config.k);
  return prepared;
}

Result<Table2Row> RunTable2Row(const ExperimentConfig& config,
                               const SimilarityKernel& kernel) {
  CP_ASSIGN_OR_RETURN(PreparedExperiment prepared,
                      PrepareExperiment(config, kernel));
  const CleaningTask& task = prepared.task;

  Table2Row row;
  row.dataset = config.dataset.name;
  row.ground_truth_accuracy = prepared.ground_truth_test_accuracy;
  row.default_accuracy = prepared.default_test_accuracy;

  // BoostClean.
  CP_ASSIGN_OR_RETURN(const BoostCleanResult boost,
                      RunBoostClean(task, kernel, config.k));
  row.boost_clean_gap =
      GapClosed(boost.test_accuracy, row.default_accuracy,
                row.ground_truth_accuracy);

  // HoloClean (task-oblivious probabilistic imputation).
  CP_ASSIGN_OR_RETURN(const Table holo_table,
                      HoloCleanImpute(task.dirty_train, task.label_col));
  CP_ASSIGN_OR_RETURN(const auto holo_x, task.EncodeCompletedTrain(holo_table));
  const double holo_acc =
      task.AccuracyWith(holo_x, task.test_x, task.test_y, kernel, config.k);
  row.holo_clean_gap =
      GapClosed(holo_acc, row.default_accuracy, row.ground_truth_accuracy);

  // CPClean, run to convergence (all validation examples CP'ed).
  CpCleanOptions options;
  options.k = config.k;
  options.num_threads = config.num_threads;
  CleaningSession session(&task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  row.cp_clean_gap = GapClosed(run.final_test_accuracy, row.default_accuracy,
                               row.ground_truth_accuracy);
  const int total_rows = task.dirty_train.num_rows();
  row.cp_clean_examples_cleaned =
      total_rows > 0
          ? static_cast<double>(run.examples_cleaned) / total_rows
          : 0.0;

  // Early termination at a 20%-of-training-set budget (Table 2's last
  // discussion point): read the accuracy off the recorded trace.
  const int budget20 = std::max(1, total_rows / 5);
  double acc_at_20 = row.default_accuracy;
  for (const CleaningStepLog& log : run.steps) {
    if (log.step <= budget20) acc_at_20 = log.test_accuracy;
  }
  row.cp_clean_gap_at_20pct =
      GapClosed(acc_at_20, row.default_accuracy, row.ground_truth_accuracy);
  return row;
}

Result<CleaningCurves> RunCleaningCurves(const ExperimentConfig& config,
                                         const SimilarityKernel& kernel,
                                         int random_repeats) {
  CP_ASSIGN_OR_RETURN(PreparedExperiment prepared,
                      PrepareExperiment(config, kernel));
  const CleaningTask& task = prepared.task;

  CleaningCurves curves;
  curves.dataset = config.dataset.name;
  curves.ground_truth_accuracy = prepared.ground_truth_test_accuracy;
  curves.default_accuracy = prepared.default_test_accuracy;
  curves.total_dirty = prepared.dirty_rows;

  CpCleanOptions options;
  options.k = config.k;
  options.num_threads = config.num_threads;
  // Curves run the full cleaning trajectory, not stopping at all-CP'ed,
  // so both series span the same x-axis.
  options.stop_when_all_certain = false;

  CleaningSession session(&task, &kernel, options);
  curves.cp_clean = session.RunCpClean();

  // RandomClean, averaged point-wise across repeats.
  std::vector<CleaningRunResult> runs;
  Rng rng(config.seed ^ 0xAAAAull);
  for (int r = 0; r < random_repeats; ++r) {
    Rng child = rng.Fork();
    runs.push_back(session.RunRandomClean(&child));
  }
  size_t min_len = runs.empty() ? 0 : runs.front().steps.size();
  for (const auto& run : runs) min_len = std::min(min_len, run.steps.size());
  for (size_t s = 0; s < min_len; ++s) {
    CleaningStepLog mean;
    mean.step = static_cast<int>(s);
    mean.cleaned_example = -1;
    for (const auto& run : runs) {
      mean.frac_val_certain += run.steps[s].frac_val_certain;
      mean.test_accuracy += run.steps[s].test_accuracy;
      mean.mean_val_entropy += run.steps[s].mean_val_entropy;
    }
    const double denom = static_cast<double>(runs.size());
    mean.frac_val_certain /= denom;
    mean.test_accuracy /= denom;
    mean.mean_val_entropy /= denom;
    curves.random_clean_mean.push_back(mean);
  }
  return curves;
}

}  // namespace cpclean
