#include "eval/reporting.h"

#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  CP_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void AsciiTable::Print() const {
  std::fputs(ToString().c_str(), stdout);
}

std::string FormatDouble(double value, int decimals) {
  return StrFormat("%.*f", decimals, value);
}

std::string FormatPercent(double fraction, int decimals) {
  return StrFormat("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace cpclean
