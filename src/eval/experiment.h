#ifndef CPCLEAN_EVAL_EXPERIMENT_H_
#define CPCLEAN_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "cleaning/cleaning_task.h"
#include "cleaning/cp_clean.h"
#include "common/result.h"
#include "datasets/paper_datasets.h"
#include "knn/kernel.h"

namespace cpclean {

/// End-to-end experiment configuration shared by the Table 2 / Figure 9 /
/// Figure 10 harnesses.
struct ExperimentConfig {
  PaperDatasetSpec dataset;
  int k = 3;
  uint64_t seed = 1;
  RepairOptions repair_options;
  /// Worker threads for the CPClean inner loops (see
  /// CpCleanOptions::num_threads): 0 = hardware concurrency, 1 = serial.
  /// Results are bit-identical for every value.
  int num_threads = 0;
};

/// A dataset instantiated for experiments: generated, split, injected
/// with MNAR missing values, and packaged as a CleaningTask; plus the two
/// accuracy anchors of the paper's protocol.
struct PreparedExperiment {
  CleaningTask task;
  double ground_truth_test_accuracy = 0.0;
  double default_test_accuracy = 0.0;
  double observed_missing_rate = 0.0;
  int dirty_rows = 0;
};

/// Generates the synthetic table, splits train/val/test, measures feature
/// importance on the clean data, injects MNAR missing values into the
/// training partition only, and builds the CleaningTask.
Result<PreparedExperiment> PrepareExperiment(const ExperimentConfig& config,
                                             const SimilarityKernel& kernel);

/// One row of the paper's Table 2.
struct Table2Row {
  std::string dataset;
  double ground_truth_accuracy = 0.0;
  double default_accuracy = 0.0;
  double boost_clean_gap = 0.0;
  double holo_clean_gap = 0.0;
  double cp_clean_gap = 0.0;
  double cp_clean_examples_cleaned = 0.0;  // fraction of train rows
  double cp_clean_gap_at_20pct = 0.0;      // early-termination column
};

/// Runs GroundTruth / Default / BoostClean / HoloClean / CPClean on one
/// prepared experiment and fills a Table 2 row.
Result<Table2Row> RunTable2Row(const ExperimentConfig& config,
                               const SimilarityKernel& kernel);

/// The Figure 9 series for one dataset: CPClean's and RandomClean's
/// cleaning curves (fraction cleaned vs. fraction CP'ed / gap closed).
struct CleaningCurves {
  std::string dataset;
  CleaningRunResult cp_clean;
  /// Point-wise average over `random_repeats` RandomClean runs, truncated
  /// to the shortest run.
  std::vector<CleaningStepLog> random_clean_mean;
  double ground_truth_accuracy = 0.0;
  double default_accuracy = 0.0;
  int total_dirty = 0;
};

Result<CleaningCurves> RunCleaningCurves(const ExperimentConfig& config,
                                         const SimilarityKernel& kernel,
                                         int random_repeats = 3);

}  // namespace cpclean

#endif  // CPCLEAN_EVAL_EXPERIMENT_H_
