#include "eval/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace cpclean {

double AccuracyScore(const std::vector<int>& predicted,
                     const std::vector<int>& expected) {
  CP_CHECK_EQ(predicted.size(), expected.size());
  if (predicted.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == expected[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double GapClosed(double accuracy, double default_accuracy,
                 double ground_truth_accuracy) {
  const double gap = ground_truth_accuracy - default_accuracy;
  if (std::abs(gap) < 1e-12) return 0.0;
  return (accuracy - default_accuracy) / gap;
}

std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& expected,
    int num_labels) {
  CP_CHECK_EQ(predicted.size(), expected.size());
  std::vector<std::vector<int>> matrix(
      static_cast<size_t>(num_labels),
      std::vector<int>(static_cast<size_t>(num_labels), 0));
  for (size_t i = 0; i < predicted.size(); ++i) {
    CP_CHECK_GE(expected[i], 0);
    CP_CHECK_LT(expected[i], num_labels);
    CP_CHECK_GE(predicted[i], 0);
    CP_CHECK_LT(predicted[i], num_labels);
    ++matrix[static_cast<size_t>(expected[i])]
            [static_cast<size_t>(predicted[i])];
  }
  return matrix;
}

}  // namespace cpclean
