#include "eval/accuracy_bounds.h"

#include "common/logging.h"

namespace cpclean {

AccuracyBounds ComputeAccuracyBounds(
    const IncompleteDataset& dataset,
    const std::vector<std::vector<double>>& eval_x,
    const std::vector<int>& eval_y, const SimilarityKernel& kernel, int k) {
  CP_CHECK_EQ(eval_x.size(), eval_y.size());
  const CertainPredictor predictor(&kernel, k);
  AccuracyBounds bounds;
  for (size_t i = 0; i < eval_x.size(); ++i) {
    const int certain = predictor.Check(dataset, eval_x[i]).CertainLabel();
    if (certain < 0) {
      ++bounds.uncertain;
    } else if (certain == eval_y[i]) {
      ++bounds.certain_correct;
    } else {
      ++bounds.certain_incorrect;
    }
  }
  const double n = static_cast<double>(eval_x.size());
  if (n > 0) {
    bounds.lower = bounds.certain_correct / n;
    bounds.upper = (bounds.certain_correct + bounds.uncertain) / n;
  }
  return bounds;
}

}  // namespace cpclean
