#ifndef CPCLEAN_EVAL_ACCURACY_BOUNDS_H_
#define CPCLEAN_EVAL_ACCURACY_BOUNDS_H_

#include <vector>

#include "core/certain_predictor.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {

/// Certain-prediction accuracy interval: the tightest [lo, hi] such that
/// *every* possible world's classifier has test accuracy in [lo, hi] —
/// a direct, decision-ready summary of "how much can the incompleteness
/// hurt (or flatter) this model?" (the question the paper's introduction
/// opens with).
///
///   lo = fraction of points certainly predicted with the correct label
///   hi = lo + fraction of points not certainly predicted
///
/// Points certainly predicted *incorrectly* count toward neither bound:
/// no amount of cleaning can fix them. When lo == hi the accuracy is fully
/// determined and cleaning cannot change it (the Q1-all-certain case).
struct AccuracyBounds {
  double lower = 0.0;
  double upper = 0.0;
  int certain_correct = 0;
  int certain_incorrect = 0;
  int uncertain = 0;

  bool IsTight() const { return uncertain == 0; }
};

/// Computes the bounds over an encoded, labeled evaluation set.
AccuracyBounds ComputeAccuracyBounds(
    const IncompleteDataset& dataset,
    const std::vector<std::vector<double>>& eval_x,
    const std::vector<int>& eval_y, const SimilarityKernel& kernel, int k);

}  // namespace cpclean

#endif  // CPCLEAN_EVAL_ACCURACY_BOUNDS_H_
