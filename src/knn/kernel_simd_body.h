// Internal to the kernel_simd_*.cc translation units — not part of the
// library API. Each per-ISA TU instantiates these per-kernel batch bodies
// with a Backend supplying the three row primitives:
//
//   static double SqDist(const double* a, const double* b, int dim);
//   static double Dot(const double* a, const double* b, int dim);
//   static void DotNorm(const double* a, const double* b, int dim,
//                       double* dot, double* a_sq_norm);
//
// Every backend must honor the fixed 8-lane accumulation shape documented
// in kernel_simd.h; everything outside the primitives (norm expansion,
// cancellation clamp, exp/sqrt sweeps, zero guards) is shared here, so the
// per-row arithmetic surrounding the hot loops cannot drift between ISA
// levels.

#ifndef CPCLEAN_KNN_KERNEL_SIMD_BODY_H_
#define CPCLEAN_KNN_KERNEL_SIMD_BODY_H_

#include <cmath>
#include <cstddef>

namespace cpclean {
namespace simd {
namespace body {

template <typename Backend>
void NegEuclideanBatch(const double* rows, int n, int dim, const double* t,
                       double* out) {
  for (int r = 0; r < n; ++r) {
    out[r] = -Backend::SqDist(rows + static_cast<size_t>(r) * dim, t, dim);
  }
}

template <typename Backend>
void NegEuclideanBatchNorms(const double* rows, const double* row_sq_norms,
                            int n, int dim, const double* t, double* out) {
  const double t_norm = Backend::Dot(t, t, dim);
  for (int r = 0; r < n; ++r) {
    const double dot =
        Backend::Dot(rows + static_cast<size_t>(r) * dim, t, dim);
    // ||a - t||^2 expanded; cancellation can dip epsilon-negative, and a
    // similarity above "identical" would poison the descending scan order.
    double d2 = row_sq_norms[r] - 2.0 * dot + t_norm;
    if (d2 < 0.0) d2 = 0.0;
    out[r] = -d2;
  }
}

template <typename Backend>
void RbfBatch(const double* rows, int n, int dim, const double* t,
              double gamma, double* out) {
  for (int r = 0; r < n; ++r) {
    out[r] =
        -gamma * Backend::SqDist(rows + static_cast<size_t>(r) * dim, t, dim);
  }
  // Scalar exp sweep in every backend: one libm, identical transcendentals.
  for (int r = 0; r < n; ++r) out[r] = std::exp(out[r]);
}

template <typename Backend>
void RbfBatchNorms(const double* rows, const double* row_sq_norms, int n,
                   int dim, const double* t, double gamma, double* out) {
  const double t_norm = Backend::Dot(t, t, dim);
  for (int r = 0; r < n; ++r) {
    const double dot =
        Backend::Dot(rows + static_cast<size_t>(r) * dim, t, dim);
    double d2 = row_sq_norms[r] - 2.0 * dot + t_norm;
    if (d2 < 0.0) d2 = 0.0;
    out[r] = -gamma * d2;
  }
  for (int r = 0; r < n; ++r) out[r] = std::exp(out[r]);
}

template <typename Backend>
void LinearBatch(const double* rows, int n, int dim, const double* t,
                 double* out) {
  for (int r = 0; r < n; ++r) {
    out[r] = Backend::Dot(rows + static_cast<size_t>(r) * dim, t, dim);
  }
}

template <typename Backend>
void CosineBatch(const double* rows, int n, int dim, const double* t,
                 double* out) {
  const double t_norm = Backend::Dot(t, t, dim);
  for (int r = 0; r < n; ++r) {
    double dot = 0.0, na = 0.0;
    Backend::DotNorm(rows + static_cast<size_t>(r) * dim, t, dim, &dot, &na);
    out[r] = (na <= 0.0 || t_norm <= 0.0) ? 0.0 : dot / std::sqrt(na * t_norm);
  }
}

template <typename Backend>
void CosineBatchNorms(const double* rows, const double* row_sq_norms, int n,
                      int dim, const double* t, double* out) {
  const double t_norm = Backend::Dot(t, t, dim);
  for (int r = 0; r < n; ++r) {
    const double dot =
        Backend::Dot(rows + static_cast<size_t>(r) * dim, t, dim);
    const double na = row_sq_norms[r];
    out[r] = (na <= 0.0 || t_norm <= 0.0) ? 0.0 : dot / std::sqrt(na * t_norm);
  }
}

}  // namespace body
}  // namespace simd
}  // namespace cpclean

#endif  // CPCLEAN_KNN_KERNEL_SIMD_BODY_H_
