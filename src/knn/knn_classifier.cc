#include "knn/knn_classifier.h"

#include "common/logging.h"
#include "knn/top_k.h"
#include "knn/vote.h"

namespace cpclean {

KnnClassifier::KnnClassifier(std::vector<std::vector<double>> features,
                             std::vector<int> labels, int num_labels, int k,
                             const SimilarityKernel* kernel)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_labels_(num_labels),
      k_(k),
      kernel_(kernel) {
  CP_CHECK(kernel_ != nullptr);
  CP_CHECK_EQ(features_.size(), labels_.size());
  CP_CHECK_GT(num_labels_, 0);
  CP_CHECK_GE(k_, 1);
  CP_CHECK_LE(static_cast<size_t>(k_), features_.size());
  for (int l : labels_) {
    CP_CHECK_GE(l, 0);
    CP_CHECK_LT(l, num_labels_);
  }
  dim_ = static_cast<int>(features_.front().size());
  flat_.reserve(features_.size() * static_cast<size_t>(dim_));
  sq_norms_.reserve(features_.size());
  for (const auto& row : features_) {
    CP_CHECK_EQ(static_cast<int>(row.size()), dim_);
    double sq = 0.0;
    for (const double v : row) sq += v * v;
    flat_.insert(flat_.end(), row.begin(), row.end());
    sq_norms_.push_back(sq);
  }
}

std::vector<ScoredCandidate> KnnClassifier::Score(
    const std::vector<double>& t) const {
  CP_CHECK_EQ(static_cast<int>(t.size()), dim_);
  const int n = num_examples();
  std::vector<double> sims(static_cast<size_t>(n));
  kernel_->SimilarityBatchNorms(flat_.data(), sq_norms_.data(), n, dim_,
                                t.data(), sims.data());
  std::vector<ScoredCandidate> scored;
  scored.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    scored.push_back({sims[static_cast<size_t>(i)], i, 0});
  }
  return scored;
}

std::vector<int> KnnClassifier::Neighbors(const std::vector<double>& t) const {
  return SelectTopK(Score(t), k_);
}

std::vector<int> KnnClassifier::NeighborTally(
    const std::vector<double>& t) const {
  std::vector<int> neighbor_labels;
  for (int idx : Neighbors(t)) {
    neighbor_labels.push_back(labels_[static_cast<size_t>(idx)]);
  }
  return TallyLabels(neighbor_labels, num_labels_);
}

int KnnClassifier::Predict(const std::vector<double>& t) const {
  return ArgMaxLabel(NeighborTally(t));
}

double KnnClassifier::Accuracy(const std::vector<std::vector<double>>& tests,
                               const std::vector<int>& expected) const {
  CP_CHECK_EQ(tests.size(), expected.size());
  if (tests.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < tests.size(); ++i) {
    if (Predict(tests[i]) == expected[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(tests.size());
}

}  // namespace cpclean
