#include "knn/vote.h"

#include "common/logging.h"

namespace cpclean {

int ArgMaxLabel(const std::vector<int>& tally) {
  CP_CHECK(!tally.empty());
  int best = 0;
  for (int l = 1; l < static_cast<int>(tally.size()); ++l) {
    if (tally[static_cast<size_t>(l)] > tally[static_cast<size_t>(best)]) {
      best = l;  // strict >: ties stay with the smaller label id
    }
  }
  return best;
}

std::vector<int> TallyLabels(const std::vector<int>& labels, int num_labels) {
  CP_CHECK_GT(num_labels, 0);
  std::vector<int> tally(static_cast<size_t>(num_labels), 0);
  for (int l : labels) {
    CP_CHECK_GE(l, 0);
    CP_CHECK_LT(l, num_labels);
    ++tally[static_cast<size_t>(l)];
  }
  return tally;
}

int MajorityVote(const std::vector<int>& labels, int num_labels) {
  return ArgMaxLabel(TallyLabels(labels, num_labels));
}

}  // namespace cpclean
