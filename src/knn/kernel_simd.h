#ifndef CPCLEAN_KNN_KERNEL_SIMD_H_
#define CPCLEAN_KNN_KERNEL_SIMD_H_

#include <cstddef>

#include "common/cpu_features.h"

namespace cpclean {
namespace simd {

/// Per-ISA implementations of the four kernels' batched entry points,
/// selected once per process into a function-pointer table.
///
/// Bit-identity contract: every level produces **bit-identical doubles**.
/// All implementations — the scalar reference included — accumulate in the
/// same fixed 8-lane shape: lane `d % 8` owns element `d`'s contribution
/// (full 8-wide blocks vectorize directly; the <8 remainder accumulates
/// scalar into the same lanes), and one canonical reduction tree
///
///     t_i = lane[i] + lane[i+4]   (i = 0..3)
///     sum = (t0 + t2) + (t1 + t3)
///
/// collapses the lanes. An AVX-512 register holds the 8 lanes outright;
/// AVX2 holds them as a lo/hi ymm pair; scalar walks them in an 8-double
/// array the autovectorizer may (legally, exactly) vectorize. The SIMD
/// translation units are compiled with `-ffp-contract=off` so `-mfma` (or
/// `-march=native`) cannot fuse a multiply-add on one level only. The
/// repo-wide determinism invariant — results independent of thread count,
/// contribution bounds, snapshot replay — therefore extends across ISA
/// levels: FastQ2, certification, replay verification, and the serve
/// layer's version-stamped caches never observe which path ran.
///
/// RBF's `exp` and cosine's `sqrt`/zero-guard run as scalar per-row sweeps
/// over the accumulated values in every implementation, so the one libm in
/// the process keeps those transcendentals identical too.
struct KernelBatchTable {
  SimdLevel level;
  void (*neg_euclidean)(const double* rows, int n, int dim, const double* t,
                        double* out);
  /// `row_sq_norms` must be non-null (the public kernel API forwards null
  /// to the plain batch before dispatching).
  void (*neg_euclidean_norms)(const double* rows, const double* row_sq_norms,
                              int n, int dim, const double* t, double* out);
  void (*rbf)(const double* rows, int n, int dim, const double* t,
              double gamma, double* out);
  void (*rbf_norms)(const double* rows, const double* row_sq_norms, int n,
                    int dim, const double* t, double gamma, double* out);
  void (*linear)(const double* rows, int n, int dim, const double* t,
                 double* out);
  void (*cosine)(const double* rows, int n, int dim, const double* t,
                 double* out);
  void (*cosine_norms)(const double* rows, const double* row_sq_norms, int n,
                       int dim, const double* t, double* out);
};

/// The table for `level`, or nullptr when this binary has no translation
/// unit for it or the host CPU cannot run it. `kScalar` never fails.
/// Benches and the cross-ISA tests use this to pin a level in-process.
const KernelBatchTable* TableForLevel(SimdLevel level);

/// Highest level this binary carries a translation unit for (a build-time
/// property: the CMake feature tests gate each per-ISA TU).
SimdLevel MaxCompiledSimdLevel();

/// The process-wide table: resolved once from `CPCLEAN_SIMD` (see
/// `ResolveSimdLevel`) ∧ hardware detection ∧ compiled TUs. An override
/// naming an unusable level aborts loudly on first use — a forced fleet
/// must fail fast, not silently downgrade.
const KernelBatchTable& ActiveTable();

/// The level `ActiveTable` resolved to, for `stats` / bench reporting.
SimdLevel ActiveSimdLevel();

// --- The canonical lane-structured scalar shape ------------------------------
//
// Inline so `SimilarityRaw` (the per-pair scalar path) shares the exact
// accumulation shape with the batched paths: scalar-vs-batch stays
// bit-identical, which the kernel tests assert with EXPECT_DOUBLE_EQ.

inline double LaneReduce(const double lanes[8]) {
  const double t0 = lanes[0] + lanes[4];
  const double t1 = lanes[1] + lanes[5];
  const double t2 = lanes[2] + lanes[6];
  const double t3 = lanes[3] + lanes[7];
  return (t0 + t2) + (t1 + t3);
}

inline double LaneSqDist(const double* a, const double* b, int dim) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const int blocks = dim & ~7;
  for (int d = 0; d < blocks; d += 8) {
    for (int l = 0; l < 8; ++l) {
      const double diff = a[d + l] - b[d + l];
      lanes[l] += diff * diff;
    }
  }
  for (int d = blocks; d < dim; ++d) {
    const double diff = a[d] - b[d];
    lanes[d & 7] += diff * diff;
  }
  return LaneReduce(lanes);
}

inline double LaneDot(const double* a, const double* b, int dim) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const int blocks = dim & ~7;
  for (int d = 0; d < blocks; d += 8) {
    for (int l = 0; l < 8; ++l) lanes[l] += a[d + l] * b[d + l];
  }
  for (int d = blocks; d < dim; ++d) lanes[d & 7] += a[d] * b[d];
  return LaneReduce(lanes);
}

/// Fused dot + squared norm of `a` (cosine's per-row pair).
inline void LaneDotNorm(const double* a, const double* b, int dim,
                        double* dot, double* a_sq_norm) {
  double dot_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  double norm_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const int blocks = dim & ~7;
  for (int d = 0; d < blocks; d += 8) {
    for (int l = 0; l < 8; ++l) {
      dot_lanes[l] += a[d + l] * b[d + l];
      norm_lanes[l] += a[d + l] * a[d + l];
    }
  }
  for (int d = blocks; d < dim; ++d) {
    dot_lanes[d & 7] += a[d] * b[d];
    norm_lanes[d & 7] += a[d] * a[d];
  }
  *dot = LaneReduce(dot_lanes);
  *a_sq_norm = LaneReduce(norm_lanes);
}

namespace internal {
// One table per compiled translation unit; referenced by the dispatcher
// under the matching CPCLEAN_SIMD_HAVE_* definition.
extern const KernelBatchTable kTableScalar;
extern const KernelBatchTable kTableAvx2;
extern const KernelBatchTable kTableAvx512;
}  // namespace internal

}  // namespace simd
}  // namespace cpclean

#endif  // CPCLEAN_KNN_KERNEL_SIMD_H_
