#ifndef CPCLEAN_KNN_KERNEL_H_
#define CPCLEAN_KNN_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

namespace cpclean {

/// Similarity kernel κ(x, t) between feature vectors (paper §3, Fig. 5).
/// Larger values mean "more similar"; KNN takes the top-K by similarity.
///
/// Batch contract: `SimilarityBatch(rows, n, dim, t, out)` scores `n`
/// row-major contiguous rows (`rows[r*dim .. r*dim+dim)`) against one test
/// point and writes `out[r]`, with no virtual dispatch, allocation, or
/// bounds checks inside the loop. The built-in kernels route the batch
/// through the runtime-dispatched scalar/AVX2/AVX-512 implementations in
/// knn/kernel_simd.h — every dispatch level returns **bit-identical**
/// doubles (all levels share one fixed 8-lane accumulation shape), and the
/// per-pair `SimilarityRaw` uses the same shape, so raw-vs-batch agreement
/// is exact too. `SimilarityBatchNorms` additionally takes the cached
/// squared L2 norm of every row (as maintained by
/// `IncompleteDataset::flat_sq_norms()`); kernels that can exploit it —
/// neg-Euclidean and RBF via ||a - t||² = ||a||² - 2⟨a,t⟩ + ||t||², cosine
/// via its denominator — override it, the rest fall back to
/// `SimilarityBatch`. The norm expansion reassociates, so norm-accelerated
/// scores may differ from the plain path by ulps — but identically so on
/// every dispatch level, and every scorer in this repo — the CP engines
/// *and* KnnClassifier — goes through the same norm-accelerated entry
/// points, so certified labels and actual predictions always agree
/// exactly.
class SimilarityKernel {
 public:
  virtual ~SimilarityKernel() = default;

  /// Scalar similarity on raw pointers (`dim` doubles each).
  virtual double SimilarityRaw(const double* a, const double* b,
                               int dim) const = 0;

  /// Similarity between two equal-length vectors.
  virtual double Similarity(const std::vector<double>& a,
                            const std::vector<double>& b) const;

  /// Scores `n` contiguous rows against `t`; see the batch contract above.
  /// The default loops `SimilarityRaw`; every built-in kernel overrides it
  /// with a fused, vectorizable loop free of per-row virtual dispatch.
  virtual void SimilarityBatch(const double* rows, int n, int dim,
                               const double* t, double* out) const;

  /// `SimilarityBatch` with cached per-row squared norms. `row_sq_norms`
  /// may be null, in which case this forwards to `SimilarityBatch`.
  virtual void SimilarityBatchNorms(const double* rows,
                                    const double* row_sq_norms, int n,
                                    int dim, const double* t,
                                    double* out) const;

  /// Kernel name for reporting.
  virtual std::string name() const = 0;
};

/// Negative squared Euclidean distance: the paper's experimental setting
/// ("Euclidean distance as the similarity function") — rank-equivalent to
/// any monotone transform such as RBF.
class NegativeEuclideanKernel final : public SimilarityKernel {
 public:
  double SimilarityRaw(const double* a, const double* b,
                       int dim) const override;
  void SimilarityBatch(const double* rows, int n, int dim, const double* t,
                       double* out) const override;
  void SimilarityBatchNorms(const double* rows, const double* row_sq_norms,
                            int n, int dim, const double* t,
                            double* out) const override;
  std::string name() const override { return "neg_euclidean"; }
};

/// RBF kernel exp(-gamma * ||a-b||^2).
class RbfKernel final : public SimilarityKernel {
 public:
  explicit RbfKernel(double gamma = 1.0) : gamma_(gamma) {}
  double SimilarityRaw(const double* a, const double* b,
                       int dim) const override;
  void SimilarityBatch(const double* rows, int n, int dim, const double* t,
                       double* out) const override;
  void SimilarityBatchNorms(const double* rows, const double* row_sq_norms,
                            int n, int dim, const double* t,
                            double* out) const override;
  std::string name() const override { return "rbf"; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// Linear kernel <a, b>.
class LinearKernel final : public SimilarityKernel {
 public:
  double SimilarityRaw(const double* a, const double* b,
                       int dim) const override;
  void SimilarityBatch(const double* rows, int n, int dim, const double* t,
                       double* out) const override;
  std::string name() const override { return "linear"; }
};

/// Cosine similarity <a,b> / (||a|| ||b||); 0 when either vector is zero.
class CosineKernel final : public SimilarityKernel {
 public:
  double SimilarityRaw(const double* a, const double* b,
                       int dim) const override;
  void SimilarityBatch(const double* rows, int n, int dim, const double* t,
                       double* out) const override;
  void SimilarityBatchNorms(const double* rows, const double* row_sq_norms,
                            int n, int dim, const double* t,
                            double* out) const override;
  std::string name() const override { return "cosine"; }
};

enum class KernelKind { kNegativeEuclidean, kRbf, kLinear, kCosine };

/// Factory for the built-in kernels.
std::unique_ptr<SimilarityKernel> MakeKernel(KernelKind kind,
                                             double gamma = 1.0);

}  // namespace cpclean

#endif  // CPCLEAN_KNN_KERNEL_H_
