#ifndef CPCLEAN_KNN_KERNEL_H_
#define CPCLEAN_KNN_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

namespace cpclean {

/// Similarity kernel κ(x, t) between feature vectors (paper §3, Fig. 5).
/// Larger values mean "more similar"; KNN takes the top-K by similarity.
class SimilarityKernel {
 public:
  virtual ~SimilarityKernel() = default;

  /// Similarity between two equal-length vectors.
  virtual double Similarity(const std::vector<double>& a,
                            const std::vector<double>& b) const = 0;

  /// Kernel name for reporting.
  virtual std::string name() const = 0;
};

/// Negative squared Euclidean distance: the paper's experimental setting
/// ("Euclidean distance as the similarity function") — rank-equivalent to
/// any monotone transform such as RBF.
class NegativeEuclideanKernel final : public SimilarityKernel {
 public:
  double Similarity(const std::vector<double>& a,
                    const std::vector<double>& b) const override;
  std::string name() const override { return "neg_euclidean"; }
};

/// RBF kernel exp(-gamma * ||a-b||^2).
class RbfKernel final : public SimilarityKernel {
 public:
  explicit RbfKernel(double gamma = 1.0) : gamma_(gamma) {}
  double Similarity(const std::vector<double>& a,
                    const std::vector<double>& b) const override;
  std::string name() const override { return "rbf"; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// Linear kernel <a, b>.
class LinearKernel final : public SimilarityKernel {
 public:
  double Similarity(const std::vector<double>& a,
                    const std::vector<double>& b) const override;
  std::string name() const override { return "linear"; }
};

/// Cosine similarity <a,b> / (||a|| ||b||); 0 when either vector is zero.
class CosineKernel final : public SimilarityKernel {
 public:
  double Similarity(const std::vector<double>& a,
                    const std::vector<double>& b) const override;
  std::string name() const override { return "cosine"; }
};

enum class KernelKind { kNegativeEuclidean, kRbf, kLinear, kCosine };

/// Factory for the built-in kernels.
std::unique_ptr<SimilarityKernel> MakeKernel(KernelKind kind,
                                             double gamma = 1.0);

}  // namespace cpclean

#endif  // CPCLEAN_KNN_KERNEL_H_
