// AVX2 backend: the 8 accumulation lanes live in a lo/hi ymm pair, full
// 8-double blocks vectorized, the <8 remainder accumulated scalar into the
// stored lanes, then the canonical scalar reduction — the exact shape of
// the scalar reference, so results are bit-identical. This TU is compiled
// with -mavx2 -mfma -ffp-contract=off: fma is required by the dispatch
// policy (the compiler may fuse anywhere in an -mfma TU) but contraction
// is off, so the explicit mul/add intrinsics below stay unfused and match
// the other levels bit for bit.

#if !defined(__AVX2__) || !defined(__FMA__)
#error "kernel_simd_avx2.cc must be compiled with -mavx2 -mfma"
#endif

#include <immintrin.h>

#include "knn/kernel_simd.h"
#include "knn/kernel_simd_body.h"

namespace cpclean {
namespace simd {

namespace {

struct Avx2Backend {
  static double SqDist(const double* a, const double* b, int dim) {
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    const int blocks = dim & ~7;
    for (int d = 0; d < blocks; d += 8) {
      const __m256d diff_lo =
          _mm256_sub_pd(_mm256_loadu_pd(a + d), _mm256_loadu_pd(b + d));
      const __m256d diff_hi = _mm256_sub_pd(_mm256_loadu_pd(a + d + 4),
                                            _mm256_loadu_pd(b + d + 4));
      acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(diff_lo, diff_lo));
      acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(diff_hi, diff_hi));
    }
    alignas(32) double lanes[8];
    _mm256_store_pd(lanes, acc_lo);
    _mm256_store_pd(lanes + 4, acc_hi);
    for (int d = blocks; d < dim; ++d) {
      const double diff = a[d] - b[d];
      lanes[d & 7] += diff * diff;
    }
    return LaneReduce(lanes);
  }

  static double Dot(const double* a, const double* b, int dim) {
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    const int blocks = dim & ~7;
    for (int d = 0; d < blocks; d += 8) {
      acc_lo = _mm256_add_pd(
          acc_lo,
          _mm256_mul_pd(_mm256_loadu_pd(a + d), _mm256_loadu_pd(b + d)));
      acc_hi = _mm256_add_pd(
          acc_hi, _mm256_mul_pd(_mm256_loadu_pd(a + d + 4),
                                _mm256_loadu_pd(b + d + 4)));
    }
    alignas(32) double lanes[8];
    _mm256_store_pd(lanes, acc_lo);
    _mm256_store_pd(lanes + 4, acc_hi);
    for (int d = blocks; d < dim; ++d) lanes[d & 7] += a[d] * b[d];
    return LaneReduce(lanes);
  }

  static void DotNorm(const double* a, const double* b, int dim, double* dot,
                      double* a_sq_norm) {
    __m256d dot_lo = _mm256_setzero_pd();
    __m256d dot_hi = _mm256_setzero_pd();
    __m256d norm_lo = _mm256_setzero_pd();
    __m256d norm_hi = _mm256_setzero_pd();
    const int blocks = dim & ~7;
    for (int d = 0; d < blocks; d += 8) {
      const __m256d a_lo = _mm256_loadu_pd(a + d);
      const __m256d a_hi = _mm256_loadu_pd(a + d + 4);
      dot_lo = _mm256_add_pd(dot_lo,
                             _mm256_mul_pd(a_lo, _mm256_loadu_pd(b + d)));
      dot_hi = _mm256_add_pd(
          dot_hi, _mm256_mul_pd(a_hi, _mm256_loadu_pd(b + d + 4)));
      norm_lo = _mm256_add_pd(norm_lo, _mm256_mul_pd(a_lo, a_lo));
      norm_hi = _mm256_add_pd(norm_hi, _mm256_mul_pd(a_hi, a_hi));
    }
    alignas(32) double dot_lanes[8];
    alignas(32) double norm_lanes[8];
    _mm256_store_pd(dot_lanes, dot_lo);
    _mm256_store_pd(dot_lanes + 4, dot_hi);
    _mm256_store_pd(norm_lanes, norm_lo);
    _mm256_store_pd(norm_lanes + 4, norm_hi);
    for (int d = blocks; d < dim; ++d) {
      dot_lanes[d & 7] += a[d] * b[d];
      norm_lanes[d & 7] += a[d] * a[d];
    }
    *dot = LaneReduce(dot_lanes);
    *a_sq_norm = LaneReduce(norm_lanes);
  }
};

}  // namespace

namespace internal {

const KernelBatchTable kTableAvx2 = {
    SimdLevel::kAvx2,
    body::NegEuclideanBatch<Avx2Backend>,
    body::NegEuclideanBatchNorms<Avx2Backend>,
    body::RbfBatch<Avx2Backend>,
    body::RbfBatchNorms<Avx2Backend>,
    body::LinearBatch<Avx2Backend>,
    body::CosineBatch<Avx2Backend>,
    body::CosineBatchNorms<Avx2Backend>,
};

}  // namespace internal
}  // namespace simd
}  // namespace cpclean
