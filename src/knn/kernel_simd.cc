#include "knn/kernel_simd.h"

#include <cstdlib>

#include "common/logging.h"

namespace cpclean {
namespace simd {

SimdLevel MaxCompiledSimdLevel() {
#if defined(CPCLEAN_SIMD_HAVE_AVX512)
  return SimdLevel::kAvx512;
#elif defined(CPCLEAN_SIMD_HAVE_AVX2)
  return SimdLevel::kAvx2;
#else
  return SimdLevel::kScalar;
#endif
}

const KernelBatchTable* TableForLevel(SimdLevel level) {
  if (level != SimdLevel::kScalar && DetectSimdLevel() < level) {
    return nullptr;  // compiled in, maybe — but this CPU cannot run it
  }
  switch (level) {
    case SimdLevel::kScalar:
      return &internal::kTableScalar;
    case SimdLevel::kAvx2:
#if defined(CPCLEAN_SIMD_HAVE_AVX2)
      return &internal::kTableAvx2;
#else
      return nullptr;
#endif
    case SimdLevel::kAvx512:
#if defined(CPCLEAN_SIMD_HAVE_AVX512)
      return &internal::kTableAvx512;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelBatchTable& ActiveTable() {
  // Resolved once per process, before any concurrent use (magic-static
  // init is thread-safe). Every batched similarity call after this is one
  // indirect call into the chosen TU — no per-call cpuid, no env reads.
  static const KernelBatchTable* const table = [] {
    const char* env = std::getenv("CPCLEAN_SIMD");
    const Result<SimdLevel> level =
        ResolveSimdLevel(env, DetectSimdLevel(), MaxCompiledSimdLevel());
    CP_CHECK(level.ok()) << level.status().message();
    const KernelBatchTable* resolved = TableForLevel(level.value());
    CP_CHECK(resolved != nullptr)
        << "no kernel table for resolved SIMD level "
        << SimdLevelName(level.value());
    if (env != nullptr && env[0] != '\0') {
      CP_LOG(Info) << "CPCLEAN_SIMD=" << env
                   << ": similarity kernels pinned to "
                   << SimdLevelName(resolved->level);
    }
    return resolved;
  }();
  return *table;
}

SimdLevel ActiveSimdLevel() { return ActiveTable().level; }

}  // namespace simd
}  // namespace cpclean
