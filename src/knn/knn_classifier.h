#ifndef CPCLEAN_KNN_KNN_CLASSIFIER_H_
#define CPCLEAN_KNN_KNN_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "knn/kernel.h"
#include "knn/ordering.h"

namespace cpclean {

/// The textbook K-nearest-neighbor classifier of paper §3 over a *complete*
/// training set: similarities via a kernel, deterministic top-K under the
/// shared total order, majority vote with deterministic tie-break.
///
/// This is the classifier "A" whose behavior over every possible world the
/// CP queries reason about; the brute-force oracle trains one of these per
/// world.
class KnnClassifier {
 public:
  /// `k` must be in [1, features.size()]; labels in [0, num_labels).
  /// The kernel is shared, not owned.
  KnnClassifier(std::vector<std::vector<double>> features,
                std::vector<int> labels, int num_labels, int k,
                const SimilarityKernel* kernel);

  int k() const { return k_; }
  int num_labels() const { return num_labels_; }
  int num_examples() const { return static_cast<int>(features_.size()); }

  /// Predicted label for a test point.
  int Predict(const std::vector<double>& t) const;

  /// Indices of the K nearest training examples, most similar first.
  std::vector<int> Neighbors(const std::vector<double>& t) const;

  /// Per-label vote tally among the K nearest neighbors of `t`.
  std::vector<int> NeighborTally(const std::vector<double>& t) const;

  /// Fraction of `tests` predicted as `expected` labels.
  double Accuracy(const std::vector<std::vector<double>>& tests,
                  const std::vector<int>& expected) const;

 private:
  std::vector<ScoredCandidate> Score(const std::vector<double>& t) const;

  std::vector<std::vector<double>> features_;
  std::vector<int> labels_;
  int num_labels_;
  int k_;
  const SimilarityKernel* kernel_;
  // Row-major copy of features_ with cached squared norms, so scoring uses
  // the same batched (norm-expanded) kernel arithmetic as the CP engines —
  // a label those engines certify is the label this classifier predicts.
  int dim_ = 0;
  std::vector<double> flat_;
  std::vector<double> sq_norms_;
};

}  // namespace cpclean

#endif  // CPCLEAN_KNN_KNN_CLASSIFIER_H_
