// AVX-512F backend: one zmm register holds all 8 accumulation lanes.
// Same fixed lane shape + scalar remainder + canonical reduction as the
// scalar reference and the AVX2 pair — bit-identical across levels.
// Compiled with -mavx512f -ffp-contract=off (see kernel_simd_avx2.cc for
// why contraction must stay off).

#ifndef __AVX512F__
#error "kernel_simd_avx512.cc must be compiled with -mavx512f"
#endif

#include <immintrin.h>

#include "knn/kernel_simd.h"
#include "knn/kernel_simd_body.h"

namespace cpclean {
namespace simd {

namespace {

struct Avx512Backend {
  static double SqDist(const double* a, const double* b, int dim) {
    __m512d acc = _mm512_setzero_pd();
    const int blocks = dim & ~7;
    for (int d = 0; d < blocks; d += 8) {
      const __m512d diff =
          _mm512_sub_pd(_mm512_loadu_pd(a + d), _mm512_loadu_pd(b + d));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    for (int d = blocks; d < dim; ++d) {
      const double diff = a[d] - b[d];
      lanes[d & 7] += diff * diff;
    }
    return LaneReduce(lanes);
  }

  static double Dot(const double* a, const double* b, int dim) {
    __m512d acc = _mm512_setzero_pd();
    const int blocks = dim & ~7;
    for (int d = 0; d < blocks; d += 8) {
      acc = _mm512_add_pd(
          acc, _mm512_mul_pd(_mm512_loadu_pd(a + d), _mm512_loadu_pd(b + d)));
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    for (int d = blocks; d < dim; ++d) lanes[d & 7] += a[d] * b[d];
    return LaneReduce(lanes);
  }

  static void DotNorm(const double* a, const double* b, int dim, double* dot,
                      double* a_sq_norm) {
    __m512d dot_acc = _mm512_setzero_pd();
    __m512d norm_acc = _mm512_setzero_pd();
    const int blocks = dim & ~7;
    for (int d = 0; d < blocks; d += 8) {
      const __m512d av = _mm512_loadu_pd(a + d);
      dot_acc =
          _mm512_add_pd(dot_acc, _mm512_mul_pd(av, _mm512_loadu_pd(b + d)));
      norm_acc = _mm512_add_pd(norm_acc, _mm512_mul_pd(av, av));
    }
    alignas(64) double dot_lanes[8];
    alignas(64) double norm_lanes[8];
    _mm512_store_pd(dot_lanes, dot_acc);
    _mm512_store_pd(norm_lanes, norm_acc);
    for (int d = blocks; d < dim; ++d) {
      dot_lanes[d & 7] += a[d] * b[d];
      norm_lanes[d & 7] += a[d] * a[d];
    }
    *dot = LaneReduce(dot_lanes);
    *a_sq_norm = LaneReduce(norm_lanes);
  }
};

}  // namespace

namespace internal {

const KernelBatchTable kTableAvx512 = {
    SimdLevel::kAvx512,
    body::NegEuclideanBatch<Avx512Backend>,
    body::NegEuclideanBatchNorms<Avx512Backend>,
    body::RbfBatch<Avx512Backend>,
    body::RbfBatchNorms<Avx512Backend>,
    body::LinearBatch<Avx512Backend>,
    body::CosineBatch<Avx512Backend>,
    body::CosineBatchNorms<Avx512Backend>,
};

}  // namespace internal
}  // namespace simd
}  // namespace cpclean
