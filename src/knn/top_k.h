#ifndef CPCLEAN_KNN_TOP_K_H_
#define CPCLEAN_KNN_TOP_K_H_

#include <vector>

#include "knn/ordering.h"

namespace cpclean {

/// Returns the indices (into `items`) of the K most-similar candidates,
/// ordered from most to least similar under the deterministic total order.
/// Requires 0 < k <= items.size(). Runs in O(n log k) with a bounded heap.
std::vector<int> SelectTopK(const std::vector<ScoredCandidate>& items, int k);

/// The least similar member of the top-K set (the "boundary" element).
ScoredCandidate TopKBoundary(const std::vector<ScoredCandidate>& items, int k);

}  // namespace cpclean

#endif  // CPCLEAN_KNN_TOP_K_H_
