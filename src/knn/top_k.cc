#include "knn/top_k.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace cpclean {

std::vector<int> SelectTopK(const std::vector<ScoredCandidate>& items, int k) {
  CP_CHECK_GT(k, 0);
  CP_CHECK_LE(static_cast<size_t>(k), items.size());
  // Min-heap of the current best k, keyed by "least similar at top".
  auto worse = [&items](int a, int b) {
    // Priority queue keeps the *largest* under the comparator at top, so
    // invert: top() should be the least similar member.
    return MoreSimilar(items[static_cast<size_t>(a)],
                       items[static_cast<size_t>(b)]);
  };
  std::priority_queue<int, std::vector<int>, decltype(worse)> heap(worse);
  for (int i = 0; i < static_cast<int>(items.size()); ++i) {
    if (static_cast<int>(heap.size()) < k) {
      heap.push(i);
    } else if (MoreSimilar(items[static_cast<size_t>(i)],
                           items[static_cast<size_t>(heap.top())])) {
      heap.pop();
      heap.push(i);
    }
  }
  std::vector<int> out;
  out.reserve(static_cast<size_t>(k));
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());  // most similar first
  return out;
}

ScoredCandidate TopKBoundary(const std::vector<ScoredCandidate>& items,
                             int k) {
  std::vector<int> top = SelectTopK(items, k);
  return items[static_cast<size_t>(top.back())];
}

}  // namespace cpclean
