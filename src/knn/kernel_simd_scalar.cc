// The scalar reference implementations — always compiled, every platform.
// The row primitives are the inline lane-structured helpers themselves, so
// this TU *defines* the bit pattern the vector TUs must reproduce. Built
// with -ffp-contract=off (like the vector TUs) so a -march=native build
// cannot fuse multiply-adds here and break cross-level identity.

#include "knn/kernel_simd.h"
#include "knn/kernel_simd_body.h"

namespace cpclean {
namespace simd {

namespace {

struct ScalarBackend {
  static double SqDist(const double* a, const double* b, int dim) {
    return LaneSqDist(a, b, dim);
  }
  static double Dot(const double* a, const double* b, int dim) {
    return LaneDot(a, b, dim);
  }
  static void DotNorm(const double* a, const double* b, int dim, double* dot,
                      double* a_sq_norm) {
    LaneDotNorm(a, b, dim, dot, a_sq_norm);
  }
};

}  // namespace

namespace internal {

const KernelBatchTable kTableScalar = {
    SimdLevel::kScalar,
    body::NegEuclideanBatch<ScalarBackend>,
    body::NegEuclideanBatchNorms<ScalarBackend>,
    body::RbfBatch<ScalarBackend>,
    body::RbfBatchNorms<ScalarBackend>,
    body::LinearBatch<ScalarBackend>,
    body::CosineBatch<ScalarBackend>,
    body::CosineBatchNorms<ScalarBackend>,
};

}  // namespace internal
}  // namespace simd
}  // namespace cpclean
