#ifndef CPCLEAN_KNN_VOTE_H_
#define CPCLEAN_KNN_VOTE_H_

#include <vector>

namespace cpclean {

/// Majority vote over a label tally γ (paper §3.1.1): returns the label id
/// with the largest count, breaking count ties toward the smaller label id.
/// This deterministic rule is shared by every engine (brute force, SS
/// variants, MM) so they agree exactly.
int ArgMaxLabel(const std::vector<int>& tally);

/// Builds the tally of `labels` (each in [0, num_labels)) and votes.
int MajorityVote(const std::vector<int>& labels, int num_labels);

/// Tally vector of `labels`.
std::vector<int> TallyLabels(const std::vector<int>& labels, int num_labels);

}  // namespace cpclean

#endif  // CPCLEAN_KNN_VOTE_H_
