#ifndef CPCLEAN_KNN_ORDERING_H_
#define CPCLEAN_KNN_ORDERING_H_

namespace cpclean {

/// A similarity score tagged with its provenance `(tuple, candidate)`.
///
/// The paper assumes no ties among similarity scores and suggests breaking
/// ties "by favoring a smaller i and j". We make that concrete: candidates
/// are strictly totally ordered by `(similarity, tuple, candidate)`
/// lexicographically, ascending. Every engine — the brute-force classifier,
/// the SS tallies, and the MM extreme worlds — uses this same order, so all
/// agree even on datasets with duplicated points.
struct ScoredCandidate {
  double similarity = 0.0;
  int tuple = 0;
  int candidate = 0;
};

/// Strict "less similar" total order.
inline bool LessSimilar(const ScoredCandidate& a, const ScoredCandidate& b) {
  if (a.similarity != b.similarity) return a.similarity < b.similarity;
  if (a.tuple != b.tuple) return a.tuple < b.tuple;
  return a.candidate < b.candidate;
}

/// Strict "more similar" order (for descending sorts / top-K).
inline bool MoreSimilar(const ScoredCandidate& a, const ScoredCandidate& b) {
  return LessSimilar(b, a);
}

}  // namespace cpclean

#endif  // CPCLEAN_KNN_ORDERING_H_
