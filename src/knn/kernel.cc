#include "knn/kernel.h"

#include <cmath>

#include "common/logging.h"
#include "knn/kernel_simd.h"

// The batched entry points dispatch through simd::ActiveTable() — the
// runtime-selected scalar/AVX2/AVX-512 implementations, bit-identical
// across levels (see kernel_simd.h for the shared accumulation shape).
// The per-pair SimilarityRaw paths use the same lane-structured scalar
// helpers, so raw-vs-batch agreement is exact, not ulp-approximate.

namespace cpclean {

double SimilarityKernel::Similarity(const std::vector<double>& a,
                                    const std::vector<double>& b) const {
  CP_CHECK_EQ(a.size(), b.size());
  return SimilarityRaw(a.data(), b.data(), static_cast<int>(a.size()));
}

void SimilarityKernel::SimilarityBatch(const double* rows, int n, int dim,
                                       const double* t, double* out) const {
  for (int r = 0; r < n; ++r) {
    out[r] = SimilarityRaw(rows + static_cast<size_t>(r) * dim, t, dim);
  }
}

void SimilarityKernel::SimilarityBatchNorms(const double* rows,
                                            const double* row_sq_norms, int n,
                                            int dim, const double* t,
                                            double* out) const {
  (void)row_sq_norms;
  SimilarityBatch(rows, n, dim, t, out);
}

// --- Negative squared Euclidean ---------------------------------------------

double NegativeEuclideanKernel::SimilarityRaw(const double* a, const double* b,
                                              int dim) const {
  return -simd::LaneSqDist(a, b, dim);
}

void NegativeEuclideanKernel::SimilarityBatch(const double* rows, int n,
                                              int dim, const double* t,
                                              double* out) const {
  simd::ActiveTable().neg_euclidean(rows, n, dim, t, out);
}

void NegativeEuclideanKernel::SimilarityBatchNorms(const double* rows,
                                                   const double* row_sq_norms,
                                                   int n, int dim,
                                                   const double* t,
                                                   double* out) const {
  if (row_sq_norms == nullptr) {
    SimilarityBatch(rows, n, dim, t, out);
    return;
  }
  simd::ActiveTable().neg_euclidean_norms(rows, row_sq_norms, n, dim, t, out);
}

// --- RBF --------------------------------------------------------------------

double RbfKernel::SimilarityRaw(const double* a, const double* b,
                                int dim) const {
  return std::exp(-gamma_ * simd::LaneSqDist(a, b, dim));
}

void RbfKernel::SimilarityBatch(const double* rows, int n, int dim,
                                const double* t, double* out) const {
  simd::ActiveTable().rbf(rows, n, dim, t, gamma_, out);
}

void RbfKernel::SimilarityBatchNorms(const double* rows,
                                     const double* row_sq_norms, int n,
                                     int dim, const double* t,
                                     double* out) const {
  if (row_sq_norms == nullptr) {
    SimilarityBatch(rows, n, dim, t, out);
    return;
  }
  simd::ActiveTable().rbf_norms(rows, row_sq_norms, n, dim, t, gamma_, out);
}

// --- Linear -----------------------------------------------------------------

double LinearKernel::SimilarityRaw(const double* a, const double* b,
                                   int dim) const {
  return simd::LaneDot(a, b, dim);
}

void LinearKernel::SimilarityBatch(const double* rows, int n, int dim,
                                   const double* t, double* out) const {
  simd::ActiveTable().linear(rows, n, dim, t, out);
}

// --- Cosine -----------------------------------------------------------------

double CosineKernel::SimilarityRaw(const double* a, const double* b,
                                   int dim) const {
  double dot = 0.0, na = 0.0;
  simd::LaneDotNorm(a, b, dim, &dot, &na);
  const double nb = simd::LaneDot(b, b, dim);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

void CosineKernel::SimilarityBatch(const double* rows, int n, int dim,
                                   const double* t, double* out) const {
  simd::ActiveTable().cosine(rows, n, dim, t, out);
}

void CosineKernel::SimilarityBatchNorms(const double* rows,
                                        const double* row_sq_norms, int n,
                                        int dim, const double* t,
                                        double* out) const {
  if (row_sq_norms == nullptr) {
    SimilarityBatch(rows, n, dim, t, out);
    return;
  }
  simd::ActiveTable().cosine_norms(rows, row_sq_norms, n, dim, t, out);
}

std::unique_ptr<SimilarityKernel> MakeKernel(KernelKind kind, double gamma) {
  switch (kind) {
    case KernelKind::kNegativeEuclidean:
      return std::make_unique<NegativeEuclideanKernel>();
    case KernelKind::kRbf:
      return std::make_unique<RbfKernel>(gamma);
    case KernelKind::kLinear:
      return std::make_unique<LinearKernel>();
    case KernelKind::kCosine:
      return std::make_unique<CosineKernel>();
  }
  return nullptr;
}

}  // namespace cpclean
