#include "knn/kernel.h"

#include <cmath>

#include "common/logging.h"

namespace cpclean {

namespace {
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  CP_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}
}  // namespace

double NegativeEuclideanKernel::Similarity(const std::vector<double>& a,
                                           const std::vector<double>& b) const {
  return -SquaredDistance(a, b);
}

double RbfKernel::Similarity(const std::vector<double>& a,
                             const std::vector<double>& b) const {
  return std::exp(-gamma_ * SquaredDistance(a, b));
}

double LinearKernel::Similarity(const std::vector<double>& a,
                                const std::vector<double>& b) const {
  CP_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double CosineKernel::Similarity(const std::vector<double>& a,
                                const std::vector<double>& b) const {
  CP_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

std::unique_ptr<SimilarityKernel> MakeKernel(KernelKind kind, double gamma) {
  switch (kind) {
    case KernelKind::kNegativeEuclidean:
      return std::make_unique<NegativeEuclideanKernel>();
    case KernelKind::kRbf:
      return std::make_unique<RbfKernel>(gamma);
    case KernelKind::kLinear:
      return std::make_unique<LinearKernel>();
    case KernelKind::kCosine:
      return std::make_unique<CosineKernel>();
  }
  return nullptr;
}

}  // namespace cpclean
