#include "knn/kernel.h"

#include <cmath>

#include "common/logging.h"

namespace cpclean {

namespace {
double SquaredDistanceRaw(const double* a, const double* b, int dim) {
  double sum = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

double DotRaw(const double* a, const double* b, int dim) {
  double sum = 0.0;
  for (int d = 0; d < dim; ++d) sum += a[d] * b[d];
  return sum;
}
}  // namespace

double SimilarityKernel::Similarity(const std::vector<double>& a,
                                    const std::vector<double>& b) const {
  CP_CHECK_EQ(a.size(), b.size());
  return SimilarityRaw(a.data(), b.data(), static_cast<int>(a.size()));
}

void SimilarityKernel::SimilarityBatch(const double* rows, int n, int dim,
                                       const double* t, double* out) const {
  for (int r = 0; r < n; ++r) {
    out[r] = SimilarityRaw(rows + static_cast<size_t>(r) * dim, t, dim);
  }
}

void SimilarityKernel::SimilarityBatchNorms(const double* rows,
                                            const double* row_sq_norms, int n,
                                            int dim, const double* t,
                                            double* out) const {
  (void)row_sq_norms;
  SimilarityBatch(rows, n, dim, t, out);
}

// --- Negative squared Euclidean ---------------------------------------------

double NegativeEuclideanKernel::SimilarityRaw(const double* a, const double* b,
                                              int dim) const {
  return -SquaredDistanceRaw(a, b, dim);
}

void NegativeEuclideanKernel::SimilarityBatch(const double* rows, int n,
                                              int dim, const double* t,
                                              double* out) const {
  for (int r = 0; r < n; ++r) {
    const double* a = rows + static_cast<size_t>(r) * dim;
    double sum = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = a[d] - t[d];
      sum += diff * diff;
    }
    out[r] = -sum;
  }
}

void NegativeEuclideanKernel::SimilarityBatchNorms(const double* rows,
                                                   const double* row_sq_norms,
                                                   int n, int dim,
                                                   const double* t,
                                                   double* out) const {
  if (row_sq_norms == nullptr) {
    SimilarityBatch(rows, n, dim, t, out);
    return;
  }
  const double t_norm = DotRaw(t, t, dim);
  for (int r = 0; r < n; ++r) {
    const double* a = rows + static_cast<size_t>(r) * dim;
    double dot = 0.0;
    for (int d = 0; d < dim; ++d) dot += a[d] * t[d];
    // ||a - t||^2 expanded; cancellation can dip epsilon-negative, and a
    // similarity above "identical" would poison the descending scan order.
    double d2 = row_sq_norms[r] - 2.0 * dot + t_norm;
    if (d2 < 0.0) d2 = 0.0;
    out[r] = -d2;
  }
}

// --- RBF --------------------------------------------------------------------

double RbfKernel::SimilarityRaw(const double* a, const double* b,
                                int dim) const {
  return std::exp(-gamma_ * SquaredDistanceRaw(a, b, dim));
}

void RbfKernel::SimilarityBatch(const double* rows, int n, int dim,
                                const double* t, double* out) const {
  for (int r = 0; r < n; ++r) {
    const double* a = rows + static_cast<size_t>(r) * dim;
    double sum = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = a[d] - t[d];
      sum += diff * diff;
    }
    out[r] = -gamma_ * sum;  // exponentiated in a second sweep below
  }
  for (int r = 0; r < n; ++r) out[r] = std::exp(out[r]);
}

void RbfKernel::SimilarityBatchNorms(const double* rows,
                                     const double* row_sq_norms, int n,
                                     int dim, const double* t,
                                     double* out) const {
  if (row_sq_norms == nullptr) {
    SimilarityBatch(rows, n, dim, t, out);
    return;
  }
  const double t_norm = DotRaw(t, t, dim);
  for (int r = 0; r < n; ++r) {
    const double* a = rows + static_cast<size_t>(r) * dim;
    double dot = 0.0;
    for (int d = 0; d < dim; ++d) dot += a[d] * t[d];
    double d2 = row_sq_norms[r] - 2.0 * dot + t_norm;
    if (d2 < 0.0) d2 = 0.0;
    out[r] = -gamma_ * d2;
  }
  for (int r = 0; r < n; ++r) out[r] = std::exp(out[r]);
}

// --- Linear -----------------------------------------------------------------

double LinearKernel::SimilarityRaw(const double* a, const double* b,
                                   int dim) const {
  return DotRaw(a, b, dim);
}

void LinearKernel::SimilarityBatch(const double* rows, int n, int dim,
                                   const double* t, double* out) const {
  for (int r = 0; r < n; ++r) {
    const double* a = rows + static_cast<size_t>(r) * dim;
    double dot = 0.0;
    for (int d = 0; d < dim; ++d) dot += a[d] * t[d];
    out[r] = dot;
  }
}

// --- Cosine -----------------------------------------------------------------

double CosineKernel::SimilarityRaw(const double* a, const double* b,
                                   int dim) const {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int d = 0; d < dim; ++d) {
    dot += a[d] * b[d];
    na += a[d] * a[d];
    nb += b[d] * b[d];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

void CosineKernel::SimilarityBatch(const double* rows, int n, int dim,
                                   const double* t, double* out) const {
  double t_norm = 0.0;
  for (int d = 0; d < dim; ++d) t_norm += t[d] * t[d];
  for (int r = 0; r < n; ++r) {
    const double* a = rows + static_cast<size_t>(r) * dim;
    double dot = 0.0, na = 0.0;
    for (int d = 0; d < dim; ++d) {
      dot += a[d] * t[d];
      na += a[d] * a[d];
    }
    out[r] = (na <= 0.0 || t_norm <= 0.0) ? 0.0 : dot / std::sqrt(na * t_norm);
  }
}

void CosineKernel::SimilarityBatchNorms(const double* rows,
                                        const double* row_sq_norms, int n,
                                        int dim, const double* t,
                                        double* out) const {
  if (row_sq_norms == nullptr) {
    SimilarityBatch(rows, n, dim, t, out);
    return;
  }
  double t_norm = 0.0;
  for (int d = 0; d < dim; ++d) t_norm += t[d] * t[d];
  for (int r = 0; r < n; ++r) {
    const double* a = rows + static_cast<size_t>(r) * dim;
    double dot = 0.0;
    for (int d = 0; d < dim; ++d) dot += a[d] * t[d];
    const double na = row_sq_norms[r];
    out[r] = (na <= 0.0 || t_norm <= 0.0) ? 0.0 : dot / std::sqrt(na * t_norm);
  }
}

std::unique_ptr<SimilarityKernel> MakeKernel(KernelKind kind, double gamma) {
  switch (kind) {
    case KernelKind::kNegativeEuclidean:
      return std::make_unique<NegativeEuclideanKernel>();
    case KernelKind::kRbf:
      return std::make_unique<RbfKernel>(gamma);
    case KernelKind::kLinear:
      return std::make_unique<LinearKernel>();
    case KernelKind::kCosine:
      return std::make_unique<CosineKernel>();
  }
  return nullptr;
}

}  // namespace cpclean
