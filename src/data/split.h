#ifndef CPCLEAN_DATA_SPLIT_H_
#define CPCLEAN_DATA_SPLIT_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace cpclean {

/// Train / validation / test partition of a table, as in the paper's setup
/// (§5.1): fixed-size validation and test sets, the remainder is training.
struct DataSplit {
  Table train;
  Table val;
  Table test;
};

/// Randomly partitions `table` into train/val/test with the requested
/// validation and test sizes; the rest becomes training data.
/// Fails when val_size + test_size exceeds the number of rows.
Result<DataSplit> TrainValTestSplit(const Table& table, int val_size,
                                    int test_size, Rng* rng);

/// Splits row indices 0..n-1 into k disjoint folds of near-equal size.
std::vector<std::vector<int>> KFoldIndices(int n, int k, Rng* rng);

}  // namespace cpclean

#endif  // CPCLEAN_DATA_SPLIT_H_
