#include "data/value.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

double Value::numeric() const {
  CP_CHECK(is_numeric()) << "Value is not numeric";
  return numeric_;
}

const std::string& Value::categorical() const {
  CP_CHECK(is_categorical()) << "Value is not categorical";
  return categorical_;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kNumeric:
      return numeric_ == other.numeric_;
    case Kind::kCategorical:
      return categorical_ == other.categorical_;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kNumeric:
      return StrFormat("%.6g", numeric_);
    case Kind::kCategorical:
      return categorical_;
  }
  return "?";
}

}  // namespace cpclean
