#ifndef CPCLEAN_DATA_ENCODER_H_
#define CPCLEAN_DATA_ENCODER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace cpclean {

/// Encodes relational rows into dense feature vectors for KNN:
/// numeric columns are z-score standardized, categorical columns are
/// one-hot encoded (with an extra slot for categories unseen at fit time).
///
/// The encoder is fit on a reference table (typically training data plus
/// all candidate repairs, so every candidate has a defined encoding) and
/// then applied row-by-row. Rows passed to `EncodeRow` must be complete
/// (no NULLs): candidates, validation and test rows are complete by
/// construction.
class FeatureEncoder {
 public:
  FeatureEncoder() = default;

  /// Learns standardization parameters and category vocabularies from all
  /// non-null cells of `table`. `exclude_columns` (e.g., the label column)
  /// are skipped entirely.
  Status Fit(const Table& table, const std::vector<int>& exclude_columns = {});

  /// Dimensionality of the encoded vectors.
  int encoded_dim() const { return encoded_dim_; }

  /// True once Fit succeeded.
  bool fitted() const { return fitted_; }

  /// Encodes one row of `table_schema`-shaped values. The row must contain
  /// no NULLs in the encoded columns.
  Result<std::vector<double>> EncodeRow(const std::vector<Value>& row) const;

  /// Encodes every row of the table (all must be complete).
  Result<std::vector<std::vector<double>>> EncodeTable(const Table& table) const;

 private:
  struct NumericStats {
    double mean = 0.0;
    double stddev = 1.0;
  };

  bool fitted_ = false;
  Schema schema_;
  std::vector<bool> excluded_;
  // Per column: numeric stats or category vocabulary.
  std::vector<NumericStats> numeric_stats_;
  std::vector<std::map<std::string, int>> vocabularies_;
  std::vector<int> column_offset_;
  int encoded_dim_ = 0;
};

/// Maps label values (the class column) to dense integer ids 0..|Y|-1.
class LabelEncoder {
 public:
  /// Builds the label vocabulary from the non-null cells of `column`.
  /// Numeric labels are keyed by their exact value, categoricals by string.
  Status Fit(const std::vector<Value>& column);

  int num_labels() const { return static_cast<int>(labels_.size()); }

  /// Id of a label value; fails for NULL or unseen labels.
  Result<int> Encode(const Value& value) const;

  /// The original value for a label id.
  const Value& Decode(int label) const;

 private:
  std::vector<Value> labels_;  // id -> representative value
};

}  // namespace cpclean

#endif  // CPCLEAN_DATA_ENCODER_H_
