#ifndef CPCLEAN_DATA_SCHEMA_H_
#define CPCLEAN_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace cpclean {

/// Column data types for the relational substrate.
enum class ColumnType { kNumeric, kCategorical };

/// A named, typed column.
struct Field {
  std::string name;
  ColumnType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of fields, shared by all rows of a Table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or NotFound.
  Result<int> FieldIndex(const std::string& name) const;

  /// True if a field with this name exists.
  bool HasField(const std::string& name) const;

  /// Appends a field; the name must be unique.
  Status AddField(Field field);

  /// New schema without the field at `index`.
  Schema RemoveField(int index) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace cpclean

#endif  // CPCLEAN_DATA_SCHEMA_H_
