#ifndef CPCLEAN_DATA_VALUE_H_
#define CPCLEAN_DATA_VALUE_H_

#include <string>

namespace cpclean {

/// A single cell of a Codd table: numeric, categorical, or NULL.
///
/// NULL is the marked-null "@" of the paper's Figure 1 — the cell whose
/// possible completions generate the possible worlds.
class Value {
 public:
  enum class Kind { kNull, kNumeric, kCategorical };

  /// NULL.
  Value() : kind_(Kind::kNull), numeric_(0.0) {}

  static Value Null() { return Value(); }
  static Value Numeric(double v) {
    Value out;
    out.kind_ = Kind::kNumeric;
    out.numeric_ = v;
    return out;
  }
  static Value Categorical(std::string v) {
    Value out;
    out.kind_ = Kind::kCategorical;
    out.categorical_ = std::move(v);
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const { return kind_ == Kind::kNumeric; }
  bool is_categorical() const { return kind_ == Kind::kCategorical; }

  /// CHECK-fails when the kind does not match.
  double numeric() const;
  const std::string& categorical() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// "NULL", the number, or the category string.
  std::string ToString() const;

 private:
  Kind kind_;
  double numeric_;
  std::string categorical_;
};

}  // namespace cpclean

#endif  // CPCLEAN_DATA_VALUE_H_
