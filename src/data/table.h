#ifndef CPCLEAN_DATA_TABLE_H_
#define CPCLEAN_DATA_TABLE_H_

#include <string>
#include <vector>

#include "data/schema.h"
#include "data/value.h"

namespace cpclean {

/// A row-major relational table over `Value` cells — our Codd table.
///
/// Cells may be NULL (incomplete information). Rows are fixed-width per the
/// schema; cell kinds must match the column type (or be NULL).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_columns() const { return schema_.num_fields(); }

  /// Appends a row. Fails when the width or a cell kind mismatches.
  Status AppendRow(std::vector<Value> row);

  const Value& at(int row, int col) const;
  void Set(int row, int col, Value value);

  const std::vector<Value>& row(int r) const;

  /// All values of one column (including NULLs).
  std::vector<Value> Column(int col) const;

  /// Non-null numeric values of a numeric column.
  std::vector<double> NumericColumn(int col) const;

  /// Non-null category strings of a categorical column.
  std::vector<std::string> CategoricalColumn(int col) const;

  /// Number of NULL cells in the whole table / one column / one row.
  int CountMissing() const;
  int CountMissingInColumn(int col) const;
  int CountMissingInRow(int row) const;

  /// Fraction of NULL cells over all cells; 0 for an empty table.
  double MissingRate() const;

  /// Row indices that contain at least one NULL.
  std::vector<int> RowsWithMissing() const;

  /// New table with the selected rows (in the given order).
  Table SelectRows(const std::vector<int>& indices) const;

  /// New table without the given column.
  Table DropColumn(int col) const;

  std::string ToString(int max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace cpclean

#endif  // CPCLEAN_DATA_TABLE_H_
