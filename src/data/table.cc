#include "data/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

Status Table::AppendRow(std::vector<Value> row) {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "row width %d does not match schema width %d",
        static_cast<int>(row.size()), num_columns()));
  }
  for (int c = 0; c < num_columns(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.is_null()) continue;
    const bool matches =
        (schema_.field(c).type == ColumnType::kNumeric && v.is_numeric()) ||
        (schema_.field(c).type == ColumnType::kCategorical &&
         v.is_categorical());
    if (!matches) {
      return Status::InvalidArgument(
          "cell kind mismatch in column '" + schema_.field(c).name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Value& Table::at(int row, int col) const {
  CP_CHECK_GE(row, 0);
  CP_CHECK_LT(row, num_rows());
  CP_CHECK_GE(col, 0);
  CP_CHECK_LT(col, num_columns());
  return rows_[static_cast<size_t>(row)][static_cast<size_t>(col)];
}

void Table::Set(int row, int col, Value value) {
  CP_CHECK_GE(row, 0);
  CP_CHECK_LT(row, num_rows());
  CP_CHECK_GE(col, 0);
  CP_CHECK_LT(col, num_columns());
  rows_[static_cast<size_t>(row)][static_cast<size_t>(col)] = std::move(value);
}

const std::vector<Value>& Table::row(int r) const {
  CP_CHECK_GE(r, 0);
  CP_CHECK_LT(r, num_rows());
  return rows_[static_cast<size_t>(r)];
}

std::vector<Value> Table::Column(int col) const {
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (int r = 0; r < num_rows(); ++r) out.push_back(at(r, col));
  return out;
}

std::vector<double> Table::NumericColumn(int col) const {
  CP_CHECK(schema_.field(col).type == ColumnType::kNumeric);
  std::vector<double> out;
  for (int r = 0; r < num_rows(); ++r) {
    const Value& v = at(r, col);
    if (v.is_numeric()) out.push_back(v.numeric());
  }
  return out;
}

std::vector<std::string> Table::CategoricalColumn(int col) const {
  CP_CHECK(schema_.field(col).type == ColumnType::kCategorical);
  std::vector<std::string> out;
  for (int r = 0; r < num_rows(); ++r) {
    const Value& v = at(r, col);
    if (v.is_categorical()) out.push_back(v.categorical());
  }
  return out;
}

int Table::CountMissing() const {
  int count = 0;
  for (const auto& row : rows_) {
    for (const auto& v : row) count += v.is_null() ? 1 : 0;
  }
  return count;
}

int Table::CountMissingInColumn(int col) const {
  int count = 0;
  for (int r = 0; r < num_rows(); ++r) count += at(r, col).is_null() ? 1 : 0;
  return count;
}

int Table::CountMissingInRow(int row) const {
  int count = 0;
  for (const Value& v : rows_[static_cast<size_t>(row)]) {
    count += v.is_null() ? 1 : 0;
  }
  return count;
}

double Table::MissingRate() const {
  const int cells = num_rows() * num_columns();
  if (cells == 0) return 0.0;
  return static_cast<double>(CountMissing()) / static_cast<double>(cells);
}

std::vector<int> Table::RowsWithMissing() const {
  std::vector<int> out;
  for (int r = 0; r < num_rows(); ++r) {
    if (CountMissingInRow(r) > 0) out.push_back(r);
  }
  return out;
}

Table Table::SelectRows(const std::vector<int>& indices) const {
  Table out(schema_);
  for (int r : indices) {
    CP_CHECK_GE(r, 0);
    CP_CHECK_LT(r, num_rows());
    out.rows_.push_back(rows_[static_cast<size_t>(r)]);
  }
  return out;
}

Table Table::DropColumn(int col) const {
  Table out(schema_.RemoveField(col));
  for (const auto& row : rows_) {
    std::vector<Value> new_row = row;
    new_row.erase(new_row.begin() + col);
    out.rows_.push_back(std::move(new_row));
  }
  return out;
}

std::string Table::ToString(int max_rows) const {
  std::string out = schema_.ToString() + "\n";
  const int shown = std::min(max_rows, num_rows());
  for (int r = 0; r < shown; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) out += ", ";
      out += at(r, c).ToString();
    }
    out += "\n";
  }
  if (shown < num_rows()) {
    out += StrFormat("... (%d more rows)\n", num_rows() - shown);
  }
  return out;
}

}  // namespace cpclean
