#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

namespace {

/// Splits one CSV record honoring double quotes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote in CSV record: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

bool IsNullToken(const std::string& field, const CsvOptions& options) {
  const std::string stripped = ToLower(StripWhitespace(field));
  for (const auto& token : options.null_tokens) {
    if (stripped == token) return true;
  }
  return false;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StripWhitespace(line).empty()) continue;
    CP_ASSIGN_OR_RETURN(auto fields, SplitCsvLine(line, options.delimiter));
    records.push_back(std::move(fields));
  }
  if (records.empty()) {
    return Status::ParseError("CSV input has no records");
  }

  std::vector<std::string> header;
  size_t first_data = 0;
  if (options.has_header) {
    header = records[0];
    first_data = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      header.push_back(StrFormat("col%d", static_cast<int>(c)));
    }
  }
  const size_t width = header.size();
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::ParseError(StrFormat(
          "record %d has %d fields, expected %d", static_cast<int>(r),
          static_cast<int>(records[r].size()), static_cast<int>(width)));
    }
  }

  // Infer column types: numeric iff every non-null cell parses as a double.
  std::vector<ColumnType> types(width, ColumnType::kNumeric);
  for (size_t c = 0; c < width; ++c) {
    bool any_value = false;
    for (size_t r = first_data; r < records.size(); ++r) {
      const std::string& cell = records[r][c];
      if (IsNullToken(cell, options)) continue;
      any_value = true;
      if (!ParseDouble(cell).ok()) {
        types[c] = ColumnType::kCategorical;
        break;
      }
    }
    if (!any_value) types[c] = ColumnType::kCategorical;
  }

  std::vector<Field> fields;
  for (size_t c = 0; c < width; ++c) {
    fields.push_back({std::string(StripWhitespace(header[c])), types[c]});
  }
  Table table((Schema(std::move(fields))));
  for (size_t r = first_data; r < records.size(); ++r) {
    std::vector<Value> row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      const std::string& cell = records[r][c];
      if (IsNullToken(cell, options)) {
        row.push_back(Value::Null());
      } else if (types[c] == ColumnType::kNumeric) {
        CP_ASSIGN_OR_RETURN(double v, ParseDouble(cell));
        row.push_back(Value::Numeric(v));
      } else {
        row.push_back(Value::Categorical(std::string(StripWhitespace(cell))));
      }
    }
    CP_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

namespace {
std::string EscapeCsvField(const std::string& field, char delim) {
  const bool needs_quotes =
      field.find(delim) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += delimiter;
    out += EscapeCsvField(table.schema().field(c).name, delimiter);
  }
  out += "\n";
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      const Value& v = table.at(r, c);
      if (v.is_null()) continue;  // empty field
      out += EscapeCsvField(v.ToString(), delimiter);
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  file << WriteCsvString(table, delimiter);
  if (!file) {
    return Status::IoError("failed writing file: " + path);
  }
  return Status::OK();
}

}  // namespace cpclean
