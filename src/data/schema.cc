#include "data/schema.h"

#include "common/logging.h"

namespace cpclean {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    for (size_t j = i + 1; j < fields_.size(); ++j) {
      CP_CHECK(fields_[i].name != fields_[j].name)
          << "duplicate field name: " << fields_[i].name;
    }
  }
}

const Field& Schema::field(int i) const {
  CP_CHECK_GE(i, 0);
  CP_CHECK_LT(i, num_fields());
  return fields_[static_cast<size_t>(i)];
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no field named '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  return FieldIndex(name).ok();
}

Status Schema::AddField(Field field) {
  if (HasField(field.name)) {
    return Status::AlreadyExists("field '" + field.name + "' already exists");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

Schema Schema::RemoveField(int index) const {
  CP_CHECK_GE(index, 0);
  CP_CHECK_LT(index, num_fields());
  std::vector<Field> fields = fields_;
  fields.erase(fields.begin() + index);
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += fields_[i].type == ColumnType::kNumeric ? ":num" : ":cat";
  }
  out += "}";
  return out;
}

}  // namespace cpclean
