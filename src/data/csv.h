#ifndef CPCLEAN_DATA_CSV_H_
#define CPCLEAN_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace cpclean {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Tokens (after whitespace stripping, case-insensitive) treated as NULL.
  std::vector<std::string> null_tokens = {"", "null", "na", "n/a", "?"};
};

/// Parses CSV text into a Table. Column types are inferred: a column whose
/// non-null cells all parse as doubles is numeric, otherwise categorical.
/// Supports double-quoted fields with embedded delimiters and "" escapes.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = CsvOptions());

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = CsvOptions());

/// Serializes a table back to CSV (with header). NULLs become empty fields.
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes a table to a file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace cpclean

#endif  // CPCLEAN_DATA_CSV_H_
