#include "data/split.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

Result<DataSplit> TrainValTestSplit(const Table& table, int val_size,
                                    int test_size, Rng* rng) {
  CP_CHECK(rng != nullptr);
  if (val_size < 0 || test_size < 0) {
    return Status::InvalidArgument("split sizes must be non-negative");
  }
  const int n = table.num_rows();
  if (val_size + test_size > n) {
    return Status::InvalidArgument(StrFormat(
        "val(%d) + test(%d) exceeds table rows (%d)", val_size, test_size, n));
  }
  std::vector<int> perm = rng->Permutation(n);
  std::vector<int> val_idx(perm.begin(), perm.begin() + val_size);
  std::vector<int> test_idx(perm.begin() + val_size,
                            perm.begin() + val_size + test_size);
  std::vector<int> train_idx(perm.begin() + val_size + test_size, perm.end());
  DataSplit split;
  split.train = table.SelectRows(train_idx);
  split.val = table.SelectRows(val_idx);
  split.test = table.SelectRows(test_idx);
  return split;
}

std::vector<std::vector<int>> KFoldIndices(int n, int k, Rng* rng) {
  CP_CHECK_GT(k, 0);
  CP_CHECK(rng != nullptr);
  std::vector<int> perm = rng->Permutation(n);
  std::vector<std::vector<int>> folds(static_cast<size_t>(k));
  for (int i = 0; i < n; ++i) {
    folds[static_cast<size_t>(i % k)].push_back(perm[static_cast<size_t>(i)]);
  }
  return folds;
}

}  // namespace cpclean
