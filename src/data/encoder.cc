#include "data/encoder.h"

#include <cmath>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace cpclean {

Status FeatureEncoder::Fit(const Table& table,
                           const std::vector<int>& exclude_columns) {
  schema_ = table.schema();
  const int cols = schema_.num_fields();
  excluded_.assign(static_cast<size_t>(cols), false);
  for (int c : exclude_columns) {
    if (c < 0 || c >= cols) {
      return Status::OutOfRange(StrFormat("exclude column %d out of range", c));
    }
    excluded_[static_cast<size_t>(c)] = true;
  }
  numeric_stats_.assign(static_cast<size_t>(cols), {});
  vocabularies_.assign(static_cast<size_t>(cols), {});
  column_offset_.assign(static_cast<size_t>(cols), -1);

  int offset = 0;
  for (int c = 0; c < cols; ++c) {
    if (excluded_[static_cast<size_t>(c)]) continue;
    column_offset_[static_cast<size_t>(c)] = offset;
    if (schema_.field(c).type == ColumnType::kNumeric) {
      std::vector<double> values = table.NumericColumn(c);
      NumericStats stats;
      if (!values.empty()) {
        stats.mean = Mean(values);
        stats.stddev = StdDev(values);
      }
      if (stats.stddev <= 1e-12) stats.stddev = 1.0;
      numeric_stats_[static_cast<size_t>(c)] = stats;
      offset += 1;
    } else {
      auto& vocab = vocabularies_[static_cast<size_t>(c)];
      for (const std::string& cat : table.CategoricalColumn(c)) {
        if (vocab.find(cat) == vocab.end()) {
          const int id = static_cast<int>(vocab.size());
          vocab[cat] = id;
        }
      }
      // +1 slot for unseen categories.
      offset += static_cast<int>(vocab.size()) + 1;
    }
  }
  encoded_dim_ = offset;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> FeatureEncoder::EncodeRow(
    const std::vector<Value>& row) const {
  if (!fitted_) {
    return Status::Internal("FeatureEncoder used before Fit");
  }
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument("row width does not match fitted schema");
  }
  std::vector<double> out(static_cast<size_t>(encoded_dim_), 0.0);
  for (int c = 0; c < schema_.num_fields(); ++c) {
    if (excluded_[static_cast<size_t>(c)]) continue;
    const Value& v = row[static_cast<size_t>(c)];
    if (v.is_null()) {
      return Status::InvalidArgument(StrFormat(
          "cannot encode NULL in column %d; complete the row first", c));
    }
    const int offset = column_offset_[static_cast<size_t>(c)];
    if (schema_.field(c).type == ColumnType::kNumeric) {
      const auto& stats = numeric_stats_[static_cast<size_t>(c)];
      out[static_cast<size_t>(offset)] = (v.numeric() - stats.mean) / stats.stddev;
    } else {
      const auto& vocab = vocabularies_[static_cast<size_t>(c)];
      auto it = vocab.find(v.categorical());
      const int slot =
          it != vocab.end() ? it->second : static_cast<int>(vocab.size());
      out[static_cast<size_t>(offset + slot)] = 1.0;
    }
  }
  return out;
}

Result<std::vector<std::vector<double>>> FeatureEncoder::EncodeTable(
    const Table& table) const {
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<size_t>(table.num_rows()));
  for (int r = 0; r < table.num_rows(); ++r) {
    CP_ASSIGN_OR_RETURN(auto vec, EncodeRow(table.row(r)));
    out.push_back(std::move(vec));
  }
  return out;
}

Status LabelEncoder::Fit(const std::vector<Value>& column) {
  labels_.clear();
  for (const Value& v : column) {
    if (v.is_null()) {
      return Status::InvalidArgument("labels must not be NULL (paper Def. 1)");
    }
    bool seen = false;
    for (const Value& existing : labels_) {
      if (existing == v) {
        seen = true;
        break;
      }
    }
    if (!seen) labels_.push_back(v);
  }
  if (labels_.empty()) {
    return Status::InvalidArgument("empty label column");
  }
  return Status::OK();
}

Result<int> LabelEncoder::Encode(const Value& value) const {
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == value) return static_cast<int>(i);
  }
  return Status::NotFound("unseen label value: " + value.ToString());
}

const Value& LabelEncoder::Decode(int label) const {
  CP_CHECK_GE(label, 0);
  CP_CHECK_LT(label, num_labels());
  return labels_[static_cast<size_t>(label)];
}

}  // namespace cpclean
