#ifndef CPCLEAN_COMMON_STATS_H_
#define CPCLEAN_COMMON_STATS_H_

#include <vector>

namespace cpclean {

/// Descriptive statistics over double vectors. All functions ignore nothing:
/// callers filter missing values before calling.

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population variance; 0 for inputs of size < 2.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Minimum / maximum; inputs must be non-empty.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Linear-interpolation percentile, p in [0, 100]. Input must be non-empty
/// (it is copied and sorted internally).
double Percentile(const std::vector<double>& values, double p);

/// Median (50th percentile).
double Median(const std::vector<double>& values);

/// Shannon entropy (natural log) of a distribution given as non-negative
/// masses; the masses are normalized internally. Returns 0 when the total
/// mass is 0. Terms with zero mass contribute 0.
double Entropy(const std::vector<double>& masses);

/// Entropy in bits (log2).
double EntropyBits(const std::vector<double>& masses);

/// Pearson correlation of two equally-sized vectors; 0 when either side has
/// no variance or sizes mismatch.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_STATS_H_
