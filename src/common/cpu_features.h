#ifndef CPCLEAN_COMMON_CPU_FEATURES_H_
#define CPCLEAN_COMMON_CPU_FEATURES_H_

#include <string>

#include "common/result.h"

namespace cpclean {

/// The ISA tiers the batched similarity kernels dispatch across. Ordered:
/// a level implies every lower one, so comparisons express capability.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar", "avx2", "avx512" — the spelling `CPCLEAN_SIMD` accepts and
/// `stats` / bench reports emit.
const char* SimdLevelName(SimdLevel level);

/// Inverse of `SimdLevelName`; InvalidArgument on anything else.
Result<SimdLevel> ParseSimdLevel(const std::string& name);

/// Probes the hardware: CPUID feature leaves gated on OS state support via
/// XGETBV (an OS that does not save ymm/zmm registers across context
/// switches makes the ISA unusable even when the silicon has it). AVX2
/// additionally requires FMA — the AVX2 translation unit is compiled with
/// `-mfma`, so the compiler may emit fused ops anywhere in it. Always
/// kScalar on non-x86 builds. The probe itself is cheap and stateless;
/// callers cache.
SimdLevel DetectSimdLevel();

/// Resolution policy for the dispatch table, pure so the rejection paths
/// are unit-testable: `env_value` is the `CPCLEAN_SIMD` override (null or
/// empty = auto-select `min(detected, compiled_max)` capped at kAvx2 —
/// the single-chain lane shape makes AVX-512 measurably slower than AVX2
/// on the kernels, so it is opt-in, never a default), `detected` the
/// hardware probe, `compiled_max` the highest level this binary has a
/// translation unit for. An override naming a level the hardware cannot
/// run or the binary does not carry is an error, never a silent downgrade
/// — a fleet operator forcing `avx512` must find out on the spot, not in
/// a perf regression. Overrides *below* the detected level are always
/// honored (forcing `scalar` on any host is how CI proves bit-identity).
Result<SimdLevel> ResolveSimdLevel(const char* env_value, SimdLevel detected,
                                   SimdLevel compiled_max);

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_CPU_FEATURES_H_
