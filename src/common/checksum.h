#ifndef CPCLEAN_COMMON_CHECKSUM_H_
#define CPCLEAN_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string_view>

namespace cpclean {

/// FNV-1a 64-bit hash — the per-record checksum for the append-only
/// cleaning log. Not cryptographic; it detects torn writes and bit rot,
/// which is all the log format needs.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_CHECKSUM_H_
