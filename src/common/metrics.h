#ifndef CPCLEAN_COMMON_METRICS_H_
#define CPCLEAN_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace cpclean {

/// Process-wide telemetry: named counters, gauges, and log-bucketed
/// latency histograms, plus per-request span tracing for the serve
/// pipeline.
///
/// Design constraints (the serve hot path runs through here):
///
///   - Writes are wait-free relaxed atomics on per-thread shards; no
///     locks, no allocation, no syscalls.
///   - Instruments live forever once registered, so callers cache a
///     reference (one static-local lookup per call site, then pointer
///     chasing only).
///   - Snapshots are taken while writers keep writing. Each shard cell is
///     individually atomic, so a snapshot is a consistent-enough view: a
///     histogram's count is *derived* from its bucket sum, never read from
///     a separate counter that could disagree with the buckets.
///
/// Write-path cost, measured in operations: a Counter::Add is one relaxed
/// fetch_add on a cache line owned (statistically) by the calling thread;
/// a Histogram::Record is a bucket-index computation (a few shifts), two
/// relaxed fetch_adds, and two bounded CAS loops for min/max.

/// Monotonic clock, nanoseconds. The zero point is unspecified (use only
/// for differences).
uint64_t MonotonicNowNs();

/// Shard count for per-thread write paths. Threads are assigned
/// round-robin at first use; more shards than this only buys contention
/// relief past ~kMetricShards concurrently-writing threads.
constexpr int kMetricShards = 8;

namespace metrics_internal {
/// One cache line per shard cell: two threads on different shards never
/// bounce a line between cores.
struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> value{0};
};
/// This thread's shard, assigned round-robin on first use.
int MetricShard();
}  // namespace metrics_internal

/// Monotonically increasing event count (requests served, cache hits).
class MetricCounter {
 public:
  void Add(uint64_t n = 1) {
    shards_[metrics_internal::MetricShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const metrics_internal::PaddedAtomic& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<metrics_internal::PaddedAtomic, kMetricShards> shards_;
};

/// Instantaneous signed level (inflight requests, queue depth). A single
/// atomic: gauges are delta-updated from many threads but their value is a
/// level, so sharding would only complicate the read.
class MetricGauge {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram snapshot: bucket counts plus derived aggregates, safe to
/// keep, merge, and query after the fact.
struct HistogramSnapshot {
  uint64_t count = 0;  // always == sum of buckets
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // size MetricHistogram::kNumBuckets

  /// Value at quantile `q` in [0, 1], linearly interpolated inside the
  /// containing bucket and clamped to [min, max]. 0 when empty.
  double Quantile(double q) const;

  /// Accumulates `other` into this snapshot (test and multi-process use;
  /// the live shards merge on snapshot automatically).
  void Merge(const HistogramSnapshot& other);
};

/// Log-bucketed value histogram (latencies in ns, sizes in bytes).
///
/// Bucketing is log-linear: values 0..3 get exact buckets, then every
/// power of two is split into 4 sub-buckets, so the relative width of any
/// bucket is at most 25% — quantiles interpolated inside a bucket are
/// within ~12.5% of the true value, at 252 buckets total covering the
/// full uint64 range.
class MetricHistogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kNumBuckets = 4 + 62 * kSubBuckets;  // 252

  void Record(uint64_t value) {
    Shard& shard = shards_[static_cast<size_t>(
        metrics_internal::MetricShard())];
    shard.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    // Bounded CAS races: each loop usually settles in one try, and only
    // ever runs when the new value actually extends the extreme.
    uint64_t seen = shard.min.load(std::memory_order_relaxed);
    while (value < seen && !shard.min.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    seen = shard.max.load(std::memory_order_relaxed);
    while (value > seen && !shard.max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  /// Merged view over every shard. Concurrent writers keep writing; the
  /// snapshot is internally consistent (count derives from the buckets).
  HistogramSnapshot Snapshot() const;

  /// Bucket index for `value` in [0, kNumBuckets).
  static int BucketIndex(uint64_t value);
  /// Inclusive lower / exclusive upper value bound of bucket `index`.
  static uint64_t BucketLowerBound(int index);
  static uint64_t BucketUpperBound(int index);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Everything the registry knows, exported at one instant. Sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// The process-wide instrument registry. Instruments are created on first
/// use and never destroyed, so the returned references stay valid for the
/// process lifetime — cache them in a static local at the call site:
///
///   static MetricCounter& hits =
///       MetricsRegistry::Get().GetCounter("engine_pool.hits_total");
///   hits.Add(1);
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  MetricCounter& GetCounter(const std::string& name);
  MetricGauge& GetGauge(const std::string& name);
  MetricHistogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  // Instrument storage never moves or shrinks (pointers are handed out).
  std::vector<std::pair<std::string, MetricCounter*>> counters_;
  std::vector<std::pair<std::string, MetricGauge*>> gauges_;
  std::vector<std::pair<std::string, MetricHistogram*>> histograms_;
};

/// Prometheus text exposition (version 0.0.4) of the full registry plus
/// the fault-injection site counters: counters as `cpclean_<name>`,
/// gauges likewise, histograms as `_bucket{le=...}`/`_sum`/`_count`
/// families. Instrument names sanitize '.' (and anything else outside
/// [a-zA-Z0-9_]) to '_'.
std::string MetricsPrometheusText();

// ---------------------------------------------------------------------------
// Per-request span tracing.

/// The serve-pipeline phases one request passes through. Phase times are
/// recorded *into the active span* by the layer that owns the phase; a
/// request not under tracing (stdio transport, direct HandleRequest) has
/// no active span and pays one thread-local load per phase.
enum SpanPhase {
  kSpanQueueWait = 0,      // dispatch -> worker pickup
  kSpanCacheLookup,        // result-cache probe
  kSpanEngineAcquire,      // engine-pool checkout (may create/rebind)
  kSpanKernelCompute,      // similarity kernel + CP evaluation
  kSpanSerialize,          // response JSON rendering
  kSpanFlush,              // worker completion -> last byte on the socket
  kSpanPhaseCount
};
const char* SpanPhaseName(int phase);

/// One request's timing record. Fixed-size (the op name is a bounded char
/// buffer, the phases an array), so recording allocates nothing.
struct RequestSpan {
  uint64_t start_ns = 0;  // monotonic; set at transport dispatch
  uint64_t ready_ns = 0;  // worker finished; flush begins
  uint64_t total_ns = 0;  // set at flush completion
  uint64_t phase_ns[kSpanPhaseCount] = {};
  char op[24] = {};

  void SetOp(const char* name) {
    std::strncpy(op, name, sizeof(op) - 1);
    op[sizeof(op) - 1] = '\0';
  }
};

/// The span the calling thread is currently recording into, or nullptr.
RequestSpan* ActiveRequestSpan();

/// Installs `span` as the calling thread's active span for the scope
/// (nullptr is fine: phases become no-ops). Restores the previous span on
/// destruction, so nesting is safe.
class ScopedActiveSpan {
 public:
  explicit ScopedActiveSpan(RequestSpan* span);
  ~ScopedActiveSpan();
  ScopedActiveSpan(const ScopedActiveSpan&) = delete;
  ScopedActiveSpan& operator=(const ScopedActiveSpan&) = delete;

 private:
  RequestSpan* previous_;
};

/// Accumulates the scope's duration into the active span's phase. When no
/// span is active the constructor is a thread-local load and the
/// destructor a branch — no clock reads.
class ScopedSpanPhase {
 public:
  explicit ScopedSpanPhase(SpanPhase phase)
      : span_(ActiveRequestSpan()),
        phase_(phase),
        start_(span_ != nullptr ? MonotonicNowNs() : 0) {}
  ~ScopedSpanPhase() {
    if (span_ != nullptr) {
      span_->phase_ns[phase_] += MonotonicNowNs() - start_;
    }
  }
  ScopedSpanPhase(const ScopedSpanPhase&) = delete;
  ScopedSpanPhase& operator=(const ScopedSpanPhase&) = delete;

 private:
  RequestSpan* span_;
  SpanPhase phase_;
  uint64_t start_;
};

/// Bounded ring of recently completed spans, pushed by the transport at
/// flush completion and drained by the `metrics` op. The mutex is off the
/// hot path (one lock per *completed* request, never per phase) and the
/// ring is preallocated, so pushes never allocate.
class SpanRing {
 public:
  explicit SpanRing(size_t capacity = 256);

  void Push(const RequestSpan& span);
  /// Retained spans, oldest first.
  std::vector<RequestSpan> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<RequestSpan> ring_;
  size_t next_ = 0;
  size_t size_ = 0;
};

/// The process-wide ring the serve transport records into.
SpanRing& GlobalSpanRing();

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_METRICS_H_
