#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace cpclean {

namespace {

/// mmap rejects zero-length maps; keep every mapping at least one page so
/// data() is always dereferenceable up to size().
size_t ClampBytes(size_t bytes) { return bytes == 0 ? 4096 : bytes; }

std::atomic<uint64_t> g_scratch_seq{0};

}  // namespace

Result<std::unique_ptr<MappedFile>> MappedFile::CreateScratch(
    const std::string& dir, size_t bytes) {
  const size_t map_bytes = ClampBytes(bytes);
  const std::string path =
      StrFormat("%s/.cpclean_slab.%d.%llu", dir.c_str(),
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(
                    g_scratch_seq.fetch_add(1, std::memory_order_relaxed)));
  if (FaultHit("mmap.map")) {
    return Status::IoError("injected fault: mmap.map");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot create scratch file %s: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  // Unlink before anything can fail mid-way: the fd keeps the inode alive,
  // and a crash from here on leaves nothing behind.
  ::unlink(path.c_str());
  if (::ftruncate(fd, static_cast<off_t>(map_bytes)) != 0) {
    const Status status = Status::IoError(
        StrFormat("ftruncate(%s): %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  void* data = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  if (data == MAP_FAILED) {
    const Status status = Status::IoError(
        StrFormat("mmap(%s): %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<MappedFile>(new MappedFile(fd, data, map_bytes));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
}

Status MappedFile::Resize(size_t new_bytes) {
  const size_t map_bytes = ClampBytes(new_bytes);
  if (map_bytes == size_) return Status::OK();
  if (FaultHit("mmap.remap")) {
    return Status::IoError("injected fault: mmap.remap");
  }
  if (::ftruncate(fd_, static_cast<off_t>(map_bytes)) != 0) {
    return Status::IoError(
        StrFormat("ftruncate to %zu bytes: %s", map_bytes,
                  std::strerror(errno)));
  }
#if defined(__linux__)
  void* moved = ::mremap(data_, size_, map_bytes, MREMAP_MAYMOVE);
  if (moved == MAP_FAILED) {
    return Status::IoError(
        StrFormat("mremap to %zu bytes: %s", map_bytes, std::strerror(errno)));
  }
#else
  // Portable fallback: the file (MAP_SHARED) holds the contents, so a
  // fresh map after unmapping sees the same bytes.
  ::munmap(data_, size_);
  void* moved = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd_, 0);
  if (moved == MAP_FAILED) {
    data_ = nullptr;
    size_ = 0;
    return Status::IoError(
        StrFormat("mmap to %zu bytes: %s", map_bytes, std::strerror(errno)));
  }
#endif
  data_ = moved;
  size_ = map_bytes;
  return Status::OK();
}

void MappedFile::Prefetch(size_t offset, size_t length) const {
  if (data_ == nullptr || offset >= size_ || length == 0) return;
  if (offset + length > size_) length = size_ - offset;
  // Round down to the page so madvise accepts the address.
  const size_t page = 4096;
  const size_t start = offset & ~(page - 1);
  ::madvise(static_cast<char*>(data_) + start, length + (offset - start),
            MADV_WILLNEED);
}

}  // namespace cpclean
