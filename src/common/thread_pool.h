#ifndef CPCLEAN_COMMON_THREAD_POOL_H_
#define CPCLEAN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace cpclean {

/// A fixed-size worker pool for data-parallel loops over independent items.
///
/// Design rules that the CPClean hot paths rely on:
///  * `ParallelFor(n, fn)` invokes `fn(index, worker)` exactly once for every
///    `index` in `[0, n)` and blocks until all invocations return. `worker`
///    is in `[0, num_threads())` and is unique per concurrently-executing
///    thread, so callers can keep one scratch object (e.g. one FastQ2
///    engine) per worker slot without locking.
///  * Determinism is the *caller's* contract: workers must write only to
///    per-index (or per-worker) slots; any order-sensitive reduction happens
///    serially afterwards. Used this way, results are bit-identical for
///    every thread count.
///  * A pool of size 1 runs everything inline on the calling thread — no
///    worker threads are ever created, making `num_threads = 1` exactly the
///    pre-pool serial behavior.
///  * Nested `ParallelFor` calls (from inside a worker) run inline on that
///    worker, so nesting cannot deadlock and never oversubscribes. A
///    same-pool nested body inherits the enclosing worker's index, keeping
///    per-worker scratch unique per concurrently-executing thread. A call
///    on a *different* pool from inside a parallel region also runs inline
///    but as that pool's worker 0 (always in range); if several outer
///    workers can do this concurrently, do not key scratch on the inner
///    pool's worker index — worker 0 would be shared.
///  * Exceptions thrown by `fn` are captured; the first one is rethrown on
///    the calling thread after every in-flight invocation has finished. The
///    pool remains usable afterwards.
///  * `ParallelFor` may be called from several threads at once (e.g. many
///    server sessions sharing `GlobalThreadPool()`): jobs are admitted one
///    at a time — a second caller blocks until the current job drains, then
///    runs its own with the full worker set. Each job therefore executes
///    exactly as it would on a private pool, so sharing a pool never
///    changes results, it only shares the cores.
class ThreadPool {
 public:
  /// `num_threads <= 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (which participates).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static int HardwareThreads();

  /// Runs `fn(index, worker)` for every index in [0, n); see class comment.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int)>& fn);

 private:
  void WorkerLoop(int worker);
  /// Pulls chunks of the current job until its index space is exhausted.
  void RunChunks(int worker);
  void RecordError();

  std::vector<std::thread> workers_;

  // Admits one ParallelFor job at a time; held by the submitting caller for
  // the whole job so concurrent callers queue instead of corrupting the
  // shared job slots below.
  std::mutex jobs_mu_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // bumped per ParallelFor to wake workers
  int active_workers_ = 0;
  bool stop_ = false;

  // Current job (valid while active_workers_ > 0 or the caller is running).
  const std::function<void(int64_t, int)>* fn_ = nullptr;
  int64_t n_ = 0;
  int64_t chunk_ = 1;
  std::atomic<int64_t> next_{0};
  std::exception_ptr error_;
};

/// The process-global shared pool: every component that is handed
/// `num_threads = 0` parallelizes on this pool instead of creating a
/// private one, so N concurrent sessions in one server process share the
/// cores rather than oversubscribing N * hardware_concurrency threads.
/// Created lazily on first use (size = `ConfigureGlobalThreadPool`'s value,
/// or hardware concurrency) and lives for the rest of the process.
ThreadPool& GlobalThreadPool();

/// Sets the size the global pool is created with. Must be called before the
/// first `GlobalThreadPool()` use; afterwards the pool is already running
/// and the call fails with AlreadyExists (unless the size already matches).
/// `num_threads <= 0` selects hardware concurrency.
Status ConfigureGlobalThreadPool(int num_threads);

/// The global pool's thread count without forcing its creation: the
/// configured (or default) size before first use, the live size after.
int GlobalThreadPoolThreads();

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_THREAD_POOL_H_
