#ifndef CPCLEAN_COMMON_THREAD_POOL_H_
#define CPCLEAN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace cpclean {

/// A fixed-size worker pool for data-parallel loops over independent items.
///
/// Design rules that the CPClean hot paths rely on:
///  * `ParallelFor(n, fn)` invokes `fn(index, worker)` exactly once for every
///    `index` in `[0, n)` and blocks until all invocations return. `worker`
///    is in `[0, num_threads())` and is unique per concurrently-executing
///    thread *within one job*, so callers can keep one scratch object (e.g.
///    one FastQ2 engine) per worker slot without locking.
///  * Determinism is the *caller's* contract: workers must write only to
///    per-index (or per-worker) slots; any order-sensitive reduction happens
///    serially afterwards. Used this way, results are bit-identical for
///    every thread count.
///  * A pool of size 1 runs everything inline on the calling thread — no
///    worker threads are ever created, making `num_threads = 1` exactly the
///    pre-pool serial behavior.
///  * Nested `ParallelFor` calls (from inside a worker) run inline on that
///    worker, so nesting cannot deadlock and never oversubscribes. A
///    same-pool nested body inherits the enclosing worker's index, keeping
///    per-worker scratch unique per concurrently-executing thread. A call
///    on a *different* pool from inside a parallel region also runs inline
///    but as that pool's worker 0 (always in range); if several outer
///    workers can do this concurrently, do not key scratch on the inner
///    pool's worker index — worker 0 would be shared.
///  * Exceptions thrown by `fn` are captured; the first one is rethrown on
///    the calling thread after every in-flight invocation of *that job* has
///    finished. The pool remains usable afterwards, and concurrent jobs are
///    unaffected — errors stay with the job that raised them.
///  * `ParallelFor` may be called from several threads at once (e.g. many
///    server sessions sharing `GlobalThreadPool()`): each call is its own
///    job with a private index queue and a private worker-slot space. Jobs
///    run concurrently — the submitting thread always works its own job
///    (slot 0), and idle pool workers steal chunks from whichever active
///    job still has indices left, oldest job first. A worker that drains
///    one job's queue moves on to the next active job, so cores never sit
///    idle while any job has work. Because every job still hands out worker
///    slots in `[0, num_threads())` unique to itself and callers reduce
///    serially from per-index slots, each job's result is bit-identical to
///    a run on a private pool — sharing the pool only shares the cores.
class ThreadPool {
 public:
  /// `num_threads <= 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (which participates).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static int HardwareThreads();

  /// Runs `fn(index, worker)` for every index in [0, n); see class comment.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int)>& fn);

 private:
  /// One ParallelFor call in flight: a private index queue (`next`), a
  /// private worker-slot allocator (`slots`; the submitter is slot 0), and
  /// the job's own error. Lifetime is managed by shared_ptr so a worker
  /// holding a reference can never outlive the submitting frame's state.
  struct Job {
    const std::function<void(int64_t, int)>* fn = nullptr;
    int64_t n = 0;
    int64_t chunk = 1;
    std::atomic<int64_t> next{0};
    // Guarded by the pool mutex: next worker slot to hand out (slot 0 is
    // taken by the submitter) and the number of threads currently running
    // loop bodies of this job.
    int slots = 1;
    int participants = 0;
    std::exception_ptr error;  // first error, guarded by the pool mutex
  };

  void WorkerLoop();
  /// Pulls chunks of `job` until its index space is exhausted, running as
  /// worker slot `slot` of that job.
  void RunJobChunks(Job& job, int slot);
  void RecordError(Job& job);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a job may have work for you
  std::condition_variable done_cv_;  // submitters: a job may have finished
  bool stop_ = false;
  // Active jobs, oldest first. A job leaves the list when its submitter
  // observes it complete (all indices handed out, no participants left).
  std::vector<std::shared_ptr<Job>> jobs_;
};

/// The process-global shared pool: every component that is handed
/// `num_threads = 0` parallelizes on this pool instead of creating a
/// private one, so N concurrent sessions in one server process share the
/// cores rather than oversubscribing N * hardware_concurrency threads.
/// Created lazily on first use (size = `ConfigureGlobalThreadPool`'s value,
/// or hardware concurrency) and lives for the rest of the process.
ThreadPool& GlobalThreadPool();

/// Sets the size the global pool is created with. Must be called before the
/// first `GlobalThreadPool()` use; afterwards the pool is already running
/// and the call fails with AlreadyExists (unless the size already matches).
/// `num_threads <= 0` selects hardware concurrency.
Status ConfigureGlobalThreadPool(int num_threads);

/// The global pool's thread count without forcing its creation: the
/// configured (or default) size before first use, the live size after.
int GlobalThreadPoolThreads();

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_THREAD_POOL_H_
