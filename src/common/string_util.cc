#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cpclean {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) {
    return Status::ParseError("empty string is not a double");
  }
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("not a double: '" + buf + "'");
  }
  return value;
}

Result<int> ParseInt(std::string_view text) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) {
    return Status::ParseError("empty string is not an int");
  }
  char* end = nullptr;
  const long value = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("not an int: '" + buf + "'");
  }
  if (value < INT32_MIN || value > INT32_MAX) {
    return Status::OutOfRange("int out of range: '" + buf + "'");
  }
  return static_cast<int>(value);
}

int GetEnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const Result<int> parsed = ParseInt(raw);
  return parsed.ok() ? parsed.value() : fallback;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace cpclean
