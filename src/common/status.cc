#include "common/status.h"

namespace cpclean {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cpclean
