#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace cpclean {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace metrics_internal {

int MetricShard() {
  static std::atomic<unsigned> next{0};
  // Round-robin at thread birth beats hashing the thread id: consecutive
  // workers land on distinct shards by construction.
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kMetricShards));
  return shard;
}

}  // namespace metrics_internal

int MetricHistogram::BucketIndex(uint64_t value) {
  if (value < 4) return static_cast<int>(value);
  const int top = 63 - __builtin_clzll(value);  // >= 2 here
  const int sub = static_cast<int>((value >> (top - 2)) & 3);
  return 4 + (top - 2) * kSubBuckets + sub;
}

uint64_t MetricHistogram::BucketLowerBound(int index) {
  if (index < 4) return static_cast<uint64_t>(index);
  const int top = (index - 4) / kSubBuckets + 2;
  const uint64_t sub = static_cast<uint64_t>((index - 4) % kSubBuckets);
  return (4ULL + sub) << (top - 2);
}

uint64_t MetricHistogram::BucketUpperBound(int index) {
  if (index < 4) return static_cast<uint64_t>(index) + 1;
  if (index >= kNumBuckets - 1) return UINT64_MAX;  // top bucket is open
  const int top = (index - 4) / kSubBuckets + 2;
  const uint64_t sub = static_cast<uint64_t>((index - 4) % kSubBuckets);
  return (5ULL + sub) << (top - 2);
}

HistogramSnapshot MetricHistogram::Snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kNumBuckets, 0);
  uint64_t min_seen = UINT64_MAX;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      out.buckets[static_cast<size_t>(b)] +=
          shard.buckets[static_cast<size_t>(b)].load(
              std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
    min_seen = std::min(min_seen, shard.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, shard.max.load(std::memory_order_relaxed));
  }
  // Count derives from the buckets so count and quantiles can never
  // disagree, even with writers racing the snapshot.
  for (const uint64_t b : out.buckets) out.count += b;
  out.min = (out.count == 0 || min_seen == UINT64_MAX) ? 0 : min_seen;
  if (out.count == 0) out.max = 0;
  return out;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank in [1, count]: position q of the way through the ordered sample.
  const double target =
      std::max(1.0, q * static_cast<double>(count));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target) {
      const double lower = static_cast<double>(
          MetricHistogram::BucketLowerBound(static_cast<int>(b)));
      const double upper = static_cast<double>(
          MetricHistogram::BucketUpperBound(static_cast<int>(b)));
      // Ranks before+1 .. before+bucket map onto [lower, upper): rank
      // before+1 sits at the lower edge, so Quantile(0) is exactly min.
      const double frac = std::max(
          0.0, (target - before - 1.0) / static_cast<double>(buckets[b]));
      double value = lower + frac * (upper - lower);
      value = std::min(value, static_cast<double>(max));
      value = std::max(value, static_cast<double>(min));
      return value;
    }
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t b = 0; b < other.buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  sum += other.sum;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked deliberately (like the global thread pool): instruments may be
  // touched by detached threads during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

template <typename T>
T& FindOrCreate(std::vector<std::pair<std::string, T*>>& instruments,
                const std::string& name) {
  for (auto& entry : instruments) {
    if (entry.first == name) return *entry.second;
  }
  instruments.emplace_back(name, new T());  // leaked: lives forever
  return *instruments.back().second;
}

}  // namespace

MetricCounter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(counters_, name);
}

MetricGauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(gauges_, name);
}

MetricHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& entry : counters_) {
      out.counters.emplace_back(entry.first, entry.second->Value());
    }
    out.gauges.reserve(gauges_.size());
    for (const auto& entry : gauges_) {
      out.gauges.emplace_back(entry.first, entry.second->Value());
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& entry : histograms_) {
      out.histograms.emplace_back(entry.first, entry.second->Snapshot());
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "cpclean_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsPrometheusText() {
  const MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  std::string out;
  for (const auto& entry : snapshot.counters) {
    const std::string name = PrometheusName(entry.first);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", name.c_str(),
                     name.c_str(),
                     static_cast<unsigned long long>(entry.second));
  }
  for (const auto& entry : snapshot.gauges) {
    const std::string name = PrometheusName(entry.first);
    out += StrFormat("# TYPE %s gauge\n%s %lld\n", name.c_str(),
                     name.c_str(), static_cast<long long>(entry.second));
  }
  for (const auto& entry : snapshot.histograms) {
    const std::string name = PrometheusName(entry.first);
    const HistogramSnapshot& h = entry.second;
    out += StrFormat("# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      // The bucket's exclusive upper bound doubles as the Prometheus
      // inclusive `le` edge — within the bucket's resolution either
      // reading is correct.
      const uint64_t upper =
          MetricHistogram::BucketUpperBound(static_cast<int>(b));
      out += StrFormat("%s_bucket{le=\"%llu\"} %llu\n", name.c_str(),
                       static_cast<unsigned long long>(upper),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                     static_cast<unsigned long long>(h.count));
    out += StrFormat("%s_sum %llu\n", name.c_str(),
                     static_cast<unsigned long long>(h.sum));
    out += StrFormat("%s_count %llu\n", name.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  // Fault-injection sites (PR 7): which sites actually fired, so torture
  // runs can assert their faults landed. Only ruled sites are tracked.
  for (const FaultInjection::SiteStats& site : FaultInjection::Stats()) {
    const std::string label = StrFormat("{site=\"%s\"}", site.site.c_str());
    out += StrFormat(
        "cpclean_fault_site_hits_total%s %llu\n"
        "cpclean_fault_site_fires_total%s %llu\n",
        label.c_str(), static_cast<unsigned long long>(site.hits),
        label.c_str(), static_cast<unsigned long long>(site.fires));
  }
  return out;
}

const char* SpanPhaseName(int phase) {
  switch (phase) {
    case kSpanQueueWait:
      return "queue_wait";
    case kSpanCacheLookup:
      return "cache_lookup";
    case kSpanEngineAcquire:
      return "engine_acquire";
    case kSpanKernelCompute:
      return "kernel_compute";
    case kSpanSerialize:
      return "serialize";
    case kSpanFlush:
      return "flush";
    default:
      return "unknown";
  }
}

namespace {
thread_local RequestSpan* tl_active_span = nullptr;
}  // namespace

RequestSpan* ActiveRequestSpan() { return tl_active_span; }

ScopedActiveSpan::ScopedActiveSpan(RequestSpan* span)
    : previous_(tl_active_span) {
  tl_active_span = span;
}

ScopedActiveSpan::~ScopedActiveSpan() { tl_active_span = previous_; }

SpanRing::SpanRing(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void SpanRing::Push(const RequestSpan& span) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = span;
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
}

std::vector<RequestSpan> SpanRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestSpan> out;
  out.reserve(size_);
  const size_t begin = (next_ + ring_.size() - size_) % ring_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(begin + i) % ring_.size()]);
  }
  return out;
}

SpanRing& GlobalSpanRing() {
  static SpanRing* ring = new SpanRing(256);  // leaked: see MetricsRegistry
  return *ring;
}

}  // namespace cpclean
