#ifndef CPCLEAN_COMMON_RESULT_H_
#define CPCLEAN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace cpclean {

/// A value-or-error outcome, the companion of `Status` for functions that
/// return a value on success (Arrow's `Result<T>` idiom).
///
/// Accessing the value of a failed result is a programmer error and aborts
/// via CP_CHECK. Use `ok()` / `status()` to inspect first, or
/// CP_ASSIGN_OR_RETURN to propagate.
template <typename T>
class Result {
 public:
  /// Implicit conversion from an error status (must not be OK).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    CP_CHECK(!status_.ok()) << "Result constructed from OK status";
  }
  /// Implicit conversion from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating an error to the caller or
/// assigning the unwrapped value to `lhs`.
#define CP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define CP_ASSIGN_OR_RETURN(lhs, rexpr) \
  CP_ASSIGN_OR_RETURN_IMPL(             \
      CP_CONCAT_(_cp_result_, __LINE__), lhs, rexpr)

#define CP_CONCAT_INNER_(a, b) a##b
#define CP_CONCAT_(a, b) CP_CONCAT_INNER_(a, b)

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_RESULT_H_
