#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace cpclean {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  CP_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  CP_CHECK_LE(lo, hi);
  return lo + static_cast<int>(NextUint64(
                  static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  return NextDouble() < p;
}

int Rng::NextCategorical(const std::vector<double>& weights) {
  CP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CP_CHECK_GE(w, 0.0);
    total += w;
  }
  CP_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> out(n);
  for (int i = 0; i < n; ++i) out[i] = i;
  Shuffle(&out);
  return out;
}

Rng Rng::Fork() {
  return Rng(NextUint64());
}

}  // namespace cpclean
