#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cpclean {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Min(const std::vector<double>& values) {
  CP_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  CP_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Percentile(const std::vector<double>& values, double p) {
  CP_CHECK(!values.empty());
  CP_CHECK_GE(p, 0.0);
  CP_CHECK_LE(p, 100.0);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(const std::vector<double>& values) {
  return Percentile(values, 50.0);
}

namespace {
double EntropyImpl(const std::vector<double>& masses, double log_base) {
  double total = 0.0;
  for (double m : masses) {
    CP_CHECK_GE(m, 0.0);
    total += m;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double m : masses) {
    if (m <= 0.0) continue;
    const double p = m / total;
    h -= p * std::log(p);
  }
  return h / log_base;
}
}  // namespace

double Entropy(const std::vector<double>& masses) {
  return EntropyImpl(masses, 1.0);
}

double EntropyBits(const std::vector<double>& masses) {
  return EntropyImpl(masses, std::log(2.0));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace cpclean
