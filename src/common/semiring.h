#ifndef CPCLEAN_COMMON_SEMIRING_H_
#define CPCLEAN_COMMON_SEMIRING_H_

#include <cstdint>

#include "common/big_uint.h"

namespace cpclean {

/// Count semirings for the SS family of algorithms (see DESIGN.md §4.2).
///
/// Every counting engine is templated on a semiring `S` that provides:
///   using Value = ...;                  // the carrier type
///   static Value Zero();                // additive identity
///   static Value One();                 // multiplicative identity
///   static Value Add(Value, Value);
///   static Value Mul(Value, Value);
///   static Value FromCount(uint64_t);   // embed a small non-negative count
///   static bool IsZero(const Value&);
///   static double ToDouble(const Value&);  // lossy readout
///
/// All counts in the CP algorithms are sums of products of non-negative
/// integers, so any homomorphic image of (N, +, *) yields sound results:
///  - `ExactSemiring`  : BigUint, exact world counts of any magnitude.
///  - `Uint64Semiring` : exact while counts stay below 2^64 (caller's duty).
///  - `DoubleSemiring` : doubles; used with per-tuple-normalized tallies to
///    produce world *fractions* (probabilities) directly.
///  - `BoolSemiring`   : the possibility semiring ({0,1}, OR, AND); turns Q2
///    into an exact Q1 "is the count nonzero" check for any |Y|.

struct ExactSemiring {
  using Value = BigUint;
  static Value Zero() { return BigUint(); }
  static Value One() { return BigUint(1); }
  static Value Add(const Value& a, const Value& b) { return a + b; }
  static Value Mul(const Value& a, const Value& b) { return a * b; }
  static Value FromCount(uint64_t c) { return BigUint(c); }
  static bool IsZero(const Value& v) { return v.IsZero(); }
  static double ToDouble(const Value& v) { return v.ToDouble(); }
};

struct Uint64Semiring {
  using Value = uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value FromCount(uint64_t c) { return c; }
  static bool IsZero(Value v) { return v == 0; }
  static double ToDouble(Value v) { return static_cast<double>(v); }
};

struct DoubleSemiring {
  using Value = double;
  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value FromCount(uint64_t c) { return static_cast<double>(c); }
  static bool IsZero(Value v) { return v == 0.0; }
  static double ToDouble(Value v) { return v; }
};

struct BoolSemiring {
  /// uint8_t rather than bool: std::vector<bool>'s proxy references do not
  /// bind to `Value&`, and the engines mutate coefficients in place.
  using Value = uint8_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Add(Value a, Value b) { return a | b; }
  static Value Mul(Value a, Value b) { return a & b; }
  static Value FromCount(uint64_t c) { return c != 0 ? 1 : 0; }
  static bool IsZero(Value v) { return v == 0; }
  static double ToDouble(Value v) { return v != 0 ? 1.0 : 0.0; }
};

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_SEMIRING_H_
