#include "common/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

namespace {

struct Rule {
  enum class Kind { kOff, kOnce, kAlways, kNth, kEvery, kAfter, kProb, kSleep };
  Kind kind = Rule::Kind::kOff;
  uint64_t n = 0;    // nth / every / after / sleep-ms parameter
  double p = 0.0;    // prob parameter
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Rule> rules;  // ordered: Stats() comes out sorted
  uint64_t seed = 1;
};

// Intentionally leaked (never destroyed): FaultHit may run on any thread
// at any point of shutdown, and a destructed registry would be UB there.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// The hot-path gate: false ⇒ FaultHit returns immediately, no lock taken.
std::atomic<bool> g_active{false};
std::atomic<bool> g_ops_armed{false};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : site) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h;
}

Result<Rule> ParseRule(const std::string& site, const std::string& spec) {
  Rule rule;
  const size_t colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  const auto need_count = [&](Rule::Kind kind) -> Result<Rule> {
    CP_ASSIGN_OR_RETURN(const int n, ParseInt(arg));
    if (n < 1) {
      return Status::InvalidArgument(StrFormat(
          "fault rule \"%s=%s\": count must be >= 1", site.c_str(),
          spec.c_str()));
    }
    rule.kind = kind;
    rule.n = static_cast<uint64_t>(n);
    return rule;
  };
  if (head == "off" && arg.empty()) return rule;
  if (head == "once" && arg.empty()) {
    rule.kind = Rule::Kind::kOnce;
    return rule;
  }
  if (head == "always" && arg.empty()) {
    rule.kind = Rule::Kind::kAlways;
    return rule;
  }
  if (head == "nth") return need_count(Rule::Kind::kNth);
  if (head == "every") return need_count(Rule::Kind::kEvery);
  if (head == "after") {
    CP_ASSIGN_OR_RETURN(const int n, ParseInt(arg));
    if (n < 0) {
      return Status::InvalidArgument(StrFormat(
          "fault rule \"%s=%s\": count must be >= 0", site.c_str(),
          spec.c_str()));
    }
    rule.kind = Rule::Kind::kAfter;
    rule.n = static_cast<uint64_t>(n);
    return rule;
  }
  if (head == "sleep") return need_count(Rule::Kind::kSleep);
  if (head == "p") {
    char* end = nullptr;
    const double p = std::strtod(arg.c_str(), &end);
    if (end == nullptr || *end != '\0' || arg.empty() || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(StrFormat(
          "fault rule \"%s=%s\": probability must be in [0, 1]",
          site.c_str(), spec.c_str()));
    }
    rule.kind = Rule::Kind::kProb;
    rule.p = p;
    return rule;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown fault rule \"%s\" for site \"%s\" (expected off, once, "
      "always, nth:K, every:K, after:K, p:X, sleep:MS)",
      spec.c_str(), site.c_str()));
}

}  // namespace

Status FaultInjection::Configure(const std::string& config) {
  std::map<std::string, Rule> rules;
  uint64_t seed = 1;
  for (const std::string& raw : Split(config, ';')) {
    // Tolerate stray whitespace and empty clauses ("a=once; b=nth:2;").
    std::string clause = raw;
    const size_t begin = clause.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const size_t end = clause.find_last_not_of(" \t");
    clause = clause.substr(begin, end - begin + 1);
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      return Status::InvalidArgument(StrFormat(
          "fault clause \"%s\" is not site=rule", clause.c_str()));
    }
    const std::string site = clause.substr(0, eq);
    const std::string spec = clause.substr(eq + 1);
    if (site == "seed") {
      CP_ASSIGN_OR_RETURN(const int parsed, ParseInt(spec));
      seed = static_cast<uint64_t>(parsed);
      continue;
    }
    CP_ASSIGN_OR_RETURN(const Rule rule, ParseRule(site, spec));
    if (rule.kind == Rule::Kind::kOff) {
      rules.erase(site);
      continue;
    }
    rules[site] = rule;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rules = std::move(rules);
  registry.seed = seed;
  g_active.store(!registry.rules.empty(), std::memory_order_release);
  return Status::OK();
}

void FaultInjection::Clear() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rules.clear();
  g_active.store(false, std::memory_order_release);
}

bool FaultInjection::Active() {
  return g_active.load(std::memory_order_acquire);
}

void FaultInjection::ArmOps() { g_ops_armed.store(true); }

bool FaultInjection::OpsArmed() {
  return g_ops_armed.load() || std::getenv("CPCLEAN_FAULTS") != nullptr;
}

void FaultInjection::InitFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("CPCLEAN_FAULTS");
    if (env == nullptr) return;
    const Status status = Configure(env);
    // A typo'd CPCLEAN_FAULTS must not silently run the suite fault-free.
    CP_CHECK(status.ok()) << "CPCLEAN_FAULTS: " << status.ToString();
  });
}

std::vector<FaultInjection::SiteStats> FaultInjection::Stats() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<SiteStats> out;
  out.reserve(registry.rules.size());
  for (const auto& entry : registry.rules) {
    out.push_back(SiteStats{entry.first, entry.second.hits,
                            entry.second.fires});
  }
  return out;
}

bool FaultHit(const char* site) {
  if (!g_active.load(std::memory_order_acquire)) return false;
  uint64_t sleep_ms = 0;
  bool fired = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    const auto it = registry.rules.find(site);
    if (it == registry.rules.end()) return false;
    Rule& rule = it->second;
    ++rule.hits;
    switch (rule.kind) {
      case Rule::Kind::kOff:
        break;
      case Rule::Kind::kOnce:
        fired = rule.hits == 1;
        break;
      case Rule::Kind::kAlways:
        fired = true;
        break;
      case Rule::Kind::kNth:
        fired = rule.hits == rule.n;
        break;
      case Rule::Kind::kEvery:
        fired = rule.hits % rule.n == 0;
        break;
      case Rule::Kind::kAfter:
        fired = rule.hits > rule.n;
        break;
      case Rule::Kind::kProb: {
        // Deterministic in (seed, site, hit index): replaying a run with
        // the same config replays the exact fault schedule.
        const uint64_t bits =
            SplitMix64(registry.seed ^ HashSite(it->first) ^ rule.hits);
        fired = static_cast<double>(bits >> 11) * 0x1.0p-53 < rule.p;
        break;
      }
      case Rule::Kind::kSleep:
        sleep_ms = rule.n;
        ++rule.fires;
        break;
    }
    if (fired) ++rule.fires;
  }
  if (sleep_ms > 0) {
    // Outside the lock: a stalled site must not stall every other site.
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return fired;
}

}  // namespace cpclean
