#ifndef CPCLEAN_COMMON_MMAP_FILE_H_
#define CPCLEAN_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/result.h"

namespace cpclean {

/// A writable memory-mapped scratch file: anonymous-looking storage whose
/// pages live in the page cache and can be evicted to disk under memory
/// pressure, instead of pinning the whole slab in RAM.
///
/// `CreateScratch` creates a uniquely named file under `dir`, sizes it,
/// maps it shared read/write, and *unlinks it immediately* — the mapping
/// (and the open fd, needed for `Resize`) keep the storage alive, and a
/// crash at any point leaves zero litter on disk.
///
/// Fault sites: `mmap.map` (creation) and `mmap.remap` (growth).
class MappedFile {
 public:
  /// Creates an unlinked scratch mapping of at least `bytes` bytes under
  /// `dir` (which must exist). `bytes` may be 0; a minimal mapping is made
  /// so `data()` is always valid.
  static Result<std::unique_ptr<MappedFile>> CreateScratch(
      const std::string& dir, size_t bytes);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Grows (or shrinks) the mapping to `new_bytes`. Existing contents are
  /// preserved; `data()` may move. New bytes read as zero.
  Status Resize(size_t new_bytes);

  void* data() const { return data_; }
  size_t size() const { return size_; }

  /// Advises the kernel to page in `[offset, offset + length)` ahead of
  /// use (madvise WILLNEED). Out-of-range spans are clamped; best effort.
  void Prefetch(size_t offset, size_t length) const;

 private:
  MappedFile(int fd, void* data, size_t size)
      : fd_(fd), data_(data), size_(size) {}

  int fd_ = -1;
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_MMAP_FILE_H_
