#include "common/cpu_features.h"

#include <cstdint>

#include "common/string_util.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CPCLEAN_CPU_FEATURES_X86 1
#include <cpuid.h>
#endif

namespace cpclean {

namespace {

#ifdef CPCLEAN_CPU_FEATURES_X86

/// XGETBV without `-mxsave` (the intrinsic would force the flag onto this
/// whole TU): the raw opcode reads extended control register `index`.
uint64_t Xgetbv(uint32_t index) {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(eax), "=d"(edx)
                   : "c"(index));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

SimdLevel DetectSimdLevelX86() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return SimdLevel::kScalar;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx || !fma) return SimdLevel::kScalar;
  // XCR0: the OS must save xmm (bit 1) and ymm (bit 2) state; AVX-512
  // additionally needs opmask (bit 5) and the zmm halves (bits 6-7).
  const uint64_t xcr0 = Xgetbv(0);
  if ((xcr0 & 0x6) != 0x6) return SimdLevel::kScalar;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
    return SimdLevel::kScalar;
  }
  const bool avx2 = (ebx & (1u << 5)) != 0;
  if (!avx2) return SimdLevel::kScalar;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  if (avx512f && (xcr0 & 0xe6) == 0xe6) return SimdLevel::kAvx512;
  return SimdLevel::kAvx2;
}

#endif  // CPCLEAN_CPU_FEATURES_X86

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Result<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return Status::InvalidArgument(StrFormat(
      "unknown SIMD level \"%s\" (expected scalar, avx2, avx512)",
      name.c_str()));
}

SimdLevel DetectSimdLevel() {
#ifdef CPCLEAN_CPU_FEATURES_X86
  return DetectSimdLevelX86();
#else
  return SimdLevel::kScalar;
#endif
}

Result<SimdLevel> ResolveSimdLevel(const char* env_value, SimdLevel detected,
                                   SimdLevel compiled_max) {
  SimdLevel usable = detected < compiled_max ? detected : compiled_max;
  if (env_value == nullptr || env_value[0] == '\0') {
    // Auto-select caps at AVX2: with the fixed 8-lane accumulation shape
    // (one zmm dependency chain vs the AVX2 pair) the committed
    // BM_SimilarityBatch_Dispatch numbers show AVX-512 trailing AVX2 at
    // every measured dim, and 512-bit ops downclock on many parts —
    // so AVX-512 is opt-in via CPCLEAN_SIMD=avx512, never a default.
    if (usable > SimdLevel::kAvx2) usable = SimdLevel::kAvx2;
    return usable;
  }
  CP_ASSIGN_OR_RETURN(const SimdLevel requested,
                      ParseSimdLevel(env_value));
  if (requested > detected) {
    return Status::InvalidArgument(StrFormat(
        "CPCLEAN_SIMD=%s rejected: this host supports at most \"%s\"",
        SimdLevelName(requested), SimdLevelName(detected)));
  }
  if (requested > compiled_max) {
    return Status::InvalidArgument(StrFormat(
        "CPCLEAN_SIMD=%s rejected: this binary was built without the %s "
        "kernels (compiler lacked the ISA flags); highest compiled level "
        "is \"%s\"",
        SimdLevelName(requested), SimdLevelName(requested),
        SimdLevelName(compiled_max)));
  }
  return requested;
}

}  // namespace cpclean
