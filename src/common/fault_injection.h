#ifndef CPCLEAN_COMMON_FAULT_INJECTION_H_
#define CPCLEAN_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cpclean {

/// Deterministic, seed-driven fault injection.
///
/// Production code marks its failure-prone operations with named *sites*
/// (`FaultHit("store.rename")`); a test — or the `CPCLEAN_FAULTS`
/// environment variable, or the server's test-only `fault_inject` op —
/// installs *rules* deciding which hits of which site fail. With no rules
/// installed the hot path is a single relaxed atomic load, so shipping the
/// sites costs nothing.
///
/// Configuration syntax (the env var and `Configure` share it):
///
///   config  = clause (";" clause)*          (empty string = no rules)
///   clause  = "seed=" N | site "=" rule
///   rule    = "off" | "once" | "always"
///           | "nth:" K                      fire on exactly the Kth hit
///           | "every:" K                    fire on every Kth hit
///           | "after:" K                    fire on every hit past the Kth
///                                           (a disk that fails and stays
///                                           failed)
///           | "p:" X                        fire with probability X per
///                                           hit, deterministic in the
///                                           seed, the site name, and the
///                                           hit index — same config, same
///                                           fault schedule, every run
///           | "sleep:" MS                   never fails; stalls the hit MS
///                                           milliseconds (deadline and
///                                           backpressure tests)
///
/// Example: CPCLEAN_FAULTS="seed=7;store.rename=once;el.send=p:0.25"
///
/// Sites currently wired (grep FaultHit for ground truth):
///
///   store.open / store.write / store.flush / store.rename
///       session-snapshot file I/O (open failure, short write + error,
///       ENOSPC on the final flush, rename failure)
///   log.append / log.fsync / log.replay
///       cleaning-log I/O (append-open failure, fsync failure after the
///       bytes landed — the append truncates back —, replay failure on
///       rehydration)
///   mmap.map / mmap.remap
///       the out-of-core candidate slab's scratch-file mapping (creation
///       and growth; both fall back to RAM mode at the session layer)
///   el.accept / el.recv / el.send / el.send_eagain / el.send_short
///       event-loop sockets (EMFILE on accept, connection reset on read /
///       write, EAGAIN storms, partial writes)
///   serve.exec
///       request execution stall (sleep rules only make sense here)
///   compute.selection_scores
///       first compute-layer site: throws std::runtime_error from the
///       greedy selection kernel (failure rules exercise exception
///       propagation in library tests; sleep rules stall a clean_step
///       mid-compute under a live server)
class FaultInjection {
 public:
  /// Parses `config` and replaces every installed rule (and counters).
  /// An empty config clears all rules. Invalid syntax is an
  /// InvalidArgument and leaves the previous rules untouched.
  static Status Configure(const std::string& config);

  /// Removes every rule; `FaultHit` returns to its one-atomic-load path.
  static void Clear();

  /// True when at least one rule is installed.
  static bool Active();

  /// Arms the test-only `fault_inject` server op without the environment
  /// variable (in-process tests).
  static void ArmOps();

  /// True when the `fault_inject` server op may run: the CPCLEAN_FAULTS
  /// environment variable is present (any value, even empty) or `ArmOps`
  /// was called. A production server — env unset — refuses the op.
  static bool OpsArmed();

  /// Installs the rules from CPCLEAN_FAULTS, once per process (later
  /// calls are no-ops). A malformed env config aborts via CP_CHECK —
  /// silently serving without the faults the operator asked for would
  /// invalidate the whole test run.
  static void InitFromEnv();

  struct SiteStats {
    std::string site;
    uint64_t hits = 0;   // times the site was reached with a rule present
    uint64_t fires = 0;  // times the rule made it fail (or sleep)
  };
  /// Per-site counters, sorted by site name. Only sites with rules are
  /// tracked (an unruled site is never counted — that is the zero-cost
  /// path).
  static std::vector<SiteStats> Stats();
};

/// True when the fault at `site` fires on this hit. `sleep` rules stall
/// the calling thread and return false. Near-zero cost while no rules are
/// installed.
bool FaultHit(const char* site);

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_FAULT_INJECTION_H_
