#include "common/big_uint.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace cpclean {

BigUint::BigUint(uint64_t value) {
  while (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffULL));
    value >>= 32;
  }
}

BigUint BigUint::FromDecimalString(const std::string& text) {
  CP_CHECK(!text.empty());
  BigUint out;
  const BigUint ten(10);
  for (char c : text) {
    CP_CHECK(c >= '0' && c <= '9') << "bad decimal digit: " << c;
    out = out * ten + BigUint(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::operator+(const BigUint& other) const {
  BigUint out;
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<uint32_t>(carry));
  out.Normalize();
  return out;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (IsZero() || other.IsZero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(limbs_[i]) * other.limbs_[j] +
                     out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = static_cast<uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigUint& BigUint::operator+=(const BigUint& other) {
  *this = *this + other;
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  *this = *this * other;
  return *this;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Pow(uint64_t exponent) const {
  BigUint result(1);
  BigUint base = *this;
  while (exponent > 0) {
    if (exponent & 1) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

double BigUint::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return out;
}

uint64_t BigUint::ToUint64() const {
  CP_CHECK(FitsUint64()) << "BigUint does not fit in uint64";
  uint64_t out = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = (out << 32) | limbs_[i];
  }
  return out;
}

std::string BigUint::ToString() const {
  if (IsZero()) return "0";
  // Repeatedly divide a copy of the limbs by 10^9 to peel off digits.
  std::vector<uint32_t> work = limbs_;
  std::vector<uint32_t> chunks;  // base-1e9 digits, little-endian
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    chunks.push_back(static_cast<uint32_t>(rem));
  }
  std::string out = std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

double BigUint::DivideToDouble(const BigUint& other) const {
  CP_CHECK(!other.IsZero());
  // Align the two magnitudes in log space to stay inside double range.
  const double num_log = static_cast<double>(limbs_.size());
  const double den_log = static_cast<double>(other.limbs_.size());
  if (std::abs(num_log - den_log) < 15.0) {
    // Both convert safely after scaling by a common power of 2^32.
    const size_t shift =
        std::min(limbs_.size(), other.limbs_.size()) > 4
            ? std::min(limbs_.size(), other.limbs_.size()) - 4
            : 0;
    double num = 0.0, den = 0.0;
    for (size_t i = limbs_.size(); i-- > shift;) {
      num = num * 4294967296.0 + static_cast<double>(limbs_[i]);
    }
    for (size_t i = other.limbs_.size(); i-- > shift;) {
      den = den * 4294967296.0 + static_cast<double>(other.limbs_[i]);
    }
    if (den == 0.0) return std::numeric_limits<double>::infinity();
    return num / den;
  }
  return num_log > den_log ? std::numeric_limits<double>::infinity() : 0.0;
}

}  // namespace cpclean
