#ifndef CPCLEAN_COMMON_LOGGING_H_
#define CPCLEAN_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace cpclean {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level that is actually emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed message when the level is below threshold.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define CP_LOG(LEVEL)                                                 \
  ::cpclean::internal::LogMessage(::cpclean::LogLevel::k##LEVEL,      \
                                  __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. For programmer errors
/// (violated invariants), not for recoverable input errors — those return
/// Status.
#define CP_CHECK(cond)                                          \
  for (bool _cp_ok = static_cast<bool>(cond); !_cp_ok;          \
       _cp_ok = true)                                           \
  ::cpclean::internal::LogMessage(::cpclean::LogLevel::kFatal,  \
                                  __FILE__, __LINE__)           \
      << "Check failed: " #cond " "

#define CP_CHECK_EQ(a, b) CP_CHECK((a) == (b))
#define CP_CHECK_NE(a, b) CP_CHECK((a) != (b))
#define CP_CHECK_LT(a, b) CP_CHECK((a) < (b))
#define CP_CHECK_LE(a, b) CP_CHECK((a) <= (b))
#define CP_CHECK_GT(a, b) CP_CHECK((a) > (b))
#define CP_CHECK_GE(a, b) CP_CHECK((a) >= (b))

#ifndef NDEBUG
#define CP_DCHECK(cond) CP_CHECK(cond)
#else
#define CP_DCHECK(cond) \
  while (false) ::cpclean::internal::NullLogMessage()
#endif

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_LOGGING_H_
