#ifndef CPCLEAN_COMMON_STATUS_H_
#define CPCLEAN_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace cpclean {

/// Error categories used across the library. Modeled after Arrow's Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kParseError,
  kNotImplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a short human-readable name for a status code ("Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carried across library boundaries.
///
/// The library never throws exceptions through its public API; fallible
/// operations return `Status` (or `Result<T>` when they also produce a
/// value). The OK status is cheap to construct and copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A resource is temporarily saturated (admission control, capacity
  /// limits); the caller may retry later.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The caller's deadline passed before the operation produced a result;
  /// whatever work was in flight is discarded, never partially delivered.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `Result<T>` (via the implicit Status -> Result conversion).
#define CP_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::cpclean::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_STATUS_H_
