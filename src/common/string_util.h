#ifndef CPCLEAN_COMMON_STRING_UTIL_H_
#define CPCLEAN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cpclean {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins the pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view text);

/// True when `text` begins with / ends with the given prefix / suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Parses a double / int; rejects trailing garbage and empty input.
Result<double> ParseDouble(std::string_view text);
Result<int> ParseInt(std::string_view text);

/// Reads an integer environment variable, falling back when unset or
/// malformed. Used by the experiment harnesses for scale knobs.
int GetEnvInt(const char* name, int fallback);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_STRING_UTIL_H_
