#ifndef CPCLEAN_COMMON_BIG_UINT_H_
#define CPCLEAN_COMMON_BIG_UINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cpclean {

/// Arbitrary-precision unsigned integer.
///
/// The number of possible worlds of an incomplete dataset is
/// `prod_i |C_i|`, up to `M^N` — astronomically larger than 2^64 for
/// realistic N. `BigUint` lets the counting engines (Q2) report *exact*
/// world counts for validation, while production paths use normalized
/// doubles. Only the operations the counting DP needs are provided:
/// add, multiply, compare, conversion to/from decimal and double.
///
/// Representation: base 2^32 limbs, little-endian, no leading zero limbs
/// (zero is the empty limb vector).
class BigUint {
 public:
  /// Zero.
  BigUint() = default;
  /// From a 64-bit value.
  explicit BigUint(uint64_t value);

  /// Parses a decimal string; digits only.
  static BigUint FromDecimalString(const std::string& text);

  BigUint(const BigUint&) = default;
  BigUint& operator=(const BigUint&) = default;
  BigUint(BigUint&&) = default;
  BigUint& operator=(BigUint&&) = default;

  bool IsZero() const { return limbs_.empty(); }

  BigUint operator+(const BigUint& other) const;
  BigUint operator*(const BigUint& other) const;
  BigUint& operator+=(const BigUint& other);
  BigUint& operator*=(const BigUint& other);

  bool operator==(const BigUint& other) const { return limbs_ == other.limbs_; }
  bool operator!=(const BigUint& other) const { return !(*this == other); }
  bool operator<(const BigUint& other) const { return Compare(other) < 0; }
  bool operator<=(const BigUint& other) const { return Compare(other) <= 0; }
  bool operator>(const BigUint& other) const { return Compare(other) > 0; }
  bool operator>=(const BigUint& other) const { return Compare(other) >= 0; }

  /// -1 / 0 / +1 three-way comparison.
  int Compare(const BigUint& other) const;

  /// `this^exponent` by repeated squaring.
  BigUint Pow(uint64_t exponent) const;

  /// Lossy conversion; +inf when the value exceeds double range.
  double ToDouble() const;

  /// Exact conversion when the value fits in 64 bits; CHECK-fails otherwise.
  uint64_t ToUint64() const;

  /// True when the value fits in 64 bits.
  bool FitsUint64() const { return limbs_.size() <= 2; }

  /// Decimal representation.
  std::string ToString() const;

  /// this / other as a double (for normalizing counts into probabilities).
  /// `other` must be nonzero.
  double DivideToDouble(const BigUint& other) const;

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;
};

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_BIG_UINT_H_
