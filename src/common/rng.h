#ifndef CPCLEAN_COMMON_RNG_H_
#define CPCLEAN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cpclean {

/// Deterministic pseudo-random number generator (xoshiro256** core).
///
/// Every stochastic component in the library (dataset generation, missing
/// value injection, baselines) takes an explicit `Rng` so experiments are
/// reproducible bit-for-bit from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`
  /// (non-negative, not all zero).
  int NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns a random permutation of 0..n-1.
  std::vector<int> Permutation(int n);

  /// Derives an independent child generator; useful for giving each
  /// component of an experiment its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cpclean

#endif  // CPCLEAN_COMMON_RNG_H_
