#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/string_util.h"

namespace cpclean {

namespace {
// Set while a thread (worker or participating caller) is executing loop
// bodies; nested ParallelFor calls detect it and run inline.
thread_local bool tl_inside_parallel_for = false;
// The pool whose loop bodies this thread is currently executing, and the
// worker slot it owns there. Same-pool nested calls inherit the slot (it
// is valid and unique for that pool); a call on a *different* pool from
// inside a parallel region runs as that pool's worker 0 — always in
// range, see the cross-pool caveat in the header.
thread_local const void* tl_active_pool = nullptr;
thread_local int tl_worker_id = 0;
}  // namespace

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RecordError() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
  // Drain the remaining indices so every thread finishes promptly.
  next_.store(n_, std::memory_order_relaxed);
}

void ThreadPool::RunChunks(int worker) {
  const bool was_inside = tl_inside_parallel_for;
  const void* const was_pool = tl_active_pool;
  const int was_worker = tl_worker_id;
  tl_inside_parallel_for = true;
  tl_active_pool = this;
  tl_worker_id = worker;
  while (true) {
    const int64_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= n_) break;
    const int64_t end = std::min(begin + chunk_, n_);
    try {
      for (int64_t i = begin; i < end; ++i) (*fn_)(i, worker);
    } catch (...) {
      RecordError();
    }
  }
  tl_inside_parallel_for = was_inside;
  tl_active_pool = was_pool;
  tl_worker_id = was_worker;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    RunChunks(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int)>& fn) {
  if (n <= 0) return;
  // Serial pool, nested call, or a trivially small loop: run inline. The
  // nested case must not wait on workers that may be busy with the outer
  // job. A same-pool nested body inherits this thread's worker slot
  // (unique and in range for this pool); any other inline body runs as
  // worker 0, which is always in [0, num_threads()).
  if (workers_.empty() || tl_inside_parallel_for || n == 1) {
    const bool was_inside = tl_inside_parallel_for;
    const int worker = tl_active_pool == this ? tl_worker_id : 0;
    tl_inside_parallel_for = true;
    try {
      for (int64_t i = 0; i < n; ++i) fn(i, worker);
    } catch (...) {
      tl_inside_parallel_for = was_inside;
      throw;
    }
    tl_inside_parallel_for = was_inside;
    return;
  }

  // One job at a time: a second submitting thread queues here until the
  // current job (including its error propagation) has fully drained, then
  // runs with the complete worker set — identical to a private pool.
  std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    CP_CHECK_EQ(active_workers_, 0) << "concurrent ParallelFor on one pool";
    fn_ = &fn;
    n_ = n;
    // ~8 chunks per thread balances scheduling overhead against skew from
    // uneven per-item cost.
    chunk_ = std::max<int64_t>(1, n / (static_cast<int64_t>(num_threads()) * 8));
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();

  RunChunks(/*worker=*/0);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    fn_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

namespace {
std::mutex g_global_pool_mu;
int g_global_pool_threads = 0;  // size at creation; 0 = hardware
// Leaked deliberately: server connection threads (detached or joined during
// static destruction) may still touch the pool while exit handlers run, and
// the OS reclaims the workers anyway.
ThreadPool* g_global_pool = nullptr;
}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = new ThreadPool(g_global_pool_threads);
  }
  return *g_global_pool;
}

Status ConfigureGlobalThreadPool(int num_threads) {
  const int want =
      num_threads <= 0 ? ThreadPool::HardwareThreads() : num_threads;
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool != nullptr) {
    if (g_global_pool->num_threads() == want) return Status::OK();
    return Status::AlreadyExists(StrFormat(
        "global thread pool already running with %d threads; configure it "
        "before its first use to get %d",
        g_global_pool->num_threads(), want));
  }
  g_global_pool_threads = want;
  return Status::OK();
}

int GlobalThreadPoolThreads() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool != nullptr) return g_global_pool->num_threads();
  return g_global_pool_threads <= 0 ? ThreadPool::HardwareThreads()
                                    : g_global_pool_threads;
}

}  // namespace cpclean
