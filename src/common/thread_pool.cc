#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace cpclean {

namespace {
// Set while a thread (worker or participating caller) is executing loop
// bodies; nested ParallelFor calls detect it and run inline.
thread_local bool tl_inside_parallel_for = false;
// The pool whose loop bodies this thread is currently executing, and the
// worker slot it owns there. Same-pool nested calls inherit the slot (it
// is valid and unique for that pool); a call on a *different* pool from
// inside a parallel region runs as that pool's worker 0 — always in
// range, see the cross-pool caveat in the header.
thread_local const void* tl_active_pool = nullptr;
thread_local int tl_worker_id = 0;
}  // namespace

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RecordError(Job& job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!job.error) job.error = std::current_exception();
  // Drain the job's remaining indices so every participant finishes
  // promptly. Only this job is affected; concurrent jobs keep running.
  job.next.store(job.n, std::memory_order_relaxed);
}

void ThreadPool::RunJobChunks(Job& job, int slot) {
  const bool was_inside = tl_inside_parallel_for;
  const void* const was_pool = tl_active_pool;
  const int was_worker = tl_worker_id;
  tl_inside_parallel_for = true;
  tl_active_pool = this;
  tl_worker_id = slot;
  while (true) {
    const int64_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) break;
    const int64_t end = std::min(begin + job.chunk, job.n);
    try {
      for (int64_t i = begin; i < end; ++i) (*job.fn)(i, slot);
    } catch (...) {
      RecordError(job);
    }
  }
  tl_inside_parallel_for = was_inside;
  tl_active_pool = was_pool;
  tl_worker_id = was_worker;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Steal from the oldest job that still has indices left and a free
    // worker slot. Claiming the slot and joining the participant count
    // happen under the same lock hold as the scan, so a submitter that
    // sees `participants == 0 && next >= n` knows no late joiner exists.
    std::shared_ptr<Job> job;
    int slot = -1;
    work_cv_.wait(lock, [&] {
      if (stop_) return true;
      for (const std::shared_ptr<Job>& candidate : jobs_) {
        if (candidate->next.load(std::memory_order_relaxed) < candidate->n &&
            candidate->slots < num_threads()) {
          job = candidate;
          slot = candidate->slots;
          return true;
        }
      }
      return false;
    });
    if (stop_) return;
    // Each worker joining a published job is one steal.
    static MetricCounter& steals =
        MetricsRegistry::Get().GetCounter("pool.steals_total");
    steals.Add(1);
    ++job->slots;
    ++job->participants;
    lock.unlock();
    RunJobChunks(*job, slot);
    lock.lock();
    --job->participants;
    if (job->participants == 0 &&
        job->next.load(std::memory_order_relaxed) >= job->n) {
      done_cv_.notify_all();
    }
    job.reset();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int)>& fn) {
  if (n <= 0) return;
  // Serial pool, nested call, or a trivially small loop: run inline. The
  // nested case must not wait on workers that may be busy with the outer
  // job. A same-pool nested body inherits this thread's worker slot
  // (unique and in range for this pool); any other inline body runs as
  // worker 0, which is always in [0, num_threads()).
  if (workers_.empty() || tl_inside_parallel_for || n == 1) {
    const bool was_inside = tl_inside_parallel_for;
    const int worker = tl_active_pool == this ? tl_worker_id : 0;
    tl_inside_parallel_for = true;
    try {
      for (int64_t i = 0; i < n; ++i) fn(i, worker);
    } catch (...) {
      tl_inside_parallel_for = was_inside;
      throw;
    }
    tl_inside_parallel_for = was_inside;
    return;
  }

  // Publish this call as its own job. Concurrent submitters each publish
  // theirs; idle workers steal from whichever job has work (oldest first).
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  // ~8 chunks per thread balances scheduling overhead against skew from
  // uneven per-item cost. Depends only on (n, pool size), never on load,
  // so the chunking — irrelevant to results anyway — is reproducible.
  job->chunk =
      std::max<int64_t>(1, n / (static_cast<int64_t>(num_threads()) * 8));
  {
    static MetricCounter& jobs_published =
        MetricsRegistry::Get().GetCounter("pool.jobs_total");
    jobs_published.Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  // The submitter is always its job's worker slot 0 and works only its own
  // job — it never steals, so it can return the moment its job is done.
  RunJobChunks(*job, /*slot=*/0);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->participants == 0 &&
             job->next.load(std::memory_order_relaxed) >= job->n;
    });
    // No worker can join past this point (the index queue is empty), so
    // retiring the job from the active list is safe.
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {
std::mutex g_global_pool_mu;
int g_global_pool_threads = 0;  // size at creation; 0 = hardware
// Leaked deliberately: server connection threads (detached or joined during
// static destruction) may still touch the pool while exit handlers run, and
// the OS reclaims the workers anyway.
ThreadPool* g_global_pool = nullptr;
}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = new ThreadPool(g_global_pool_threads);
  }
  return *g_global_pool;
}

Status ConfigureGlobalThreadPool(int num_threads) {
  const int want =
      num_threads <= 0 ? ThreadPool::HardwareThreads() : num_threads;
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool != nullptr) {
    if (g_global_pool->num_threads() == want) return Status::OK();
    return Status::AlreadyExists(StrFormat(
        "global thread pool already running with %d threads; configure it "
        "before its first use to get %d",
        g_global_pool->num_threads(), want));
  }
  g_global_pool_threads = want;
  return Status::OK();
}

int GlobalThreadPoolThreads() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool != nullptr) return g_global_pool->num_threads();
  return g_global_pool_threads <= 0 ? ThreadPool::HardwareThreads()
                                    : g_global_pool_threads;
}

}  // namespace cpclean
