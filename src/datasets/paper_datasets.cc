#include "datasets/paper_datasets.h"

#include "common/logging.h"

namespace cpclean {

std::vector<PaperDatasetSpec> PaperDatasetSuite(int train_rows, int val_size,
                                                int test_size,
                                                uint64_t seed) {
  const int total = train_rows + val_size + test_size;
  std::vector<PaperDatasetSpec> suite;

  {
    // BabyProduct: 3042 rows, 7 features, mixed types, 11.8% missing
    // (real extractor errors in the original).
    PaperDatasetSpec spec;
    spec.name = "BabyProduct";
    spec.synthetic.name = "BabyProduct";
    spec.synthetic.num_rows = total;
    spec.synthetic.num_numeric = 4;
    spec.synthetic.num_categorical = 3;
    spec.synthetic.num_categories = 4;  // top-4 repairs cover every true category (validity assumption)
    spec.synthetic.noise_sigma = 0.7;  // hard-ish task: paper GT acc .668
    spec.synthetic.importance_decay = 0.45;
    spec.synthetic.seed = seed ^ 0xBABull;
    spec.missing_rate = 0.118;
    spec.val_size = val_size;
    spec.test_size = test_size;
    suite.push_back(spec);
  }
  {
    // Supreme: 3052 rows, 7 numeric features, nearly separable
    // (paper GT acc .968), 20% synthetic MNAR.
    PaperDatasetSpec spec;
    spec.name = "Supreme";
    spec.synthetic.name = "Supreme";
    spec.synthetic.num_rows = total;
    spec.synthetic.num_numeric = 7;
    spec.synthetic.num_categorical = 0;
    spec.synthetic.noise_sigma = 0.15;
    spec.synthetic.importance_decay = 0.6;
    spec.synthetic.seed = seed ^ 0x50Full;
    spec.missing_rate = 0.2;
    spec.val_size = val_size;
    spec.test_size = test_size;
    suite.push_back(spec);
  }
  {
    // Bank: 3192 rows, 8 features, noisy (paper GT acc .643), 20% MNAR.
    PaperDatasetSpec spec;
    spec.name = "Bank";
    spec.synthetic.name = "Bank";
    spec.synthetic.num_rows = total;
    spec.synthetic.num_numeric = 8;
    spec.synthetic.num_categorical = 0;
    spec.synthetic.noise_sigma = 1.25;
    spec.synthetic.importance_decay = 0.5;
    spec.synthetic.seed = seed ^ 0xBA17Cull;
    spec.missing_rate = 0.2;
    spec.val_size = val_size;
    spec.test_size = test_size;
    suite.push_back(spec);
  }
  {
    // Puma: 8192 rows, 8 features, nonlinear robot-arm dynamics
    // (paper GT acc .794), 20% MNAR.
    PaperDatasetSpec spec;
    spec.name = "Puma";
    spec.synthetic.name = "Puma";
    spec.synthetic.num_rows = total;
    spec.synthetic.num_numeric = 8;
    spec.synthetic.num_categorical = 0;
    spec.synthetic.noise_sigma = 0.55;
    spec.synthetic.importance_decay = 0.55;
    spec.synthetic.nonlinear = true;
    spec.synthetic.seed = seed ^ 0x9D0C5ull;
    spec.missing_rate = 0.2;
    spec.val_size = val_size;
    spec.test_size = test_size;
    suite.push_back(spec);
  }
  return suite;
}

PaperDatasetSpec PaperDatasetByName(const std::string& name, int train_rows,
                                    int val_size, int test_size,
                                    uint64_t seed) {
  for (const auto& spec :
       PaperDatasetSuite(train_rows, val_size, test_size, seed)) {
    if (spec.name == name) return spec;
  }
  CP_LOG(Fatal) << "unknown paper dataset: " << name;
  return {};
}

}  // namespace cpclean
