#ifndef CPCLEAN_DATASETS_TOY_H_
#define CPCLEAN_DATASETS_TOY_H_

#include "incomplete/incomplete_dataset.h"

namespace cpclean {

/// Tiny fixtures reproducing the paper's worked examples; used by the
/// demo executables and tests.

/// Figure 6: three tuples with two candidates each, 1-D features. With a
/// linear kernel against t = (1), the ascending similarity order is
/// x_{2,1} < x_{1,1} < x_{2,2} < x_{3,1} < x_{1,2} < x_{3,2}; the K=1
/// counting query yields 6 worlds for label 0 and 2 for label 1.
IncompleteDataset Figure6Dataset();

/// The test point used with `Figure6Dataset`.
std::vector<double> Figure6TestPoint();

/// Figure 1: the Codd-table motivating example — John (32, label 0),
/// Anna (29, label 1), Kevin (age NULL in {1, 2, 30}, label 0), with age
/// as the single feature.
IncompleteDataset Figure1Dataset();

}  // namespace cpclean

#endif  // CPCLEAN_DATASETS_TOY_H_
