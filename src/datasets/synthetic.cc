#include "datasets/synthetic.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace cpclean {

Result<Table> GenerateSynthetic(const SyntheticSpec& spec) {
  if (spec.num_rows < 1 || spec.num_numeric < 1 || spec.num_categorical < 0 ||
      spec.num_categories < 2) {
    return Status::InvalidArgument("invalid synthetic spec");
  }
  Rng rng(spec.seed);

  std::vector<Field> fields;
  for (int f = 0; f < spec.num_numeric; ++f) {
    fields.push_back({StrFormat("f%d", f), ColumnType::kNumeric});
  }
  for (int c = 0; c < spec.num_categorical; ++c) {
    fields.push_back({StrFormat("c%d", c), ColumnType::kCategorical});
  }
  fields.push_back({"label", ColumnType::kCategorical});
  Table table{Schema(std::move(fields))};

  // Per-feature weights decay geometrically: earlier features matter more.
  std::vector<double> numeric_weight(static_cast<size_t>(spec.num_numeric));
  for (int f = 0; f < spec.num_numeric; ++f) {
    numeric_weight[static_cast<size_t>(f)] = std::pow(spec.importance_decay, f);
  }
  // Latent per-category effects, one table per categorical column, also
  // decaying with the column index.
  std::vector<std::vector<double>> category_effect(
      static_cast<size_t>(spec.num_categorical));
  for (int c = 0; c < spec.num_categorical; ++c) {
    auto& effects = category_effect[static_cast<size_t>(c)];
    const double scale =
        std::pow(spec.importance_decay, spec.num_numeric + c);
    for (int g = 0; g < spec.num_categories; ++g) {
      effects.push_back(rng.NextGaussian(0.0, 1.0) * scale);
    }
  }

  for (int r = 0; r < spec.num_rows; ++r) {
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(table.num_columns()));
    double score = 0.0;
    std::vector<double> x(static_cast<size_t>(spec.num_numeric));
    for (int f = 0; f < spec.num_numeric; ++f) {
      x[static_cast<size_t>(f)] = rng.NextGaussian();
      score += numeric_weight[static_cast<size_t>(f)] * x[static_cast<size_t>(f)];
      row.push_back(Value::Numeric(x[static_cast<size_t>(f)]));
    }
    if (spec.nonlinear) {
      // Puma-style robot-arm dynamics flavor: smooth nonlinearities and an
      // interaction term dominated by the leading features.
      score += 0.8 * std::sin(2.0 * x[0]);
      if (spec.num_numeric >= 3) score += 0.6 * x[1] * x[2];
    }
    for (int c = 0; c < spec.num_categorical; ++c) {
      const int g = rng.NextInt(0, spec.num_categories - 1);
      score += category_effect[static_cast<size_t>(c)][static_cast<size_t>(g)];
      row.push_back(Value::Categorical(StrFormat("cat%d", g)));
    }
    score += rng.NextGaussian(0.0, spec.noise_sigma);
    row.push_back(Value::Categorical(score > 0.0 ? "1" : "0"));
    CP_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace cpclean
