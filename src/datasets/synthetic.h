#ifndef CPCLEAN_DATASETS_SYNTHETIC_H_
#define CPCLEAN_DATASETS_SYNTHETIC_H_

#include <string>

#include "common/result.h"
#include "data/table.h"

namespace cpclean {

/// Parameterized synthetic classification tables used in place of the
/// paper's (unredistributable) datasets — see DESIGN.md §3. Features are
/// standard-normal numeric columns plus optional categorical columns with
/// per-category latent effects; the binary label is the sign of a weighted
/// score with geometrically decaying per-feature weights (so features have
/// genuinely different importance, which the MNAR injector depends on),
/// optionally passed through a nonlinearity, plus Gaussian label noise
/// that controls the achievable accuracy.
struct SyntheticSpec {
  std::string name = "synthetic";
  int num_rows = 1000;
  int num_numeric = 6;
  int num_categorical = 1;
  int num_categories = 5;
  /// Standard deviation of the additive score noise: ~0.1 gives a nearly
  /// separable task (paper's Supreme, acc ≈ .97), ~1.5 a hard one
  /// (paper's Bank, acc ≈ .64).
  double noise_sigma = 0.5;
  /// weight of feature f is importance_decay^f.
  double importance_decay = 0.7;
  /// Adds sin / interaction terms to the score (paper's Puma analog).
  bool nonlinear = false;
  uint64_t seed = 42;
};

/// Generates a complete table: feature columns "f0".."fN" (numeric) and
/// "c0".."cM" (categorical), plus a categorical "label" column in
/// {"0", "1"}.
Result<Table> GenerateSynthetic(const SyntheticSpec& spec);

/// The name of the label column produced by `GenerateSynthetic`.
inline const char* SyntheticLabelColumn() { return "label"; }

}  // namespace cpclean

#endif  // CPCLEAN_DATASETS_SYNTHETIC_H_
