#include "datasets/toy.h"

#include "common/logging.h"

namespace cpclean {

IncompleteDataset Figure6Dataset() {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddExample({{{0.2}, {0.5}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{0.1}, {0.3}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{0.4}, {0.6}}, 0}).ok());
  return dataset;
}

std::vector<double> Figure6TestPoint() { return {1.0}; }

IncompleteDataset Figure1Dataset() {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddExample({{{32.0}}, 0}).ok());
  CP_CHECK(dataset.AddExample({{{29.0}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{1.0}, {2.0}, {30.0}}, 0}).ok());
  return dataset;
}

}  // namespace cpclean
