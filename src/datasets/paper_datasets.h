#ifndef CPCLEAN_DATASETS_PAPER_DATASETS_H_
#define CPCLEAN_DATASETS_PAPER_DATASETS_H_

#include <string>
#include <vector>

#include "datasets/synthetic.h"

namespace cpclean {

/// Configuration of one paper-dataset analog (Table 1): the synthetic
/// generator shaped after the original plus the injection / split sizes.
struct PaperDatasetSpec {
  std::string name;
  SyntheticSpec synthetic;
  double missing_rate = 0.2;
  int val_size = 100;
  int test_size = 200;
};

/// The four datasets of the paper's Table 1, scaled so `train_rows`
/// examples remain for training after the validation/test split:
///
///   BabyProduct — mixed numeric/categorical, real-errors analog, 11.8%
///   Supreme     — nearly separable (paper GT accuracy .968), 20%
///   Bank        — noisy (paper GT accuracy .643), 20%
///   Puma        — nonlinear robot-arm dynamics (paper GT .794), 20%
///
/// The paper trains on ~1-6k rows with 1k validation / 1k test; defaults
/// here are laptop-scale (see DESIGN.md §3) and can be raised.
std::vector<PaperDatasetSpec> PaperDatasetSuite(int train_rows = 300,
                                                int val_size = 100,
                                                int test_size = 200,
                                                uint64_t seed = 42);

/// Finds a spec by name ("BabyProduct", "Supreme", "Bank", "Puma").
PaperDatasetSpec PaperDatasetByName(const std::string& name,
                                    int train_rows = 300, int val_size = 100,
                                    int test_size = 200, uint64_t seed = 42);

}  // namespace cpclean

#endif  // CPCLEAN_DATASETS_PAPER_DATASETS_H_
