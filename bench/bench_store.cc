// Out-of-core storage benchmarks: what the append-only cleaning log and
// the mmap slab buy. BM_Save_FullSnapshot re-serializes and rewrites the
// whole session per save (the pre-log behavior); BM_Save_LogAppend saves
// the same one-step delta through the cleaning log — its cost must be
// independent of dataset size. BM_Rehydrate_Replay measures base + log
// rehydration, and BM_Scan_Ram / BM_ScanStream_Mmap compare a full
// similarity sweep over the candidate slab in both backing modes (the
// results are bit-identical; only residency differs).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/string_util.h"
#include "core/similarity.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"
#include "serve/session_registry.h"
#include "serve/session_store.h"

namespace {

using cpclean::BuildTaskFromSpec;
using cpclean::CleaningTask;
using cpclean::IncompleteDataset;
using cpclean::IncompleteExample;
using cpclean::JsonValue;
using cpclean::MakeKernel;
using cpclean::ParseJson;
using cpclean::ServeSession;
using cpclean::ServeSessionOptions;
using cpclean::ServeSessionOptionsFromRequest;
using cpclean::SessionStore;
using cpclean::SessionStoreOptions;
using cpclean::SimilarityKernel;
using cpclean::SimilarityScores;
using cpclean::StrFormat;

/// A fresh empty data dir for one benchmark run.
std::string FreshDataDir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("cpclean_bench_" + leaf))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SessionStoreOptions StoreOptions(const std::string& dir) {
  SessionStoreOptions options;
  options.data_dir = dir;
  options.default_cache_capacity = 0;
  return options;
}

JsonValue SpecFor(const std::string& name, int train_rows) {
  return ParseJson(
             StrFormat("{\"session\":\"%s\",\"source\":\"synthetic\","
                       "\"dataset\":\"bench\",\"train_rows\":%d,"
                       "\"val_size\":6,\"test_size\":6,\"seed\":17,"
                       "\"numeric\":6,\"categorical\":0,\"noise_sigma\":0.4,"
                       "\"missing_rate\":0.2,\"k\":3}",
                       name.c_str(), train_rows))
      .value();
}

/// Builds (once per size, untimed) a live session over `train_rows` rows.
/// Task construction dominates setup; every benchmark for one size shares
/// the instance.
std::shared_ptr<ServeSession> SessionForRows(int train_rows) {
  static std::map<int, std::shared_ptr<ServeSession>>* sessions =
      new std::map<int, std::shared_ptr<ServeSession>>();
  auto it = sessions->find(train_rows);
  if (it != sessions->end()) return it->second;
  const std::string name = StrFormat("s%d", train_rows);
  const JsonValue spec = SpecFor(name, train_rows);
  const ServeSessionOptions options =
      ServeSessionOptionsFromRequest(spec, 0).value();
  CleaningTask task = BuildTaskFromSpec(spec).value();
  std::shared_ptr<ServeSession> session =
      ServeSession::Make(name, std::move(task), options, spec).value();
  (*sessions)[train_rows] = session;
  return session;
}

/// The pre-log save: serialize the whole session and rewrite its snapshot
/// file atomically, every time. Cost scales with the dataset.
void BM_Save_FullSnapshot(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const std::string dir = FreshDataDir(StrFormat("full%d", rows));
  SessionStore store(StoreOptions(dir));
  const std::shared_ptr<ServeSession> session = SessionForRows(rows);
  int64_t bytes = 0;
  for (auto _ : state) {
    const std::string text = session->SerializeSnapshot();
    bytes = static_cast<int64_t>(text.size());
    benchmark::DoNotOptimize(
        store.WriteSnapshot(session->name(), text).ok());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Save_FullSnapshot)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Iterations(8);

/// The O(delta) save: one cleaning step (untimed) then a Save that
/// appends exactly that step's record to the log. Timed cost must not
/// grow with `rows`.
void BM_Save_LogAppend(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const std::string dir = FreshDataDir(StrFormat("delta%d", rows));
  SessionStore store(StoreOptions(dir));
  const std::shared_ptr<ServeSession> session = SessionForRows(rows);
  // Establish the durable baseline so every timed Save is a delta.
  if (!store.Save(*session).ok()) {
    state.SkipWithError("baseline save failed");
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    benchmark::DoNotOptimize(session->CleanStep(1).ok());
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.Save(*session).ok());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Save_LogAppend)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Iterations(32);

/// Rehydration of a session persisted as base snapshot + a 16-record
/// cleaning log: parse, replay, rebuild, verify.
void BM_Rehydrate_Replay(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const std::string dir = FreshDataDir(StrFormat("replay%d", rows));
  SessionStore store(StoreOptions(dir));
  const std::shared_ptr<ServeSession> session = SessionForRows(rows);
  bool ok = store.Save(*session).ok();
  for (int i = 0; ok && i < 16; ++i) {
    ok = session->CleanStep(1).ok() && store.Save(*session).ok();
  }
  if (!ok) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Load(session->name()).ok());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Rehydrate_Replay)->Arg(1000)->Iterations(8);

IncompleteDataset ScanDataset(int examples, int dim) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> uniform(-2.0, 2.0);
  IncompleteDataset dataset(2);
  for (int i = 0; i < examples; ++i) {
    IncompleteExample ex;
    ex.label = i & 1;
    for (int c = 0; c < 2; ++c) {
      std::vector<double> x(static_cast<size_t>(dim));
      for (double& v : x) v = uniform(rng);
      ex.candidates.push_back(std::move(x));
    }
    (void)dataset.AddExample(std::move(ex));
  }
  return dataset;
}

void RunScan(benchmark::State& state, const IncompleteDataset& dataset) {
  const std::unique_ptr<SimilarityKernel> kernel =
      MakeKernel(cpclean::KernelKind::kNegativeEuclidean);
  std::vector<double> t(static_cast<size_t>(dataset.dim()), 0.25);
  std::vector<double> out(static_cast<size_t>(dataset.total_candidates()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimilarityScores(dataset, t, *kernel, out.data()));
  }
  state.counters["rows"] = static_cast<double>(dataset.total_candidates());
}

void BM_Scan_Ram(benchmark::State& state) {
  const IncompleteDataset dataset =
      ScanDataset(static_cast<int>(state.range(0)), 16);
  RunScan(state, dataset);
}
BENCHMARK(BM_Scan_Ram)->Arg(2048)->Arg(16384);

void BM_ScanStream_Mmap(benchmark::State& state) {
  IncompleteDataset dataset =
      ScanDataset(static_cast<int>(state.range(0)), 16);
  const std::string dir = FreshDataDir("scan");
  // 256 KiB window: the 16384-example slab (4 MiB) streams in 16 blocks.
  if (!dataset.BackWithFile(dir, size_t{256} << 10).ok()) {
    state.SkipWithError("mmap backing failed");
    return;
  }
  RunScan(state, dataset);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ScanStream_Mmap)->Arg(2048)->Arg(16384);

}  // namespace

int main(int argc, char** argv) {
  return cpclean::benchreport::RunBenchmarksWithReport(argc, argv,
                                                      "BENCH_store.json");
}
