// Google-benchmark suite over the CP query engines (paper Figure 4):
// brute force (exponential), SS naive, SS-DC, SS-DC-MC, MM, FastQ2.
// Run with --benchmark_filter=... to slice.

#include <benchmark/benchmark.h>

#include "cleaning/cp_clean.h"
#include "common/rng.h"
#include "core/brute_force.h"
#include "core/fast_q2.h"
#include "core/mm.h"
#include "core/similarity.h"
#include "core/ss.h"
#include "core/ss1.h"
#include "core/ss_dc.h"
#include "core/ss_dc_mc.h"
#include "eval/experiment.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

IncompleteDataset MakeDataset(int n, int m, int num_labels, uint64_t seed,
                              int dim = 3) {
  Rng rng(seed);
  IncompleteDataset dataset(num_labels);
  for (int i = 0; i < n; ++i) {
    IncompleteExample ex;
    ex.label = i < num_labels ? i : rng.NextInt(0, num_labels - 1);
    const int candidates = 1 + static_cast<int>(rng.NextUint64(
                                   static_cast<uint64_t>(m)));
    for (int j = 0; j < candidates; ++j) {
      std::vector<double> c(static_cast<size_t>(dim));
      for (auto& v : c) v = rng.NextDouble(-2, 2);
      ex.candidates.push_back(std::move(c));
    }
    CP_CHECK(dataset.AddExample(std::move(ex)).ok());
  }
  return dataset;
}

std::vector<double> TestPoint(uint64_t seed) {
  Rng rng(seed ^ 0x1234);
  return {rng.NextDouble(-2, 2), rng.NextDouble(-2, 2), rng.NextDouble(-2, 2)};
}

void BM_BruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IncompleteDataset dataset = MakeDataset(n, 2, 2, 7);
  const auto t = TestPoint(7);
  NegativeEuclideanKernel kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceCount(dataset, t, kernel, 3));
  }
  state.SetComplexityN(n);
}
// Exponential: keep N tiny.
BENCHMARK(BM_BruteForce)->DenseRange(4, 14, 2)->Complexity();

template <typename Fn>
void RunPolyBench(benchmark::State& state, Fn&& fn) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  const IncompleteDataset dataset = MakeDataset(n, m, 2, 7);
  const auto t = TestPoint(7);
  NegativeEuclideanKernel kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(dataset, t, kernel, k));
  }
  state.SetComplexityN(n * m);
}

void BM_SsNaive(benchmark::State& state) {
  RunPolyBench(state, [](const auto& d, const auto& t, const auto& kern,
                         int k) {
    return SsCount<DoubleSemiring, true>(d, t, kern, k);
  });
}
BENCHMARK(BM_SsNaive)
    ->ArgsProduct({{50, 100, 200, 400}, {3}, {3}})
    ->Complexity();

void BM_SsDc(benchmark::State& state) {
  RunPolyBench(state, [](const auto& d, const auto& t, const auto& kern,
                         int k) {
    return SsDcCount<DoubleSemiring, true>(d, t, kern, k);
  });
}
BENCHMARK(BM_SsDc)
    ->ArgsProduct({{50, 100, 200, 400, 800, 1600}, {3}, {1, 3, 7}})
    ->Complexity();

void BM_SsDcMc(benchmark::State& state) {
  RunPolyBench(state, [](const auto& d, const auto& t, const auto& kern,
                         int k) {
    return SsDcMcCount<DoubleSemiring, true>(d, t, kern, k);
  });
}
BENCHMARK(BM_SsDcMc)->ArgsProduct({{100, 400, 1600}, {3}, {3}});

void BM_Mm(benchmark::State& state) {
  RunPolyBench(state,
               [](const auto& d, const auto& t, const auto& kern, int k) {
                 return MmCheck(d, t, kern, k);
               });
}
BENCHMARK(BM_Mm)
    ->ArgsProduct({{50, 100, 200, 400, 800, 1600, 3200}, {3}, {3}})
    ->Complexity();

void BM_Ss1(benchmark::State& state) {
  RunPolyBench(state,
               [](const auto& d, const auto& t, const auto& kern, int k) {
                 (void)k;
                 return Ss1Count<DoubleSemiring, true>(d, t, kern);
               });
}
BENCHMARK(BM_Ss1)->ArgsProduct({{100, 400, 1600}, {3}, {1}});

void BM_FastQ2_FullScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IncompleteDataset dataset = MakeDataset(n, 3, 2, 7);
  const auto t = TestPoint(7);
  NegativeEuclideanKernel kernel;
  FastQ2 q2(&dataset, 3, /*epsilon=*/0.0);
  q2.SetTestPoint(t, kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q2.Fractions());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FastQ2_FullScan)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_FastQ2_Truncated(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IncompleteDataset dataset = MakeDataset(n, 3, 2, 7);
  const auto t = TestPoint(7);
  NegativeEuclideanKernel kernel;
  FastQ2 q2(&dataset, 3, /*epsilon=*/1e-9);
  q2.SetTestPoint(t, kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q2.Fractions());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FastQ2_Truncated)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();

std::vector<double> TestPointDim(uint64_t seed, int dim) {
  Rng rng(seed ^ 0x4321);
  std::vector<double> t(static_cast<size_t>(dim));
  for (auto& v : t) v = rng.NextDouble(-2, 2);
  return t;
}

void BM_FastQ2_SetTestPoint(benchmark::State& state) {
  // The per-validation-point setup cost of the CPClean inner loop: kernel
  // evaluation over every candidate plus the similarity ordering.
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const IncompleteDataset dataset = MakeDataset(n, 3, 2, 7, dim);
  const std::vector<double> t = TestPointDim(7, dim);
  NegativeEuclideanKernel kernel;
  FastQ2 q2(&dataset, 3, 1e-9);
  for (auto _ : state) {
    q2.SetTestPoint(t, kernel);
    benchmark::DoNotOptimize(q2.TopKFloor());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FastQ2_SetTestPoint)
    ->ArgsProduct({{256, 1024, 4096}, {4, 16, 64}})
    ->Complexity();

void BM_SimilarityMatrix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const IncompleteDataset dataset = MakeDataset(n, 3, 2, 11, dim);
  const std::vector<double> t = TestPointDim(11, dim);
  NegativeEuclideanKernel kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityMatrix(dataset, t, kernel));
  }
}
BENCHMARK(BM_SimilarityMatrix)->ArgsProduct({{1024}, {4, 16, 64}});

PreparedExperiment MakeSelectionExperiment(int rows) {
  ExperimentConfig config;
  config.dataset.name = "bench";
  config.dataset.synthetic.num_rows = rows + 40 + 40;
  config.dataset.synthetic.num_numeric = 6;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = 17;
  config.dataset.missing_rate = 0.2;
  config.dataset.val_size = 40;
  config.dataset.test_size = 40;
  config.k = 3;
  config.seed = 17;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

void BM_CpClean_Selection(benchmark::State& state) {
  // Algorithm 3's greedy selection: a few cleaning steps of the full
  // session loop (FastSelectionScores over every validation point plus the
  // certainty refresh), the end-to-end hot path this library exists for.
  const int rows = static_cast<int>(state.range(0));
  const PreparedExperiment prepared = MakeSelectionExperiment(rows);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.max_cleaned = 3;
  options.track_test_accuracy = false;
  options.stop_when_all_certain = false;
  for (auto _ : state) {
    CleaningSession session(&prepared.task, &kernel, options);
    benchmark::DoNotOptimize(session.RunCpClean());
  }
}
BENCHMARK(BM_CpClean_Selection)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_FastQ2_PinnedSweep(benchmark::State& state) {
  // The CPClean inner loop: pinned queries across one tuple's candidates.
  const int n = static_cast<int>(state.range(0));
  IncompleteDataset dataset = MakeDataset(n, 3, 2, 7);
  const auto t = TestPoint(7);
  NegativeEuclideanKernel kernel;
  FastQ2 q2(&dataset, 3, 1e-9);
  q2.SetTestPoint(t, kernel);
  const int target = dataset.DirtyExamples().empty()
                         ? 0
                         : dataset.DirtyExamples().front();
  for (auto _ : state) {
    for (int j = 0; j < dataset.num_candidates(target); ++j) {
      benchmark::DoNotOptimize(q2.FractionsPinned(target, j));
    }
  }
}
BENCHMARK(BM_FastQ2_PinnedSweep)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace cpclean

#include "bench_report.h"

int main(int argc, char** argv) {
  return cpclean::benchreport::RunBenchmarksWithReport(
      argc, argv, "BENCH_cp_queries.json");
}
