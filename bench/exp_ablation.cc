// Ablation benches for the design decisions DESIGN.md calls out:
//
//  (a) FastQ2 early-termination epsilon — accuracy/latency trade-off of
//      truncating the descending scan;
//  (b) never-in-top-K pruning — how many (tuple, val-point) evaluations
//      the TopKFloor test eliminates in a CPClean selection step;
//  (c) selection strategy — CPClean's entropy greedy vs RandomClean on
//      cleaning effort until all validation points are certified.
//
// Scale knobs (env): CPCLEAN_TRAIN_ROWS, CPCLEAN_VAL, CPCLEAN_SEED.

#include <cmath>
#include <cstdio>

#include "cleaning/cp_clean.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/fast_q2.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;
  const int train_rows = GetEnvInt("CPCLEAN_TRAIN_ROWS", 120);
  const int val_size = GetEnvInt("CPCLEAN_VAL", 40);
  const int seed = GetEnvInt("CPCLEAN_SEED", 3);

  NegativeEuclideanKernel kernel;
  ExperimentConfig config;
  config.dataset = PaperDatasetByName("Supreme", train_rows, val_size, 120);
  config.seed = static_cast<uint64_t>(seed);
  auto prepared_or = PrepareExperiment(config, kernel);
  if (!prepared_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 prepared_or.status().ToString().c_str());
    return 1;
  }
  const PreparedExperiment& prepared = prepared_or.value();
  const CleaningTask& task = prepared.task;

  // (a) Epsilon sweep: max fraction error and latency vs the exact scan.
  std::printf("=== Ablation (a): FastQ2 early-termination epsilon ===\n");
  {
    AsciiTable table({"epsilon", "max |err| vs exact", "us/query"});
    FastQ2 exact(&task.incomplete, 3, 0.0);
    for (double eps : {0.0, 1e-12, 1e-9, 1e-6, 1e-3}) {
      FastQ2 q2(&task.incomplete, 3, eps);
      double max_err = 0.0;
      Timer timer;
      int queries = 0;
      for (size_t v = 0; v < task.val_x.size(); ++v) {
        exact.SetTestPoint(task.val_x[v], kernel);
        q2.SetTestPoint(task.val_x[v], kernel);
        const auto truth = exact.Fractions();
        const auto approx = q2.Fractions();
        ++queries;
        for (size_t y = 0; y < truth.size(); ++y) {
          max_err = std::max(max_err, std::abs(truth[y] - approx[y]));
        }
      }
      // Re-time just the approximate queries.
      timer.Restart();
      for (size_t v = 0; v < task.val_x.size(); ++v) {
        q2.SetTestPoint(task.val_x[v], kernel);
        const auto frac = q2.Fractions();
        (void)frac;
      }
      table.AddRow({StrFormat("%.0e", eps), StrFormat("%.2e", max_err),
                    FormatDouble(timer.ElapsedMicros() / queries, 1)});
    }
    table.Print();
  }

  // (b) Pruning rate of the never-in-top-K test.
  std::printf("\n=== Ablation (b): TopKFloor pruning rate ===\n");
  {
    FastQ2 q2(&task.incomplete, 3, 1e-9);
    const std::vector<int> dirty = task.DirtyRows();
    long long pruned = 0, total = 0;
    for (size_t v = 0; v < task.val_x.size(); ++v) {
      q2.SetTestPoint(task.val_x[v], kernel);
      const double floor = q2.TopKFloor();
      for (int i : dirty) {
        ++total;
        if (q2.MaxSimilarity(i) < floor) ++pruned;
      }
    }
    std::printf("pruned %lld of %lld (tuple, val-point) evaluations "
                "(%.1f%%) in the first selection step\n",
                pruned, total, 100.0 * pruned / std::max(1LL, total));
  }

  // (c) Selection strategies: cleaning effort to certify all val points.
  std::printf("\n=== Ablation (c): selection strategy ===\n");
  {
    AsciiTable table({"strategy", "examples cleaned", "final test acc",
                      "seconds"});
    CpCleanOptions options;
    options.k = config.k;
    CleaningSession session(&task, &kernel, options);
    {
      Timer timer;
      const CleaningRunResult run = session.RunCpClean();
      table.AddRow({"CPClean (entropy greedy)",
                    StrFormat("%d/%d", run.examples_cleaned,
                              prepared.dirty_rows),
                    FormatDouble(run.final_test_accuracy, 3),
                    FormatDouble(timer.ElapsedSeconds(), 1)});
    }
    for (int r = 0; r < 3; ++r) {
      Rng rng(static_cast<uint64_t>(seed + 100 + r));
      Timer timer;
      const CleaningRunResult run = session.RunRandomClean(&rng);
      table.AddRow({StrFormat("RandomClean (seed %d)", seed + 100 + r),
                    StrFormat("%d/%d", run.examples_cleaned,
                              prepared.dirty_rows),
                    FormatDouble(run.final_test_accuracy, 3),
                    FormatDouble(timer.ElapsedSeconds(), 1)});
    }
    table.Print();
  }
  return 0;
}
