// Micro-benchmarks of the substrates: kernels, top-K selection, support
// trees, BigUint arithmetic, CSV parsing.

#include <benchmark/benchmark.h>

#include "common/big_uint.h"
#include "common/rng.h"
#include "core/support_tree.h"
#include "data/csv.h"
#include "knn/kernel.h"
#include "knn/kernel_simd.h"
#include "knn/top_k.h"

namespace cpclean {
namespace {

void BM_KernelNegEuclidean(benchmark::State& state) {
  Rng rng(1);
  const int d = static_cast<int>(state.range(0));
  std::vector<double> a(static_cast<size_t>(d)), b(static_cast<size_t>(d));
  for (auto& v : a) v = rng.NextDouble();
  for (auto& v : b) v = rng.NextDouble();
  NegativeEuclideanKernel kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Similarity(a, b));
  }
}
BENCHMARK(BM_KernelNegEuclidean)->Arg(8)->Arg(64)->Arg(512);

void BM_KernelRbf(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> a(64), b(64);
  for (auto& v : a) v = rng.NextDouble();
  for (auto& v : b) v = rng.NextDouble();
  RbfKernel kernel(0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Similarity(a, b));
  }
}
BENCHMARK(BM_KernelRbf);

// One batched neg-Euclidean scan per dispatch level, pinned via
// TableForLevel (not the env override), so a single run records the
// per-ISA trajectory side by side in BENCH_micro.json. Levels the host or
// binary lacks are skipped loudly. Outputs are bit-identical across
// levels by contract — only the ns_per_op may differ.
void BM_SimilarityBatch_Dispatch(benchmark::State& state) {
  const auto level = static_cast<SimdLevel>(state.range(0));
  const int n = 4096;
  const int dim = static_cast<int>(state.range(1));
  const simd::KernelBatchTable* table = simd::TableForLevel(level);
  if (table == nullptr) {
    state.SkipWithError("dispatch level unavailable on this host/binary");
    return;
  }
  Rng rng(6);
  std::vector<double> rows(static_cast<size_t>(n) * dim);
  std::vector<double> t(static_cast<size_t>(dim));
  for (auto& v : rows) v = rng.NextDouble(-2, 2);
  for (auto& v : t) v = rng.NextDouble(-2, 2);
  std::vector<double> out(static_cast<size_t>(n));
  for (auto _ : state) {
    table->neg_euclidean(rows.data(), n, dim, t.data(), out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(SimdLevelName(level));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimilarityBatch_Dispatch)
    ->ArgsProduct({{0, 1, 2}, {8, 64, 512}});

void BM_SelectTopK(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::vector<ScoredCandidate> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({rng.NextDouble(), i, 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTopK(items, k));
  }
}
BENCHMARK(BM_SelectTopK)->ArgsProduct({{1000, 10000}, {1, 3, 31}});

void BM_SupportTreeUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  SupportTree<DoubleSemiring> tree(n, k);
  for (int i = 0; i < n; ++i) tree.SetLeaf(i, 0.4, 0.6);
  Rng rng(3);
  for (auto _ : state) {
    const int pos = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n)));
    tree.SetLeaf(pos, 0.3, 0.7);
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_SupportTreeUpdate)->ArgsProduct({{256, 4096}, {1, 3, 7}});

void BM_SupportTreeProductExcept(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SupportTree<DoubleSemiring> tree(n, 3);
  for (int i = 0; i < n; ++i) tree.SetLeaf(i, 0.4, 0.6);
  Rng rng(4);
  for (auto _ : state) {
    const int pos = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n)));
    benchmark::DoNotOptimize(tree.ProductExcept(pos));
  }
}
BENCHMARK(BM_SupportTreeProductExcept)->Arg(256)->Arg(4096);

void BM_BigUintMul(benchmark::State& state) {
  const BigUint a = BigUint(7).Pow(static_cast<uint64_t>(state.range(0)));
  const BigUint b = BigUint(11).Pow(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigUintMul)->Arg(10)->Arg(100)->Arg(1000);

void BM_CsvParse(benchmark::State& state) {
  std::string csv = "a,b,c,label\n";
  Rng rng(5);
  for (int r = 0; r < 1000; ++r) {
    csv += std::to_string(rng.NextDouble()) + "," +
           std::to_string(rng.NextDouble()) + ",cat" +
           std::to_string(rng.NextInt(0, 4)) + "," +
           std::to_string(rng.NextInt(0, 1)) + "\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadCsvString(csv));
  }
}
BENCHMARK(BM_CsvParse);

}  // namespace
}  // namespace cpclean

#include "bench_report.h"

int main(int argc, char** argv) {
  return cpclean::benchreport::RunBenchmarksWithReport(
      argc, argv, "BENCH_micro.json");
}
