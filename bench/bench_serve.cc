// Serving-layer throughput / latency: every benchmark drives the real
// request router (JSON parse → dispatch → engine → JSON response), i.e.
// exactly what a connection thread executes per line. Each op reports
// wall-clock ns/op plus hand-collected latency percentiles and throughput
// as user counters (p50_ns, p99_ns, qps), which bench_report forwards into
// the committed BENCH_serve.json.

#include <benchmark/benchmark.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/string_util.h"
#include "serve/server.h"

namespace {

using cpclean::Server;
using cpclean::StrFormat;

constexpr int kTrain = 120;
constexpr int kVal = 24;

std::string CreateRequest(const std::string& name, int cache_capacity) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"train_rows\":%d,\"val_size\":%d,\"test_size\":24,"
      "\"seed\":11,\"numeric\":6,\"categorical\":0,\"noise_sigma\":0.4,"
      "\"missing_rate\":0.2,\"k\":3,\"cache_capacity\":%d}",
      name.c_str(), kTrain, kVal, cache_capacity);
}

/// One process-wide server: "hot" caches results, "cold" never does.
Server* SharedServer() {
  static Server* server = [] {
    Server* s = new Server();
    s->HandleLine(CreateRequest("hot", 4096));
    s->HandleLine(CreateRequest("cold", 0));
    return s;
  }();
  return server;
}

/// Issues `request` once per iteration, timing each round-trip, and
/// reports p50/p99/qps. `next` (optional) produces a fresh request per
/// iteration for cache-defeating sweeps.
template <typename NextFn>
void RunServeLoop(benchmark::State& state, NextFn next) {
  Server* server = SharedServer();
  std::vector<double> latencies_ns;
  for (auto _ : state) {
    const std::string request = next();
    const auto start = std::chrono::steady_clock::now();
    const std::string response = server->HandleLine(request);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(response.data());
    latencies_ns.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  if (latencies_ns.empty()) return;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto percentile = [&](double q) {
    const size_t idx = std::min(
        latencies_ns.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_ns.size())));
    return latencies_ns[idx];
  };
  double total = 0.0;
  for (const double ns : latencies_ns) total += ns;
  state.counters["p50_ns"] = percentile(0.5);
  state.counters["p99_ns"] = percentile(0.99);
  state.counters["qps"] =
      1e9 * static_cast<double>(latencies_ns.size()) / total;
}

void BM_Serve_Ping(benchmark::State& state) {
  RunServeLoop(state, [] { return std::string("{\"op\":\"ping\"}"); });
}
BENCHMARK(BM_Serve_Ping);

void BM_Serve_Predict(benchmark::State& state) {
  int i = 0;
  RunServeLoop(state, [&i] {
    return StrFormat(
        "{\"op\":\"predict\",\"session\":\"cold\",\"val_indices\":[%d]}",
        i++ % kVal);
  });
}
BENCHMARK(BM_Serve_Predict);

void BM_Serve_Q2_CacheMiss(benchmark::State& state) {
  int i = 0;
  RunServeLoop(state, [&i] {
    return StrFormat(
        "{\"op\":\"q2\",\"session\":\"cold\",\"val_indices\":[%d]}",
        i++ % kVal);
  });
}
BENCHMARK(BM_Serve_Q2_CacheMiss);

void BM_Serve_Q2_CacheHit(benchmark::State& state) {
  // Warm the entry so every timed iteration hits.
  SharedServer()->HandleLine(
      "{\"op\":\"q2\",\"session\":\"hot\",\"val_indices\":[0]}");
  RunServeLoop(state, [] {
    return std::string(
        "{\"op\":\"q2\",\"session\":\"hot\",\"val_indices\":[0]}");
  });
}
BENCHMARK(BM_Serve_Q2_CacheHit);

void BM_Serve_Certify(benchmark::State& state) {
  int i = 0;
  RunServeLoop(state, [&i] {
    return StrFormat(
        "{\"op\":\"certify\",\"session\":\"cold\",\"val_indices\":[%d],"
        "\"max_cleaned\":4}",
        i++ % kVal);
  });
}
BENCHMARK(BM_Serve_Certify);

/// Shared-read concurrency within ONE session: `readers` threads issue
/// q2 queries against the same session at once. The "cold" session's
/// cache capacity is 0, so every query exercises the engine path — the
/// per-thread index offsets merely spread the work and DO wrap/collide
/// across threads for readers >= 4 (kVal is 24); keep pointing this at a
/// cache-disabled session. Wall-clock is manual-timed around the whole
/// fan-out; qps reports aggregate throughput. readers=1 is the serialized
/// baseline the shared_mutex refactor is measured against.
void BM_Serve_Q2_ConcurrentReaders(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  constexpr int kOpsPerReader = 8;
  Server* server = SharedServer();
  int64_t total_ops = 0;
  double total_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(readers));
    for (int reader = 0; reader < readers; ++reader) {
      threads.emplace_back([server, reader] {
        for (int op = 0; op < kOpsPerReader; ++op) {
          const std::string response = server->HandleLine(StrFormat(
              "{\"op\":\"q2\",\"session\":\"cold\",\"val_indices\":[%d]}",
              (reader * kOpsPerReader + op) % kVal));
          benchmark::DoNotOptimize(response.data());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    state.SetIterationTime(seconds);
    total_seconds += seconds;
    total_ops += readers * kOpsPerReader;
  }
  if (total_seconds > 0.0) {
    state.counters["qps"] =
        static_cast<double>(total_ops) / total_seconds;
  }
  state.counters["readers"] = static_cast<double>(readers);
}
BENCHMARK(BM_Serve_Q2_ConcurrentReaders)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime();

/// Ping round-trips over the real epoll TCP transport while ~1000 OTHER
/// connections sit idle on the same poller. Measures what the event-loop
/// transport is for: per-request latency must not scale with resident
/// connection count, because idle connections cost one epoll registration,
/// not one thread. Reports the usual p50/p99/qps plus how many idle
/// connections were actually parked (fd-limit permitting).
void BM_Serve_Ping_IdleConnections(benchmark::State& state) {
  // Ask for headroom: 1000 idle fds + the server's accepted twins + slack.
  rlimit limit;
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 && limit.rlim_cur < 2300) {
    limit.rlim_cur = std::min<rlim_t>(2300, limit.rlim_max);
    setrlimit(RLIMIT_NOFILE, &limit);
    getrlimit(RLIMIT_NOFILE, &limit);
  }
  const int idle_target = static_cast<int>(
      std::min<rlim_t>(1000, (limit.rlim_cur - 128) / 2));

  Server server;
  std::thread serving([&server] { (void)server.ServeTcp(0); });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int port = server.port();
  const auto connect_one = [port] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  std::vector<int> idle;
  idle.reserve(static_cast<size_t>(idle_target));
  for (int i = 0; i < idle_target; ++i) {
    const int fd = connect_one();
    if (fd < 0) break;
    idle.push_back(fd);
  }
  const int probe = connect_one();

  const std::string request = "{\"op\":\"ping\"}\n";
  std::vector<double> latencies_ns;
  char buffer[512];
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    (void)::send(probe, request.data(), request.size(), MSG_NOSIGNAL);
    std::string response;
    while (response.find('\n') == std::string::npos) {
      const ssize_t n = ::recv(probe, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        state.SkipWithError("transport closed mid-benchmark");
        break;
      }
      response.append(buffer, static_cast<size_t>(n));
    }
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(response.data());
    latencies_ns.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
    if (response.find('\n') == std::string::npos) break;
  }

  ::close(probe);
  for (const int fd : idle) ::close(fd);
  server.Stop();
  serving.join();

  if (!latencies_ns.empty()) {
    std::sort(latencies_ns.begin(), latencies_ns.end());
    double total = 0.0;
    for (const double ns : latencies_ns) total += ns;
    state.counters["p50_ns"] = latencies_ns[latencies_ns.size() / 2];
    state.counters["p99_ns"] =
        latencies_ns[std::min(latencies_ns.size() - 1,
                              latencies_ns.size() * 99 / 100)];
    state.counters["qps"] =
        1e9 * static_cast<double>(latencies_ns.size()) / total;
  }
  state.counters["idle_connections"] = static_cast<double>(idle.size());
}
BENCHMARK(BM_Serve_Ping_IdleConnections);

void BM_Serve_CleanStep(benchmark::State& state) {
  // Cleaning consumes the session; replenish with a fresh one (untimed)
  // whenever the dirty list runs dry.
  Server* server = SharedServer();
  int generation = 0;
  std::string session = StrFormat("step%d", generation);
  server->HandleLine(CreateRequest(session, 0));
  std::vector<double> latencies_ns;
  const auto step_request = [&session] {
    return StrFormat("{\"op\":\"clean_step\",\"session\":\"%s\"}",
                     session.c_str());
  };
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::string response = server->HandleLine(step_request());
    auto stop = std::chrono::steady_clock::now();
    if (response.find("\"cleaned\":[]") != std::string::npos) {
      state.PauseTiming();
      server->HandleLine(StrFormat(
          "{\"op\":\"drop_session\",\"session\":\"%s\"}", session.c_str()));
      session = StrFormat("step%d", ++generation);
      server->HandleLine(CreateRequest(session, 0));
      state.ResumeTiming();
      start = std::chrono::steady_clock::now();
      response = server->HandleLine(step_request());
      stop = std::chrono::steady_clock::now();
    }
    benchmark::DoNotOptimize(response.data());
    latencies_ns.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  std::sort(latencies_ns.begin(), latencies_ns.end());
  if (!latencies_ns.empty()) {
    state.counters["p50_ns"] = latencies_ns[latencies_ns.size() / 2];
    state.counters["p99_ns"] =
        latencies_ns[std::min(latencies_ns.size() - 1,
                              latencies_ns.size() * 99 / 100)];
  }
  server->HandleLine(StrFormat(
      "{\"op\":\"drop_session\",\"session\":\"%s\"}", session.c_str()));
}
BENCHMARK(BM_Serve_CleanStep);

}  // namespace

int main(int argc, char** argv) {
  return cpclean::benchreport::RunBenchmarksWithReport(argc, argv,
                                                      "BENCH_serve.json");
}
