// Regenerates paper Figure 9: CPClean vs RandomClean cleaning curves on
// each dataset analog — percentage of examples cleaned vs (a) percentage
// of validation examples CP'ed (the paper's red series) and (b) percentage
// of the test-accuracy gap closed (blue series).
//
// Scale knobs (env): CPCLEAN_TRAIN_ROWS, CPCLEAN_VAL, CPCLEAN_TEST,
// CPCLEAN_SEED, CPCLEAN_RANDOM_REPEATS.

#include <cstdio>

#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "knn/kernel.h"

namespace {

using namespace cpclean;

void PrintCurve(const CleaningCurves& curves) {
  const int total = curves.total_dirty;
  std::printf("--- %s (GT acc %.3f, Default acc %.3f, %d dirty rows) ---\n",
              curves.dataset.c_str(), curves.ground_truth_accuracy,
              curves.default_accuracy, total);
  AsciiTable table({"cleaned", "CPC: val CP'ed", "CPC: gap closed",
                    "Rand: val CP'ed", "Rand: gap closed"});
  const size_t len = std::min(curves.cp_clean.steps.size(),
                              curves.random_clean_mean.size());
  // Print ~12 evenly spaced points of the trajectory.
  const size_t stride = std::max<size_t>(1, len / 12);
  std::vector<size_t> points;
  for (size_t s = 0; s < len; s += stride) points.push_back(s);
  if (len > 0 && points.back() != len - 1) points.push_back(len - 1);
  for (size_t s : points) {
    const auto& cp = curves.cp_clean.steps[s];
    const auto& rnd = curves.random_clean_mean[s];
    table.AddRow(
        {StrFormat("%3d (%s)", cp.step,
                   FormatPercent(total > 0 ? 1.0 * cp.step / total : 0)
                       .c_str()),
         FormatPercent(cp.frac_val_certain),
         FormatPercent(GapClosed(cp.test_accuracy, curves.default_accuracy,
                                 curves.ground_truth_accuracy)),
         FormatPercent(rnd.frac_val_certain),
         FormatPercent(GapClosed(rnd.test_accuracy, curves.default_accuracy,
                                 curves.ground_truth_accuracy))});
  }
  table.Print();
  // Convergence summary: where CPClean certified all validation points.
  int cp_converged = -1;
  for (const auto& step : curves.cp_clean.steps) {
    if (step.frac_val_certain >= 1.0) {
      cp_converged = step.step;
      break;
    }
  }
  int rnd_converged = -1;
  for (const auto& step : curves.random_clean_mean) {
    if (step.frac_val_certain >= 1.0) {
      rnd_converged = step.step;
      break;
    }
  }
  std::printf("all-val-CP'ed after: CPClean %d, RandomClean(mean) %s of %d "
              "dirty rows\n\n",
              cp_converged,
              rnd_converged < 0 ? ">trace" : StrFormat("%d", rnd_converged).c_str(),
              total);
}

}  // namespace

int main() {
  using namespace cpclean;
  const int train_rows = GetEnvInt("CPCLEAN_TRAIN_ROWS", 120);
  const int val_size = GetEnvInt("CPCLEAN_VAL", 40);
  const int test_size = GetEnvInt("CPCLEAN_TEST", 240);
  const int seed = GetEnvInt("CPCLEAN_SEED", 3);
  const int repeats = GetEnvInt("CPCLEAN_RANDOM_REPEATS", 2);

  std::printf("=== Figure 9: CPClean vs RandomClean cleaning curves ===\n");
  std::printf("(train=%d val=%d test=%d seed=%d random-repeats=%d)\n\n",
              train_rows, val_size, test_size, seed, repeats);

  NegativeEuclideanKernel kernel;
  Timer timer;
  for (const PaperDatasetSpec& spec :
       PaperDatasetSuite(train_rows, val_size, test_size)) {
    ExperimentConfig config;
    config.dataset = spec;
    config.seed = static_cast<uint64_t>(seed);
    auto curves_or = RunCleaningCurves(config, kernel, repeats);
    if (!curves_or.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                   curves_or.status().ToString().c_str());
      return 1;
    }
    PrintCurve(curves_or.value());
    std::printf("[%s done at %.1fs]\n\n", spec.name.c_str(),
                timer.ElapsedSeconds());
  }
  std::printf("paper shape: the CPClean curves dominate RandomClean on both "
              "series and reach 100%% val-CP'ed far earlier.\n");
  return 0;
}
