// Regenerates paper Figure 10: the effect of the validation-set size on
// (a) the test-accuracy gap closed by CPClean and (b) the fraction of
// training examples it cleans before all validation points are CP'ed.
//
// Paper shape: both series rise with |Dval| and then flatten — a small
// validation set is easy to certify (little cleaning) but generalizes
// poorly; past a point, growing it further changes nothing.
//
// Scale knobs (env): CPCLEAN_TRAIN_ROWS, CPCLEAN_TEST, CPCLEAN_SEED,
// CPCLEAN_VAL_SWEEP_MAX.

#include <cstdio>

#include "cleaning/cp_clean.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;
  const int train_rows = GetEnvInt("CPCLEAN_TRAIN_ROWS", 120);
  const int test_size = GetEnvInt("CPCLEAN_TEST", 240);
  const int seed = GetEnvInt("CPCLEAN_SEED", 3);
  const int val_max = GetEnvInt("CPCLEAN_VAL_SWEEP_MAX", 96);

  std::vector<int> val_sizes;
  for (int v = 12; v <= val_max; v *= 2) val_sizes.push_back(v);

  std::printf("=== Figure 10: varying the validation-set size ===\n");
  std::printf("(train=%d test=%d seed=%d; datasets: Supreme and Bank "
              "analogs)\n\n",
              train_rows, test_size, seed);

  NegativeEuclideanKernel kernel;
  Timer timer;
  for (const char* name : {"Supreme", "Bank"}) {
    AsciiTable table({"|Dval|", "gap closed", "examples cleaned",
                      "all val CP'ed"});
    for (int val_size : val_sizes) {
      ExperimentConfig config;
      config.dataset =
          PaperDatasetByName(name, train_rows, val_size, test_size);
      config.seed = static_cast<uint64_t>(seed);
      auto prepared_or = PrepareExperiment(config, kernel);
      if (!prepared_or.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name,
                     prepared_or.status().ToString().c_str());
        return 1;
      }
      const PreparedExperiment& prepared = prepared_or.value();
      CpCleanOptions options;
      options.k = config.k;
      CleaningSession session(&prepared.task, &kernel, options);
      const CleaningRunResult run = session.RunCpClean();
      const double gap =
          GapClosed(run.final_test_accuracy, prepared.default_test_accuracy,
                    prepared.ground_truth_test_accuracy);
      const double cleaned_frac =
          static_cast<double>(run.examples_cleaned) /
          std::max(1, prepared.task.dirty_train.num_rows());
      table.AddRow({StrFormat("%d", val_size), FormatPercent(gap),
                    FormatPercent(cleaned_frac),
                    run.all_val_certain ? "yes" : "no"});
    }
    std::printf("--- %s ---\n", name);
    table.Print();
    std::printf("[done at %.1fs]\n\n", timer.ElapsedSeconds());
  }
  std::printf("paper shape: both columns increase with |Dval| and then "
              "plateau (1K is enough at paper scale).\n");
  return 0;
}
