#ifndef CPCLEAN_BENCH_BENCH_REPORT_H_
#define CPCLEAN_BENCH_BENCH_REPORT_H_

namespace cpclean {
namespace benchreport {

/// Drop-in replacement for BENCHMARK_MAIN()'s body that, in addition to the
/// normal console output, writes a compact machine-readable report to
/// `report_path` (conventionally `BENCH_<suite>.json`, committed per PR so
/// the perf trajectory is diffable across the repo's history):
///
///   {"simd_level": "scalar|avx2|avx512",
///    "benchmarks": [
///     {"name": "...", "iterations": N, "ns_per_op": R, "cpu_ns_per_op": C,
///      "threads": T},
///     ...]}
///
/// `simd_level` is the resolved similarity-kernel dispatch level the run
/// used (hardware detection ∧ `CPCLEAN_SIMD` override), so committed
/// reports record the per-ISA trajectory.
///
/// User counters set via `state.counters` (e.g. bench_serve's latency
/// percentiles) appear as additional per-row fields.
///
/// ns_per_op is wall time per iteration; aggregate/complexity rows and
/// errored runs are omitted. Returns the process exit code. Pass
/// `--bench_report=<path>` on the command line to redirect the report.
int RunBenchmarksWithReport(int argc, char** argv, const char* report_path);

}  // namespace benchreport
}  // namespace cpclean

#endif  // CPCLEAN_BENCH_BENCH_REPORT_H_
