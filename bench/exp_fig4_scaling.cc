// Validates paper Figure 4's complexity summary empirically: measures the
// wall-clock of each engine while doubling N (and sweeping K), and prints
// the observed growth ratios next to the predicted ones.
//
//   K=1,|Y|=2  SS1    O(N M log(N M))      -> time roughly doubles with N
//   K,  |Y|=2  MM     O(N M)               -> doubles with N, flat in K
//   K,  |Y|    SS-DC  O(N M (log NM + K^2 log N)) -> doubles with N,
//                                             grows ~K^2
//   brute force       O(M^N)               -> explodes

#include <cstdio>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/brute_force.h"
#include "core/mm.h"
#include "core/ss1.h"
#include "core/ss_dc.h"
#include "eval/reporting.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace {

using namespace cpclean;

IncompleteDataset MakeDataset(int n, int m, uint64_t seed) {
  Rng rng(seed);
  IncompleteDataset dataset(2);
  for (int i = 0; i < n; ++i) {
    IncompleteExample ex;
    ex.label = i % 2;
    const int candidates = 1 + static_cast<int>(rng.NextUint64(
                                   static_cast<uint64_t>(m)));
    for (int j = 0; j < candidates; ++j) {
      ex.candidates.push_back(
          {rng.NextDouble(-2, 2), rng.NextDouble(-2, 2)});
    }
    CP_CHECK(dataset.AddExample(std::move(ex)).ok());
  }
  return dataset;
}

template <typename Fn>
double MeasureMs(Fn&& fn, int repeats) {
  Timer timer;
  for (int r = 0; r < repeats; ++r) fn();
  return timer.ElapsedMillis() / repeats;
}

}  // namespace

int main() {
  using namespace cpclean;
  NegativeEuclideanKernel kernel;
  const std::vector<double> t = {0.1, -0.2};

  std::printf("=== Figure 4 check: measured engine scaling ===\n\n");

  // Brute force: exponential in N.
  {
    AsciiTable table({"engine", "N", "M<=", "worlds", "ms/query"});
    for (int n : {8, 10, 12, 14}) {
      const IncompleteDataset d = MakeDataset(n, 2, 5);
      const double ms = MeasureMs(
          [&] { BruteForceCount(d, t, kernel, 3); }, 3);
      table.AddRow({"BruteForce", StrFormat("%d", n), "2",
                    d.NumPossibleWorlds().ToString(),
                    FormatDouble(ms, 3)});
    }
    table.Print();
    std::printf("  -> time scales with the world count (exponential)\n\n");
  }

  // Polynomial engines: doubling N.
  {
    AsciiTable table({"engine", "K", "N", "ms/query", "ratio vs N/2"});
    for (int k : {1, 3, 7}) {
      double prev_ss = -1, prev_mm = -1;
      for (int n : {250, 500, 1000, 2000}) {
        const IncompleteDataset d = MakeDataset(n, 3, 5);
        const int reps = n <= 500 ? 10 : 4;
        const double ss_ms = MeasureMs(
            [&] { SsDcCount<DoubleSemiring, true>(d, t, kernel, k); }, reps);
        const double mm_ms =
            MeasureMs([&] { MmCheck(d, t, kernel, k); }, reps);
        table.AddRow({"SS-DC", StrFormat("%d", k), StrFormat("%d", n),
                      FormatDouble(ss_ms, 3),
                      prev_ss < 0 ? "-" : FormatDouble(ss_ms / prev_ss, 2)});
        table.AddRow({"MM", StrFormat("%d", k), StrFormat("%d", n),
                      FormatDouble(mm_ms, 3),
                      prev_mm < 0 ? "-" : FormatDouble(mm_ms / prev_mm, 2)});
        prev_ss = ss_ms;
        prev_mm = mm_ms;
      }
    }
    table.Print();
    std::printf("  -> SS-DC ratios ~2 (near-linear, K^2 log N term grows "
                "mildly); MM ratios ~2 with a much smaller constant\n\n");
  }

  // K=1 fast path.
  {
    AsciiTable table({"engine", "N", "ms/query", "ratio vs N/2"});
    double prev = -1;
    for (int n : {250, 500, 1000, 2000, 4000}) {
      const IncompleteDataset d = MakeDataset(n, 3, 5);
      const double ms = MeasureMs(
          [&] { Ss1Count<DoubleSemiring, true>(d, t, kernel); }, 6);
      table.AddRow({"SS1 (K=1)", StrFormat("%d", n), FormatDouble(ms, 3),
                    prev < 0 ? "-" : FormatDouble(ms / prev, 2)});
      prev = ms;
    }
    table.Print();
    std::printf("  -> O(N M log N M): ratios slightly above 2\n");
  }
  return 0;
}
