// Regenerates paper Table 1: dataset characteristics (error type,
// #examples, #features, missing rate) for the four dataset analogs, plus
// the measured properties of the instantiated experiment tables.
//
// Scale knobs (env): CPCLEAN_TRAIN_ROWS, CPCLEAN_VAL, CPCLEAN_TEST.

#include <cstdio>

#include "cleaning/missing_injector.h"
#include "common/string_util.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;
  const int train_rows = GetEnvInt("CPCLEAN_TRAIN_ROWS", 150);
  const int val_size = GetEnvInt("CPCLEAN_VAL", 60);
  const int test_size = GetEnvInt("CPCLEAN_TEST", 300);

  std::printf("=== Table 1: dataset characteristics ===\n");
  std::printf("(paper: BabyProduct real 3042x7 11.8%% | Supreme synth 3052x7 "
              "20%% | Bank synth 3192x8 20%% | Puma synth 8192x8 20%%;\n"
              " analogs here are scaled synthetic tables — see DESIGN.md "
              "section 3)\n\n");

  AsciiTable table({"Dataset", "Error type", "#Examples", "#Features",
                    "Target missing", "Injected missing", "Dirty rows"});
  NegativeEuclideanKernel kernel;
  for (const PaperDatasetSpec& spec :
       PaperDatasetSuite(train_rows, val_size, test_size)) {
    ExperimentConfig config;
    config.dataset = spec;
    config.seed = 1;
    auto prepared_or = PrepareExperiment(config, kernel);
    if (!prepared_or.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                   prepared_or.status().ToString().c_str());
      return 1;
    }
    const PreparedExperiment& prepared = prepared_or.value();
    table.AddRow({spec.name,
                  spec.name == "BabyProduct" ? "real-analog" : "synthetic",
                  StrFormat("%d", spec.synthetic.num_rows),
                  StrFormat("%d", spec.synthetic.num_numeric +
                                      spec.synthetic.num_categorical),
                  FormatPercent(spec.missing_rate, 1),
                  FormatPercent(prepared.observed_missing_rate, 1),
                  StrFormat("%d/%d", prepared.dirty_rows,
                            prepared.task.dirty_train.num_rows())});
  }
  table.Print();
  return 0;
}
