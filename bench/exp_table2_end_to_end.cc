// Regenerates paper Table 2: end-to-end comparison of cleaning methods on
// the four dataset analogs.
//
//   columns: GroundTruth test accuracy | Default Cleaning test accuracy |
//            gap closed by BoostClean / HoloClean / CPClean |
//            examples CPClean cleaned | gap closed at a 20% budget
//
// Paper shape to reproduce: BoostClean closes a small positive fraction,
// HoloClean is erratic (can be negative), CPClean closes ~100% of the gap
// while cleaning only a fraction of the training set.
//
// Scale knobs (env): CPCLEAN_TRAIN_ROWS, CPCLEAN_VAL, CPCLEAN_TEST,
// CPCLEAN_SEED.

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "knn/kernel.h"

int main() {
  using namespace cpclean;
  const int train_rows = GetEnvInt("CPCLEAN_TRAIN_ROWS", 150);
  const int val_size = GetEnvInt("CPCLEAN_VAL", 60);
  const int test_size = GetEnvInt("CPCLEAN_TEST", 300);
  const int seed = GetEnvInt("CPCLEAN_SEED", 3);
  const char* only = std::getenv("CPCLEAN_ONLY");  // optional dataset filter

  std::printf("=== Table 2: end-to-end performance comparison ===\n");
  std::printf("(K=3 KNN, Euclidean; train=%d val=%d test=%d seed=%d)\n\n",
              train_rows, val_size, test_size, seed);

  AsciiTable table({"Dataset", "GT acc", "Default acc", "Boost gap",
                    "Holo gap", "CPClean gap", "CPC cleaned",
                    "CPC gap@20%"});
  NegativeEuclideanKernel kernel;
  Timer timer;
  for (const PaperDatasetSpec& spec :
       PaperDatasetSuite(train_rows, val_size, test_size)) {
    if (only != nullptr && spec.name != only) continue;
    ExperimentConfig config;
    config.dataset = spec;
    config.seed = static_cast<uint64_t>(seed);
    auto row_or = RunTable2Row(config, kernel);
    if (!row_or.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                   row_or.status().ToString().c_str());
      return 1;
    }
    const Table2Row& row = row_or.value();
    table.AddRow({row.dataset, FormatDouble(row.ground_truth_accuracy, 3),
                  FormatDouble(row.default_accuracy, 3),
                  FormatPercent(row.boost_clean_gap),
                  FormatPercent(row.holo_clean_gap),
                  FormatPercent(row.cp_clean_gap),
                  FormatPercent(row.cp_clean_examples_cleaned),
                  FormatPercent(row.cp_clean_gap_at_20pct)});
    std::printf("[%s done at %.1fs]\n", row.dataset.c_str(),
                timer.ElapsedSeconds());
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper (full scale): BabyProduct GT .668 Def .589 Boost 1%% Holo 1%% "
      "CPC 99%% cleaned 64%% | Supreme GT .968 Def .877 Boost 12%% Holo -4%% "
      "CPC 100%% cleaned 15%% |\n Bank GT .643 Def .558 Boost 20%% Holo 11%% "
      "CPC 102%% cleaned 93%% | Puma GT .794 Def .747 Boost 28%% Holo -64%% "
      "CPC 102%% cleaned 63%%\n");
  return 0;
}
