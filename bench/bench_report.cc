#include "bench_report.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "knn/kernel_simd.h"

namespace cpclean {
namespace benchreport {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

struct Row {
  std::string name;
  int64_t iterations = 0;
  double ns_per_op = 0.0;
  double cpu_ns_per_op = 0.0;
  int64_t threads = 1;
  // User counters (e.g. bench_serve's p50_ns / p99_ns / qps), emitted as
  // extra JSON fields on the row.
  std::vector<std::pair<std::string, double>> counters;
};

// Google Benchmark < 1.8 reports failed runs via Run::error_occurred; 1.8+
// replaced it with the Run::skipped enum. Detect at compile time so the
// shim builds against either generation, whatever the distro ships.
template <typename R, typename = void>
struct HasErrorOccurred : std::false_type {};
template <typename R>
struct HasErrorOccurred<
    R, std::void_t<decltype(std::declval<const R&>().error_occurred)>>
    : std::true_type {};

template <typename R>
bool RunWasSkippedOrErrored(const R& run) {
  if constexpr (HasErrorOccurred<R>::value) {
    return run.error_occurred;
  } else {
    return run.skipped != R::NotSkipped;
  }
}

/// Prints to the console like the default reporter and collects one row per
/// real (non-aggregate, non-errored) run for the JSON file.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (RunWasSkippedOrErrored(run) || run.report_big_o || run.report_rms) {
        continue;
      }
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      // Accumulated times are in seconds regardless of the display unit.
      row.ns_per_op = run.real_accumulated_time / iters * 1e9;
      row.cpu_ns_per_op = run.cpu_accumulated_time / iters * 1e9;
      row.threads = run.threads;
      for (const auto& counter : run.counters) {
        row.counters.emplace_back(counter.first,
                                  static_cast<double>(counter.second));
      }
      rows_.push_back(std::move(row));
    }
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_report: cannot write " << path << "\n";
      return false;
    }
    // Which similarity-kernel dispatch level produced these numbers —
    // without it, a committed per-ISA trajectory is unreadable.
    out << "{\"simd_level\": \""
        << SimdLevelName(simd::ActiveSimdLevel()) << "\",\n";
    out << " \"benchmarks\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "  {\"name\": \"" << JsonEscape(r.name)
          << "\", \"iterations\": " << r.iterations
          << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"cpu_ns_per_op\": " << r.cpu_ns_per_op
          << ", \"threads\": " << r.threads;
      for (const auto& counter : r.counters) {
        out << ", \"" << JsonEscape(counter.first)
            << "\": " << counter.second;
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
    return true;
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int RunBenchmarksWithReport(int argc, char** argv, const char* report_path) {
  std::string path = report_path;
  // Extract our own flag before benchmark::Initialize sees the arguments.
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    const char* prefix = "--bench_report=";
    if (std::strncmp(*it, prefix, std::strlen(prefix)) == 0) {
      path = *it + std::strlen(prefix);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  args.resize(static_cast<size_t>(filtered_argc));
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const bool ok = reporter.WriteJson(path);
  benchmark::Shutdown();
  return ok ? 0 : 1;
}

}  // namespace benchreport
}  // namespace cpclean
