#!/usr/bin/env python3
"""Committed-vs-fresh ns_per_op delta table for BENCH_*.json reports.

Usage: bench_delta.py COMMITTED.json FRESH.json [--threshold PCT]

Report-only (always exits 0): CI containers are noisy — shared cores,
frequency scaling, cold caches — so this prints the per-benchmark delta
and emits a GitHub Actions ::warning:: for rows beyond the threshold
(default ±50%) instead of failing the build. A hard gate would need a
quieter fleet; the committed JSON history is the real perf record.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_delta: cannot read {path}: {err}")
        return None, {}
    level = doc.get("simd_level", "?")
    return level, {row["name"]: row for row in doc.get("benchmarks", [])}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("committed")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=50.0,
                        help="warn when |delta%%| exceeds this (default 50)")
    args = parser.parse_args()

    committed_level, committed = load_rows(args.committed)
    fresh_level, fresh = load_rows(args.fresh)
    if not committed or not fresh:
        print("bench_delta: nothing to compare (report-only, not failing)")
        return 0

    name_width = max(len(n) for n in fresh) + 2
    print(f"\nbench_delta: {args.committed} (simd={committed_level}) vs "
          f"{args.fresh} (simd={fresh_level}), warn at ±{args.threshold:g}%")
    print(f"{'benchmark':<{name_width}}{'committed':>14}{'fresh':>14}"
          f"{'delta':>10}")
    warnings = 0
    for name, row in fresh.items():
        fresh_ns = row.get("ns_per_op", 0.0)
        base = committed.get(name)
        if base is None or base.get("ns_per_op", 0.0) <= 0.0:
            print(f"{name:<{name_width}}{'-':>14}{fresh_ns:>14.1f}"
                  f"{'new':>10}")
            continue
        base_ns = base["ns_per_op"]
        delta = 100.0 * (fresh_ns - base_ns) / base_ns
        flag = ""
        if abs(delta) > args.threshold:
            warnings += 1
            flag = "  <-- beyond threshold"
            print(f"::warning title=bench regression smoke::"
                  f"{name}: {base_ns:.1f} -> {fresh_ns:.1f} ns/op "
                  f"({delta:+.1f}%)")
        print(f"{name:<{name_width}}{base_ns:>14.1f}{fresh_ns:>14.1f}"
              f"{delta:>+9.1f}%{flag}")
    dropped = sorted(set(committed) - set(fresh))
    for name in dropped:
        print(f"{name:<{name_width}}{committed[name]['ns_per_op']:>14.1f}"
              f"{'-':>14}{'gone':>10}")
    print(f"bench_delta: {warnings} row(s) beyond ±{args.threshold:g}% "
          f"(report-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
