#!/usr/bin/env python3
"""Scrapes cpclean_server's /metrics endpoint during a smoke replay.

Launches the server with an ephemeral main port, an ephemeral metrics
port, and a low slow-request threshold, then:

  1. Replays the scripted smoke queries over TCP while a background
     thread polls HTTP GET /metrics. Every scrape must be well-formed
     Prometheus text exposition: each line is a `# TYPE`/`# HELP` comment
     or `name{labels} value`, every histogram family's `_bucket` series is
     cumulative-monotone in `le` order, and `le="+Inf"` equals `_count`.

  2. After the replay, requires the required series to exist with nonzero
     request histograms (the replay just served dozens of requests).

  3. Forces a slow request — fault rule `serve.exec=sleep:MS` through the
     fault_inject op (armed via CPCLEAN_FAULTS="" in the environment) —
     and requires a slow_requests_total increment plus a span with the
     matching total and a phase breakdown via the `metrics` op.

  4. Restarts the server with a data dir, --max-sessions=1, and a tiny
     --log-compact-bytes, drives a session through delta save, eviction,
     log-replay rehydration, and compaction, and requires the storage
     counters cpclean_store_log_appended_bytes,
     cpclean_store_log_replayed_records, and cpclean_store_compactions to
     have moved on /metrics.

Stdlib only; exits non-zero on the first violation.
"""

import argparse
import json
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

LISTEN_RE = re.compile(r"listening on 127\.0\.0\.1:([0-9]+)")
METRICS_RE = re.compile(r"metrics on 127\.0\.0\.1:([0-9]+)")

# One sample line: metric name, optional {labels}, and a number. The
# exposition format is line-oriented, so validating it is line grammar +
# family-level invariants.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$"
)
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(counter|gauge|histogram|summary|untyped)$")

REQUIRED_SERIES = (
    "cpclean_serve_accepts_total",
    "cpclean_serve_requests_total",
    "cpclean_serve_http_scrapes_total",
    "cpclean_serve_active_connections",
    "cpclean_serve_inflight",
    "cpclean_serve_queue_depth",
)
REQUIRED_HISTOGRAMS = (
    "cpclean_serve_request_ns",
    "cpclean_serve_queue_wait_ns",
    "cpclean_serve_exec_ns",
)


def parse_exposition(text):
    """Validates the text, returns {series_name_with_labels: value}."""
    samples = {}
    for line in text.splitlines():
        if not line:
            raise SystemExit("malformed exposition: empty line")
        if line.startswith("#"):
            if line.startswith("# TYPE") and not TYPE_RE.match(line):
                raise SystemExit("malformed TYPE comment: %r" % line)
            continue
        if not SAMPLE_RE.match(line):
            raise SystemExit("malformed sample line: %r" % line)
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    if not samples:
        raise SystemExit("empty exposition")
    return samples


def check_histograms(samples):
    """Cumulative-monotone buckets; +Inf bucket == _count; _sum present."""
    families = {}
    bucket_re = re.compile(r'^(.+)_bucket\{le="([^"]+)"\}$')
    for name, value in samples.items():
        match = bucket_re.match(name)
        if match:
            families.setdefault(match.group(1), []).append(
                (match.group(2), value))
    for family, buckets in families.items():
        def le_key(item):
            return float("inf") if item[0] == "+Inf" else float(item[0])
        ordered = sorted(buckets, key=le_key)
        last = -1.0
        for le, value in ordered:
            if value < last:
                raise SystemExit(
                    "%s buckets not cumulative at le=%s (%g < %g)"
                    % (family, le, value, last))
            last = value
        if ordered[-1][0] != "+Inf":
            raise SystemExit("%s has no +Inf bucket" % family)
        count = samples.get(family + "_count")
        if count is None or family + "_sum" not in samples:
            raise SystemExit("%s lacks _count/_sum" % family)
        if ordered[-1][1] != count:
            raise SystemExit(
                "%s +Inf bucket %g != _count %g"
                % (family, ordered[-1][1], count))
    return families


def scrape(port):
    with urllib.request.urlopen(
            "http://127.0.0.1:%d/metrics" % port, timeout=10) as response:
        if response.status != 200:
            raise SystemExit("scrape returned HTTP %d" % response.status)
        return response.read().decode()


def load_requests(path):
    requests = []
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            line = raw.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            requests.append(line)
    return requests


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.buffer = b""

    def issue(self, line):
        self.sock.sendall((line + "\n").encode())
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise SystemExit("server closed mid-response")
            self.buffer += chunk
        response, self.buffer = self.buffer.split(b"\n", 1)
        return json.loads(response.decode())

    def close(self):
        self.sock.close()


def launch(argv, env=None):
    """Starts a server, waits for both port announcements; returns
    (proc, port, metrics_port)."""
    proc = subprocess.Popen(argv, stderr=subprocess.PIPE, env=env)
    port = metrics_port = None
    deadline = time.time() + 30
    while time.time() < deadline and metrics_port is None:
        line = proc.stderr.readline().decode()
        if not line:
            raise SystemExit("server exited before announcing its ports")
        match = LISTEN_RE.search(line)
        if match:
            port = int(match.group(1))
        match = METRICS_RE.search(line)
        if match:
            metrics_port = int(match.group(1))
    if port is None or metrics_port is None:
        raise SystemExit("server never announced both ports")
    threading.Thread(target=proc.stderr.read, daemon=True).start()
    return proc, port, metrics_port


def storage_phase(server):
    """Phase 4: delta save + eviction + replay + compaction move the
    store counters on /metrics."""
    data_dir = tempfile.mkdtemp(prefix="cpclean_metrics_store_")
    proc, port, metrics_port = launch(
        [server, "--port=0", "--metrics-port=0", "--threads=2",
         "--data-dir=%s" % data_dir, "--max-sessions=1",
         "--log-compact-bytes=64"])
    try:
        client = LineClient(port)

        def ok(line):
            response = client.issue(line)
            if response.get("ok") is not True:
                raise SystemExit("phase 4 request failed: %r -> %r"
                                 % (line, response))
            return response

        ok('{"op":"create_session","session":"t","source":"synthetic",'
           '"dataset":"metrics","train_rows":30,"val_size":4,'
           '"test_size":4,"seed":9,"numeric":4,"categorical":0,'
           '"noise_sigma":0.3,"missing_rate":0.4,"k":3}')
        ok('{"op":"save_session","session":"t"}')  # full base snapshot
        # One cleaning step then save: an O(delta) log append.
        ok('{"op":"clean_step","session":"t","steps":1}')
        ok('{"op":"save_session","session":"t"}')
        # A decoy evicts "t" (unchanged since the save: a disk-less noop);
        # touching "t" rehydrates it by replaying the one-record log.
        ok('{"op":"create_session","session":"d","source":"synthetic",'
           '"dataset":"metrics","train_rows":30,"val_size":4,'
           '"test_size":4,"seed":10,"numeric":4,"categorical":0,'
           '"noise_sigma":0.3,"missing_rate":0.4,"k":3}')
        ok('{"op":"q2","session":"t","val_indices":[0]}')
        # More delta saves overflow the 64-byte threshold: compaction.
        for _ in range(3):
            ok('{"op":"clean_step","session":"t","steps":1}')
            ok('{"op":"save_session","session":"t"}')
        client.close()

        samples = parse_exposition(scrape(metrics_port))
        for name, minimum in (
                ("cpclean_store_log_appended_bytes", 1.0),
                ("cpclean_store_log_replayed_records", 1.0),
                ("cpclean_store_compactions", 1.0)):
            value = samples.get(name)
            if value is None:
                raise SystemExit("required store series missing: %s" % name)
            if value < minimum:
                raise SystemExit("%s = %g, expected >= %g"
                                 % (name, value, minimum))
        print("phase 4 OK: store counters moved "
              "(log_appended_bytes=%g, log_replayed_records=%g, "
              "compactions=%g)"
              % (samples["cpclean_store_log_appended_bytes"],
                 samples["cpclean_store_log_replayed_records"],
                 samples["cpclean_store_compactions"]))
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        shutil.rmtree(data_dir, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True, help="cpclean_server binary")
    parser.add_argument("--queries", required=True, help="smoke_queries.jsonl")
    parser.add_argument("--sleep-ms", type=int, default=25,
                        help="injected serve.exec stall")
    args = parser.parse_args()

    requests = load_requests(args.queries)
    proc = subprocess.Popen(
        [args.server, "--port=0", "--metrics-port=0", "--slow-request-ms=5",
         "--threads=2"],
        stderr=subprocess.PIPE,
        # Empty CPCLEAN_FAULTS arms the fault_inject op without installing
        # any rule; the slow request below is injected over the wire.
        env={"CPCLEAN_FAULTS": ""},
    )
    try:
        port = metrics_port = None
        deadline = time.time() + 30
        while time.time() < deadline and metrics_port is None:
            line = proc.stderr.readline().decode()
            if not line:
                raise SystemExit("server exited before announcing its ports")
            match = LISTEN_RE.search(line)
            if match:
                port = int(match.group(1))
            match = METRICS_RE.search(line)
            if match:
                metrics_port = int(match.group(1))
        if port is None or metrics_port is None:
            raise SystemExit("server never announced both ports")
        threading.Thread(target=proc.stderr.read, daemon=True).start()

        # Phase 1: replay the smoke script while a poller scrapes.
        scrape_count = [0]
        replay_done = threading.Event()
        scrape_errors = []

        def poll():
            try:
                while not replay_done.is_set():
                    check_histograms(parse_exposition(scrape(metrics_port)))
                    scrape_count[0] += 1
                    time.sleep(0.02)
            except BaseException as exc:  # surfaced after join
                scrape_errors.append(str(exc))

        poller = threading.Thread(target=poll)
        poller.start()
        client = LineClient(port)
        served = 0
        for request in requests:
            response = client.issue(request)
            if "ok" not in response:
                raise SystemExit("response without ok: %r" % response)
            served += 1
        replay_done.set()
        poller.join()
        if scrape_errors:
            raise SystemExit("mid-replay scrape failed: " + scrape_errors[0])
        print("phase 1 OK: %d requests served, %d well-formed scrapes "
              "during replay" % (served, scrape_count[0]))

        # Phase 2: the post-replay scrape must carry the required series
        # with nonzero request histograms.
        samples = parse_exposition(scrape(metrics_port))
        families = check_histograms(samples)
        for name in REQUIRED_SERIES:
            if name not in samples:
                raise SystemExit("required series missing: %s" % name)
        for family in REQUIRED_HISTOGRAMS:
            if family not in families:
                raise SystemExit("required histogram missing: %s" % family)
            if samples[family + "_count"] < served:
                raise SystemExit(
                    "%s_count %g < %d requests served"
                    % (family, samples[family + "_count"], served))
        if samples["cpclean_serve_requests_total"] < served:
            raise SystemExit("requests_total below the replay count")
        print("phase 2 OK: %d series, request histograms nonzero "
              "(request_ns count=%g)"
              % (len(samples), samples["cpclean_serve_request_ns_count"]))

        # Phase 3: inject a serve.exec stall, require the slow-request
        # counter and a span breakdown showing the stalled request.
        before = samples.get("cpclean_serve_slow_requests_total", 0.0)
        injected = client.issue(
            json.dumps({"op": "fault_inject",
                        "config": "serve.exec=sleep:%d" % args.sleep_ms}))
        if injected.get("ok") is not True:
            raise SystemExit("fault_inject refused: %r" % injected)
        if client.issue('{"op":"ping"}').get("ok") is not True:
            raise SystemExit("stalled ping failed")
        client.issue('{"op":"fault_inject","config":""}')

        metrics_op = client.issue('{"op":"metrics"}')
        if metrics_op.get("ok") is not True:
            raise SystemExit("metrics op failed: %r" % metrics_op)
        spans = metrics_op["result"]["spans"]
        want_ns = args.sleep_ms * 1e6 * 0.8  # monotonic clock, some slack
        slow_spans = [s for s in spans
                      if s["op"] == "ping" and s["total_ns"] >= want_ns]
        if not slow_spans:
            raise SystemExit(
                "no ping span with total >= %.0fms among %d spans"
                % (args.sleep_ms * 0.8, len(spans)))
        if not all("queue_wait" in s["phases"] and "flush" in s["phases"]
                   for s in slow_spans):
            raise SystemExit("slow span lacks a phase breakdown")
        # The counter moves once the stalled response has flushed; the
        # flush happens-before our read of that response, but give the
        # scrape a couple of tries anyway.
        after = before
        for _ in range(50):
            samples = parse_exposition(scrape(metrics_port))
            after = samples.get("cpclean_serve_slow_requests_total", 0.0)
            if after > before:
                break
            time.sleep(0.02)
        if after <= before:
            raise SystemExit(
                "slow_requests_total did not move (%g -> %g)"
                % (before, after))
        print("phase 3 OK: injected %dms stall logged "
              "(slow_requests_total %g -> %g, span total %.1fms)"
              % (args.sleep_ms, before, after,
                 slow_spans[-1]["total_ns"] / 1e6))
        client.close()
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # Phase 4 runs its own server (data dir + eviction + tiny compaction
    # threshold) so the storage counters start from zero.
    storage_phase(args.server)
    return 0


if __name__ == "__main__":
    sys.exit(main())
