#!/usr/bin/env python3
"""TCP smoke replay for cpclean_server's epoll transport.

Replays the scripted stdio smoke queries through a real TCP connection and
diffs the responses (floats / timestamps / simd level normalized, exactly
like the stdio smoke job) against the committed expectation, then replays
the same script over several concurrent connections with per-connection
session names and checks every connection gets byte-identical answers.

Two phases:

  1. Single connection, fully pipelined: every request line is sent in ONE
     write before any response is read, so the server's incremental framing
     and ordered response queue are exercised end to end. Responses must
     match tests/serve/smoke_expected.jsonl byte-for-byte after
     normalization -- except the global stats line (id 14), whose
     connections object legitimately reflects the live TCP connection
     (active=1, inflight=1); that line is only checked structurally.

  2. N concurrent connections, each replaying the script with its session
     names suffixed (_cK). After renormalizing the names back, every
     connection's transcript must be byte-identical to connection 0's and
     to the stdio expectation -- bit-identical under load is the repo-wide
     invariant, not a best effort. Cross-connection-visible responses
     (list_sessions ids 4/21, global stats id 14) are excluded: they see
     the other connections' sessions by design.

Stdlib only; exits non-zero with a unified diff on any mismatch.
"""

import argparse
import difflib
import json
import re
import socket
import subprocess
import sys
import threading
import time

# Session names the smoke script uses (including the ones that only appear
# on error paths). Rewritten per connection in phase 2; reverse-mapped
# longest-first so error-message text renormalizes too.
SESSION_NAMES = ("alpha", "beta", "badcsv", "ghost")

# Same normalization the CI stdio smoke applies with sed.
FLOAT_RE = re.compile(r"-?[0-9]+\.[0-9]+(e[+-]?[0-9]+)?")
TS_RE = re.compile(r"[0-9]{12,}")
SIMD_RE = re.compile(r'"simd_level":"[a-z0-9]+"')
# Timing-valued stats fields (machine- and run-dependent); float result
# bits stay raw. Quoted placeholders keep the masked line valid JSON (the
# id-based line exclusions parse it).
WORKERS_RE = re.compile(r'"request_workers_actual":[0-9]+')
UPTIME_RE = re.compile(r'"uptime_ms":[0-9]+')

LISTEN_RE = re.compile(r"listening on 127\.0\.0\.1:([0-9]+)")


def normalize(line):
    line = FLOAT_RE.sub("<float>", line)
    line = TS_RE.sub("<ts>", line)
    line = WORKERS_RE.sub('"request_workers_actual":"<workers>"', line)
    line = UPTIME_RE.sub('"uptime_ms":"<ms>"', line)
    return SIMD_RE.sub('"simd_level":"<simd>"', line)


def load_requests(path):
    """Returns the request lines (comments and blanks dropped)."""
    requests = []
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            line = raw.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            requests.append(line)
    return requests


def replay(port, request_lines):
    """Pipelines every request in one write, returns the response lines."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(("\n".join(request_lines) + "\n").encode())
        buffer = b""
        responses = []
        while len(responses) < len(request_lines):
            chunk = sock.recv(65536)
            if not chunk:
                raise RuntimeError(
                    "server closed after %d/%d responses"
                    % (len(responses), len(request_lines))
                )
            buffer += chunk
            while b"\n" in buffer and len(responses) < len(request_lines):
                line, buffer = buffer.split(b"\n", 1)
                responses.append(line.decode())
        return responses


def response_id(line):
    try:
        return json.loads(line).get("id")
    except ValueError:
        return None


def diff_or_none(expected, actual, label):
    if expected == actual:
        return None
    return "".join(
        difflib.unified_diff(
            [l + "\n" for l in expected],
            [l + "\n" for l in actual],
            fromfile="expected(%s)" % label,
            tofile="actual(%s)" % label,
        )
    )


def check_structurally_ok(line):
    parsed = json.loads(line)
    if parsed.get("ok") is not True:
        raise SystemExit("structural check failed, not ok:true: %s" % line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True, help="cpclean_server binary")
    parser.add_argument("--queries", required=True, help="smoke_queries.jsonl")
    parser.add_argument("--expected", required=True, help="smoke_expected.jsonl")
    parser.add_argument("--connections", type=int, default=4,
                        help="concurrent connections in phase 2")
    parser.add_argument("--threads", type=int, default=2,
                        help="--threads passed to the server (pins the "
                             "pool_threads field the stats op reports)")
    args = parser.parse_args()

    requests = load_requests(args.queries)
    with open(args.expected, "r", encoding="utf-8") as f:
        expected = [l.rstrip("\n") for l in f if l.strip()]
    if len(expected) != len(requests):
        raise SystemExit(
            "expected %d responses for %d requests"
            % (len(expected), len(requests))
        )

    proc = subprocess.Popen(
        [args.server, "--port=0", "--threads=%d" % args.threads],
        stderr=subprocess.PIPE,
    )
    try:
        port = None
        deadline = time.time() + 30
        while time.time() < deadline:
            line = proc.stderr.readline().decode()
            if not line:
                raise SystemExit("server exited before announcing its port")
            match = LISTEN_RE.search(line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise SystemExit("server never announced its port")
        # Drain the rest of stderr in the background so the server can't
        # block on a full pipe.
        threading.Thread(
            target=proc.stderr.read, daemon=True
        ).start()

        # Phase 1: single pipelined connection against the stdio golden.
        responses = [normalize(r) for r in replay(port, requests)]
        failures = []
        phase1_expected, phase1_actual = [], []
        for want, got in zip(expected, responses):
            if response_id(want) == 14:
                # Global stats sees this very connection (active=1,
                # inflight=1): structurally checked, not byte-compared.
                check_structurally_ok(got)
                continue
            phase1_expected.append(want)
            phase1_actual.append(got)
        diff = diff_or_none(phase1_expected, phase1_actual, "phase1")
        if diff:
            failures.append("phase 1 (single pipelined connection):\n" + diff)
        else:
            print("phase 1 OK: %d responses match the stdio golden "
                  "(id 14 structural)" % len(phase1_actual))

        # Phase 2: concurrent connections, per-connection session names.
        per_conn = [None] * args.connections
        errors = []

        def run_one(index):
            renamed = requests
            for name in SESSION_NAMES:
                renamed = [r.replace('"%s"' % name, '"%s_c%d"' % (name, index))
                           for r in renamed]
            try:
                per_conn[index] = replay(port, renamed)
            except Exception as exc:  # surfaced after join
                errors.append("connection %d: %s" % (index, exc))

        workers = [threading.Thread(target=run_one, args=(i,))
                   for i in range(args.connections)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        if errors:
            raise SystemExit("\n".join(errors))

        cross_sensitive = {4, 14, 21}
        golden = [want for want in expected
                  if response_id(want) not in cross_sensitive]
        raw_baseline = None
        for index, raw in enumerate(per_conn):
            denamed = raw
            for name in sorted(SESSION_NAMES, key=len, reverse=True):
                denamed = [r.replace("%s_c%d" % (name, index), name)
                           for r in denamed]
            kept = [normalize(r) for r in denamed
                    if response_id(r) not in cross_sensitive]
            diff = diff_or_none(golden, kept, "conn%d" % index)
            if diff:
                failures.append(
                    "phase 2 connection %d diverges from the stdio "
                    "golden:\n%s" % (index, diff))
            # Floats-raw bit-identity across concurrent connections: only
            # wall-clock timestamps masked, every float mantissa compared
            # bit-for-bit against connection 0's answers.
            raw_kept = [TS_RE.sub("<ts>", r) for r in denamed
                        if response_id(r) not in cross_sensitive]
            if raw_baseline is None:
                raw_baseline = raw_kept
            else:
                diff = diff_or_none(raw_baseline, raw_kept,
                                    "conn%d-raw" % index)
                if diff:
                    failures.append(
                        "phase 2 connection %d floats-raw transcript "
                        "diverges from connection 0's:\n%s" % (index, diff))
        if not failures or all(f.startswith("phase 1") for f in failures):
            print("phase 2 OK: %d concurrent connections bit-identical "
                  "to the stdio golden and to each other floats-raw "
                  "(%d responses each)" % (args.connections, len(golden)))

        if failures:
            sys.stderr.write("\n".join(failures))
            return 1
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
