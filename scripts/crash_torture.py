#!/usr/bin/env python3
"""kill -9 crash-torture for cpclean_server's snapshot persistence.

Loops: start the server over one persistent --data-dir, advance a session
(clean_step + q2 + save_session), and SIGKILL the process at a random
(seeded, reproducible) moment while saves are in flight. After every kill
the server restarts over the same data dir and the session must rehydrate
to a state this script has seen and recorded -- bit-identical q2 answers,
compared as raw JSON bytes -- and never to a state older than the last
acknowledged save. Any torn snapshot surfaces as a loud structured error
from the server (rehydration verifies working-dataset bit-identity and the
task fingerprint), which fails the torture.

The atomic-write protocol (temp file + rename) may leave ``*.tmp`` litter
when killed mid-write -- that is expected and counted -- but the restarted
server's startup sweep must remove it: after every restart the data dir is
checked clean of temp files, and the committed ``*.cpsession`` must be the
last acknowledged state or newer.

The save-only-after-record discipline makes the check airtight: a save is
issued only for states whose q2 bits were recorded first, so whatever the
rename committed before the kill is always a state the script can verify.

``--mode`` picks which persistence machinery the kill lands in:

  save (default)  explicit save_session while cleaning -- under the
                  append-only log most saves are O(delta) log appends, so
                  kills land mid-append and mid-fsync.
  evict           the server runs with --max-sessions=1 and each cycle
                  creates a fresh decoy session, forcing the LRU eviction
                  sweep to persist the torture session; kills land inside
                  the sweep's prepare/retire/commit/drop window.
  compact         the server runs with --storage-mode=mmap and
                  --log-compact-bytes=64, so nearly every save folds the
                  log into a fresh base snapshot; kills land between the
                  base rename and the log unlink, leaving stale logs whose
                  records must replay as no-ops.

Stdlib only. Exit 0 with a summary, non-zero with a diagnosis.

  python3 scripts/crash_torture.py \\
      --server ./build/release/examples/cpclean_server --iterations 30 \\
      --mode evict
"""

import argparse
import glob
import json
import os
import random
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

LISTEN_RE = re.compile(r"listening on 127\.0\.0\.1:([0-9]+)")

CREATE = (
    '{"op":"create_session","session":"t","source":"synthetic",'
    '"dataset":"torture","train_rows":30,"val_size":4,"test_size":4,'
    '"seed":7,"numeric":4,"categorical":0,"noise_sigma":0.3,'
    '"missing_rate":0.4,"k":3}'
)


class Client:
    """A blocking line-protocol client; raises on any transport failure."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=20)
        self.buffer = b""

    def rpc(self, line):
        self.sock.sendall(line.encode() + b"\n")
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def start_server(server, data_dir, extra_args=()):
    """Starts the server on an ephemeral port; returns (proc, port)."""
    proc = subprocess.Popen(
        [server, "--port=0", "--threads=2", "--data-dir=%s" % data_dir]
        + list(extra_args),
        stderr=subprocess.PIPE,
    )
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stderr.readline().decode()
        if not line:
            raise SystemExit("server exited before announcing its port")
        match = LISTEN_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        raise SystemExit("server never announced its port")
    # Drain stderr in the background so the server can't block on the pipe.
    threading.Thread(target=proc.stderr.read, daemon=True).start()
    return proc, port


def stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait()


def tmp_litter(data_dir):
    return sorted(glob.glob(os.path.join(data_dir, "*.tmp")))


def q2_bits(client):
    """The session's q2 answers for every validation index, raw bytes."""
    bits = []
    for v in range(4):
        response = client.rpc(
            '{"op":"q2","session":"t","val_indices":[%d]}' % v
        )
        parsed = json.loads(response)
        if parsed.get("ok") is not True:
            raise SystemExit("q2 failed: %s" % response)
        bits.append(json.dumps(parsed["result"]["results"][0],
                               sort_keys=True))
    return "\n".join(bits)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--server", required=True,
                        help="cpclean_server binary")
    parser.add_argument("--iterations", type=int, default=30,
                        help="kill/restart cycles")
    parser.add_argument("--seed", type=int, default=1,
                        help="seeds the kill-timing schedule")
    parser.add_argument("--data-dir", default=None,
                        help="persistent dir (default: a fresh tempdir)")
    parser.add_argument("--mode", choices=("save", "evict", "compact"),
                        default="save",
                        help="which persistence path the kills land in")
    args = parser.parse_args()

    extra_args = []
    if args.mode == "evict":
        extra_args = ["--max-sessions=1"]
    elif args.mode == "compact":
        extra_args = ["--storage-mode=mmap", "--log-compact-bytes=64"]

    data_dir = args.data_dir or tempfile.mkdtemp(prefix="cpclean_torture_")
    if args.data_dir is None:
        shutil.rmtree(data_dir, ignore_errors=True)
    os.makedirs(data_dir, exist_ok=True)

    # Every state the session has ever been in: q2 bits -> step index. A
    # rehydrated session must land on one of these, at or past `acked`.
    known = {}
    acked = -1
    kills_with_litter = 0
    created = False

    decoys = 0
    for iteration in range(args.iterations):
        rng = random.Random(args.seed * 100003 + iteration)
        proc, port = start_server(args.server, data_dir, extra_args)
        try:
            litter = tmp_litter(data_dir)
            if litter:
                raise SystemExit(
                    "iteration %d: startup sweep left temp litter: %s"
                    % (iteration, litter))

            client = Client(port)
            if not created:
                response = client.rpc(CREATE)
                if json.loads(response).get("ok") is not True:
                    raise SystemExit("create failed: %s" % response)
                created = True
                known[q2_bits(client)] = 0
            else:
                # Rehydrates lazily off the snapshot the kill left behind.
                bits = q2_bits(client)
                if bits not in known:
                    raise SystemExit(
                        "iteration %d: rehydrated to an unknown state "
                        "(torn or fabricated snapshot):\n%s"
                        % (iteration, bits))
                if known[bits] < acked:
                    raise SystemExit(
                        "iteration %d: rehydrated to step %d but step %d "
                        "was acknowledged saved -- an acked save was lost"
                        % (iteration, known[bits], acked))
            bits = q2_bits(client)
            step = known[bits]

            # One guaranteed acknowledged save, so even an instant kill has
            # a floor to verify against.
            response = client.rpc('{"op":"save_session","session":"t"}')
            if json.loads(response).get("ok") is not True:
                raise SystemExit("save failed: %s" % response)
            acked = max(acked, known[bits])

            # Now advance-record-save as fast as possible, and pull the
            # plug mid-stream.
            timer = threading.Timer(rng.uniform(0.005, 0.12), proc.kill)
            timer.start()
            try:
                while True:
                    response = client.rpc(
                        '{"op":"clean_step","session":"t","steps":1}')
                    if json.loads(response).get("ok") is not True:
                        raise SystemExit("clean_step failed: %s" % response)
                    # Once cleaning is exhausted, further steps leave the
                    # state (and its bits) unchanged — the state index, not
                    # the step counter, is what acked must track.
                    step += 1
                    bits = q2_bits(client)
                    known.setdefault(bits, step)
                    if args.mode == "evict":
                        # Persist by eviction: a fresh decoy session pushes
                        # the torture session (the LRU) through the sweep's
                        # save. An ok decoy create means the sweep's save
                        # of the just-recorded state committed.
                        decoys += 1
                        response = client.rpc(CREATE.replace(
                            '"session":"t"', '"session":"d%d"' % decoys))
                    else:
                        response = client.rpc(
                            '{"op":"save_session","session":"t"}')
                    if json.loads(response).get("ok") is not True:
                        raise SystemExit("save failed: %s" % response)
                    acked = max(acked, known[bits])
            except (ConnectionError, OSError):
                pass  # the kill landed
            finally:
                timer.cancel()
            client.close()
        finally:
            stop(proc)

        if tmp_litter(data_dir):
            kills_with_litter += 1

    # Final restart: the surviving snapshot must still rehydrate clean.
    proc, port = start_server(args.server, data_dir, extra_args)
    try:
        if tmp_litter(data_dir):
            raise SystemExit("final restart left temp litter")
        client = Client(port)
        bits = q2_bits(client)
        if bits not in known or known[bits] < acked:
            raise SystemExit("final rehydration check failed")
        client.close()
    finally:
        stop(proc)

    print(
        "crash torture OK (mode=%s): %d kill/restart cycles over %s, %d "
        "distinct session states verified bit-identical, %d kills left "
        "temp litter (all swept on restart), last acked step %d"
        % (args.mode, args.iterations, data_dir, len(known),
           kills_with_litter, acked)
    )
    if args.data_dir is None:
        shutil.rmtree(data_dir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
