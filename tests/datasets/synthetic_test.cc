#include "datasets/synthetic.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "datasets/paper_datasets.h"
#include "datasets/toy.h"
#include "knn/kernel.h"
#include "knn/knn_classifier.h"

namespace cpclean {
namespace {

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_rows = 50;
  spec.num_numeric = 3;
  spec.num_categorical = 2;
  spec.num_categories = 4;
  spec.seed = 1;
  const Table table = GenerateSynthetic(spec).value();
  EXPECT_EQ(table.num_rows(), 50);
  EXPECT_EQ(table.num_columns(), 6);  // 3 + 2 + label
  EXPECT_EQ(table.schema().field(0).type, ColumnType::kNumeric);
  EXPECT_EQ(table.schema().field(3).type, ColumnType::kCategorical);
  EXPECT_TRUE(table.schema().HasField("label"));
  EXPECT_EQ(table.CountMissing(), 0);
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticSpec spec;
  spec.num_rows = 20;
  spec.seed = 77;
  const Table a = GenerateSynthetic(spec).value();
  const Table b = GenerateSynthetic(spec).value();
  for (int r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.at(r, c), b.at(r, c));
    }
  }
  spec.seed = 78;
  const Table c = GenerateSynthetic(spec).value();
  bool differs = false;
  for (int r = 0; r < a.num_rows() && !differs; ++r) {
    if (!(a.at(r, 0) == c.at(r, 0))) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, BothLabelsPresentAndRoughlyBalanced) {
  SyntheticSpec spec;
  spec.num_rows = 500;
  spec.seed = 3;
  const Table table = GenerateSynthetic(spec).value();
  const int label_col = table.schema().FieldIndex("label").value();
  int ones = 0;
  for (int r = 0; r < table.num_rows(); ++r) {
    ones += table.at(r, label_col).categorical() == "1" ? 1 : 0;
  }
  EXPECT_GT(ones, 150);
  EXPECT_LT(ones, 350);
}

TEST(SyntheticTest, NoiseControlsSeparability) {
  // Low-noise tasks should be much easier for KNN than high-noise ones.
  auto accuracy_for = [](double noise) {
    SyntheticSpec spec;
    spec.num_rows = 400;
    spec.num_numeric = 5;
    spec.num_categorical = 0;
    spec.noise_sigma = noise;
    spec.seed = 9;
    const Table table = GenerateSynthetic(spec).value();
    Rng rng(1);
    const DataSplit split = TrainValTestSplit(table, 100, 0, &rng).value();
    const int label_col = table.schema().FieldIndex("label").value();
    std::vector<std::vector<double>> train_x, val_x;
    std::vector<int> train_y, val_y;
    for (int r = 0; r < split.train.num_rows(); ++r) {
      std::vector<double> x;
      for (int c = 0; c < label_col; ++c) {
        x.push_back(split.train.at(r, c).numeric());
      }
      train_x.push_back(x);
      train_y.push_back(
          split.train.at(r, label_col).categorical() == "1" ? 1 : 0);
    }
    for (int r = 0; r < split.val.num_rows(); ++r) {
      std::vector<double> x;
      for (int c = 0; c < label_col; ++c) {
        x.push_back(split.val.at(r, c).numeric());
      }
      val_x.push_back(x);
      val_y.push_back(split.val.at(r, label_col).categorical() == "1" ? 1 : 0);
    }
    static NegativeEuclideanKernel kernel;
    const KnnClassifier knn(train_x, train_y, 2, 3, &kernel);
    return knn.Accuracy(val_x, val_y);
  };
  const double easy = accuracy_for(0.1);
  const double hard = accuracy_for(2.5);
  EXPECT_GT(easy, 0.85);
  EXPECT_LT(hard, easy - 0.1);
}

TEST(SyntheticTest, RejectsInvalidSpecs) {
  SyntheticSpec spec;
  spec.num_rows = 0;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
  spec.num_rows = 10;
  spec.num_numeric = 0;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

TEST(PaperDatasetsTest, SuiteHasFourShapedDatasets) {
  const auto suite = PaperDatasetSuite(200, 50, 100);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "BabyProduct");
  EXPECT_EQ(suite[1].name, "Supreme");
  EXPECT_EQ(suite[2].name, "Bank");
  EXPECT_EQ(suite[3].name, "Puma");
  // BabyProduct mirrors the real-error dataset: mixed types, 11.8% rate.
  EXPECT_GT(suite[0].synthetic.num_categorical, 0);
  EXPECT_NEAR(suite[0].missing_rate, 0.118, 1e-9);
  // The others use the paper's 20% synthetic MNAR rate.
  for (size_t i = 1; i < suite.size(); ++i) {
    EXPECT_NEAR(suite[i].missing_rate, 0.2, 1e-9);
  }
  // Puma is the nonlinear one.
  EXPECT_TRUE(suite[3].synthetic.nonlinear);
  // Sizes: train + val + test.
  EXPECT_EQ(suite[1].synthetic.num_rows, 350);
}

TEST(PaperDatasetsTest, LookupByName) {
  EXPECT_EQ(PaperDatasetByName("Bank").name, "Bank");
  EXPECT_EQ(PaperDatasetByName("Puma").synthetic.nonlinear, true);
}

TEST(ToyDatasetsTest, MatchPaperFixtures) {
  const IncompleteDataset fig6 = Figure6Dataset();
  EXPECT_EQ(fig6.num_examples(), 3);
  EXPECT_EQ(fig6.NumPossibleWorlds(), BigUint(8));
  const IncompleteDataset fig1 = Figure1Dataset();
  EXPECT_EQ(fig1.NumPossibleWorlds(), BigUint(3));
}

}  // namespace
}  // namespace cpclean
