#include <gtest/gtest.h>

#include "data/schema.h"
#include "data/table.h"

namespace cpclean {
namespace {

Schema MakeSchema() {
  return Schema({{"age", ColumnType::kNumeric},
                 {"city", ColumnType::kCategorical},
                 {"income", ColumnType::kNumeric}});
}

TEST(SchemaTest, FieldLookup) {
  const Schema schema = MakeSchema();
  EXPECT_EQ(schema.num_fields(), 3);
  EXPECT_EQ(schema.FieldIndex("city").value(), 1);
  EXPECT_FALSE(schema.FieldIndex("missing").ok());
  EXPECT_TRUE(schema.HasField("age"));
  EXPECT_FALSE(schema.HasField("Age"));
  EXPECT_EQ(schema.field(2).name, "income");
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  Schema schema = MakeSchema();
  EXPECT_TRUE(schema.AddField({"zip", ColumnType::kCategorical}).ok());
  EXPECT_EQ(schema.AddField({"age", ColumnType::kNumeric}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.num_fields(), 4);
}

TEST(SchemaTest, RemoveField) {
  const Schema reduced = MakeSchema().RemoveField(1);
  EXPECT_EQ(reduced.num_fields(), 2);
  EXPECT_FALSE(reduced.HasField("city"));
  EXPECT_EQ(reduced.FieldIndex("income").value(), 1);
}

TEST(TableTest, AppendAndAccess) {
  Table table(MakeSchema());
  ASSERT_TRUE(table
                  .AppendRow({Value::Numeric(30), Value::Categorical("rome"),
                              Value::Numeric(50000)})
                  .ok());
  ASSERT_TRUE(table
                  .AppendRow({Value::Null(), Value::Categorical("paris"),
                              Value::Null()})
                  .ok());
  EXPECT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.num_columns(), 3);
  EXPECT_DOUBLE_EQ(table.at(0, 0).numeric(), 30.0);
  EXPECT_TRUE(table.at(1, 0).is_null());
}

TEST(TableTest, AppendRejectsBadRows) {
  Table table(MakeSchema());
  // Wrong width.
  EXPECT_FALSE(table.AppendRow({Value::Numeric(1)}).ok());
  // Kind mismatch: categorical into numeric column.
  EXPECT_FALSE(table
                   .AppendRow({Value::Categorical("x"),
                               Value::Categorical("rome"),
                               Value::Numeric(1)})
                   .ok());
  EXPECT_EQ(table.num_rows(), 0);
}

TEST(TableTest, MissingAccounting) {
  Table table(MakeSchema());
  ASSERT_TRUE(table
                  .AppendRow({Value::Numeric(1), Value::Null(),
                              Value::Numeric(2)})
                  .ok());
  ASSERT_TRUE(table
                  .AppendRow({Value::Numeric(3), Value::Categorical("a"),
                              Value::Numeric(4)})
                  .ok());
  ASSERT_TRUE(table
                  .AppendRow({Value::Null(), Value::Null(), Value::Numeric(5)})
                  .ok());
  EXPECT_EQ(table.CountMissing(), 3);
  EXPECT_EQ(table.CountMissingInColumn(1), 2);
  EXPECT_EQ(table.CountMissingInRow(2), 2);
  EXPECT_DOUBLE_EQ(table.MissingRate(), 3.0 / 9.0);
  EXPECT_EQ(table.RowsWithMissing(), (std::vector<int>{0, 2}));
}

TEST(TableTest, ColumnsFilterNulls) {
  Table table(MakeSchema());
  ASSERT_TRUE(table
                  .AppendRow({Value::Numeric(1), Value::Null(),
                              Value::Numeric(2)})
                  .ok());
  ASSERT_TRUE(table
                  .AppendRow({Value::Null(), Value::Categorical("a"),
                              Value::Numeric(4)})
                  .ok());
  EXPECT_EQ(table.NumericColumn(0), (std::vector<double>{1.0}));
  EXPECT_EQ(table.CategoricalColumn(1), (std::vector<std::string>{"a"}));
  EXPECT_EQ(table.Column(0).size(), 2u);
}

TEST(TableTest, SelectRowsAndDropColumn) {
  Table table(MakeSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({Value::Numeric(i), Value::Categorical("c"),
                                Value::Numeric(10 * i)})
                    .ok());
  }
  const Table selected = table.SelectRows({4, 0, 2});
  EXPECT_EQ(selected.num_rows(), 3);
  EXPECT_DOUBLE_EQ(selected.at(0, 0).numeric(), 4.0);
  EXPECT_DOUBLE_EQ(selected.at(1, 0).numeric(), 0.0);

  const Table dropped = table.DropColumn(1);
  EXPECT_EQ(dropped.num_columns(), 2);
  EXPECT_EQ(dropped.schema().FieldIndex("income").value(), 1);
  EXPECT_DOUBLE_EQ(dropped.at(3, 1).numeric(), 30.0);
}

TEST(TableTest, SetOverwritesCell) {
  Table table(MakeSchema());
  ASSERT_TRUE(table
                  .AppendRow({Value::Numeric(1), Value::Categorical("a"),
                              Value::Numeric(2)})
                  .ok());
  table.Set(0, 0, Value::Null());
  EXPECT_TRUE(table.at(0, 0).is_null());
  table.Set(0, 0, Value::Numeric(9));
  EXPECT_DOUBLE_EQ(table.at(0, 0).numeric(), 9.0);
}

}  // namespace
}  // namespace cpclean
