#include "data/encoder.h"

#include <gtest/gtest.h>

#include "data/csv.h"

namespace cpclean {
namespace {

Table MixedTable() {
  return ReadCsvString(
             "age,city,label\n"
             "10,rome,0\n"
             "20,paris,1\n"
             "30,rome,1\n"
             "40,berlin,0\n")
      .value();
}

TEST(FeatureEncoderTest, ZScoresNumericColumns) {
  const Table table = MixedTable();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table, {2}).ok());
  // age: mean 25, population stddev sqrt(125) = 11.18...
  const auto x0 = encoder.EncodeRow(table.row(0)).value();
  const auto x3 = encoder.EncodeRow(table.row(3)).value();
  EXPECT_NEAR(x0[0], (10.0 - 25.0) / 11.180339887, 1e-6);
  EXPECT_NEAR(x3[0], (40.0 - 25.0) / 11.180339887, 1e-6);
}

TEST(FeatureEncoderTest, OneHotEncodesCategoricals) {
  const Table table = MixedTable();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table, {2}).ok());
  // dims: 1 (age) + 3 cities + 1 unseen slot = 5.
  EXPECT_EQ(encoder.encoded_dim(), 5);
  const auto rome = encoder.EncodeRow(table.row(0)).value();
  const auto paris = encoder.EncodeRow(table.row(1)).value();
  // Exactly one hot slot among the categorical block.
  double rome_sum = 0, paris_sum = 0;
  for (int i = 1; i < 5; ++i) {
    rome_sum += rome[static_cast<size_t>(i)];
    paris_sum += paris[static_cast<size_t>(i)];
  }
  EXPECT_DOUBLE_EQ(rome_sum, 1.0);
  EXPECT_DOUBLE_EQ(paris_sum, 1.0);
  EXPECT_NE(rome, paris);
}

TEST(FeatureEncoderTest, UnseenCategoryUsesSpareSlot) {
  const Table table = MixedTable();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table, {2}).ok());
  std::vector<Value> row = {Value::Numeric(25), Value::Categorical("tokyo"),
                            Value::Categorical("0")};
  const auto x = encoder.EncodeRow(row).value();
  // The last slot of the city block is the unseen bucket.
  EXPECT_DOUBLE_EQ(x[4], 1.0);
}

TEST(FeatureEncoderTest, RejectsNullsAndWrongWidth) {
  const Table table = MixedTable();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table, {2}).ok());
  std::vector<Value> with_null = {Value::Null(), Value::Categorical("rome"),
                                  Value::Categorical("0")};
  EXPECT_FALSE(encoder.EncodeRow(with_null).ok());
  EXPECT_FALSE(encoder.EncodeRow({Value::Numeric(1)}).ok());
  FeatureEncoder unfitted;
  EXPECT_FALSE(unfitted.EncodeRow(with_null).ok());
}

TEST(FeatureEncoderTest, ConstantColumnDoesNotBlowUp) {
  const auto table = ReadCsvString("x,label\n5,0\n5,1\n5,0\n").value();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table, {1}).ok());
  const auto x = encoder.EncodeRow(table.row(0)).value();
  EXPECT_DOUBLE_EQ(x[0], 0.0);  // (5 - 5) / fallback stddev 1
}

TEST(FeatureEncoderTest, FitOnTableWithNullsUsesObservedOnly) {
  const auto table =
      ReadCsvString("x,label\n10,0\n,1\n30,0\n").value();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table, {1}).ok());
  // mean of {10, 30} = 20.
  std::vector<Value> row = {Value::Numeric(20), Value::Categorical("0")};
  EXPECT_NEAR(encoder.EncodeRow(row).value()[0], 0.0, 1e-12);
}

TEST(FeatureEncoderTest, EncodeTableMatchesRowByRow) {
  const Table table = MixedTable();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table, {2}).ok());
  const auto all = encoder.EncodeTable(table).value();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[2], encoder.EncodeRow(table.row(2)).value());
}

TEST(LabelEncoderTest, DenseIdsInFirstSeenOrder) {
  LabelEncoder labels;
  ASSERT_TRUE(labels
                  .Fit({Value::Categorical("no"), Value::Categorical("yes"),
                        Value::Categorical("no")})
                  .ok());
  EXPECT_EQ(labels.num_labels(), 2);
  EXPECT_EQ(labels.Encode(Value::Categorical("no")).value(), 0);
  EXPECT_EQ(labels.Encode(Value::Categorical("yes")).value(), 1);
  EXPECT_EQ(labels.Decode(1), Value::Categorical("yes"));
  EXPECT_FALSE(labels.Encode(Value::Categorical("maybe")).ok());
}

TEST(LabelEncoderTest, NumericLabelsAndNullRejection) {
  LabelEncoder labels;
  ASSERT_TRUE(labels.Fit({Value::Numeric(5), Value::Numeric(7)}).ok());
  EXPECT_EQ(labels.Encode(Value::Numeric(7)).value(), 1);
  LabelEncoder bad;
  EXPECT_FALSE(bad.Fit({Value::Numeric(1), Value::Null()}).ok());
  EXPECT_FALSE(bad.Fit({}).ok());
}

}  // namespace
}  // namespace cpclean
