#include "data/split.h"

#include <gtest/gtest.h>

#include <set>

#include "data/csv.h"

namespace cpclean {
namespace {

Table MakeTable(int rows) {
  Table table(Schema({{"id", ColumnType::kNumeric}}));
  for (int i = 0; i < rows; ++i) {
    CP_CHECK(table.AppendRow({Value::Numeric(i)}).ok());
  }
  return table;
}

TEST(SplitTest, SizesAndDisjointness) {
  const Table table = MakeTable(100);
  Rng rng(3);
  const DataSplit split = TrainValTestSplit(table, 20, 30, &rng).value();
  EXPECT_EQ(split.val.num_rows(), 20);
  EXPECT_EQ(split.test.num_rows(), 30);
  EXPECT_EQ(split.train.num_rows(), 50);

  std::multiset<double> ids;
  for (const Table* part : {&split.train, &split.val, &split.test}) {
    for (int r = 0; r < part->num_rows(); ++r) {
      ids.insert(part->at(r, 0).numeric());
    }
  }
  EXPECT_EQ(ids.size(), 100u);
  // Every original row appears exactly once across the three parts.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ids.count(i), 1u);
}

TEST(SplitTest, DeterministicPerSeed) {
  const Table table = MakeTable(30);
  Rng rng1(5), rng2(5);
  const DataSplit a = TrainValTestSplit(table, 5, 5, &rng1).value();
  const DataSplit b = TrainValTestSplit(table, 5, 5, &rng2).value();
  for (int r = 0; r < a.train.num_rows(); ++r) {
    EXPECT_EQ(a.train.at(r, 0), b.train.at(r, 0));
  }
}

TEST(SplitTest, RejectsOversizedSplits) {
  const Table table = MakeTable(10);
  Rng rng(1);
  EXPECT_FALSE(TrainValTestSplit(table, 6, 6, &rng).ok());
  EXPECT_FALSE(TrainValTestSplit(table, -1, 2, &rng).ok());
  EXPECT_TRUE(TrainValTestSplit(table, 5, 5, &rng).ok());  // empty train OK
}

TEST(KFoldTest, PartitionsAllIndices) {
  Rng rng(7);
  const auto folds = KFoldIndices(23, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<int> seen;
  for (const auto& fold : folds) {
    EXPECT_GE(fold.size(), 4u);
    EXPECT_LE(fold.size(), 5u);
    seen.insert(fold.begin(), fold.end());
  }
  EXPECT_EQ(seen.size(), 23u);
}

}  // namespace
}  // namespace cpclean
