#include "data/value.h"

#include <gtest/gtest.h>

namespace cpclean {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_FALSE(v.is_categorical());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, NumericRoundTrip) {
  const Value v = Value::Numeric(3.25);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.numeric(), 3.25);
  EXPECT_EQ(v.ToString(), "3.25");
}

TEST(ValueTest, CategoricalRoundTrip) {
  const Value v = Value::Categorical("rome");
  EXPECT_TRUE(v.is_categorical());
  EXPECT_EQ(v.categorical(), "rome");
  EXPECT_EQ(v.ToString(), "rome");
}

TEST(ValueTest, EqualityWithinAndAcrossKinds) {
  EXPECT_EQ(Value::Numeric(1.0), Value::Numeric(1.0));
  EXPECT_NE(Value::Numeric(1.0), Value::Numeric(2.0));
  EXPECT_EQ(Value::Categorical("a"), Value::Categorical("a"));
  EXPECT_NE(Value::Categorical("a"), Value::Categorical("b"));
  EXPECT_NE(Value::Numeric(0.0), Value::Null());
  EXPECT_NE(Value::Numeric(0.0), Value::Categorical("0"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

}  // namespace
}  // namespace cpclean
