#include "data/csv.h"

#include <gtest/gtest.h>

namespace cpclean {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  const auto table =
      ReadCsvString("age,city\n30,rome\n25,paris\n").value();
  EXPECT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.schema().field(0).type, ColumnType::kNumeric);
  EXPECT_EQ(table.schema().field(1).type, ColumnType::kCategorical);
  EXPECT_DOUBLE_EQ(table.at(0, 0).numeric(), 30.0);
  EXPECT_EQ(table.at(1, 1).categorical(), "paris");
}

TEST(CsvTest, NullTokens) {
  const auto table = ReadCsvString(
                         "a,b,c\n"
                         "1,,x\n"
                         "NA,null,?\n"
                         "3,4,y\n")
                         .value();
  EXPECT_TRUE(table.at(0, 1).is_null());
  EXPECT_TRUE(table.at(1, 0).is_null());
  EXPECT_TRUE(table.at(1, 1).is_null());
  EXPECT_TRUE(table.at(1, 2).is_null());
  EXPECT_EQ(table.CountMissing(), 4);
  // Column "a" is numeric despite the NA.
  EXPECT_EQ(table.schema().field(0).type, ColumnType::kNumeric);
}

TEST(CsvTest, QuotedFields) {
  const auto table = ReadCsvString(
                         "name,notes\n"
                         "\"crib, grey\",\"says \"\"new\"\"\"\n")
                         .value();
  EXPECT_EQ(table.at(0, 0).categorical(), "crib, grey");
  EXPECT_EQ(table.at(0, 1).categorical(), "says \"new\"");
}

TEST(CsvTest, MixedTypeColumnFallsBackToCategorical) {
  const auto table = ReadCsvString("x\n1\ntwo\n3\n").value();
  EXPECT_EQ(table.schema().field(0).type, ColumnType::kCategorical);
  EXPECT_EQ(table.at(0, 0).categorical(), "1");
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions options;
  options.has_header = false;
  const auto table = ReadCsvString("1,2\n3,4\n", options).value();
  EXPECT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.schema().field(0).name, "col0");
  EXPECT_EQ(table.schema().field(1).name, "col1");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1,2\n3\n").ok());
}

TEST(CsvTest, RejectsEmptyAndUnterminatedQuote) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a\n\"oops\n").ok());
}

TEST(CsvTest, SkipsBlankLinesAndCrLf) {
  const auto table = ReadCsvString("a,b\r\n1,2\r\n\r\n3,4\r\n").value();
  EXPECT_EQ(table.num_rows(), 2);
  EXPECT_DOUBLE_EQ(table.at(1, 1).numeric(), 4.0);
}

TEST(CsvTest, WriteReadRoundTrip) {
  const auto original = ReadCsvString(
                            "age,city,score\n"
                            "30,rome,1.5\n"
                            ",paris,2\n"
                            "41,,3.25\n")
                            .value();
  const std::string serialized = WriteCsvString(original);
  const auto reparsed = ReadCsvString(serialized).value();
  ASSERT_EQ(reparsed.num_rows(), original.num_rows());
  ASSERT_EQ(reparsed.num_columns(), original.num_columns());
  for (int r = 0; r < original.num_rows(); ++r) {
    for (int c = 0; c < original.num_columns(); ++c) {
      EXPECT_EQ(reparsed.at(r, c), original.at(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  const auto original =
      ReadCsvString("x,y\n1,a\n2,b\n").value();
  const std::string path = ::testing::TempDir() + "/cpclean_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  const auto loaded = ReadCsvFile(path).value();
  EXPECT_EQ(loaded.num_rows(), 2);
  EXPECT_EQ(loaded.at(1, 1).categorical(), "b");
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace cpclean
