#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace cpclean {
namespace {

TEST(AccuracyScoreTest, CountsMatches) {
  EXPECT_DOUBLE_EQ(AccuracyScore({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(AccuracyScore({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(AccuracyScore({2, 2}, {2, 2}), 1.0);
}

TEST(GapClosedTest, MatchesPaperDefinition) {
  // Supreme row of Table 2: GT .968, Default .877.
  EXPECT_NEAR(GapClosed(0.968, 0.877, 0.968), 1.0, 1e-12);   // CPClean
  EXPECT_NEAR(GapClosed(0.877, 0.877, 0.968), 0.0, 1e-12);   // Default
  EXPECT_NEAR(GapClosed(0.888, 0.877, 0.968), 0.12, 0.01);   // BoostClean
  // HoloClean on Supreme closes -4%: worse than default cleaning.
  EXPECT_LT(GapClosed(0.873, 0.877, 0.968), 0.0);
}

TEST(GapClosedTest, DegenerateGapReturnsZero) {
  EXPECT_DOUBLE_EQ(GapClosed(0.9, 0.8, 0.8), 0.0);
}

TEST(GapClosedTest, CanExceedOne) {
  EXPECT_GT(GapClosed(0.95, 0.8, 0.9), 1.0);  // Bank/Puma show 102%
}

TEST(ConfusionMatrixTest, CountsByExpectedRow) {
  const auto m = ConfusionMatrix({0, 1, 1, 0}, {0, 1, 0, 0}, 2);
  EXPECT_EQ(m[0][0], 2);
  EXPECT_EQ(m[0][1], 1);
  EXPECT_EQ(m[1][0], 0);
  EXPECT_EQ(m[1][1], 1);
}

}  // namespace
}  // namespace cpclean
