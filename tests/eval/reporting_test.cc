#include "eval/reporting.h"

#include <gtest/gtest.h>

namespace cpclean {
namespace {

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"Dataset", "Acc"});
  table.AddRow({"Supreme", "0.968"});
  table.AddRow({"B", "1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Dataset | Acc   |"), std::string::npos);
  EXPECT_NE(out.find("| Supreme | 0.968 |"), std::string::npos);
  EXPECT_NE(out.find("| B       | 1     |"), std::string::npos);
  EXPECT_NE(out.find("|---------|-------|"), std::string::npos);
}

TEST(FormattingTest, Doubles) {
  EXPECT_EQ(FormatDouble(0.96825, 3), "0.968");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
  EXPECT_EQ(FormatPercent(0.64), "64%");
  EXPECT_EQ(FormatPercent(0.1234, 1), "12.3%");
  EXPECT_EQ(FormatPercent(-0.04), "-4%");
}

}  // namespace
}  // namespace cpclean
