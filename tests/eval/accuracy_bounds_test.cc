#include "eval/accuracy_bounds.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/similarity.h"
#include "knn/kernel.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

TEST(AccuracyBoundsTest, CompleteDatasetIsTight) {
  RandomDatasetSpec spec;
  spec.num_examples = 12;
  spec.max_candidates = 1;
  spec.seed = 3;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  std::vector<std::vector<double>> eval_x;
  std::vector<int> eval_y;
  for (int i = 0; i < 10; ++i) {
    eval_x.push_back(MakeRandomTestPoint(spec.dim, static_cast<uint64_t>(i)));
    eval_y.push_back(i % 2);
  }
  const AccuracyBounds bounds =
      ComputeAccuracyBounds(dataset, eval_x, eval_y, kernel, 3);
  EXPECT_TRUE(bounds.IsTight());
  EXPECT_DOUBLE_EQ(bounds.lower, bounds.upper);
  EXPECT_EQ(bounds.uncertain, 0);
}

TEST(AccuracyBoundsTest, BoundsContainEveryWorldAccuracy) {
  // Enumerate all worlds of a small incomplete dataset: each world's exact
  // accuracy must land inside the reported interval.
  RandomDatasetSpec spec;
  spec.num_examples = 6;
  spec.max_candidates = 3;
  spec.seed = 11;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  std::vector<std::vector<double>> eval_x;
  std::vector<int> eval_y;
  for (int i = 0; i < 12; ++i) {
    eval_x.push_back(
        MakeRandomTestPoint(spec.dim, 100 + static_cast<uint64_t>(i)));
    eval_y.push_back(i % 2);
  }
  const AccuracyBounds bounds =
      ComputeAccuracyBounds(dataset, eval_x, eval_y, kernel, 3);

  for (PossibleWorldIterator it(&dataset); it.Valid(); it.Next()) {
    int correct = 0;
    for (size_t i = 0; i < eval_x.size(); ++i) {
      const auto sims = SimilarityMatrix(dataset, eval_x[i], kernel);
      if (PredictWorld(dataset, sims, it.choice(), 3) == eval_y[i]) {
        ++correct;
      }
    }
    const double acc = static_cast<double>(correct) / eval_x.size();
    EXPECT_GE(acc, bounds.lower - 1e-12);
    EXPECT_LE(acc, bounds.upper + 1e-12);
  }
}

TEST(AccuracyBoundsTest, CountsPartitionTheEvalSet) {
  RandomDatasetSpec spec;
  spec.num_examples = 10;
  spec.max_candidates = 3;
  spec.seed = 17;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  std::vector<std::vector<double>> eval_x;
  std::vector<int> eval_y;
  for (int i = 0; i < 20; ++i) {
    eval_x.push_back(
        MakeRandomTestPoint(spec.dim, 200 + static_cast<uint64_t>(i)));
    eval_y.push_back(i % 2);
  }
  const AccuracyBounds bounds =
      ComputeAccuracyBounds(dataset, eval_x, eval_y, kernel, 3);
  EXPECT_EQ(bounds.certain_correct + bounds.certain_incorrect +
                bounds.uncertain,
            20);
  EXPECT_LE(bounds.lower, bounds.upper);
  EXPECT_GE(bounds.lower, 0.0);
  EXPECT_LE(bounds.upper, 1.0);
}

TEST(AccuracyBoundsTest, EmptyEvalSet) {
  RandomDatasetSpec spec;
  spec.num_examples = 5;
  spec.seed = 23;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  const AccuracyBounds bounds =
      ComputeAccuracyBounds(dataset, {}, {}, kernel, 3);
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 0.0);
  EXPECT_TRUE(bounds.IsTight());
}

}  // namespace
}  // namespace cpclean
