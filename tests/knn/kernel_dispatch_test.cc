// Cross-ISA bit-identity for the runtime-dispatched similarity kernels:
// every compiled-and-runnable dispatch level must reproduce the
// lane-structured scalar reference bit for bit — not within ulps — for all
// four kernels, across dimensions that exercise the 8-lane blocking (below
// one block, exactly one block, block+remainder). Plus the resolution
// policy: auto-select, forced downgrades, and the loud rejection paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "knn/kernel.h"
#include "knn/kernel_simd.h"

namespace cpclean {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// EXPECT_EQ on raw bit patterns: EXPECT_DOUBLE_EQ's 4-ulp tolerance would
/// hide exactly the drift this suite exists to forbid.
void ExpectBitIdentical(const std::vector<double>& want,
                        const std::vector<double>& got,
                        const std::string& context) {
  ASSERT_EQ(want.size(), got.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(Bits(want[i]), Bits(got[i]))
        << context << " row " << i << ": scalar " << want[i] << " vs "
        << got[i];
  }
}

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd::TableForLevel(level) != nullptr) levels.push_back(level);
  }
  return levels;
}

struct Shape {
  int n;
  int dim;
};

TEST(KernelDispatchTest, ScalarTableAlwaysAvailable) {
  ASSERT_NE(simd::TableForLevel(SimdLevel::kScalar), nullptr);
  EXPECT_EQ(simd::TableForLevel(SimdLevel::kScalar)->level,
            SimdLevel::kScalar);
}

TEST(KernelDispatchTest, AllKernelsBitIdenticalAcrossLevels) {
  const simd::KernelBatchTable& ref = *simd::TableForLevel(SimdLevel::kScalar);
  Rng rng(123);
  // Odd dims straddle the 8-lane blocking; n=17 exercises multi-row strides.
  for (const Shape shape : {Shape{1, 1}, Shape{3, 7}, Shape{4, 8},
                            Shape{5, 9}, Shape{2, 64}, Shape{17, 65}}) {
    const int n = shape.n, dim = shape.dim;
    std::vector<double> rows(static_cast<size_t>(n) * dim);
    std::vector<double> t(static_cast<size_t>(dim));
    std::vector<double> norms(static_cast<size_t>(n));
    for (auto& v : rows) v = rng.NextDouble(-3, 3);
    for (auto& v : t) v = rng.NextDouble(-3, 3);
    for (int r = 0; r < n; ++r) {
      norms[static_cast<size_t>(r)] = simd::LaneDot(
          rows.data() + static_cast<size_t>(r) * dim,
          rows.data() + static_cast<size_t>(r) * dim, dim);
    }
    std::vector<double> want(static_cast<size_t>(n));
    std::vector<double> got(static_cast<size_t>(n));
    for (const SimdLevel level : AvailableLevels()) {
      const simd::KernelBatchTable& table = *simd::TableForLevel(level);
      const std::string ctx = std::string(SimdLevelName(level)) + " n=" +
                              std::to_string(n) + " dim=" +
                              std::to_string(dim);
      ref.neg_euclidean(rows.data(), n, dim, t.data(), want.data());
      table.neg_euclidean(rows.data(), n, dim, t.data(), got.data());
      ExpectBitIdentical(want, got, "neg_euclidean " + ctx);

      ref.neg_euclidean_norms(rows.data(), norms.data(), n, dim, t.data(),
                              want.data());
      table.neg_euclidean_norms(rows.data(), norms.data(), n, dim, t.data(),
                                got.data());
      ExpectBitIdentical(want, got, "neg_euclidean_norms " + ctx);

      ref.rbf(rows.data(), n, dim, t.data(), 0.7, want.data());
      table.rbf(rows.data(), n, dim, t.data(), 0.7, got.data());
      ExpectBitIdentical(want, got, "rbf " + ctx);

      ref.rbf_norms(rows.data(), norms.data(), n, dim, t.data(), 0.7,
                    want.data());
      table.rbf_norms(rows.data(), norms.data(), n, dim, t.data(), 0.7,
                      got.data());
      ExpectBitIdentical(want, got, "rbf_norms " + ctx);

      ref.linear(rows.data(), n, dim, t.data(), want.data());
      table.linear(rows.data(), n, dim, t.data(), got.data());
      ExpectBitIdentical(want, got, "linear " + ctx);

      ref.cosine(rows.data(), n, dim, t.data(), want.data());
      table.cosine(rows.data(), n, dim, t.data(), got.data());
      ExpectBitIdentical(want, got, "cosine " + ctx);

      ref.cosine_norms(rows.data(), norms.data(), n, dim, t.data(),
                       want.data());
      table.cosine_norms(rows.data(), norms.data(), n, dim, t.data(),
                         got.data());
      ExpectBitIdentical(want, got, "cosine_norms " + ctx);
    }
  }
}

TEST(KernelDispatchTest, EmptyBatchIsANoOpOnEveryLevel) {
  const double t[3] = {1.0, 2.0, 3.0};
  for (const SimdLevel level : AvailableLevels()) {
    const simd::KernelBatchTable& table = *simd::TableForLevel(level);
    double sentinel = -7.0;
    table.neg_euclidean(nullptr, 0, 3, t, &sentinel);
    table.neg_euclidean_norms(nullptr, nullptr, 0, 3, t, &sentinel);
    table.rbf(nullptr, 0, 3, t, 0.7, &sentinel);
    table.rbf_norms(nullptr, nullptr, 0, 3, t, 0.7, &sentinel);
    table.linear(nullptr, 0, 3, t, &sentinel);
    table.cosine(nullptr, 0, 3, t, &sentinel);
    table.cosine_norms(nullptr, nullptr, 0, 3, t, &sentinel);
    EXPECT_DOUBLE_EQ(sentinel, -7.0) << SimdLevelName(level);
  }
}

TEST(KernelDispatchTest, NullNormsForwardToPlainBatchThroughPublicApi) {
  // The null-forwarding guard lives in the public kernel wrappers (the
  // tables require non-null norms); whichever level is active, the two
  // entry points must agree bit-for-bit when norms are absent.
  Rng rng(9);
  const int n = 5, dim = 9;
  std::vector<double> rows(static_cast<size_t>(n) * dim);
  std::vector<double> t(static_cast<size_t>(dim));
  for (auto& v : rows) v = rng.NextDouble(-3, 3);
  for (auto& v : t) v = rng.NextDouble(-3, 3);
  std::vector<double> plain(static_cast<size_t>(n));
  std::vector<double> via_null(static_cast<size_t>(n));
  for (const KernelKind kind :
       {KernelKind::kNegativeEuclidean, KernelKind::kRbf, KernelKind::kLinear,
        KernelKind::kCosine}) {
    const auto kernel = MakeKernel(kind, 0.7);
    kernel->SimilarityBatch(rows.data(), n, dim, t.data(), plain.data());
    kernel->SimilarityBatchNorms(rows.data(), nullptr, n, dim, t.data(),
                                 via_null.data());
    ExpectBitIdentical(plain, via_null, kernel->name() + " null-norms");
  }
}

TEST(KernelDispatchTest, ActiveLevelIsRunnableAndConsistent) {
  const SimdLevel active = simd::ActiveSimdLevel();
  EXPECT_LE(active, DetectSimdLevel());
  EXPECT_LE(active, simd::MaxCompiledSimdLevel());
  ASSERT_NE(simd::TableForLevel(active), nullptr);
  EXPECT_EQ(simd::ActiveTable().level, active);
}

// --- Resolution policy / env-override rejection ------------------------------

TEST(SimdResolveTest, AutoSelectsMinOfDetectedAndCompiled) {
  const Result<SimdLevel> a =
      ResolveSimdLevel(nullptr, SimdLevel::kAvx512, SimdLevel::kAvx2);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), SimdLevel::kAvx2);
  const Result<SimdLevel> b =
      ResolveSimdLevel("", SimdLevel::kAvx2, SimdLevel::kAvx512);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), SimdLevel::kAvx2);
  const Result<SimdLevel> c =
      ResolveSimdLevel(nullptr, SimdLevel::kScalar, SimdLevel::kAvx512);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), SimdLevel::kScalar);
}

TEST(SimdResolveTest, AutoCapsAtAvx2ButForcedAvx512IsHonored) {
  // The single-chain lane shape makes AVX-512 slower than AVX2 on the
  // kernels (committed BM_SimilarityBatch_Dispatch rows), so auto never
  // picks it — but an explicit override still gets it.
  const Result<SimdLevel> silent =
      ResolveSimdLevel(nullptr, SimdLevel::kAvx512, SimdLevel::kAvx512);
  ASSERT_TRUE(silent.ok());
  EXPECT_EQ(silent.value(), SimdLevel::kAvx2);
  const Result<SimdLevel> forced =
      ResolveSimdLevel("avx512", SimdLevel::kAvx512, SimdLevel::kAvx512);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced.value(), SimdLevel::kAvx512);
}

TEST(SimdResolveTest, ForcedDowngradeAlwaysHonored) {
  for (const char* name : {"scalar", "avx2", "avx512"}) {
    const Result<SimdLevel> r =
        ResolveSimdLevel(name, SimdLevel::kAvx512, SimdLevel::kAvx512);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_STREQ(SimdLevelName(r.value()), name);
  }
}

TEST(SimdResolveTest, RejectsLevelAboveHardware) {
  const Result<SimdLevel> r =
      ResolveSimdLevel("avx512", SimdLevel::kAvx2, SimdLevel::kAvx512);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("host supports at most"),
            std::string::npos);
}

TEST(SimdResolveTest, RejectsLevelAboveCompiled) {
  const Result<SimdLevel> r =
      ResolveSimdLevel("avx2", SimdLevel::kAvx512, SimdLevel::kScalar);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("built without"), std::string::npos);
}

TEST(SimdResolveTest, RejectsUnknownName) {
  const Result<SimdLevel> r =
      ResolveSimdLevel("sse9", SimdLevel::kAvx512, SimdLevel::kAvx512);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  ASSERT_FALSE(ParseSimdLevel("AVX2").ok());  // case-sensitive, like the env
}

TEST(SimdResolveTest, ParseRoundTripsEveryName) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    const Result<SimdLevel> parsed = ParseSimdLevel(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), level);
  }
}

}  // namespace
}  // namespace cpclean
