#include "knn/kernel.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cpclean {
namespace {

TEST(NegativeEuclideanTest, ZeroAtIdentityAndSymmetric) {
  NegativeEuclideanKernel kernel;
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(kernel.Similarity(a, a), 0.0);
  EXPECT_DOUBLE_EQ(kernel.Similarity(a, b), -25.0);  // 3^2 + 4^2
  EXPECT_DOUBLE_EQ(kernel.Similarity(a, b), kernel.Similarity(b, a));
}

TEST(NegativeEuclideanTest, CloserIsMoreSimilar) {
  NegativeEuclideanKernel kernel;
  const std::vector<double> t = {0.0};
  EXPECT_GT(kernel.Similarity({1.0}, t), kernel.Similarity({2.0}, t));
}

TEST(RbfTest, RangeAndMonotonicity) {
  RbfKernel kernel(0.5);
  const std::vector<double> t = {0.0};
  EXPECT_DOUBLE_EQ(kernel.Similarity(t, t), 1.0);
  const double near = kernel.Similarity({1.0}, t);
  const double far = kernel.Similarity({3.0}, t);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
  EXPECT_NEAR(near, std::exp(-0.5), 1e-12);
}

TEST(RbfTest, RankEquivalentToNegativeEuclidean) {
  RbfKernel rbf(1.3);
  NegativeEuclideanKernel neg;
  const std::vector<double> t = {0.2, -0.1};
  const std::vector<std::vector<double>> points = {
      {0.0, 0.0}, {1.0, 1.0}, {-0.5, 0.3}, {2.0, -2.0}};
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); ++j) {
      EXPECT_EQ(rbf.Similarity(points[i], t) > rbf.Similarity(points[j], t),
                neg.Similarity(points[i], t) > neg.Similarity(points[j], t));
    }
  }
}

TEST(LinearTest, DotProduct) {
  LinearKernel kernel;
  EXPECT_DOUBLE_EQ(kernel.Similarity({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(kernel.Similarity({0, 0}, {1, 1}), 0.0);
}

TEST(CosineTest, NormalizedAndZeroSafe) {
  CosineKernel kernel;
  EXPECT_NEAR(kernel.Similarity({1, 0}, {2, 0}), 1.0, 1e-12);
  EXPECT_NEAR(kernel.Similarity({1, 0}, {0, 3}), 0.0, 1e-12);
  EXPECT_NEAR(kernel.Similarity({1, 1}, {-1, -1}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(kernel.Similarity({0, 0}, {1, 1}), 0.0);
}

TEST(KernelFactoryTest, MakesEveryKind) {
  EXPECT_EQ(MakeKernel(KernelKind::kNegativeEuclidean)->name(),
            "neg_euclidean");
  EXPECT_EQ(MakeKernel(KernelKind::kRbf, 2.0)->name(), "rbf");
  EXPECT_EQ(MakeKernel(KernelKind::kLinear)->name(), "linear");
  EXPECT_EQ(MakeKernel(KernelKind::kCosine)->name(), "cosine");
}

}  // namespace
}  // namespace cpclean
