#include "knn/knn_classifier.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

class KnnClassifierTest : public ::testing::Test {
 protected:
  NegativeEuclideanKernel kernel_;
};

TEST_F(KnnClassifierTest, OneNearestNeighbor) {
  const KnnClassifier knn({{0.0}, {10.0}}, {0, 1}, 2, 1, &kernel_);
  EXPECT_EQ(knn.Predict({1.0}), 0);
  EXPECT_EQ(knn.Predict({9.0}), 1);
}

TEST_F(KnnClassifierTest, MajorityAmongThree) {
  // Two label-1 points near the query beat one label-0 point on top.
  const KnnClassifier knn({{0.0}, {1.0}, {2.0}, {50.0}}, {1, 0, 1, 0}, 2, 3,
                          &kernel_);
  EXPECT_EQ(knn.Predict({1.0}), 1);
}

TEST_F(KnnClassifierTest, NeighborsSortedMostSimilarFirst) {
  const KnnClassifier knn({{0.0}, {1.0}, {2.0}, {3.0}}, {0, 0, 1, 1}, 2, 3,
                          &kernel_);
  EXPECT_EQ(knn.Neighbors({2.1}), (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(knn.NeighborTally({2.1}), (std::vector<int>{1, 2}));
}

TEST_F(KnnClassifierTest, VoteTieGoesToSmallerLabel) {
  const KnnClassifier knn({{0.0}, {2.0}}, {1, 0}, 2, 2, &kernel_);
  // Both neighbors always selected: tally {1,1} -> label 0.
  EXPECT_EQ(knn.Predict({1.0}), 0);
}

TEST_F(KnnClassifierTest, KEqualsNUsesEveryone) {
  const KnnClassifier knn({{0.0}, {1.0}, {2.0}}, {1, 1, 0}, 2, 3, &kernel_);
  EXPECT_EQ(knn.Predict({100.0}), 1);  // majority label regardless of query
}

TEST_F(KnnClassifierTest, AccuracyOnSeparableClusters) {
  Rng rng(17);
  std::vector<std::vector<double>> train;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    const int y = i % 2;
    train.push_back({rng.NextGaussian(y == 0 ? -3.0 : 3.0, 0.5),
                     rng.NextGaussian(0.0, 0.5)});
    labels.push_back(y);
  }
  const KnnClassifier knn(train, labels, 2, 3, &kernel_);
  std::vector<std::vector<double>> tests;
  std::vector<int> expected;
  for (int i = 0; i < 50; ++i) {
    const int y = i % 2;
    tests.push_back({rng.NextGaussian(y == 0 ? -3.0 : 3.0, 0.5),
                     rng.NextGaussian(0.0, 0.5)});
    expected.push_back(y);
  }
  EXPECT_GT(knn.Accuracy(tests, expected), 0.95);
}

TEST_F(KnnClassifierTest, MulticlassPrediction) {
  const KnnClassifier knn({{0.0}, {5.0}, {10.0}}, {0, 1, 2}, 3, 1, &kernel_);
  EXPECT_EQ(knn.Predict({-1.0}), 0);
  EXPECT_EQ(knn.Predict({5.2}), 1);
  EXPECT_EQ(knn.Predict({20.0}), 2);
}

TEST_F(KnnClassifierTest, DuplicatePointsDeterministic) {
  // Identical coordinates: the shared total order must still produce a
  // deterministic neighbor set (later tuple index wins the similarity tie).
  const KnnClassifier knn({{1.0}, {1.0}, {1.0}}, {0, 1, 1}, 2, 1, &kernel_);
  EXPECT_EQ(knn.Predict({1.0}), 1);  // tuple 2 (label 1) tops the tie order
}

}  // namespace
}  // namespace cpclean
