#include <gtest/gtest.h>

#include "knn/ordering.h"
#include "knn/top_k.h"
#include "knn/vote.h"

namespace cpclean {
namespace {

TEST(OrderingTest, StrictTotalOrderBreaksTies) {
  const ScoredCandidate a{1.0, 0, 0};
  const ScoredCandidate b{1.0, 0, 1};  // same sim, later candidate
  const ScoredCandidate c{1.0, 1, 0};  // same sim, later tuple
  const ScoredCandidate d{2.0, 0, 0};
  EXPECT_TRUE(LessSimilar(a, b));
  EXPECT_TRUE(LessSimilar(b, c));
  EXPECT_TRUE(LessSimilar(a, d));
  EXPECT_FALSE(LessSimilar(b, a));
  EXPECT_FALSE(LessSimilar(a, a));
  EXPECT_TRUE(MoreSimilar(d, a));
}

TEST(TopKTest, PicksLargestInOrder) {
  const std::vector<ScoredCandidate> items = {
      {0.1, 0, 0}, {0.9, 1, 0}, {0.5, 2, 0}, {0.7, 3, 0}};
  EXPECT_EQ(SelectTopK(items, 1), (std::vector<int>{1}));
  EXPECT_EQ(SelectTopK(items, 2), (std::vector<int>{1, 3}));
  EXPECT_EQ(SelectTopK(items, 4), (std::vector<int>{1, 3, 2, 0}));
}

TEST(TopKTest, TieBreaksByTupleThenCandidate) {
  const std::vector<ScoredCandidate> items = {
      {0.5, 2, 0}, {0.5, 0, 1}, {0.5, 0, 0}, {0.5, 1, 0}};
  // All similarities equal: the order is by (tuple, candidate) descending
  // for "more similar"... larger tuple/candidate wins under the total order.
  EXPECT_EQ(SelectTopK(items, 2), (std::vector<int>{0, 3}));
}

TEST(TopKTest, BoundaryIsLeastSimilarOfTopK) {
  const std::vector<ScoredCandidate> items = {
      {0.1, 0, 0}, {0.9, 1, 0}, {0.5, 2, 0}, {0.7, 3, 0}};
  const ScoredCandidate boundary = TopKBoundary(items, 3);
  EXPECT_EQ(boundary.tuple, 2);
  EXPECT_DOUBLE_EQ(boundary.similarity, 0.5);
}

TEST(VoteTest, TallyCounts) {
  EXPECT_EQ(TallyLabels({0, 1, 1, 2, 1}, 3), (std::vector<int>{1, 3, 1}));
  EXPECT_EQ(TallyLabels({}, 2), (std::vector<int>{0, 0}));
}

TEST(VoteTest, ArgMaxPrefersSmallerLabelOnTie) {
  EXPECT_EQ(ArgMaxLabel({2, 2}), 0);
  EXPECT_EQ(ArgMaxLabel({1, 2, 2}), 1);
  EXPECT_EQ(ArgMaxLabel({0, 0, 3}), 2);
  EXPECT_EQ(ArgMaxLabel({5}), 0);
}

TEST(VoteTest, MajorityVoteEndToEnd) {
  EXPECT_EQ(MajorityVote({1, 0, 1}, 2), 1);
  EXPECT_EQ(MajorityVote({0, 1}, 2), 0);  // tie -> smaller label
  EXPECT_EQ(MajorityVote({2, 2, 1}, 3), 2);
}

}  // namespace
}  // namespace cpclean
