// Batch-vs-scalar equality for every kernel: the batched entry points must
// agree with the scalar path across odd dimensions, empty inputs, and the
// norm-accelerated variants (which may differ only by float-rounding ulps).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

struct Case {
  KernelKind kind;
  const char* name;
};

class KernelBatchTest : public ::testing::TestWithParam<Case> {};

std::vector<double> RandomRow(Rng* rng, int dim) {
  std::vector<double> row(static_cast<size_t>(dim));
  for (auto& v : row) v = rng->NextDouble(-3, 3);
  return row;
}

TEST_P(KernelBatchTest, BatchMatchesScalarAcrossShapes) {
  const auto kernel = MakeKernel(GetParam().kind, /*gamma=*/0.7);
  ASSERT_NE(kernel, nullptr);
  Rng rng(42);
  for (const int dim : {1, 2, 3, 5, 7, 13, 64}) {
    for (const int n : {1, 2, 4, 17}) {
      std::vector<double> rows;
      std::vector<double> norms;
      for (int r = 0; r < n; ++r) {
        const std::vector<double> row = RandomRow(&rng, dim);
        double sq = 0.0;
        for (const double v : row) sq += v * v;
        norms.push_back(sq);
        rows.insert(rows.end(), row.begin(), row.end());
      }
      const std::vector<double> t = RandomRow(&rng, dim);

      std::vector<double> batch(static_cast<size_t>(n), -123.0);
      kernel->SimilarityBatch(rows.data(), n, dim, t.data(), batch.data());
      std::vector<double> batch_norms(static_cast<size_t>(n), -123.0);
      kernel->SimilarityBatchNorms(rows.data(), norms.data(), n, dim,
                                   t.data(), batch_norms.data());

      for (int r = 0; r < n; ++r) {
        const double scalar = kernel->SimilarityRaw(
            rows.data() + static_cast<size_t>(r) * dim, t.data(), dim);
        EXPECT_DOUBLE_EQ(batch[static_cast<size_t>(r)], scalar)
            << GetParam().name << " dim=" << dim << " row=" << r;
        // The norm expansion reassociates the arithmetic; allow ulp-scale
        // relative drift only.
        EXPECT_NEAR(batch_norms[static_cast<size_t>(r)], scalar,
                    1e-9 * (1.0 + std::abs(scalar)))
            << GetParam().name << " (norms) dim=" << dim << " row=" << r;
      }
    }
  }
}

TEST_P(KernelBatchTest, EmptyBatchIsANoOp) {
  const auto kernel = MakeKernel(GetParam().kind, 0.7);
  const double t[3] = {1.0, 2.0, 3.0};
  double sentinel = -7.0;
  kernel->SimilarityBatch(nullptr, 0, 3, t, &sentinel);
  kernel->SimilarityBatchNorms(nullptr, nullptr, 0, 3, t, &sentinel);
  EXPECT_DOUBLE_EQ(sentinel, -7.0);
}

TEST_P(KernelBatchTest, NullNormsFallBackToPlainBatch) {
  const auto kernel = MakeKernel(GetParam().kind, 0.7);
  Rng rng(7);
  const int dim = 5, n = 6;
  std::vector<double> rows;
  for (int r = 0; r < n; ++r) {
    const auto row = RandomRow(&rng, dim);
    rows.insert(rows.end(), row.begin(), row.end());
  }
  const auto t = RandomRow(&rng, dim);
  std::vector<double> plain(static_cast<size_t>(n));
  std::vector<double> viaNull(static_cast<size_t>(n));
  kernel->SimilarityBatch(rows.data(), n, dim, t.data(), plain.data());
  kernel->SimilarityBatchNorms(rows.data(), nullptr, n, dim, t.data(),
                               viaNull.data());
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(plain[static_cast<size_t>(r)],
                     viaNull[static_cast<size_t>(r)]);
  }
}

TEST_P(KernelBatchTest, IdenticalRowScoresAsMostSimilar) {
  // a == t must score exactly as "identical" through the norm expansion
  // too: neg-Euclidean 0, RBF 1, cosine 1 (guards the cancellation clamp).
  const auto kernel = MakeKernel(GetParam().kind, 0.7);
  Rng rng(11);
  const int dim = 9;
  const auto t = RandomRow(&rng, dim);
  double norm = 0.0;
  for (const double v : t) norm += v * v;
  double out = -123.0;
  kernel->SimilarityBatchNorms(t.data(), &norm, 1, dim, t.data(), &out);
  switch (GetParam().kind) {
    case KernelKind::kNegativeEuclidean:
      EXPECT_DOUBLE_EQ(out, 0.0);
      break;
    case KernelKind::kRbf:
      EXPECT_DOUBLE_EQ(out, 1.0);
      break;
    case KernelKind::kCosine:
      EXPECT_NEAR(out, 1.0, 1e-12);
      break;
    case KernelKind::kLinear:
      EXPECT_DOUBLE_EQ(out, norm);
      break;
  }
}

TEST(KernelBatchVectorApiTest, VectorSimilarityStillWorks) {
  // The pre-batch scalar API is the compatibility surface for single-pair
  // callers (KNN over complete data); it must match SimilarityRaw exactly.
  NegativeEuclideanKernel kernel;
  const std::vector<double> a = {0.0, 0.0}, b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(kernel.Similarity(a, b), -25.0);
  EXPECT_DOUBLE_EQ(kernel.Similarity(a, b),
                   kernel.SimilarityRaw(a.data(), b.data(), 2));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelBatchTest,
    ::testing::Values(Case{KernelKind::kNegativeEuclidean, "neg_euclidean"},
                      Case{KernelKind::kRbf, "rbf"},
                      Case{KernelKind::kLinear, "linear"},
                      Case{KernelKind::kCosine, "cosine"}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace cpclean
