#include "cleaning/missing_injector.h"

#include <gtest/gtest.h>

#include "cleaning/importance.h"
#include "datasets/synthetic.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

Table MakeCleanTable(int rows) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_numeric = 5;
  spec.num_categorical = 0;
  spec.seed = 11;
  return GenerateSynthetic(spec).value();
}

TEST(MissingInjectorTest, HitsTargetRate) {
  const Table clean = MakeCleanTable(200);
  const int label_col = clean.schema().FieldIndex("label").value();
  std::vector<double> importance(6, 1.0);
  InjectionOptions options;
  options.missing_rate = 0.2;
  Rng rng(3);
  const Table dirty =
      InjectMissing(clean, label_col, importance, options, &rng).value();
  const int feature_cells = 200 * 5;
  EXPECT_EQ(dirty.CountMissing(),
            static_cast<int>(0.2 * feature_cells));
  // Never injects into the label column.
  EXPECT_EQ(dirty.CountMissingInColumn(label_col), 0);
}

TEST(MissingInjectorTest, RespectsPerRowCap) {
  const Table clean = MakeCleanTable(300);
  const int label_col = clean.schema().FieldIndex("label").value();
  std::vector<double> importance(6, 1.0);
  InjectionOptions options;
  options.missing_rate = 0.3;
  options.max_missing_per_row = 2;
  Rng rng(5);
  const Table dirty =
      InjectMissing(clean, label_col, importance, options, &rng).value();
  for (int r = 0; r < dirty.num_rows(); ++r) {
    EXPECT_LE(dirty.CountMissingInRow(r), 2);
  }
}

TEST(MissingInjectorTest, MnarSkewsTowardImportantFeatures) {
  const Table clean = MakeCleanTable(400);
  const int label_col = clean.schema().FieldIndex("label").value();
  // Column 0 is 20x as important as the rest.
  std::vector<double> importance = {2.0, 0.1, 0.1, 0.1, 0.1, 0.0};
  InjectionOptions options;
  options.missing_rate = 0.1;
  options.max_missing_per_row = 5;
  Rng rng(7);
  const Table dirty =
      InjectMissing(clean, label_col, importance, options, &rng).value();
  const int in_col0 = dirty.CountMissingInColumn(0);
  int elsewhere = 0;
  for (int c = 1; c < 5; ++c) elsewhere += dirty.CountMissingInColumn(c);
  EXPECT_GT(in_col0, elsewhere);  // ~83% expected in column 0
}

TEST(MissingInjectorTest, McarIgnoresImportance) {
  const Table clean = MakeCleanTable(400);
  const int label_col = clean.schema().FieldIndex("label").value();
  std::vector<double> importance = {100.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  InjectionOptions options;
  options.missing_rate = 0.1;
  options.mnar = false;
  options.max_missing_per_row = 5;
  Rng rng(9);
  const Table dirty =
      InjectMissing(clean, label_col, importance, options, &rng).value();
  // Under MCAR roughly 1/5 of the missing cells land in column 0.
  const double frac = static_cast<double>(dirty.CountMissingInColumn(0)) /
                      dirty.CountMissing();
  EXPECT_LT(frac, 0.4);
}

TEST(MissingInjectorTest, ValidatesArguments) {
  const Table clean = MakeCleanTable(10);
  const int label_col = clean.schema().FieldIndex("label").value();
  Rng rng(1);
  InjectionOptions bad_rate;
  bad_rate.missing_rate = 1.0;
  EXPECT_FALSE(InjectMissing(clean, label_col, std::vector<double>(6, 1.0),
                             bad_rate, &rng)
                   .ok());
  EXPECT_FALSE(InjectMissing(clean, label_col, {1.0}, InjectionOptions(), &rng)
                   .ok());
}

TEST(FeatureImportanceTest, DetectsInformativeFeature) {
  // Label is driven overwhelmingly by feature 0 (importance_decay small).
  SyntheticSpec spec;
  spec.num_rows = 300;
  spec.num_numeric = 4;
  spec.num_categorical = 0;
  spec.noise_sigma = 0.1;
  spec.importance_decay = 0.25;
  spec.seed = 31;
  const Table table = GenerateSynthetic(spec).value();
  const Table train = table.SelectRows([&] {
    std::vector<int> idx;
    for (int i = 0; i < 200; ++i) idx.push_back(i);
    return idx;
  }());
  const Table val = table.SelectRows([&] {
    std::vector<int> idx;
    for (int i = 200; i < 300; ++i) idx.push_back(i);
    return idx;
  }());
  const int label_col = table.schema().FieldIndex("label").value();
  NegativeEuclideanKernel kernel;
  const auto importance =
      ComputeFeatureImportance(train, val, label_col, 3, kernel).value();
  EXPECT_EQ(importance.size(), 5u);
  EXPECT_DOUBLE_EQ(importance[static_cast<size_t>(label_col)], 0.0);
  // Feature 0 should be the most important one.
  for (int c = 1; c < 4; ++c) {
    EXPECT_GE(importance[0], importance[static_cast<size_t>(c)]);
  }
  EXPECT_GT(importance[0], 0.05);
}

TEST(FeatureImportanceTest, RequiresCompleteTables) {
  Table table =
      GenerateSynthetic({.num_rows = 20, .num_numeric = 2, .seed = 1}).value();
  Table dirty = table;
  dirty.Set(0, 0, Value::Null());
  NegativeEuclideanKernel kernel;
  const int label_col = table.schema().FieldIndex("label").value();
  EXPECT_FALSE(
      ComputeFeatureImportance(dirty, table, label_col, 3, kernel).ok());
}

}  // namespace
}  // namespace cpclean
