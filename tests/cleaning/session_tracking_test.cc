// Coverage for CleaningSession's tracking options and trace content, plus
// the BuildCleaningTask candidate-space corner cases.

#include <gtest/gtest.h>

#include "cleaning/cp_clean.h"
#include "data/csv.h"
#include "eval/experiment.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

PreparedExperiment MakePrepared(uint64_t seed) {
  ExperimentConfig config;
  config.dataset.name = "unit";
  config.dataset.synthetic.num_rows = 40 + 10 + 16;
  config.dataset.synthetic.num_numeric = 3;
  config.dataset.synthetic.num_categorical = 1;
  config.dataset.synthetic.num_categories = 4;
  config.dataset.synthetic.noise_sigma = 0.4;
  config.dataset.synthetic.seed = seed;
  config.dataset.missing_rate = 0.12;
  config.dataset.val_size = 10;
  config.dataset.test_size = 16;
  config.seed = seed;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

TEST(SessionTrackingTest, EntropyTrackingIsMonotoneOnAverage) {
  const PreparedExperiment prepared = MakePrepared(41);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.track_entropy = true;
  options.track_test_accuracy = false;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  ASSERT_GE(run.steps.size(), 2u);
  // Mean validation entropy must end at 0 (all points certain) and the
  // trace must record strictly-positive entropy at the start if any
  // cleaning was needed.
  EXPECT_DOUBLE_EQ(run.steps.back().mean_val_entropy, 0.0);
  if (run.examples_cleaned > 0) {
    EXPECT_GT(run.steps.front().mean_val_entropy, 0.0);
  }
}

TEST(SessionTrackingTest, DisabledTrackingLeavesZeros) {
  const PreparedExperiment prepared = MakePrepared(43);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.track_test_accuracy = false;
  options.max_cleaned = 2;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  for (const auto& step : run.steps) {
    EXPECT_DOUBLE_EQ(step.test_accuracy, 0.0);
    EXPECT_DOUBLE_EQ(step.mean_val_entropy, 0.0);
  }
  // final_test_accuracy is still computed on demand.
  EXPECT_GT(run.final_test_accuracy, 0.0);
}

TEST(SessionTrackingTest, StepsRecordCleanedExamples) {
  const PreparedExperiment prepared = MakePrepared(47);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.track_test_accuracy = false;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  EXPECT_EQ(run.steps.front().cleaned_example, -1);  // baseline row
  const auto dirty = prepared.task.DirtyRows();
  for (size_t s = 1; s < run.steps.size(); ++s) {
    const int cleaned = run.steps[s].cleaned_example;
    EXPECT_NE(std::find(dirty.begin(), dirty.end(), cleaned), dirty.end())
        << "cleaned a non-dirty row";
    EXPECT_EQ(run.steps[s].step, static_cast<int>(s));
  }
}

TEST(SessionTrackingTest, MixedTypeTaskRunsEndToEnd) {
  // The prepared task above includes a categorical feature column, so this
  // covers one-hot candidate encoding through the whole CPClean loop.
  const PreparedExperiment prepared = MakePrepared(53);
  ASSERT_GT(prepared.dirty_rows, 0);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  EXPECT_TRUE(run.all_val_certain);
}

TEST(CandidateSpaceTest, MultiMissingRowGetsCartesianCandidates) {
  // Two missing cells in one row -> candidate count is the product of the
  // per-cell repair counts (numeric 5 x categorical top-k+1).
  Table clean = ReadCsvString(
                    "x,c,label\n"
                    "1,a,0\n2,b,0\n3,a,1\n4,c,1\n5,b,1\n6,a,0\n")
                    .value();
  Table dirty = clean;
  dirty.Set(0, 0, Value::Null());
  dirty.Set(0, 1, Value::Null());
  const CleaningTask task =
      BuildCleaningTask(dirty, clean, clean, clean, "label").value();
  // 5 numeric stats (distinct here) x (3 distinct categories + other) = 20.
  EXPECT_EQ(task.incomplete.num_candidates(0), 20);
  // The oracle's answer reconstructs something close to the truth.
  const int truth_candidate = task.true_candidate[0];
  EXPECT_GE(truth_candidate, 0);
  EXPECT_LT(truth_candidate, 20);
}

}  // namespace
}  // namespace cpclean
