#include "cleaning/imputers.h"

#include <gtest/gtest.h>

#include "cleaning/holo_clean.h"
#include "data/csv.h"

namespace cpclean {
namespace {

Table MakeDirtyTable() {
  return ReadCsvString(
             "age,city,label\n"
             "10,rome,0\n"
             "20,rome,1\n"
             ",paris,1\n"
             "40,,0\n"
             "30,berlin,1\n")
      .value();
}

TEST(DefaultCleanTest, MeanAndModeImputation) {
  const Table dirty = MakeDirtyTable();
  const Table clean = DefaultCleanImpute(dirty, 2).value();
  EXPECT_EQ(clean.CountMissing(), 0);
  EXPECT_DOUBLE_EQ(clean.at(2, 0).numeric(), 25.0);  // mean of 10,20,40,30
  EXPECT_EQ(clean.at(3, 1).categorical(), "rome");   // mode
  // Untouched cells preserved.
  EXPECT_DOUBLE_EQ(clean.at(0, 0).numeric(), 10.0);
  EXPECT_EQ(clean.at(2, 1).categorical(), "paris");
}

TEST(MethodSpaceTest, FiveDistinctActions) {
  const auto space = BoostCleanMethodSpace();
  ASSERT_EQ(space.size(), 5u);
  // Every action fills the same dirty table differently (numeric side).
  const Table dirty = MakeDirtyTable();
  std::set<double> seen;
  for (const auto& method : space) {
    const Table filled = ApplyImputeMethod(dirty, 2, method).value();
    seen.insert(filled.at(2, 0).numeric());
    EXPECT_EQ(filled.CountMissing(), 0);
  }
  EXPECT_EQ(seen.size(), 5u);  // min, p25, mean, p75, max all distinct here
}

TEST(ApplyImputeMethodTest, MinAndMaxStatistics) {
  const Table dirty = MakeDirtyTable();
  ImputeMethod min_method;
  min_method.numeric = ImputeMethod::NumericStat::kMin;
  EXPECT_DOUBLE_EQ(ApplyImputeMethod(dirty, 2, min_method).value()
                       .at(2, 0)
                       .numeric(),
                   10.0);
  ImputeMethod max_method;
  max_method.numeric = ImputeMethod::NumericStat::kMax;
  EXPECT_DOUBLE_EQ(ApplyImputeMethod(dirty, 2, max_method).value()
                       .at(2, 0)
                       .numeric(),
                   40.0);
}

TEST(ApplyImputeMethodTest, CategoricalRankOutOfVocabularyUsesOther) {
  const Table dirty = MakeDirtyTable();
  ImputeMethod method;
  method.categorical_rank = 10;
  const Table filled = ApplyImputeMethod(dirty, 2, method).value();
  EXPECT_EQ(filled.at(3, 1).categorical(), "__other__");
}

TEST(HoloCleanSimTest, FillsEveryMissingCell) {
  const Table dirty = MakeDirtyTable();
  const Table filled = HoloCleanImpute(dirty, 2).value();
  EXPECT_EQ(filled.CountMissing(), 0);
  // Numeric fill lies within the observed range.
  EXPECT_GE(filled.at(2, 0).numeric(), 10.0);
  EXPECT_LE(filled.at(2, 0).numeric(), 40.0);
}

TEST(HoloCleanSimTest, UsesCorrelatedDonors) {
  // Column y tracks column x exactly; the missing y should be imputed near
  // the value of the closest-x donors, not the global mean.
  const Table dirty = ReadCsvString(
                          "x,y,label\n"
                          "1,10,0\n"
                          "2,20,0\n"
                          "3,30,0\n"
                          "10,100,1\n"
                          "11,110,1\n"
                          "12,,1\n")
                          .value();
  HoloCleanOptions options;
  options.num_donors = 2;
  const Table filled = HoloCleanImpute(dirty, 2, options).value();
  // Donors should be the x=10 and x=11 rows -> fill near 105, far from the
  // global mean of 54.
  EXPECT_GT(filled.at(5, 1).numeric(), 90.0);
}

TEST(HoloCleanSimTest, CategoricalWeightedMode) {
  const Table dirty = ReadCsvString(
                          "x,c,label\n"
                          "1,a,0\n"
                          "1.1,a,0\n"
                          "1.2,a,0\n"
                          "9,b,1\n"
                          "9.1,b,1\n"
                          "9.2,,1\n")
                          .value();
  const Table filled = HoloCleanImpute(dirty, 2).value();
  EXPECT_EQ(filled.at(5, 1).categorical(), "b");
}

}  // namespace
}  // namespace cpclean
