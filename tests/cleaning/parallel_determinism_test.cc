// The num_threads knob must never change results: FastSelectionScores,
// the greedy cleaning order, and every CleaningRunResult log are required
// to be bit-identical between the serial path (num_threads = 1) and any
// pooled configuration (the ISSUE's acceptance criterion).

#include "cleaning/cp_clean.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cleaning/certify.h"
#include "eval/experiment.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

PreparedExperiment MakePrepared(uint64_t seed = 31) {
  ExperimentConfig config;
  config.dataset.name = "determinism";
  config.dataset.synthetic.num_rows = 48 + 16 + 16;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = seed;
  config.dataset.missing_rate = 0.2;
  config.dataset.val_size = 16;
  config.dataset.test_size = 16;
  config.k = 3;
  config.seed = seed;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

CpCleanOptions BaseOptions(int num_threads) {
  CpCleanOptions options;
  options.k = 3;
  options.track_entropy = true;  // exercise the parallel entropy sweep too
  options.stop_when_all_certain = false;
  options.num_threads = num_threads;
  return options;
}

TEST(ParallelDeterminismTest, FastSelectionScoresBitMatchSerial) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession serial(&prepared.task, &kernel, BaseOptions(1));
  CleaningSession pooled(&prepared.task, &kernel, BaseOptions(8));
  const std::vector<int> dirty = prepared.task.DirtyRows();
  ASSERT_FALSE(dirty.empty());

  const std::vector<double> want = serial.FastSelectionScores(dirty);
  const std::vector<double> got = pooled.FastSelectionScores(dirty);
  ASSERT_EQ(want.size(), got.size());
  for (size_t p = 0; p < want.size(); ++p) {
    EXPECT_EQ(want[p], got[p])  // bit-for-bit, not NEAR
        << "score diverged for dirty example " << dirty[p];
  }

  // Repeat on an unsorted dirty list (RunLoop swap-and-pops): scores must
  // follow the permutation exactly.
  std::vector<int> shuffled = dirty;
  std::rotate(shuffled.begin(), shuffled.begin() + shuffled.size() / 2,
              shuffled.end());
  const std::vector<double> want_rot = serial.FastSelectionScores(shuffled);
  const std::vector<double> got_rot = pooled.FastSelectionScores(shuffled);
  for (size_t p = 0; p < shuffled.size(); ++p) {
    EXPECT_EQ(want_rot[p], got_rot[p]);
  }
}

TEST(ParallelDeterminismTest, CleaningRunsBitMatchAcrossThreadCounts) {
  const PreparedExperiment prepared = MakePrepared(33);
  NegativeEuclideanKernel kernel;

  CleaningSession serial(&prepared.task, &kernel, BaseOptions(1));
  const CleaningRunResult want = serial.RunCpClean();

  for (const int threads : {2, 8}) {
    CleaningSession pooled(&prepared.task, &kernel, BaseOptions(threads));
    const CleaningRunResult got = pooled.RunCpClean();

    EXPECT_EQ(got.examples_cleaned, want.examples_cleaned);
    EXPECT_EQ(got.all_val_certain, want.all_val_certain);
    EXPECT_EQ(got.final_test_accuracy, want.final_test_accuracy);
    ASSERT_EQ(got.steps.size(), want.steps.size()) << threads << " threads";
    for (size_t s = 0; s < want.steps.size(); ++s) {
      EXPECT_EQ(got.steps[s].cleaned_example, want.steps[s].cleaned_example)
          << "cleaning order diverged at step " << s;
      EXPECT_EQ(got.steps[s].frac_val_certain, want.steps[s].frac_val_certain);
      EXPECT_EQ(got.steps[s].test_accuracy, want.steps[s].test_accuracy);
      EXPECT_EQ(got.steps[s].mean_val_entropy,
                want.steps[s].mean_val_entropy);
    }
  }
}

TEST(ParallelDeterminismTest, ContribBytesBoundNeverChangesScores) {
  // The streamed contribution buffer's byte bound only partitions the
  // validation sweep into blocks; the per-example reduction stays a left
  // fold in ascending validation order, so any bound — down to a single
  // row — must reproduce the default's scores bit-for-bit, serial or
  // pooled.
  const PreparedExperiment prepared = MakePrepared(39);
  NegativeEuclideanKernel kernel;
  const std::vector<int> dirty = prepared.task.DirtyRows();
  ASSERT_FALSE(dirty.empty());

  CleaningSession reference(&prepared.task, &kernel, BaseOptions(1));
  const std::vector<double> want = reference.FastSelectionScores(dirty);

  for (const size_t bound : {size_t{1}, size_t{512}, size_t{1} << 30}) {
    for (const int threads : {1, 4}) {
      CpCleanOptions options = BaseOptions(threads);
      options.max_contrib_bytes = bound;
      CleaningSession session(&prepared.task, &kernel, options);
      const std::vector<double> got = session.FastSelectionScores(dirty);
      ASSERT_EQ(got.size(), want.size());
      for (size_t p = 0; p < want.size(); ++p) {
        EXPECT_EQ(got[p], want[p])
            << "bound " << bound << " threads " << threads;
      }
    }
  }
}

TEST(ParallelDeterminismTest, DefaultThreadCountMatchesSerial) {
  // num_threads = 0 (hardware concurrency) is the production default; it
  // must match the serial trace too.
  const PreparedExperiment prepared = MakePrepared(35);
  NegativeEuclideanKernel kernel;
  CleaningSession serial(&prepared.task, &kernel, BaseOptions(1));
  CleaningSession pooled(&prepared.task, &kernel, BaseOptions(0));
  const CleaningRunResult want = serial.RunCpClean();
  const CleaningRunResult got = pooled.RunCpClean();
  ASSERT_EQ(got.steps.size(), want.steps.size());
  for (size_t s = 0; s < want.steps.size(); ++s) {
    EXPECT_EQ(got.steps[s].cleaned_example, want.steps[s].cleaned_example);
    EXPECT_EQ(got.steps[s].frac_val_certain, want.steps[s].frac_val_certain);
  }
}

TEST(ParallelDeterminismTest, StepGreedySequenceMatchesRunCpClean) {
  // The serving layer advances sessions one StepGreedy at a time; the
  // incremental path must clean exactly the tuples RunCpClean's loop
  // cleans, in the same order.
  const PreparedExperiment prepared = MakePrepared(41);
  NegativeEuclideanKernel kernel;

  CleaningSession batch(&prepared.task, &kernel, BaseOptions(1));
  const CleaningRunResult run = batch.RunCpClean();
  std::vector<int> want;
  for (const CleaningStepLog& log : run.steps) {
    if (log.cleaned_example >= 0) want.push_back(log.cleaned_example);
  }
  ASSERT_FALSE(want.empty());

  CleaningSession stepping(&prepared.task, &kernel, BaseOptions(1));
  std::vector<int> got;
  while (true) {
    const int cleaned = stepping.StepGreedy();
    if (cleaned < 0) break;
    got.push_back(cleaned);
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(stepping.NumCleaned(), run.examples_cleaned);
  EXPECT_EQ(stepping.NumDirtyRemaining(), 0);
}

TEST(ParallelDeterminismTest, CertifyCleansSameTuplesAcrossThreadCounts) {
  const PreparedExperiment prepared = MakePrepared(37);
  NegativeEuclideanKernel kernel;
  CertifyOptions serial_options;
  serial_options.k = 3;
  serial_options.num_threads = 1;
  CertifyOptions pooled_options = serial_options;
  pooled_options.num_threads = 8;

  int certified = 0;
  for (size_t v = 0; v < prepared.task.val_x.size() && v < 6; ++v) {
    const auto want = CertifyTestPoint(prepared.task, prepared.task.val_x[v],
                                       kernel, serial_options);
    const auto got = CertifyTestPoint(prepared.task, prepared.task.val_x[v],
                                      kernel, pooled_options);
    ASSERT_EQ(want.ok(), got.ok());
    if (!want.ok()) continue;
    EXPECT_EQ(got.value().certified, want.value().certified);
    EXPECT_EQ(got.value().certain_label, want.value().certain_label);
    EXPECT_EQ(got.value().cleaned, want.value().cleaned);
    if (want.value().certified) ++certified;
  }
  EXPECT_GT(certified, 0);
}

}  // namespace
}  // namespace cpclean
