#include "cleaning/certify.h"

#include <gtest/gtest.h>

#include <set>

#include "core/certain_predictor.h"
#include "eval/experiment.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

PreparedExperiment MakePrepared(uint64_t seed) {
  ExperimentConfig config;
  config.dataset.name = "unit";
  config.dataset.synthetic.num_rows = 50 + 10 + 20;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = seed;
  config.dataset.missing_rate = 0.15;
  config.dataset.val_size = 10;
  config.dataset.test_size = 20;
  config.seed = seed;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

TEST(CertifyTest, CertifiesEveryValidationPoint) {
  const PreparedExperiment prepared = MakePrepared(3);
  NegativeEuclideanKernel kernel;
  const CertainPredictor predictor(&kernel, 3);
  CertifyOptions options;
  options.k = 3;
  for (const auto& t : prepared.task.val_x) {
    const CertifyResult result =
        CertifyTestPoint(prepared.task, t, kernel, options).value();
    ASSERT_TRUE(result.certified);
    EXPECT_GE(result.certain_label, 0);
    // No tuple cleaned twice.
    std::set<int> unique(result.cleaned.begin(), result.cleaned.end());
    EXPECT_EQ(unique.size(), result.cleaned.size());
  }
}

TEST(CertifyTest, AlreadyCertainPointNeedsNoCleaning) {
  const PreparedExperiment prepared = MakePrepared(5);
  NegativeEuclideanKernel kernel;
  const CertainPredictor predictor(&kernel, 3);
  CertifyOptions options;
  options.k = 3;
  bool found = false;
  for (const auto& t : prepared.task.val_x) {
    if (!predictor.IsCertain(prepared.task.incomplete, t)) continue;
    found = true;
    const CertifyResult result =
        CertifyTestPoint(prepared.task, t, kernel, options).value();
    EXPECT_TRUE(result.certified);
    EXPECT_TRUE(result.cleaned.empty());
  }
  EXPECT_TRUE(found) << "expected at least one already-certain val point";
}

TEST(CertifyTest, CertificateIsSound) {
  // Replaying the certificate's cleanings on a fresh copy must make the
  // point certain with that exact label.
  const PreparedExperiment prepared = MakePrepared(7);
  NegativeEuclideanKernel kernel;
  const CertainPredictor predictor(&kernel, 3);
  CertifyOptions options;
  options.k = 3;
  for (size_t v = 0; v < std::min<size_t>(prepared.task.val_x.size(), 5);
       ++v) {
    const auto& t = prepared.task.val_x[v];
    const CertifyResult result =
        CertifyTestPoint(prepared.task, t, kernel, options).value();
    ASSERT_TRUE(result.certified);
    IncompleteDataset replay = prepared.task.incomplete;
    for (int i : result.cleaned) {
      replay.FixExample(i, prepared.task.true_candidate[static_cast<size_t>(i)]);
    }
    const auto label = predictor.CertainLabel(replay, t);
    ASSERT_TRUE(label.has_value());
    EXPECT_EQ(*label, result.certain_label);
  }
}

TEST(CertifyTest, CertificateIsUsuallySmall) {
  // The whole point: certifying one prediction should touch far fewer
  // tuples than exist dirty rows.
  const PreparedExperiment prepared = MakePrepared(11);
  NegativeEuclideanKernel kernel;
  CertifyOptions options;
  options.k = 3;
  size_t total_cleaned = 0;
  for (const auto& t : prepared.task.val_x) {
    total_cleaned +=
        CertifyTestPoint(prepared.task, t, kernel, options).value()
            .cleaned.size();
  }
  const double avg =
      static_cast<double>(total_cleaned) / prepared.task.val_x.size();
  EXPECT_LT(avg, 0.5 * prepared.dirty_rows)
      << "certificates should be much smaller than the dirty set";
}

TEST(CertifyTest, BudgetIsRespected) {
  const PreparedExperiment prepared = MakePrepared(13);
  NegativeEuclideanKernel kernel;
  const CertainPredictor predictor(&kernel, 3);
  CertifyOptions options;
  options.k = 3;
  options.max_cleaned = 1;
  for (const auto& t : prepared.task.val_x) {
    if (predictor.IsCertain(prepared.task.incomplete, t)) continue;
    const CertifyResult result =
        CertifyTestPoint(prepared.task, t, kernel, options).value();
    EXPECT_LE(result.cleaned.size(), 1u);
    break;
  }
}

}  // namespace
}  // namespace cpclean
