#include "cleaning/cp_clean.h"

#include <gtest/gtest.h>

#include <set>

#include "cleaning/missing_injector.h"
#include "data/split.h"
#include "datasets/synthetic.h"
#include "eval/experiment.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

/// Small but realistic task: 40 train rows, 12 val, MNAR 15%.
PreparedExperiment MakePrepared(uint64_t seed = 3) {
  ExperimentConfig config;
  config.dataset.name = "unit";
  config.dataset.synthetic.num_rows = 40 + 12 + 20;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = seed;
  config.dataset.missing_rate = 0.15;
  config.dataset.val_size = 12;
  config.dataset.test_size = 20;
  config.k = 3;
  config.seed = seed;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

TEST(CleaningSessionTest, CpCleanTerminatesWithAllValCertain) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  EXPECT_TRUE(run.all_val_certain);
  EXPECT_LE(run.examples_cleaned, prepared.dirty_rows);
  EXPECT_EQ(run.steps.size(), static_cast<size_t>(run.examples_cleaned) + 1);
  // Once all validation examples are CP'ed, the trace ends.
  EXPECT_DOUBLE_EQ(run.steps.back().frac_val_certain, 1.0);
}

TEST(CleaningSessionTest, CertaintyFractionIsMonotone) {
  const PreparedExperiment prepared = MakePrepared(5);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  for (size_t s = 1; s < run.steps.size(); ++s) {
    EXPECT_GE(run.steps[s].frac_val_certain,
              run.steps[s - 1].frac_val_certain)
        << "CP'ed points must stay CP'ed (cleaning removes worlds)";
  }
}

TEST(CleaningSessionTest, NeverCleansTheSameExampleTwice) {
  const PreparedExperiment prepared = MakePrepared(7);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.stop_when_all_certain = false;  // run the full trajectory
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  std::set<int> cleaned;
  for (size_t s = 1; s < run.steps.size(); ++s) {
    const int example = run.steps[s].cleaned_example;
    EXPECT_TRUE(cleaned.insert(example).second)
        << "example " << example << " cleaned twice";
  }
  // Full run cleans every dirty example.
  EXPECT_EQ(run.examples_cleaned, prepared.dirty_rows);
}

TEST(CleaningSessionTest, FullCleaningReachesGroundTruthWorld) {
  const PreparedExperiment prepared = MakePrepared(9);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.stop_when_all_certain = false;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  // The oracle picks the candidate nearest the truth, so after cleaning
  // everything the world is the oracle world; its accuracy should be close
  // to the ground-truth accuracy (equal when candidates contain the truth).
  EXPECT_NEAR(run.final_test_accuracy, prepared.ground_truth_test_accuracy,
              0.15);
}

TEST(CleaningSessionTest, BudgetStopsEarly) {
  const PreparedExperiment prepared = MakePrepared(11);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.max_cleaned = 3;
  CleaningSession session(&prepared.task, &kernel, options);
  const CleaningRunResult run = session.RunCpClean();
  EXPECT_LE(run.examples_cleaned, 3);
}

TEST(CleaningSessionTest, FastAndReferenceSelectionAgree) {
  const PreparedExperiment prepared = MakePrepared(13);
  NegativeEuclideanKernel kernel;

  CpCleanOptions fast;
  fast.k = 3;
  fast.max_cleaned = 4;
  fast.track_test_accuracy = false;
  CleaningSession fast_session(&prepared.task, &kernel, fast);
  const CleaningRunResult fast_run = fast_session.RunCpClean();

  CpCleanOptions slow = fast;
  slow.use_fast_selection = false;
  CleaningSession slow_session(&prepared.task, &kernel, slow);
  const CleaningRunResult slow_run = slow_session.RunCpClean();

  ASSERT_EQ(fast_run.steps.size(), slow_run.steps.size());
  for (size_t s = 0; s < fast_run.steps.size(); ++s) {
    EXPECT_EQ(fast_run.steps[s].cleaned_example,
              slow_run.steps[s].cleaned_example)
        << "fast and reference selection diverged at step " << s;
  }
}

TEST(CleaningSessionTest, RandomCleanIsReproduciblePerSeed) {
  const PreparedExperiment prepared = MakePrepared(15);
  NegativeEuclideanKernel kernel;
  CpCleanOptions options;
  options.k = 3;
  options.track_test_accuracy = false;
  CleaningSession session(&prepared.task, &kernel, options);
  Rng rng1(42), rng2(42);
  const CleaningRunResult a = session.RunRandomClean(&rng1);
  const CleaningRunResult b = session.RunRandomClean(&rng2);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t s = 0; s < a.steps.size(); ++s) {
    EXPECT_EQ(a.steps[s].cleaned_example, b.steps[s].cleaned_example);
  }
}

TEST(CleaningSessionTest, CpCleanNeedsNoMoreCleaningThanRandomOnAverage) {
  // Not a strict theorem, but holds comfortably on average; guards against
  // selection-logic regressions that make CPClean no better than random.
  int cp_total = 0, random_total = 0;
  NegativeEuclideanKernel kernel;
  for (uint64_t seed : {21, 23, 25}) {
    const PreparedExperiment prepared = MakePrepared(seed);
    CpCleanOptions options;
    options.k = 3;
    options.track_test_accuracy = false;
    CleaningSession session(&prepared.task, &kernel, options);
    cp_total += session.RunCpClean().examples_cleaned;
    Rng rng(seed);
    random_total += session.RunRandomClean(&rng).examples_cleaned;
  }
  EXPECT_LE(cp_total, random_total);
}

}  // namespace
}  // namespace cpclean
