#include "cleaning/repair_generator.h"

#include <gtest/gtest.h>

#include "data/csv.h"

namespace cpclean {
namespace {

Table MakeDirtyTable() {
  return ReadCsvString(
             "age,city,label\n"
             "10,rome,0\n"
             "20,rome,1\n"
             ",paris,1\n"
             "40,,0\n"
             "30,berlin,1\n"
             ",,1\n")
      .value();
}

TEST(CellRepairsTest, NumericPercentileSet) {
  const Table table = MakeDirtyTable();
  const auto repairs = CellRepairs(table, 0);
  // Observed ages: {10, 20, 40, 30} -> min 10, p25 17.5, mean 25, p75 32.5,
  // max 40.
  ASSERT_EQ(repairs.size(), 5u);
  EXPECT_DOUBLE_EQ(repairs[0].numeric(), 10.0);
  EXPECT_DOUBLE_EQ(repairs[1].numeric(), 17.5);
  EXPECT_DOUBLE_EQ(repairs[2].numeric(), 25.0);
  EXPECT_DOUBLE_EQ(repairs[3].numeric(), 32.5);
  EXPECT_DOUBLE_EQ(repairs[4].numeric(), 40.0);
}

TEST(CellRepairsTest, NumericDeduplicatesDegenerateColumns) {
  const auto table = ReadCsvString("x,label\n5,0\n5,1\n,0\n").value();
  const auto repairs = CellRepairs(table, 0);
  EXPECT_EQ(repairs.size(), 1u);  // all five statistics collapse to 5
  EXPECT_DOUBLE_EQ(repairs[0].numeric(), 5.0);
}

TEST(CellRepairsTest, CategoricalTopKPlusOther) {
  const Table table = MakeDirtyTable();
  const auto repairs = CellRepairs(table, 1);
  // Observed: rome x2, paris, berlin (3 distinct) + "__other__".
  ASSERT_EQ(repairs.size(), 4u);
  EXPECT_EQ(repairs[0].categorical(), "rome");  // most frequent first
  EXPECT_EQ(repairs.back().categorical(), "__other__");
}

TEST(CellRepairsTest, CategoricalCapsAtTopK) {
  RepairOptions options;
  options.categorical_top_k = 2;
  const Table table = MakeDirtyTable();
  const auto repairs = CellRepairs(table, 1, options);
  ASSERT_EQ(repairs.size(), 3u);  // top-2 + other
  EXPECT_EQ(repairs[0].categorical(), "rome");
  EXPECT_EQ(repairs[1].categorical(), "berlin");  // tie broken alphabetically
}

TEST(RowRepairsTest, CompleteRowYieldsItself) {
  const Table table = MakeDirtyTable();
  const auto rows = RowRepairs(table, 0, 2).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], table.row(0));
}

TEST(RowRepairsTest, SingleMissingCellExpandsToCellRepairs) {
  const Table table = MakeDirtyTable();
  const auto rows = RowRepairs(table, 2, 2).value();  // missing age
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& row : rows) {
    EXPECT_TRUE(row[0].is_numeric());
    EXPECT_EQ(row[1].categorical(), "paris");  // untouched cells preserved
    EXPECT_EQ(row[2], Value::Numeric(1));  // label column inferred numeric
  }
}

TEST(RowRepairsTest, MultipleMissingCellsTakeCartesianProduct) {
  const Table table = MakeDirtyTable();
  const auto rows = RowRepairs(table, 5, 2).value();  // age AND city missing
  EXPECT_EQ(rows.size(), 20u);  // 5 numeric x 4 categorical
  // All complete.
  for (const auto& row : rows) {
    for (const Value& v : row) EXPECT_FALSE(v.is_null());
  }
}

TEST(RowRepairsTest, CartesianProductRespectsCap) {
  RepairOptions options;
  options.max_candidates_per_row = 7;
  const Table table = MakeDirtyTable();
  const auto rows = RowRepairs(table, 5, 2, options).value();
  EXPECT_EQ(rows.size(), 7u);
}

TEST(RowRepairsTest, RejectsNullLabelAndBadRow) {
  auto table = MakeDirtyTable();
  table.Set(0, 2, Value::Null());
  EXPECT_FALSE(RowRepairs(table, 0, 2).ok());
  EXPECT_FALSE(RowRepairs(table, 99, 2).ok());
}

}  // namespace
}  // namespace cpclean
