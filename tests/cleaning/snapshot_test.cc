// CleaningSession::Snapshot / Restore: replaying a snapshot's cleaning
// order against a fresh session on the same task must reproduce the
// interrupted session bit for bit — the working dataset, the certainty
// state, and (the hard part) the exact example sequence future greedy
// steps clean. This is the cleaning-layer half of the serving layer's
// save → evict → rehydrate contract.

#include "cleaning/cp_clean.h"

#include <gtest/gtest.h>

#include <vector>

#include "eval/experiment.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

PreparedExperiment MakePrepared(double missing_rate = 0.25,
                                uint64_t seed = 77) {
  ExperimentConfig config;
  config.dataset.name = "snapshot";
  config.dataset.synthetic.name = "snapshot";
  config.dataset.synthetic.num_rows = 40 + 12 + 8;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = seed;
  config.dataset.missing_rate = missing_rate;
  config.dataset.val_size = 12;
  config.dataset.test_size = 8;
  config.k = 3;
  config.seed = seed;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

CpCleanOptions Options() {
  CpCleanOptions options;
  options.k = 3;
  options.track_test_accuracy = false;
  // Drain the full dirty list so the snapshot points cover a whole run
  // deterministically, not just the all-certain prefix.
  options.stop_when_all_certain = false;
  return options;
}

/// Steps `session` to exhaustion, returning the cleaning order.
std::vector<int> DrainGreedy(CleaningSession* session) {
  std::vector<int> order;
  while (true) {
    const int cleaned = session->StepGreedy();
    if (cleaned < 0) break;
    order.push_back(cleaned);
  }
  return order;
}

TEST(SnapshotTest, MidCleaningRestoreContinuesBitIdentically) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession original(&prepared.task, &kernel, Options());

  // Clean three steps, snapshot, then let the original run to the end.
  for (int s = 0; s < 3; ++s) ASSERT_GE(original.StepGreedy(), 0);
  const CleaningSnapshot snapshot = original.Snapshot();
  ASSERT_EQ(snapshot.cleaned_order.size(), 3u);

  CleaningSession restored(&prepared.task, &kernel, Options());
  ASSERT_TRUE(restored.Restore(snapshot).ok());

  EXPECT_TRUE(BitIdentical(restored.working(), original.working()));
  EXPECT_EQ(restored.working().version(), original.working().version());
  EXPECT_EQ(restored.NumCleaned(), original.NumCleaned());
  EXPECT_EQ(restored.NumDirtyRemaining(), original.NumDirtyRemaining());
  EXPECT_EQ(restored.FracValCertain(), original.FracValCertain());

  // The remaining greedy trajectory must be the *same examples in the
  // same order* as the uninterrupted session's.
  const std::vector<int> original_rest = DrainGreedy(&original);
  const std::vector<int> restored_rest = DrainGreedy(&restored);
  EXPECT_EQ(original_rest, restored_rest);
  EXPECT_TRUE(BitIdentical(restored.working(), original.working()));
  EXPECT_EQ(restored.FracValCertain(), original.FracValCertain());
}

TEST(SnapshotTest, EmptySnapshotRestoresInitialState) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession fresh(&prepared.task, &kernel, Options());
  CleaningSession restored(&prepared.task, &kernel, Options());
  ASSERT_TRUE(restored.Restore(CleaningSnapshot{}).ok());
  EXPECT_TRUE(BitIdentical(restored.working(), fresh.working()));
  EXPECT_EQ(restored.NumCleaned(), 0);
  EXPECT_EQ(DrainGreedy(&restored), DrainGreedy(&fresh));
}

TEST(SnapshotTest, FullyCleanedSnapshotHasEmptyDirtyList) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession full(&prepared.task, &kernel, Options());
  const std::vector<int> order = DrainGreedy(&full);
  EXPECT_EQ(full.NumDirtyRemaining(), 0);

  CleaningSession restored(&prepared.task, &kernel, Options());
  ASSERT_TRUE(restored.Restore(full.Snapshot()).ok());
  EXPECT_EQ(restored.NumDirtyRemaining(), 0);
  EXPECT_EQ(restored.NumCleaned(), static_cast<int>(order.size()));
  EXPECT_TRUE(BitIdentical(restored.working(), full.working()));
  EXPECT_EQ(restored.StepGreedy(), -1);  // nothing left
}

TEST(SnapshotTest, CleanTaskSnapshotRoundTripsWithNothingToClean) {
  // missing_rate 0: every candidate set is a singleton, the dirty list is
  // empty from the start, and the snapshot carries a zero-length order.
  const PreparedExperiment prepared = MakePrepared(/*missing_rate=*/0.0);
  NegativeEuclideanKernel kernel;
  CleaningSession original(&prepared.task, &kernel, Options());
  EXPECT_EQ(original.NumDirtyRemaining(), 0);
  EXPECT_EQ(original.StepGreedy(), -1);
  const CleaningSnapshot snapshot = original.Snapshot();
  EXPECT_TRUE(snapshot.cleaned_order.empty());

  CleaningSession restored(&prepared.task, &kernel, Options());
  ASSERT_TRUE(restored.Restore(snapshot).ok());
  EXPECT_TRUE(BitIdentical(restored.working(), original.working()));
  EXPECT_EQ(restored.StepGreedy(), -1);
}

TEST(SnapshotTest, RestoreRejectsInvalidOrders) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession session(&prepared.task, &kernel, Options());

  EXPECT_FALSE(session.Restore(CleaningSnapshot{{-1}}).ok());
  EXPECT_FALSE(
      session
          .Restore(CleaningSnapshot{{prepared.task.incomplete.num_examples()}})
          .ok());
  const std::vector<int> dirty = prepared.task.DirtyRows();
  ASSERT_FALSE(dirty.empty());
  // Same example twice.
  EXPECT_FALSE(
      session.Restore(CleaningSnapshot{{dirty[0], dirty[0]}}).ok());
  // A failed restore still leaves a consistent (reset or replayed) state:
  // a valid restore afterwards succeeds.
  EXPECT_TRUE(session.Restore(CleaningSnapshot{{dirty[0]}}).ok());
  EXPECT_EQ(session.NumCleaned(), 1);
}

}  // namespace
}  // namespace cpclean
