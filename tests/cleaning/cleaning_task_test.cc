#include "cleaning/cleaning_task.h"

#include <gtest/gtest.h>

#include "cleaning/boost_clean.h"
#include "data/csv.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

struct Tables {
  Table dirty, clean, val, test;
};

Tables MakeTables() {
  Tables t;
  t.clean = ReadCsvString(
                "x,y,label\n"
                "0,0,0\n"
                "1,0,0\n"
                "0,1,0\n"
                "9,9,1\n"
                "10,9,1\n"
                "9,10,1\n")
                .value();
  t.dirty = t.clean;
  t.dirty.Set(1, 0, Value::Null());   // true value 1
  t.dirty.Set(4, 1, Value::Null());   // true value 9
  t.val = ReadCsvString("x,y,label\n0.5,0.5,0\n9.5,9.5,1\n").value();
  t.test = ReadCsvString("x,y,label\n1,1,0\n8,8,1\n0,2,0\n").value();
  return t;
}

TEST(CleaningTaskTest, BuildsCandidateSpace) {
  const Tables tables = MakeTables();
  const CleaningTask task =
      BuildCleaningTask(tables.dirty, tables.clean, tables.val, tables.test,
                        "label")
          .value();
  EXPECT_EQ(task.label_col, 2);
  EXPECT_EQ(task.incomplete.num_examples(), 6);
  EXPECT_EQ(task.DirtyRows(), (std::vector<int>{1, 4}));
  // 5 numeric repairs for each missing cell (deduplicated if degenerate).
  EXPECT_GT(task.incomplete.num_candidates(1), 1);
  EXPECT_EQ(task.incomplete.num_candidates(0), 1);
  EXPECT_EQ(task.val_x.size(), 2u);
  EXPECT_EQ(task.test_x.size(), 3u);
  EXPECT_EQ(task.train_y, (std::vector<int>{0, 0, 0, 1, 1, 1}));
}

TEST(CleaningTaskTest, OracleAnswersAreClosestToGroundTruth) {
  const Tables tables = MakeTables();
  const CleaningTask task =
      BuildCleaningTask(tables.dirty, tables.clean, tables.val, tables.test,
                        "label")
          .value();
  // Row 1's true x is 1; observed column is {0, 0, 9, 10, 9} with
  // mean 3.6 etc. The oracle's pick must be the candidate closest to 1.
  const int chosen = task.true_candidate[1];
  const auto& rows = task.candidate_rows[1];
  const double chosen_x = rows[static_cast<size_t>(chosen)][0].numeric();
  for (const auto& row : rows) {
    EXPECT_LE(std::abs(chosen_x - 1.0), std::abs(row[0].numeric() - 1.0));
  }
}

TEST(CleaningTaskTest, AccuracyAnchorsAreSane) {
  const Tables tables = MakeTables();
  const CleaningTask task =
      BuildCleaningTask(tables.dirty, tables.clean, tables.val, tables.test,
                        "label")
          .value();
  NegativeEuclideanKernel kernel;
  // Ground-truth features classify the well-separated test set perfectly.
  EXPECT_DOUBLE_EQ(task.AccuracyWith(task.clean_train_x, task.test_x,
                                     task.test_y, kernel, 3),
                   1.0);
}

TEST(CleaningTaskTest, RejectsBadInputs) {
  const Tables tables = MakeTables();
  // Incomplete validation set.
  Table bad_val = tables.val;
  bad_val.Set(0, 0, Value::Null());
  EXPECT_FALSE(BuildCleaningTask(tables.dirty, tables.clean, bad_val,
                                 tables.test, "label")
                   .ok());
  // Mismatched schemas.
  EXPECT_FALSE(BuildCleaningTask(tables.dirty, tables.clean,
                                 tables.val.DropColumn(0), tables.test,
                                 "label")
                   .ok());
  // Unknown label column.
  EXPECT_FALSE(BuildCleaningTask(tables.dirty, tables.clean, tables.val,
                                 tables.test, "nope")
                   .ok());
  // Row-count mismatch between dirty and clean training tables.
  EXPECT_FALSE(BuildCleaningTask(tables.dirty, tables.val, tables.val,
                                 tables.test, "label")
                   .ok());
}

TEST(BoostCleanTest, PicksBestValidationMethod) {
  const Tables tables = MakeTables();
  const CleaningTask task =
      BuildCleaningTask(tables.dirty, tables.clean, tables.val, tables.test,
                        "label")
          .value();
  NegativeEuclideanKernel kernel;
  const BoostCleanResult result = RunBoostClean(task, kernel, 3).value();
  EXPECT_EQ(result.method_val_accuracy.size(), 5u);
  for (const auto& [name, acc] : result.method_val_accuracy) {
    EXPECT_LE(acc, result.best_val_accuracy) << name;
  }
  EXPECT_GE(result.test_accuracy, 0.0);
  EXPECT_LE(result.test_accuracy, 1.0);

  const BoostCleanResult per_col =
      RunBoostCleanPerColumn(task, kernel, 3).value();
  EXPECT_GE(per_col.test_accuracy, 0.0);
}

}  // namespace
}  // namespace cpclean
